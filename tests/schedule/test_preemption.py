"""Kernel-granularity preemption: golden regressions and invariants.

The ``exclusive_preempt`` policy bounds priority inversion to the one
kernel already on the machine and records every yield; the
``abort_late`` QoS action cancels an in-flight frame's not-yet-started
kernels at its deadline expiry. Every golden here is pinned bit-exact
on BOTH engines, and the plain-``exclusive`` twins pin the byte
stability contract: a non-preemptive run must never grow preemption
records or shift a segment.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz.oracles import (
    assert_frame_atomicity,
    assert_preemption_bound,
)
from repro.schedule.resources import ResourceClaim, ResourceKind
from repro.schedule.streams import (
    ScenarioSpec,
    StreamSpec,
    instantiate_frames,
)
from repro.schedule.timeline import OpTask, TimelineScheduler
from repro.serving.qos import QosSpec, make_qos
from repro.serving.traces import ArrivalSpec

SIMD = (ResourceClaim(ResourceKind.SIMD),)
ARRAY_AND_SIMD = (
    ResourceClaim(ResourceKind.ARRAY),
    ResourceClaim(ResourceKind.SIMD),
)
TRANSFER = (ResourceClaim(ResourceKind.TRANSFER),)

ENGINES = ("scalar", "vectorized")


def run(policy, tasks, engine, qos=None):
    return TimelineScheduler(policy, qos=make_qos(qos), engine=engine).run(
        tasks
    )


def segments(timeline):
    return [(s.name, s.start_s, s.end_s) for s in timeline.segments]


def preempts(timeline):
    return [
        (p.uid, p.action, p.reason, p.time_s) for p in timeline.preemptions
    ]


def inversion_tasks():
    """The priority-inversion scenario from the issue: a low-priority
    three-kernel frame is already on the machine when a high-priority
    two-kernel frame arrives mid-kernel."""
    low = [
        OpTask(uid=0, name="low/op0", seconds=1.0, claims=SIMD,
               stream="low", weight=1.0, frame_head=True),
        OpTask(uid=1, name="low/op1", seconds=1.0, claims=SIMD,
               stream="low", weight=1.0, deps=(0,)),
        OpTask(uid=2, name="low/op2", seconds=1.0, claims=SIMD,
               stream="low", weight=1.0, deps=(1,)),
    ]
    high = [
        OpTask(uid=3, name="high/op0", seconds=0.5, claims=SIMD,
               stream="high", release_s=0.25, weight=2.0, frame_head=True),
        OpTask(uid=4, name="high/op1", seconds=0.5, claims=SIMD,
               stream="high", release_s=0.25, weight=2.0, deps=(3,)),
    ]
    return low + high


#: The only legal schedule once inversion is bounded to one kernel: the
#: in-flight low kernel finishes, then the whole high-priority frame
#: runs, then the descheduled low remainder resumes.
INVERSION_SEGMENTS = [
    ("low/op0", 0.0, 1.0),
    ("high/op0", 1.0, 1.5),
    ("high/op1", 1.5, 2.0),
    ("low/op1", 2.0, 3.0),
    ("low/op2", 3.0, 4.0),
]


class TestInversionRegression:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_high_priority_starts_at_next_kernel_boundary(self, engine):
        timeline = run("exclusive_preempt", inversion_tasks(), engine)
        assert segments(timeline) == INVERSION_SEGMENTS
        # Exactly one yield: low/op1 was the frame's next kernel and was
        # passed over at the boundary in favor of high/op0.
        assert preempts(timeline) == [(1, "deschedule", "priority", 1.0)]
        assert timeline.drops == ()
        assert timeline.makespan_s == 4.0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_plain_exclusive_is_untouched(self, engine):
        """Byte-stability contract: the non-preemptive policy produces
        the same segments with NO preemption records."""
        timeline = run("exclusive", inversion_tasks(), engine)
        assert segments(timeline) == INVERSION_SEGMENTS
        assert timeline.preemptions == ()

    def test_engines_agree_bit_for_bit(self):
        scalar = run("exclusive_preempt", inversion_tasks(), "scalar")
        vector = run("exclusive_preempt", inversion_tasks(), "vectorized")
        assert scalar == vector


def deadline_tasks():
    """A three-kernel frame that cannot meet its 1.5 s deadline: the
    second kernel is in flight when the expiry passes."""
    return [
        OpTask(uid=0, name="a/op0", seconds=1.0, claims=SIMD, stream="a",
               frame_head=True, deadline_s=1.5),
        OpTask(uid=1, name="a/op1", seconds=1.0, claims=SIMD, stream="a",
               deps=(0,)),
        OpTask(uid=2, name="a/op2", seconds=1.0, claims=SIMD, stream="a",
               deps=(1,)),
    ]


class TestAbortLate:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_unstarted_remainder_cancelled_at_expiry(self, engine):
        timeline = run(
            "fifo", deadline_tasks(), engine, qos=QosSpec(kind="abort_late")
        )
        # The in-flight kernel (a/op1) runs to completion; only the
        # never-started a/op2 is cancelled, exactly at the expiry.
        assert segments(timeline) == [
            ("a/op0", 0.0, 1.0),
            ("a/op1", 1.0, 2.0),
        ]
        assert preempts(timeline) == [(2, "abort", "deadline_abort", 1.5)]
        assert timeline.drops == ()
        assert timeline.makespan_s == 2.0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_drop_late_leaves_inflight_frames_alone(self, engine):
        """The non-preemptive sibling never touches a started frame."""
        timeline = run(
            "fifo", deadline_tasks(), engine, qos=QosSpec(kind="drop_late")
        )
        assert segments(timeline) == [
            ("a/op0", 0.0, 1.0),
            ("a/op1", 1.0, 2.0),
            ("a/op2", 2.0, 3.0),
        ]
        assert timeline.preemptions == ()
        assert timeline.drops == ()


class TestSubstrateTracking:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_transfer_does_not_move_the_substrate(self, engine):
        """A TRANSFER task never occupies the MAC substrate, so it must
        not be charged a mode switch nor reassign the substrate's
        owner — the systolic task after the DMA resumes switch-free."""
        tasks = [
            OpTask(uid=0, name="a/sys", seconds=1.0, claims=ARRAY_AND_SIMD,
                   mode="systolic", stream="a", frame_head=True,
                   cross_switch_s=0.25),
            OpTask(uid=1, name="b/dma", seconds=0.5, claims=TRANSFER,
                   stream="b", release_s=1.0, frame_head=True,
                   cross_switch_s=0.25),
            OpTask(uid=2, name="a/sys2", seconds=1.0, claims=ARRAY_AND_SIMD,
                   mode="systolic", stream="a", frame=1, release_s=1.5,
                   frame_head=True, cross_switch_s=0.25),
        ]
        timeline = run("fifo", tasks, engine)
        assert segments(timeline) == [
            ("a/sys", 0.0, 1.0),
            ("b/dma", 1.0, 1.5),
            ("a/sys2", 1.5, 2.5),
        ]
        assert timeline.mode_switches == 0
        assert timeline.switch_overhead_s == 0.0
        assert timeline.makespan_s == 2.5


class TestCompletionEpsilon:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_zero_second_task_with_switch_surcharge(self, engine):
        """The completion epsilon scales to the total charged work —
        switch surcharge included — so a zero-second kernel whose only
        cost is the reconfiguration completes exactly once, on time."""
        tasks = [
            OpTask(uid=0, name="a/sys", seconds=1.0, claims=ARRAY_AND_SIMD,
                   mode="systolic", stream="a", frame_head=True),
            OpTask(uid=1, name="b/zero", seconds=0.0, claims=SIMD,
                   stream="b", release_s=1.0, frame_head=True,
                   cross_switch_s=0.3),
            OpTask(uid=2, name="b/tail", seconds=0.7, claims=SIMD,
                   stream="b", deps=(1,)),
        ]
        timeline = run("fifo", tasks, engine)
        assert segments(timeline) == [
            ("a/sys", 0.0, 1.0),
            ("b/zero", 1.0, 1.3),
            ("b/tail", 1.3, 2.0),
        ]
        assert timeline.mode_switches == 1
        assert timeline.switch_overhead_s == 0.3
        assert timeline.makespan_s == 2.0


class TestClosedLoopQueueCap:
    """``queue_cap`` must see *effective* (rewritten) releases: a
    closed-loop frame has not arrived until its pacing dependency
    resolves, so it can never be counted — let alone shed — while the
    machine grinds through a backlogged open-loop competitor."""

    def plan(self):
        spec = ScenarioSpec(
            name="paced-vs-backlog",
            frames=4,
            policy="fifo",
            qos=QosSpec(kind="queue_cap", cap=1),
            streams=(
                StreamSpec(
                    name="open",
                    model="m",
                    arrivals=ArrivalSpec(kind="fixed", period_s=0.05),
                ),
                StreamSpec(
                    name="closed",
                    model="m",
                    arrivals=ArrivalSpec(kind="closed_loop", think_s=0.0),
                ),
            ),
        )
        template = [OpTask(uid=0, name="op0", seconds=0.4, claims=SIMD)]
        return spec, instantiate_frames(
            spec, {"open": template, "closed": template}
        )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_closed_loop_frames_survive_open_loop_backlog(self, engine):
        spec, plan = self.plan()
        timeline = TimelineScheduler(
            spec.policy, qos=make_qos(spec.qos), engine=engine
        ).run(plan.tasks)
        by_stream = plan.frame_records(timeline)
        # Every closed-loop frame completes: at most one is ever waiting,
        # so a cap of 1 has nothing to shed from that stream.
        assert [r.dropped for r in by_stream["closed"]] == [False] * 4
        # The open-loop backlog exceeds the cap while frame 0 runs; the
        # newest arrivals beyond it (frames 2 and 3) are shed on arrival.
        assert [
            (r.frame, r.drop_reason)
            for r in by_stream["open"] if r.dropped
        ] == [(2, "queue_full"), (3, "queue_full")]
        assert timeline.preemptions == ()

    def test_engines_agree_bit_for_bit(self):
        _, plan = self.plan()
        runs = {}
        for engine in ENGINES:
            _, fresh = self.plan()
            runs[engine] = TimelineScheduler(
                "fifo", qos=make_qos(QosSpec(kind="queue_cap", cap=1)),
                engine=engine,
            ).run(fresh.tasks)
        assert runs["scalar"] == runs["vectorized"]


# -- property-based: inversion is bounded to one kernel -------------------------------

_SECONDS = st.floats(
    min_value=0.0, max_value=2.0, allow_nan=False, allow_infinity=False
)
_RELEASE = st.floats(
    min_value=0.0, max_value=5.0, allow_nan=False, allow_infinity=False
)

CLAIM_CHOICES = (
    SIMD,
    ARRAY_AND_SIMD,
    (ResourceClaim(ResourceKind.TC), ResourceClaim(ResourceKind.SIMD, 0.4)),
    TRANSFER,
)


@st.composite
def task_sets(draw):
    """Frame-chained multi-stream task sets (the shape platforms emit)."""
    tasks = []
    uid = 0
    for stream_index in range(draw(st.integers(min_value=1, max_value=3))):
        stream = f"s{stream_index}"
        weight = draw(
            st.floats(min_value=0.5, max_value=4.0, allow_nan=False)
        )
        deadline = draw(
            st.one_of(
                st.none(),
                st.floats(min_value=0.1, max_value=4.0, allow_nan=False),
            )
        )
        previous_last = None
        for frame in range(draw(st.integers(min_value=1, max_value=3))):
            release = draw(_RELEASE)
            chain = draw(st.integers(min_value=1, max_value=3))
            for position in range(chain):
                if position == 0:
                    deps = () if previous_last is None else (previous_last,)
                else:
                    deps = (uid - 1,)
                tasks.append(
                    OpTask(
                        uid=uid,
                        name=f"{stream}/f{frame}/op{position}",
                        seconds=draw(_SECONDS),
                        claims=draw(st.sampled_from(CLAIM_CHOICES)),
                        stream=stream,
                        frame=frame,
                        deps=deps,
                        release_s=release,
                        weight=weight,
                        deadline_s=deadline,
                        frame_head=position == 0,
                    )
                )
                uid += 1
            previous_last = uid - 1
    return tasks


QOS_CHOICES = (
    None,
    QosSpec(kind="abort_late"),
    QosSpec(kind="abort_late", slack_s=0.5),
    QosSpec(kind="queue_cap", cap=1),
)


@given(tasks=task_sets(), qos=st.sampled_from(QOS_CHOICES))
@settings(max_examples=50, deadline=None)
def test_inversion_never_exceeds_one_kernel(tasks, qos):
    """Once a task is ready, only the in-flight kernel may delay it: no
    strictly-lighter kernel starts inside its ready->start window."""
    timeline = TimelineScheduler(
        "exclusive_preempt", qos=make_qos(qos)
    ).run(tasks)
    assert_preemption_bound(tasks, timeline, "exclusive_preempt")
    assert_frame_atomicity(tasks, timeline)


@given(tasks=task_sets(), qos=st.sampled_from(QOS_CHOICES))
@settings(max_examples=25, deadline=None)
def test_preemptive_engines_stay_bit_identical(tasks, qos):
    scalar = TimelineScheduler(
        "exclusive_preempt", qos=make_qos(qos), engine="scalar"
    ).run(tasks)
    vector = TimelineScheduler(
        "exclusive_preempt", qos=make_qos(qos), engine="vectorized"
    ).run(tasks)
    assert scalar == vector
