"""Scenario spec validation, frame instantiation, and JSON round-trips."""

import pytest

from repro.errors import ConfigError, SchedulingError
from repro.schedule.resources import ResourceClaim, ResourceKind
from repro.schedule.streams import (
    ScenarioSpec,
    StreamSpec,
    instantiate_frames,
)
from repro.schedule.timeline import OpTask, TimelineScheduler

SIMD = (ResourceClaim(ResourceKind.SIMD),)


def template(count, stream="t"):
    return [
        OpTask(
            uid=index,
            name=f"{stream}/op{index}",
            seconds=0.010,
            claims=SIMD,
            stream=stream,
            deps=(index - 1,) if index else (),
        )
        for index in range(count)
    ]


def spec(**kwargs):
    defaults = dict(
        name="test",
        streams=(
            StreamSpec(name="a", model="alexnet"),
            StreamSpec(name="b", model="goturn"),
        ),
        frames=2,
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


class TestSpecValidation:
    def test_needs_stream(self):
        with pytest.raises(ConfigError):
            ScenarioSpec(name="empty", streams=())

    def test_duplicate_stream_names(self):
        with pytest.raises(ConfigError):
            spec(streams=(
                StreamSpec(name="a", model="alexnet"),
                StreamSpec(name="a", model="goturn"),
            ))

    def test_bad_policy(self):
        with pytest.raises(ConfigError):
            spec(policy="banana")

    def test_bad_frames(self):
        with pytest.raises(ConfigError):
            spec(frames=0)

    def test_stream_validation(self):
        with pytest.raises(ConfigError):
            StreamSpec(name="a", model="m", priority=0)
        with pytest.raises(ConfigError):
            StreamSpec(name="a", model="m", skip_interval=0)
        with pytest.raises(ConfigError):
            StreamSpec(name="a", model="m", deadline_s=0.0)
        with pytest.raises(ConfigError):
            StreamSpec(name="", model="m")

    def test_stream_lookup(self):
        scenario = spec()
        assert scenario.stream("a").model == "alexnet"
        with pytest.raises(ConfigError):
            scenario.stream("zzz")


class TestJsonRoundTrip:
    def test_scenario_round_trip(self):
        scenario = spec(
            platform="sma:3",
            policy="priority",
            framework_overhead_s=1e-5,
            streams=(
                StreamSpec(name="a", model="alexnet", priority=2.5,
                           skip_interval=3, period_s=0.033,
                           deadline_s=0.050),
                StreamSpec(name="b", model="goturn"),
            ),
        )
        assert ScenarioSpec.from_json(scenario.to_json()) == scenario

    def test_round_trip_preserves_defaults(self):
        scenario = spec()
        assert ScenarioSpec.from_dict(scenario.to_dict()) == scenario


class TestInstantiation:
    def test_frame_replication_and_chaining(self):
        plan = instantiate_frames(
            spec(frames=3), {"a": template(2, "a"), "b": template(1, "b")}
        )
        assert len(plan.tasks) == 3 * 2 + 3 * 1
        # Stream a's frames chain: first task of frame k depends on the
        # last task of frame k-1.
        a_tasks = [task for task in plan.tasks if task.stream == "a"]
        assert a_tasks[0].deps == ()
        assert a_tasks[2].deps == (a_tasks[1].uid,)
        assert [run.frame for run in plan.runs if run.stream == "a"] == [
            0, 1, 2,
        ]

    def test_skip_interval(self):
        scenario = spec(streams=(
            StreamSpec(name="a", model="alexnet", skip_interval=2),
            StreamSpec(name="b", model="goturn"),
        ), frames=4)
        plan = instantiate_frames(
            scenario, {"a": template(1, "a"), "b": template(1, "b")}
        )
        a_frames = [run.frame for run in plan.runs if run.stream == "a"]
        assert a_frames == [0, 2]
        assert plan.skipped["a"] == 2
        assert plan.skipped["b"] == 0

    def test_periodic_release(self):
        scenario = spec(streams=(
            StreamSpec(name="a", model="alexnet", period_s=0.5),
        ), frames=3)
        plan = instantiate_frames(scenario, {"a": template(1, "a")})
        assert [run.release_s for run in plan.runs] == [0.0, 0.5, 1.0]
        for run in plan.runs:
            task = plan.tasks[run.uids[0]]
            assert task.release_s == run.release_s

    def test_priority_becomes_weight(self):
        scenario = spec(streams=(
            StreamSpec(name="a", model="alexnet", priority=4.0),
        ), frames=1)
        plan = instantiate_frames(scenario, {"a": template(2, "a")})
        assert all(task.weight == 4.0 for task in plan.tasks)

    def test_missing_template_rejected(self):
        with pytest.raises(SchedulingError):
            instantiate_frames(spec(), {"a": template(1, "a")})

    def test_empty_template_rejected(self):
        with pytest.raises(SchedulingError):
            instantiate_frames(
                spec(), {"a": template(1, "a"), "b": []}
            )


class TestFrameLatencies:
    def test_deadline_miss_detection(self):
        # One stream, 6 ms of work per frame, released every 5 ms with a
        # 7 ms deadline: the queue grows 1 ms per frame, so frame 2 is
        # the first to miss.
        scenario = ScenarioSpec(
            name="late",
            frames=3,
            streams=(
                StreamSpec(name="a", model="alexnet", period_s=0.005,
                           deadline_s=0.007),
            ),
        )
        work = [
            OpTask(uid=0, name="a/op0", seconds=0.006, claims=SIMD,
                   stream="a")
        ]
        plan = instantiate_frames(scenario, {"a": work})
        timeline = TimelineScheduler().run(plan.tasks)
        latencies = plan.frame_latencies(timeline)["a"]
        misses = [miss for *_rest, miss in latencies]
        assert misses == [False, False, True]
        # Frame 2 releases at 10 ms, starts at 12 ms, ends at 18 ms.
        assert latencies[2][3] == pytest.approx(0.008)


class TestDeadlineEdgeCases:
    """Untested deadline-logic corners (zero-length frames, exact-deadline
    releases, skip x admission drops, empty scenarios)."""

    def _single_stream(self, seconds, *, frames=3, period=0.005,
                       deadline=0.005, qos=None, skip=1):
        scenario = ScenarioSpec(
            name="edge",
            frames=frames,
            qos=qos,
            streams=(
                StreamSpec(name="a", model="alexnet", period_s=period,
                           deadline_s=deadline, skip_interval=skip),
            ),
        )
        work = [
            OpTask(uid=0, name="a/op0", seconds=seconds, claims=SIMD,
                   stream="a")
        ]
        return scenario, instantiate_frames(scenario, {"a": work})

    def test_zero_length_frames_complete_instantly_and_never_miss(self):
        scenario, plan = self._single_stream(0.0)
        timeline = TimelineScheduler().run(plan.tasks)
        latencies = plan.frame_latencies(timeline)["a"]
        assert [latency for *_rest, latency, _miss in latencies] == [
            0.0, 0.0, 0.0,
        ]
        assert all(not miss for *_rest, miss in latencies)
        # Completions land exactly on the releases.
        assert [completion for _f, _r, completion, *_rest in latencies] == [
            0.0, 0.005, 0.010,
        ]

    def test_latency_exactly_at_deadline_is_not_a_miss(self):
        # Work exactly equals the deadline: latency == deadline_s must
        # count as on-time (the miss predicate is strict >). Powers of
        # two keep every sum exactly representable, so the equality is
        # genuinely exercised rather than dodged by FP noise.
        scenario, plan = self._single_stream(0.5, period=0.5, deadline=0.5)
        timeline = TimelineScheduler().run(plan.tasks)
        latencies = plan.frame_latencies(timeline)["a"]
        for *_rest, latency, miss in latencies:
            assert latency == 0.5
            assert not miss

    def test_latency_barely_over_deadline_misses(self):
        scenario, plan = self._single_stream(0.0051, period=0.0051,
                                             deadline=0.005)
        timeline = TimelineScheduler().run(plan.tasks)
        assert all(
            miss for *_rest, miss in plan.frame_latencies(timeline)["a"]
        )

    def test_skip_interval_interacts_with_admission_drops(self):
        from repro.serving.qos import QosSpec, make_qos

        # Every other frame skipped; the surviving frames are overloaded
        # (10 ms work offered every 2x2.5 ms) so drop_late sheds some.
        scenario, plan = self._single_stream(
            0.010, frames=8, period=0.0025, deadline=0.004,
            qos=QosSpec(kind="drop_late"), skip=2,
        )
        timeline = TimelineScheduler(
            scenario.policy, qos=make_qos(scenario.qos)
        ).run(plan.tasks)
        records = plan.frame_records(timeline)["a"]
        # Skipped frames never become records (not offered, not dropped).
        assert [record.frame for record in records] == [0, 2, 4, 6]
        assert plan.skipped["a"] == 4
        dropped = [record for record in records if record.dropped]
        completed = [record for record in records if not record.dropped]
        assert dropped and completed
        assert len(dropped) + len(completed) == 4
        # frame_latencies only reports completed frames.
        assert len(plan.frame_latencies(timeline)["a"]) == len(completed)

    def test_empty_scenario_is_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioSpec(name="empty", streams=())
        with pytest.raises(ConfigError):
            ScenarioSpec(name="empty", streams=(), frames=0)

    def test_zero_frames_rejected(self):
        with pytest.raises(ConfigError):
            spec(frames=0)

    def test_all_streams_replayed_empty_yields_empty_timeline(self):
        from repro.serving.traces import ArrivalSpec

        scenario = ScenarioSpec(
            name="empty-replay",
            frames=4,
            streams=(
                StreamSpec(
                    name="a", model="alexnet",
                    arrivals=ArrivalSpec(kind="replay", times_s=()),
                ),
            ),
        )
        plan = instantiate_frames(scenario, {"a": template(2, "a")})
        assert plan.tasks == ()
        assert plan.runs == ()
        timeline = TimelineScheduler().run(plan.tasks)
        assert timeline.makespan_s == 0.0
        assert plan.frame_latencies(timeline) == {}
