"""Golden identity: scheduled single-stream runs equal the legacy loop.

The refactor's contract is that ``Platform.run_model`` — now lowering into
the timeline scheduler — reproduces the historical sequential per-op sum
*bit-for-bit* for every registry platform x model pair.
"""

from dataclasses import replace

import pytest

from repro.api.registry import build_model, build_platform
from repro.gemm.cache import TimingCache
from repro.platforms.base import OpStats
from repro.schedule.resources import ResourceKind

PLATFORMS = ("gpu-simd", "gpu-tc", "sma:2", "sma:3", "tpu", "cpu")
MODELS = ("alexnet", "vgg_a", "googlenet", "mask_rcnn", "deeplab", "goturn")

#: One shared cache: identical GEMM shapes across the grid simulate once.
_CACHE = TimingCache()


def legacy_run_model(platform, graph) -> list[OpStats]:
    """The pre-refactor sequential loop, reproduced verbatim."""
    stats_list = []
    for node in graph.topological_order():
        stats = platform.run_op(node.op)
        overhead = platform.framework_overhead_s * node.op.kernel_launches
        stats_list.append(replace(stats, seconds=stats.seconds + overhead))
    if platform.name == "tpu":
        transfers = [
            OpStats(
                op_name=f"{stat.op_name}/transfer",
                group="Transfer",
                mode="transfer",
                seconds=platform.transfer_seconds(op),
                flops=0.0,
            )
            for stat, op in zip(
                stats_list, (node.op for node in graph.nodes)
            )
            if stat.mode == "host"
        ]
        stats_list.extend(transfers)
    return stats_list


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("platform_spec", PLATFORMS)
def test_scheduled_run_bit_identical(platform_spec, model):
    graph = build_model(model)
    # Fresh platform instances per path: the SMA mode tracker is stateful
    # across run_op calls, so both paths must start from the same state.
    legacy = legacy_run_model(
        build_platform(platform_spec, cache=_CACHE), graph
    )
    result = build_platform(platform_spec, cache=_CACHE).run_model(graph)

    assert len(result.op_stats) == len(legacy)
    for new, old in zip(result.op_stats, legacy):
        assert new.op_name == old.op_name
        assert new.mode == old.mode
        assert new.seconds == old.seconds  # bit-for-bit, not approx
    assert result.total_seconds == sum(stat.seconds for stat in legacy)


@pytest.mark.parametrize("platform_spec", PLATFORMS)
def test_single_stream_timeline_is_sequential(platform_spec):
    result = build_platform(platform_spec, cache=_CACHE).run_model(
        build_model("alexnet")
    )
    timeline = result.timeline
    assert timeline is not None
    # One stream => no contention: every segment runs unimpeded (stretch
    # 1.0 up to float association in end - start) and the makespan is the
    # plain sum of durations, bit-for-bit.
    for segment in timeline.segments:
        assert segment.stretch == pytest.approx(1.0)
    assert timeline.makespan_s == result.total_seconds
    assert timeline.mode_switches == 0


def test_tc_gemm_tasks_carry_derived_simd_claims():
    platform = build_platform("gpu-tc", cache=_CACHE)
    tasks = platform.lower_model(build_model("alexnet"))
    gemm_tasks = [task for task in tasks if task.mode == "tc"]
    assert gemm_tasks, "alexnet lowers conv layers to TC GEMM tasks"
    for task in gemm_tasks:
        claims = {claim.kind: claim.fraction for claim in task.claims}
        assert claims[ResourceKind.TC] == 1.0
        # The measured RF-port pressure: substantial but fractional.
        assert 0.3 <= claims[ResourceKind.SIMD] <= 1.0


def test_sma_systolic_tasks_alias_the_mac_substrate():
    platform = build_platform("sma:3", cache=_CACHE)
    tasks = platform.lower_model(build_model("alexnet"))
    systolic = [task for task in tasks if task.mode == "systolic"]
    assert systolic
    for task in systolic:
        kinds = {claim.kind for claim in task.claims}
        assert kinds == {ResourceKind.ARRAY, ResourceKind.SIMD}
        assert task.cross_switch_s > 0.0
