"""Golden parity: the vectorized engine must match the scalar reference.

The two cores in :mod:`repro.schedule.timeline` (scalar) and
:mod:`repro.schedule.vectorized` are pinned to identical arithmetic in
identical order, so every serving report must be *byte-identical*
between them — not merely close. These tests sweep randomized scenarios
across platforms, policies, QoS regimes, and arrival processes and
compare the full ``to_dict()`` JSON of both runs.
"""

import json
import random

import pytest

from repro.api import ScenarioSpec, Session, StreamSpec
from repro.errors import SchedulingError
from repro.schedule.timeline import (
    ENGINE_NAMES,
    TimelineScheduler,
    default_engine,
)
from repro.serving import ArrivalSpec

MODELS = ["deeplab:nocrf", "goturn", "orb_slam"]
POLICIES = ["fifo", "priority", "exclusive"]
QOS = [
    None,
    {"kind": "drop_late"},
    {"kind": "queue_cap", "cap": 2},
    {"kind": "shed", "cap": 3, "min_priority": 2},
]
PLATFORMS = ["gpu-tc", "sma", "sma@a100"]


def _random_scenario(trial: int) -> ScenarioSpec:
    """A deterministic scenario for ``trial`` covering the config space.

    Mixed arrival kinds (poisson / mmpp / fixed-period / closed-loop),
    1-3 streams of different models and priorities, every policy, every
    QoS regime, and optional framework overhead — the same generator
    family the differential fuzz oracle exercises, pinned here as a
    fast, always-on golden gate.
    """
    rng = random.Random(trial)
    streams = []
    for i in range(rng.randint(1, 3)):
        kind = rng.choice(["poisson", "fixed", "mmpp", "closed_loop"])
        if kind == "poisson":
            arr = ArrivalSpec(
                kind="poisson",
                rate_hz=rng.choice([30.0, 120.0]),
                seed=trial * 10 + i,
            )
        elif kind == "mmpp":
            arr = ArrivalSpec(
                kind="mmpp",
                rate_hz=60.0,
                burst_fraction=0.3,
                dwell=4,
                seed=trial * 10 + i,
            )
        elif kind == "closed_loop":
            arr = ArrivalSpec(
                kind="closed_loop", think_s=rng.choice([0.0, 0.004])
            )
        else:
            arr = None
        streams.append(
            StreamSpec(
                name=f"s{i}",
                model=rng.choice(MODELS),
                priority=rng.randint(1, 3),
                skip_interval=rng.choice([1, 1, 2]),
                period_s=None if arr is not None else 1 / 60.0,
                deadline_s=rng.choice([None, 0.05, 0.2]),
                arrivals=arr,
            )
        )
    return ScenarioSpec(
        name=f"parity-{trial}",
        streams=tuple(streams),
        platform=rng.choice(PLATFORMS),
        frames=rng.randint(1, 12),
        policy=rng.choice(POLICIES),
        framework_overhead_s=rng.choice([0.0, 50e-6]),
        qos=rng.choice(QOS),
    )


class TestEngineParity:
    @pytest.mark.parametrize("trial", range(24))
    def test_serving_report_byte_identical(self, trial):
        session = Session()
        scenario = _random_scenario(trial)
        scalar = session.run_serving(scenario, engine="scalar").to_dict()
        vectorized = session.run_serving(
            scenario, engine="vectorized"
        ).to_dict()
        assert json.dumps(scalar, sort_keys=True) == json.dumps(
            vectorized, sort_keys=True
        ), f"engines diverged on scenario {scenario.name!r}"

    def test_schedule_report_byte_identical(self):
        session = Session()
        scenario = _random_scenario(7)
        scalar = session.run_scenario(scenario, engine="scalar")
        vectorized = session.run_scenario(scenario, engine="vectorized")
        assert scalar.to_dict() == vectorized.to_dict()


class TestEngineSelection:
    def test_engine_names(self):
        assert ENGINE_NAMES == ("scalar", "vectorized")

    def test_default_engine_is_scalar(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert default_engine() == "scalar"
        assert TimelineScheduler().engine == "scalar"

    def test_env_var_selects_vectorized(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "vectorized")
        assert default_engine() == "vectorized"
        assert TimelineScheduler().engine == "vectorized"

    def test_explicit_engine_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "vectorized")
        assert TimelineScheduler(engine="scalar").engine == "scalar"

    def test_unknown_engine_rejected(self):
        with pytest.raises(SchedulingError, match="unknown timeline engine"):
            TimelineScheduler(engine="simd")

    def test_unknown_env_engine_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "warp")
        with pytest.raises(SchedulingError):
            TimelineScheduler()
