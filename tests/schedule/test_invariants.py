"""Property-based invariants of the timeline engine (hypothesis).

The invariant assertions themselves live in :mod:`repro.fuzz.oracles` —
the same oracle pack the fuzz campaign runner evaluates — so a property
hypothesis checks here is bit-for-bit the property ``repro fuzz run``
checks at fleet scale. This suite's job is the *generation* side:
hypothesis-driven task sets exploring shapes the seeded generators
don't, plus the bit-identical-seed report contract.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.results import ScheduleReport, ServingReport
from repro.fuzz.oracles import (
    assert_capacity,
    assert_conservation,
    assert_frame_atomicity,
    assert_monotone_events,
    assert_priority_order,
    assert_reports_agree,
    assert_serving_consistency,
)
from repro.schedule.policies import POLICY_NAMES
from repro.schedule.resources import ResourceClaim, ResourceKind
from repro.schedule.streams import ScenarioSpec, StreamSpec, instantiate_frames
from repro.schedule.timeline import OpTask, TimelineScheduler
from repro.serving.qos import QosSpec, make_qos
from repro.serving.traces import ArrivalSpec

#: Claim shapes drawn per task: full SIMD, the SMA MAC aliasing pair, a
#: TC kernel with fractional SIMD pressure, and a transfer.
CLAIM_CHOICES = (
    (ResourceClaim(ResourceKind.SIMD),),
    (ResourceClaim(ResourceKind.ARRAY), ResourceClaim(ResourceKind.SIMD)),
    (ResourceClaim(ResourceKind.TC), ResourceClaim(ResourceKind.SIMD, 0.4)),
    (ResourceClaim(ResourceKind.TRANSFER),),
)

_SECONDS = st.floats(
    min_value=0.0, max_value=2.0, allow_nan=False, allow_infinity=False
)
_RELEASE = st.floats(
    min_value=0.0, max_value=5.0, allow_nan=False, allow_infinity=False
)


@st.composite
def task_sets(draw):
    """Frame-chained multi-stream task sets (the shape platforms emit)."""
    tasks = []
    uid = 0
    stream_count = draw(st.integers(min_value=1, max_value=3))
    for stream_index in range(stream_count):
        stream = f"s{stream_index}"
        weight = draw(
            st.floats(min_value=0.5, max_value=4.0, allow_nan=False)
        )
        deadline = draw(
            st.one_of(
                st.none(),
                st.floats(min_value=0.1, max_value=4.0, allow_nan=False),
            )
        )
        previous_last = None
        for frame in range(draw(st.integers(min_value=1, max_value=3))):
            release = draw(_RELEASE)
            chain = draw(st.integers(min_value=1, max_value=3))
            for position in range(chain):
                if position == 0:
                    deps = () if previous_last is None else (previous_last,)
                else:
                    deps = (uid - 1,)
                tasks.append(
                    OpTask(
                        uid=uid,
                        name=f"{stream}/f{frame}/op{position}",
                        seconds=draw(_SECONDS),
                        claims=draw(st.sampled_from(CLAIM_CHOICES)),
                        stream=stream,
                        frame=frame,
                        deps=deps,
                        release_s=release,
                        weight=weight,
                        deadline_s=deadline,
                        frame_head=position == 0,
                    )
                )
                uid += 1
            previous_last = uid - 1
    return tasks


QOS_CHOICES = (
    None,
    QosSpec(kind="drop_late"),
    QosSpec(kind="queue_cap", cap=1),
    QosSpec(kind="shed", cap=2),
)


@given(tasks=task_sets(), policy=st.sampled_from(POLICY_NAMES),
       qos=st.sampled_from(QOS_CHOICES))
@settings(max_examples=60, deadline=None)
def test_no_resource_oversubscribed(tasks, policy, qos):
    """Per resource: executed claim-seconds never exceed the makespan."""
    timeline = TimelineScheduler(policy, qos=make_qos(qos)).run(tasks)
    assert_capacity(tasks, timeline)


@given(tasks=task_sets())
@settings(max_examples=40, deadline=None)
def test_per_stream_busy_time_conserved_across_policies(tasks):
    """Without drops, every policy executes exactly the lowered work."""
    expected: dict = {}
    for task in tasks:
        expected[task.stream] = expected.get(task.stream, 0.0) + task.seconds
    for policy in POLICY_NAMES:
        timeline = TimelineScheduler(policy).run(tasks)
        assert_conservation(tasks, timeline)
        busy: dict = {}
        for segment in timeline.segments:
            busy[segment.stream] = (
                busy.get(segment.stream, 0.0) + segment.seconds
            )
        for stream, seconds in expected.items():
            assert busy.get(stream, 0.0) == seconds  # bit-for-bit


@given(tasks=task_sets(), policy=st.sampled_from(POLICY_NAMES),
       qos=st.sampled_from(QOS_CHOICES))
@settings(max_examples=60, deadline=None)
def test_event_times_monotone(tasks, policy, qos):
    timeline = TimelineScheduler(policy, qos=make_qos(qos)).run(tasks)
    assert_monotone_events(tasks, timeline)


@given(tasks=task_sets(), policy=st.sampled_from(POLICY_NAMES),
       qos=st.sampled_from(QOS_CHOICES))
@settings(max_examples=40, deadline=None)
def test_every_task_completes_or_drops_exactly_once(tasks, policy, qos):
    timeline = TimelineScheduler(policy, qos=make_qos(qos)).run(tasks)
    assert_conservation(tasks, timeline)
    assert_frame_atomicity(tasks, timeline)


@given(tasks=task_sets(), qos=st.sampled_from(QOS_CHOICES))
@settings(max_examples=40, deadline=None)
def test_exclusive_dispatch_never_inverts_priority(tasks, qos):
    """The exclusive gate always picks a heaviest ready waiter."""
    timeline = TimelineScheduler("exclusive", qos=make_qos(qos)).run(tasks)
    assert_priority_order(tasks, timeline, "exclusive")


@given(tasks=task_sets(), policy=st.sampled_from(POLICY_NAMES),
       qos=st.sampled_from(QOS_CHOICES))
@settings(max_examples=30, deadline=None)
def test_engine_is_deterministic(tasks, policy, qos):
    first = TimelineScheduler(policy, qos=make_qos(qos)).run(tasks)
    second = TimelineScheduler(policy, qos=make_qos(qos)).run(tasks)
    assert first.segments == second.segments
    assert first.drops == second.drops
    assert first.makespan_s == second.makespan_s
    assert first.busy_s == second.busy_s


@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       rate=st.floats(min_value=0.5, max_value=50.0, allow_nan=False),
       policy=st.sampled_from(POLICY_NAMES),
       qos=st.sampled_from(QOS_CHOICES))
@settings(max_examples=25, deadline=None)
def test_identical_seeds_give_bit_identical_reports(seed, rate, policy, qos):
    """Same arrival seed => byte-identical Schedule/Serving reports."""
    spec = ScenarioSpec(
        name="seeded",
        frames=4,
        policy=policy,
        qos=qos,
        streams=(
            StreamSpec(
                name="a",
                model="m",
                priority=2.0,
                deadline_s=0.8,
                arrivals=ArrivalSpec(kind="poisson", rate_hz=rate, seed=seed),
            ),
            StreamSpec(
                name="b",
                model="m",
                arrivals=ArrivalSpec(kind="mmpp", rate_hz=rate, seed=seed),
            ),
        ),
    )
    template = [
        OpTask(
            uid=index,
            name=f"op{index}",
            seconds=0.2,
            claims=CLAIM_CHOICES[index % len(CLAIM_CHOICES)],
            deps=(index - 1,) if index else (),
        )
        for index in range(3)
    ]

    def reports():
        plan = instantiate_frames(spec, {"a": template, "b": template})
        timeline = TimelineScheduler(
            spec.policy, qos=make_qos(spec.qos)
        ).run(plan.tasks)
        return (
            ScheduleReport.from_timeline(spec, "synthetic", timeline, plan),
            ServingReport.from_timeline(spec, "synthetic", timeline, plan),
        )

    schedule_a, serving_a = reports()
    schedule_b, serving_b = reports()
    assert schedule_a.to_json() == schedule_b.to_json()
    assert serving_a.to_json() == serving_b.to_json()
    assert_serving_consistency(serving_a)
    assert_reports_agree(schedule_a, serving_a)
