"""Property-based invariants of the timeline engine (hypothesis).

The weighted processor-sharing engine must hold these for *any* task set
and policy, with or without admission control:

* capacity conservation — no resource serves more than one second of
  work per second of makespan;
* work conservation — per-stream executed full-speed seconds equal the
  sum of the stream's (non-dropped) task durations under every policy;
* monotone event times — segments are completion-ordered, every segment
  starts at or after its release and ends at or after its start;
* determinism — identical inputs (and identical arrival seeds) produce
  bit-identical timelines and ScheduleReports.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.results import ScheduleReport, ServingReport
from repro.schedule.policies import POLICY_NAMES
from repro.schedule.resources import ResourceClaim, ResourceKind
from repro.schedule.streams import ScenarioSpec, StreamSpec, instantiate_frames
from repro.schedule.timeline import OpTask, TimelineScheduler
from repro.serving.qos import QosSpec, make_qos
from repro.serving.traces import ArrivalSpec

#: Claim shapes drawn per task: full SIMD, the SMA MAC aliasing pair, a
#: TC kernel with fractional SIMD pressure, and a transfer.
CLAIM_CHOICES = (
    (ResourceClaim(ResourceKind.SIMD),),
    (ResourceClaim(ResourceKind.ARRAY), ResourceClaim(ResourceKind.SIMD)),
    (ResourceClaim(ResourceKind.TC), ResourceClaim(ResourceKind.SIMD, 0.4)),
    (ResourceClaim(ResourceKind.TRANSFER),),
)

_SECONDS = st.floats(
    min_value=0.0, max_value=2.0, allow_nan=False, allow_infinity=False
)
_RELEASE = st.floats(
    min_value=0.0, max_value=5.0, allow_nan=False, allow_infinity=False
)


@st.composite
def task_sets(draw):
    """Frame-chained multi-stream task sets (the shape platforms emit)."""
    tasks = []
    uid = 0
    stream_count = draw(st.integers(min_value=1, max_value=3))
    for stream_index in range(stream_count):
        stream = f"s{stream_index}"
        weight = draw(
            st.floats(min_value=0.5, max_value=4.0, allow_nan=False)
        )
        deadline = draw(
            st.one_of(
                st.none(),
                st.floats(min_value=0.1, max_value=4.0, allow_nan=False),
            )
        )
        previous_last = None
        for frame in range(draw(st.integers(min_value=1, max_value=3))):
            release = draw(_RELEASE)
            chain = draw(st.integers(min_value=1, max_value=3))
            for position in range(chain):
                if position == 0:
                    deps = () if previous_last is None else (previous_last,)
                else:
                    deps = (uid - 1,)
                tasks.append(
                    OpTask(
                        uid=uid,
                        name=f"{stream}/f{frame}/op{position}",
                        seconds=draw(_SECONDS),
                        claims=draw(st.sampled_from(CLAIM_CHOICES)),
                        stream=stream,
                        frame=frame,
                        deps=deps,
                        release_s=release,
                        weight=weight,
                        deadline_s=deadline,
                        frame_head=position == 0,
                    )
                )
                uid += 1
            previous_last = uid - 1
    return tasks


QOS_CHOICES = (
    None,
    QosSpec(kind="drop_late"),
    QosSpec(kind="queue_cap", cap=1),
    QosSpec(kind="shed", cap=2),
)


@given(tasks=task_sets(), policy=st.sampled_from(POLICY_NAMES),
       qos=st.sampled_from(QOS_CHOICES))
@settings(max_examples=60, deadline=None)
def test_no_resource_oversubscribed(tasks, policy, qos):
    """Per resource: executed claim-seconds never exceed the makespan."""
    timeline = TimelineScheduler(policy, qos=make_qos(qos)).run(tasks)
    executed = {task.uid: task for task in tasks}
    service: dict = {}
    for segment in timeline.segments:
        for claim in executed[segment.uid].claims:
            service[claim.kind] = (
                service.get(claim.kind, 0.0) + claim.fraction * segment.seconds
            )
    for kind, total in service.items():
        assert total <= timeline.makespan_s * (1 + 1e-9) + 1e-12, (
            f"{kind} oversubscribed: {total} claim-seconds in"
            f" {timeline.makespan_s}s"
        )


@given(tasks=task_sets())
@settings(max_examples=40, deadline=None)
def test_per_stream_busy_time_conserved_across_policies(tasks):
    """Without drops, every policy executes exactly the lowered work."""
    expected: dict = {}
    for task in tasks:
        expected[task.stream] = expected.get(task.stream, 0.0) + task.seconds
    for policy in POLICY_NAMES:
        timeline = TimelineScheduler(policy).run(tasks)
        busy: dict = {}
        for segment in timeline.segments:
            busy[segment.stream] = (
                busy.get(segment.stream, 0.0) + segment.seconds
            )
        for stream, seconds in expected.items():
            assert busy.get(stream, 0.0) == seconds  # bit-for-bit


@given(tasks=task_sets(), policy=st.sampled_from(POLICY_NAMES),
       qos=st.sampled_from(QOS_CHOICES))
@settings(max_examples=60, deadline=None)
def test_event_times_monotone(tasks, policy, qos):
    timeline = TimelineScheduler(policy, qos=make_qos(qos)).run(tasks)
    released = {task.uid: task.release_s for task in tasks}
    previous_end = 0.0
    for segment in timeline.segments:
        assert segment.end_s >= previous_end  # completion-ordered
        assert segment.start_s >= released[segment.uid]
        assert segment.end_s >= segment.start_s
        # The engine forgives FP dust (1e-12 relative + 1e-18 absolute)
        # when completing tasks; mirror that allowance here.
        assert segment.elapsed_s >= segment.seconds * (1 - 1e-9) - 1e-9
        previous_end = segment.end_s
    assert timeline.makespan_s >= previous_end
    for record in timeline.drops:
        assert record.time_s >= released[record.uid]


@given(tasks=task_sets(), policy=st.sampled_from(POLICY_NAMES),
       qos=st.sampled_from(QOS_CHOICES))
@settings(max_examples=40, deadline=None)
def test_every_task_completes_or_drops_exactly_once(tasks, policy, qos):
    timeline = TimelineScheduler(policy, qos=make_qos(qos)).run(tasks)
    completed = {segment.uid for segment in timeline.segments}
    dropped = {record.uid for record in timeline.drops}
    assert completed.isdisjoint(dropped)
    assert len(timeline.segments) == len(completed)
    assert len(timeline.drops) == len(dropped)
    assert completed | dropped == {task.uid for task in tasks}
    # Drops cancel whole frames: a frame never half-runs.
    frames = {}
    for task in tasks:
        frames.setdefault((task.stream, task.frame), set()).add(task.uid)
    for uids in frames.values():
        assert uids <= completed or uids <= dropped


@given(tasks=task_sets(), policy=st.sampled_from(POLICY_NAMES),
       qos=st.sampled_from(QOS_CHOICES))
@settings(max_examples=30, deadline=None)
def test_engine_is_deterministic(tasks, policy, qos):
    first = TimelineScheduler(policy, qos=make_qos(qos)).run(tasks)
    second = TimelineScheduler(policy, qos=make_qos(qos)).run(tasks)
    assert first.segments == second.segments
    assert first.drops == second.drops
    assert first.makespan_s == second.makespan_s
    assert first.busy_s == second.busy_s


@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       rate=st.floats(min_value=0.5, max_value=50.0, allow_nan=False),
       policy=st.sampled_from(POLICY_NAMES),
       qos=st.sampled_from(QOS_CHOICES))
@settings(max_examples=25, deadline=None)
def test_identical_seeds_give_bit_identical_reports(seed, rate, policy, qos):
    """Same arrival seed => byte-identical Schedule/Serving reports."""
    spec = ScenarioSpec(
        name="seeded",
        frames=4,
        policy=policy,
        qos=qos,
        streams=(
            StreamSpec(
                name="a",
                model="m",
                priority=2.0,
                deadline_s=0.8,
                arrivals=ArrivalSpec(kind="poisson", rate_hz=rate, seed=seed),
            ),
            StreamSpec(
                name="b",
                model="m",
                arrivals=ArrivalSpec(kind="mmpp", rate_hz=rate, seed=seed),
            ),
        ),
    )
    template = [
        OpTask(
            uid=index,
            name=f"op{index}",
            seconds=0.2,
            claims=CLAIM_CHOICES[index % len(CLAIM_CHOICES)],
            deps=(index - 1,) if index else (),
        )
        for index in range(3)
    ]

    def reports():
        plan = instantiate_frames(spec, {"a": template, "b": template})
        timeline = TimelineScheduler(
            spec.policy, qos=make_qos(spec.qos)
        ).run(plan.tasks)
        return (
            ScheduleReport.from_timeline(spec, "synthetic", timeline, plan),
            ServingReport.from_timeline(spec, "synthetic", timeline, plan),
        )

    schedule_a, serving_a = reports()
    schedule_b, serving_b = reports()
    assert schedule_a.to_json() == schedule_b.to_json()
    assert serving_a.to_json() == serving_b.to_json()
