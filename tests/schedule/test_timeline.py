"""Timeline engine unit tests: sharing math, ordering, determinism."""

import pytest

from repro.errors import SchedulingError
from repro.schedule.policies import make_policy
from repro.schedule.resources import ResourceClaim, ResourceKind
from repro.schedule.timeline import OpTask, TimelineScheduler

SIMD = (ResourceClaim(ResourceKind.SIMD),)
ARRAY_AND_SIMD = (
    ResourceClaim(ResourceKind.ARRAY),
    ResourceClaim(ResourceKind.SIMD),
)


def chain(durations, claims=SIMD, stream="main", **kwargs):
    return [
        OpTask(
            uid=index,
            name=f"op{index}",
            seconds=duration,
            claims=claims,
            stream=stream,
            deps=(index - 1,) if index else (),
            **kwargs,
        )
        for index, duration in enumerate(durations)
    ]


class TestSingleStream:
    def test_chain_makespan_is_exact_sum(self):
        durations = [0.1, 0.23456, 1e-6, 3.14]
        timeline = TimelineScheduler().run(chain(durations))
        total = 0.0
        for duration in durations:
            total += duration
        assert timeline.makespan_s == total  # bit-for-bit, not approx

    def test_segments_in_chain_order(self):
        timeline = TimelineScheduler().run(chain([1.0, 2.0, 3.0]))
        assert [segment.name for segment in timeline.segments] == [
            "op0", "op1", "op2",
        ]
        assert [segment.stretch for segment in timeline.segments] == [
            1.0, 1.0, 1.0,
        ]

    def test_empty_schedule(self):
        timeline = TimelineScheduler().run([])
        assert timeline.makespan_s == 0.0
        assert timeline.segments == ()

    def test_zero_length_task(self):
        timeline = TimelineScheduler().run(chain([0.0, 1.0]))
        assert timeline.makespan_s == 1.0


class TestProcessorSharing:
    def test_two_full_claimants_time_multiplex(self):
        tasks = [
            OpTask(uid=0, name="a", seconds=1.0, claims=SIMD, stream="s0"),
            OpTask(uid=1, name="b", seconds=1.0, claims=SIMD, stream="s1"),
        ]
        timeline = TimelineScheduler().run(tasks)
        # Work conserving: both finish at the sum of the work.
        assert timeline.makespan_s == pytest.approx(2.0)
        for segment in timeline.segments:
            assert segment.stretch == pytest.approx(2.0)

    def test_unequal_lengths_release_capacity(self):
        tasks = [
            OpTask(uid=0, name="short", seconds=1.0, claims=SIMD, stream="s0"),
            OpTask(uid=1, name="long", seconds=3.0, claims=SIMD, stream="s1"),
        ]
        timeline = TimelineScheduler().run(tasks)
        ends = {segment.name: segment.end_s for segment in timeline.segments}
        assert ends["short"] == pytest.approx(2.0)  # 1.0 work at half speed
        assert ends["long"] == pytest.approx(4.0)   # remainder at full speed

    def test_ancillary_fraction_stretches_full_claimant(self):
        # A TC GEMM with a 0.7 SIMD-side claim co-runs with a SIMD kernel:
        # the SIMD kernel sees load 1.7 and both stretch by 1.7 (the
        # derived co-run contention).
        tc = OpTask(
            uid=0,
            name="tc_gemm",
            seconds=1.0,
            claims=(
                ResourceClaim(ResourceKind.TC),
                ResourceClaim(ResourceKind.SIMD, 0.7),
            ),
            mode="tc",
            stream="tc",
        )
        simd = OpTask(
            uid=1, name="kernel", seconds=1.0, claims=SIMD, stream="simd"
        )
        timeline = TimelineScheduler().run([tc, simd])
        by_name = {segment.name: segment for segment in timeline.segments}
        assert by_name["kernel"].end_s == pytest.approx(1.7)
        assert by_name["tc_gemm"].end_s == pytest.approx(1.7)

    def test_disjoint_resources_run_concurrently(self):
        tasks = [
            OpTask(uid=0, name="host", seconds=2.0, stream="a",
                   claims=(ResourceClaim(ResourceKind.HOST),), mode="host"),
            OpTask(uid=1, name="simd", seconds=2.0, stream="b", claims=SIMD),
        ]
        timeline = TimelineScheduler().run(tasks)
        assert timeline.makespan_s == pytest.approx(2.0)

    def test_systolic_aliases_the_simd_substrate(self):
        # Temporal integration: a systolic task owns ARRAY and SIMD, so a
        # SIMD co-runner multiplexes with it instead of running beside it.
        tasks = [
            OpTask(uid=0, name="systolic", seconds=1.0, stream="a",
                   claims=ARRAY_AND_SIMD, mode="systolic"),
            OpTask(uid=1, name="simd", seconds=1.0, stream="b", claims=SIMD),
        ]
        timeline = TimelineScheduler().run(tasks)
        assert timeline.makespan_s == pytest.approx(2.0)

    def test_occupancy_accounting(self):
        tasks = [
            OpTask(uid=0, name="host", seconds=1.0, stream="a",
                   claims=(ResourceClaim(ResourceKind.HOST),), mode="host"),
            OpTask(uid=1, name="simd", seconds=4.0, stream="b", claims=SIMD),
        ]
        timeline = TimelineScheduler().run(tasks)
        occupancy = timeline.occupancy()
        assert occupancy["simd"] == pytest.approx(1.0)
        assert occupancy["host"] == pytest.approx(0.25)


class TestReleasesAndDeps:
    def test_release_delays_start(self):
        task = OpTask(
            uid=0, name="late", seconds=1.0, claims=SIMD, release_s=5.0
        )
        timeline = TimelineScheduler().run([task])
        assert timeline.segments[0].start_s == pytest.approx(5.0)
        assert timeline.makespan_s == pytest.approx(6.0)

    def test_dependency_across_streams(self):
        tasks = [
            OpTask(uid=0, name="a", seconds=1.0, claims=SIMD, stream="s0"),
            OpTask(uid=1, name="b", seconds=1.0, claims=SIMD, stream="s1",
                   deps=(0,)),
        ]
        timeline = TimelineScheduler().run(tasks)
        assert timeline.makespan_s == pytest.approx(2.0)
        assert timeline.segments[1].start_s == pytest.approx(1.0)

    def test_unknown_dep_rejected(self):
        task = OpTask(uid=0, name="a", seconds=1.0, claims=SIMD, deps=(99,))
        with pytest.raises(SchedulingError):
            TimelineScheduler().run([task])

    def test_duplicate_uids_rejected(self):
        tasks = [
            OpTask(uid=0, name="a", seconds=1.0, claims=SIMD),
            OpTask(uid=0, name="b", seconds=1.0, claims=SIMD),
        ]
        with pytest.raises(SchedulingError):
            TimelineScheduler().run(tasks)


class TestWeightedSharing:
    def test_priority_shares_are_proportional(self):
        tasks = [
            OpTask(uid=0, name="high", seconds=1.0, claims=SIMD,
                   stream="hi", weight=3.0),
            OpTask(uid=1, name="low", seconds=1.0, claims=SIMD,
                   stream="lo", weight=1.0),
        ]
        timeline = TimelineScheduler("priority").run(tasks)
        by_name = {segment.name: segment for segment in timeline.segments}
        # load = 4; high runs at 3/4 speed -> done at 4/3.
        assert by_name["high"].end_s == pytest.approx(4.0 / 3.0)
        assert by_name["low"].end_s == pytest.approx(2.0)

    def test_fifo_ignores_weights(self):
        tasks = [
            OpTask(uid=0, name="high", seconds=1.0, claims=SIMD,
                   stream="hi", weight=3.0),
            OpTask(uid=1, name="low", seconds=1.0, claims=SIMD,
                   stream="lo", weight=1.0),
        ]
        timeline = TimelineScheduler("fifo").run(tasks)
        for segment in timeline.segments:
            assert segment.end_s == pytest.approx(2.0)

    def test_exclusive_serializes_by_priority(self):
        tasks = [
            OpTask(uid=0, name="low", seconds=1.0, claims=SIMD,
                   stream="lo", weight=1.0),
            OpTask(uid=1, name="high", seconds=1.0, claims=SIMD,
                   stream="hi", weight=2.0),
        ]
        timeline = TimelineScheduler("exclusive").run(tasks)
        assert [segment.name for segment in timeline.segments] == [
            "high", "low",
        ]
        for segment in timeline.segments:
            assert segment.stretch == pytest.approx(1.0)

    def test_unknown_policy(self):
        with pytest.raises(SchedulingError):
            make_policy("banana")


class TestModeSwitches:
    def test_cross_stream_switch_charged(self):
        tasks = [
            OpTask(uid=0, name="sys", seconds=1.0, stream="a",
                   claims=ARRAY_AND_SIMD, mode="systolic",
                   cross_switch_s=0.25),
            OpTask(uid=1, name="simd", seconds=1.0, stream="b",
                   claims=SIMD, mode="simd", deps=(0,),
                   cross_switch_s=0.25),
        ]
        timeline = TimelineScheduler().run(tasks)
        assert timeline.mode_switches == 1
        assert timeline.switch_overhead_s == pytest.approx(0.25)
        assert timeline.makespan_s == pytest.approx(2.25)

    def test_same_stream_switch_not_charged(self):
        # Intra-stream switches are priced during lowering, not here.
        tasks = [
            OpTask(uid=0, name="sys", seconds=1.0, stream="a",
                   claims=ARRAY_AND_SIMD, mode="systolic",
                   cross_switch_s=0.25),
            OpTask(uid=1, name="simd", seconds=1.0, stream="a",
                   claims=SIMD, mode="simd", deps=(0,),
                   cross_switch_s=0.25),
        ]
        timeline = TimelineScheduler().run(tasks)
        assert timeline.mode_switches == 0
        assert timeline.makespan_s == pytest.approx(2.0)

    def test_same_mode_cross_stream_not_charged(self):
        tasks = [
            OpTask(uid=0, name="a", seconds=1.0, stream="a",
                   claims=SIMD, mode="simd", cross_switch_s=0.25),
            OpTask(uid=1, name="b", seconds=1.0, stream="b",
                   claims=SIMD, mode="simd", deps=(0,),
                   cross_switch_s=0.25),
        ]
        timeline = TimelineScheduler().run(tasks)
        assert timeline.mode_switches == 0


class TestValidation:
    def test_negative_duration_rejected(self):
        with pytest.raises(SchedulingError):
            OpTask(uid=0, name="bad", seconds=-1.0, claims=SIMD)

    def test_empty_claims_rejected(self):
        with pytest.raises(SchedulingError):
            OpTask(uid=0, name="bad", seconds=1.0, claims=())

    def test_bad_claim_fraction(self):
        with pytest.raises(SchedulingError):
            ResourceClaim(ResourceKind.SIMD, 0.0)
        with pytest.raises(SchedulingError):
            ResourceClaim(ResourceKind.SIMD, 1.5)

    def test_determinism(self):
        tasks = [
            OpTask(uid=index, name=f"t{index}", seconds=0.1 * (index + 1),
                   claims=SIMD, stream=f"s{index % 3}")
            for index in range(12)
        ]
        first = TimelineScheduler().run(tasks)
        second = TimelineScheduler().run(tasks)
        assert first.makespan_s == second.makespan_s
        assert first.segments == second.segments
