"""TPU weight-stationary array timing tests (Fig 1 TPU curve)."""

import pytest

from repro.config import TpuConfig
from repro.errors import SimulationError
from repro.tpu.array_timing import time_tpu_gemm


class TestTpuGemmTiming:
    def test_single_tile_efficiency_one_quarter(self):
        # 128^3 on a 128x128 array: 128 streamed rows vs 256 fill/drain
        # cycles plus the exposed initial weight load (128 more).
        timing = time_tpu_gemm(128, 128, 128)
        assert timing.weight_tiles == 1
        assert timing.efficiency == pytest.approx(0.25, abs=0.03)

    def test_large_matrix_near_peak(self):
        timing = time_tpu_gemm(16384, 16384, 16384)
        assert timing.efficiency >= 0.95

    def test_monotone_ramp(self):
        effs = [
            time_tpu_gemm(n, n, n).efficiency
            for n in (128, 256, 512, 1024, 4096, 16384)
        ]
        assert all(a <= b for a, b in zip(effs, effs[1:]))

    def test_weight_tile_count(self):
        timing = time_tpu_gemm(1000, 256, 384)
        assert timing.weight_tiles == 2 * 3

    def test_small_array_config(self):
        small = TpuConfig(array_rows=8, array_cols=8)
        timing = time_tpu_gemm(64, 8, 8, small)
        assert timing.weight_tiles == 1
        assert timing.cycles == pytest.approx(64 + 16 + 8)

    def test_cycles_scale_with_m(self):
        short = time_tpu_gemm(256, 128, 128)
        tall = time_tpu_gemm(512, 128, 128)
        assert tall.cycles > short.cycles

    def test_invalid_dims(self):
        with pytest.raises(SimulationError):
            time_tpu_gemm(0, 1, 1)

    def test_macs(self):
        assert time_tpu_gemm(2, 3, 4).macs == 24
