"""XLA-style lowering tests (SS II-B conversions)."""

import pytest

from repro.errors import LoweringError
from repro.tpu.lowering import (
    lower_argmax,
    lower_nms_to_gemm,
    lower_roialign_to_pooling,
)


class TestNmsLowering:
    def test_emits_iou_plus_suppression(self):
        ops = lower_nms_to_gemm(256)
        kinds = [op.description for op in ops]
        assert any("overlap" in d for d in kinds)
        assert any("suppression" in d for d in kinds)

    def test_work_inflation(self):
        """Dataflow NMS does orders of magnitude more MACs than needed."""
        ops = lower_nms_to_gemm(1000)
        total_macs = sum(op.macs for op in ops)
        direct_work = 1000 * 1000 * 12  # pairwise IoU on a GPU
        assert total_macs > 100 * direct_work

    def test_op_count_scales_with_boxes(self):
        assert len(lower_nms_to_gemm(1000)) > len(lower_nms_to_gemm(100))

    def test_explicit_iterations(self):
        ops = lower_nms_to_gemm(128, iterations=2)
        suppression = [op for op in ops if "suppression" in op.description]
        assert len(suppression) == 2  # 2 passes x 1 block

    def test_rejects_empty(self):
        with pytest.raises(LoweringError):
            lower_nms_to_gemm(0)


class TestRoiAlignLowering:
    def test_one_pool_per_block_and_point(self):
        ops = lower_roialign_to_pooling(64, sampling_points=4)
        assert len(ops) == 4 * 4  # 4 blocks of 16 RoIs x 4 points
        assert all(op.kind == "pool" for op in ops)

    def test_partial_block(self):
        ops = lower_roialign_to_pooling(17, sampling_points=1)
        assert len(ops) == 2
        assert ops[-1].m < ops[0].m

    def test_rejects_empty(self):
        with pytest.raises(LoweringError):
            lower_roialign_to_pooling(0)


class TestArgmaxLowering:
    def test_tournament_op_count(self):
        # 21 classes: 10+5+3+1+1 pairs, 3 ops per pair (pre/max/post).
        ops = lower_argmax(64, 64, 21)
        pair_ops = [op for op in ops if "pair" in op.description and "reshape" not in op.description]
        assert len(ops) == 3 * len(pair_ops)

    def test_two_classes_single_level(self):
        ops = lower_argmax(8, 8, 2)
        assert len(ops) == 3

    def test_spatial_extent_in_m(self):
        ops = lower_argmax(100, 50, 4)
        assert all(op.m == 5000 for op in ops)

    def test_rejects_single_class(self):
        with pytest.raises(LoweringError):
            lower_argmax(8, 8, 1)
