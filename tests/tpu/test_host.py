"""Host CPU and transfer model tests."""

import pytest

from repro.config import CpuConfig, TpuConfig
from repro.errors import SimulationError
from repro.tpu.host import HostCpuModel, HostTransferModel


class TestTransferModel:
    def test_latency_floor(self):
        link = HostTransferModel(latency_s=20e-6)
        assert link.transfer(0).seconds == pytest.approx(20e-6)

    def test_bandwidth_term(self):
        link = HostTransferModel(
            TpuConfig(host_transfer_gbps=1.0), latency_s=0.0
        )
        assert link.transfer(1e9).seconds == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            HostTransferModel().transfer(-1)


class TestHostCpuModel:
    def test_compute_bound(self):
        host = HostCpuModel(CpuConfig())
        flops = 1e9
        seconds = host.op_seconds(flops, bytes_touched=0)
        expected = flops / (CpuConfig().sustained_gflops * 1e9)
        assert seconds == pytest.approx(expected)

    def test_memory_bound(self):
        config = CpuConfig()
        host = HostCpuModel(config)
        seconds = host.op_seconds(1.0, bytes_touched=20e9)
        assert seconds == pytest.approx(1.0)

    def test_serial_fraction_slows(self):
        host = HostCpuModel()
        fast = host.op_seconds(1e9, 0, serial_fraction=0.0)
        slow = host.op_seconds(1e9, 0, serial_fraction=0.5)
        assert slow > 3 * fast

    def test_serial_fraction_validated(self):
        with pytest.raises(SimulationError):
            HostCpuModel().op_seconds(1.0, 0, serial_fraction=1.5)
