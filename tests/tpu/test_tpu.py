"""TpuCore facade tests."""

import pytest

from repro.tpu.lowering import lower_nms_to_gemm
from repro.tpu.tpu import TpuCore


class TestTpuCore:
    def test_gemm_seconds_from_cycles(self):
        core = TpuCore()
        result = core.gemm(1024, 1024, 1024)
        expected = result.cycles / (core.config.clock_ghz * 1e9)
        assert result.seconds == pytest.approx(expected)

    def test_counters_populated(self):
        result = TpuCore().gemm(256, 256, 256)
        assert result.counters.get("tpu_macs") == 256 ** 3
        assert result.counters.get("tpu_weight_tiles") == 4

    def test_run_lowered_accumulates(self):
        core = TpuCore()
        ops = lower_nms_to_gemm(64, iterations=2)
        cascade = core.run_lowered(ops)
        assert cascade.macs == sum(op.macs for op in ops)
        assert cascade.cycles > 0

    def test_peak_tflops_passthrough(self):
        core = TpuCore()
        assert core.peak_tflops == core.config.peak_tflops
