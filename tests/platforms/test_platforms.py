"""GPU platform tests (SIMD / TC / SMA)."""

import pytest

from repro.dnn.ops import Conv2d, RegionProposal, Relu
from repro.dnn.tensor import nchw
from repro.dnn.zoo import build_alexnet
from repro.platforms import GpuSimdPlatform, GpuSmaPlatform, GpuTcPlatform
from repro.platforms.base import reporting_group


@pytest.fixture(scope="module")
def simd():
    return GpuSimdPlatform(framework_overhead_s=0.0)


@pytest.fixture(scope="module")
def tc():
    return GpuTcPlatform(framework_overhead_s=0.0)


@pytest.fixture(scope="module")
def sma3():
    return GpuSmaPlatform(3, framework_overhead_s=0.0)


def _conv():
    return Conv2d.build("c", 64, 128, 56, 56, kernel=3, padding=1)


class TestOpDispatch:
    def test_conv_runs_as_gemm(self, simd, tc, sma3):
        assert simd.run_op(_conv()).mode == "gemm-simd"
        assert tc.run_op(_conv()).mode == "gemm-tc"
        assert sma3.run_op(_conv()).mode == "gemm-sma"

    def test_irregular_runs_simd_everywhere(self, simd, tc, sma3):
        nms = RegionProposal.build("rp", nchw(1, 256, 50, 64))
        for platform in (simd, tc, sma3):
            assert platform.run_op(nms).mode == "simd"

    def test_conv_speed_ordering(self, simd, tc, sma3):
        conv = _conv()
        t_simd = simd.run_op(conv).seconds
        t_tc = tc.run_op(conv).seconds
        t_sma = sma3.run_op(conv).seconds
        assert t_sma < t_tc < t_simd

    def test_irregular_same_speed_everywhere(self, simd, sma3):
        nms = RegionProposal.build("rp", nchw(1, 256, 50, 64))
        t_simd = simd.run_op(nms).seconds
        t_sma = sma3.run_op(nms).seconds
        assert t_sma == pytest.approx(t_simd, rel=0.01)

    def test_energy_attached(self, sma3):
        stats = sma3.run_op(_conv())
        assert stats.energy is not None
        assert stats.energy.total > 0


class TestModelRun:
    def test_alexnet_totals(self, sma3):
        result = sma3.run_model(build_alexnet())
        assert result.total_seconds > 0
        assert len(result.op_stats) == len(build_alexnet())

    def test_grouped_seconds_partition(self, simd):
        result = simd.run_model(build_alexnet())
        groups = result.grouped_seconds()
        assert sum(groups.values()) == pytest.approx(result.total_seconds)

    def test_framework_overhead_added_per_launch(self):
        with_overhead = GpuSimdPlatform(framework_overhead_s=1e-3)
        zero = GpuSimdPlatform(framework_overhead_s=0.0)
        graph = build_alexnet()
        delta = (
            with_overhead.run_model(graph).total_seconds
            - zero.run_model(graph).total_seconds
        )
        launches = sum(node.op.kernel_launches for node in graph.nodes)
        assert delta == pytest.approx(launches * 1e-3, rel=0.05)


class TestSmaModeSwitching:
    def test_switch_overhead_tracked(self):
        platform = GpuSmaPlatform(3, framework_overhead_s=0.0)
        conv = _conv()
        relu = Relu.build("r", conv.output_shape)
        platform.run_op(conv)   # -> systolic
        platform.run_op(relu)   # -> simd
        platform.run_op(conv)   # -> systolic
        assert platform.mode_tracker.switches == 3
        assert platform.mode_switch_overhead_seconds > 0

    def test_switch_overhead_negligible(self):
        """The temporal-integration claim: switching is ~free."""
        platform = GpuSmaPlatform(3, framework_overhead_s=0.0)
        result = platform.run_model(build_alexnet())
        assert platform.mode_switch_overhead_seconds < 0.001 * result.total_seconds


class TestReportingGroups:
    def test_group_mapping(self):
        assert reporting_group(_conv()) == "CNN&FC"
        nms = RegionProposal.build("rp", nchw(1, 1, 8, 8))
        assert reporting_group(nms) == "NMS"
