"""TPU platform tests (native / lowered / host dispatch)."""

import pytest

from repro.dnn.ops import ArgMax, Conv2d, Crf, RegionProposal, RoIAlign
from repro.dnn.tensor import nchw
from repro.dnn.zoo import build_deeplab
from repro.platforms import CpuPlatform, GpuSimdPlatform, TpuPlatform


@pytest.fixture(scope="module")
def tpu():
    return TpuPlatform()


class TestDispatch:
    def test_conv_native(self, tpu):
        conv = Conv2d.build("c", 64, 128, 56, 56, kernel=3, padding=1)
        assert tpu.run_op(conv).mode == "tpu"

    def test_nms_lowered(self, tpu):
        nms = RegionProposal.build("rp", nchw(1, 256, 50, 64))
        stats = tpu.run_op(nms)
        assert stats.mode == "tpu-lowered"

    def test_roialign_lowered(self, tpu):
        roi = RoIAlign.build("roi", nchw(1, 256, 200, 264))
        assert tpu.run_op(roi).mode == "tpu-lowered"

    def test_argmax_lowered(self, tpu):
        argmax = ArgMax.build("am", nchw(1, 21, 513, 513))
        assert tpu.run_op(argmax).mode == "tpu-lowered"

    def test_crf_on_host(self, tpu):
        crf = Crf.build("crf", nchw(1, 21, 513, 513))
        assert tpu.run_op(crf).mode == "host"


class TestPaperBehaviours:
    def test_conv_faster_than_gpu_simd(self, tpu):
        """Paper: TPU >1.6x faster on GEMM-compatible kernels."""
        conv = Conv2d.build("c", 256, 512, 64, 64, kernel=3, padding=1)
        gpu = GpuSimdPlatform(framework_overhead_s=0.0)
        t_tpu = tpu.run_op(conv).seconds
        t_gpu = gpu.run_op(conv).seconds
        assert t_gpu / t_tpu > 1.4

    def test_lowered_nms_much_slower_than_gpu(self, tpu):
        """Paper: improper mapping causes severe degradation."""
        nms = RegionProposal.build("rp", nchw(1, 256, 50, 64))
        gpu = GpuSimdPlatform()
        t_tpu = tpu.run_op(nms).seconds + tpu.framework_overhead_s
        t_gpu = gpu.run_op(nms).seconds + (
            gpu.framework_overhead_s * nms.kernel_launches
        )
        assert t_tpu > 2 * t_gpu

    def test_transfer_group_in_model_run(self, tpu):
        result = tpu.run_model(build_deeplab(with_crf=True))
        groups = result.grouped_seconds()
        assert groups.get("Transfer", 0.0) > 0

    def test_no_transfer_without_host_ops(self, tpu):
        result = tpu.run_model(build_deeplab(with_crf=False))
        assert "Transfer" not in result.grouped_seconds()


class TestCpuPlatform:
    def test_crf_single_core_slow(self):
        cpu = CpuPlatform()
        crf = Crf.build("crf", nchw(1, 21, 513, 513))
        seconds = cpu.run_op(crf).seconds
        assert 0.3 <= seconds <= 0.9  # paper: 555 ms

    def test_conv_runs(self):
        cpu = CpuPlatform()
        conv = Conv2d.build("c", 16, 32, 28, 28, kernel=3, padding=1)
        assert cpu.run_op(conv).seconds > 0
