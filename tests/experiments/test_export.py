"""CSV export and CLI tests."""

import csv

import pytest

from repro.__main__ import main
from repro.experiments.export import (
    EXPERIMENT_RUNNERS,
    export_all,
    export_report_csv,
)
from repro.experiments.runner import ExperimentReport


class TestExport:
    def test_export_report_csv(self, tmp_path):
        report = ExperimentReport(
            experiment="demo", headers=["a", "b"], rows=[[1, 2], [3, 4]]
        )
        path = export_report_csv(report, tmp_path / "demo.csv")
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_export_selected(self, tmp_path):
        written = export_all(tmp_path, names=["table2"])
        assert written["table2"].exists()

    def test_unknown_name(self, tmp_path):
        with pytest.raises(KeyError):
            export_all(tmp_path, names=["fig99"])

    def test_runner_registry_complete(self):
        expected = {
            "table1", "table2", "fig1", "fig2", "fig3", "fig7_left",
            "fig7_right", "fig8_speedup", "fig8_energy", "fig9_left",
            "fig9_right", "fig9_preemption", "area", "catalog_devices",
        }
        assert set(EXPERIMENT_RUNNERS) == expected


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7_left" in out

    def test_run_single(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "PASS" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_export_cli(self, tmp_path, capsys):
        assert main(["export", "-o", str(tmp_path), "table1"]) == 0
        assert (tmp_path / "table1.csv").exists()
