"""ExperimentReport container tests."""

from repro.experiments.runner import ExperimentReport


class TestExperimentReport:
    def test_add_row_and_check(self):
        report = ExperimentReport(experiment="x", headers=["a"])
        report.add_row(1)
        report.add_check("one row present", len(report.rows) == 1)
        assert report.all_passed

    def test_failure_propagates(self):
        report = ExperimentReport(experiment="x", headers=["a"])
        report.add_row(1)
        report.add_check("always fails", False)
        assert not report.all_passed
        assert "[FAIL] always fails" in report.render()

    def test_render_contains_notes(self):
        report = ExperimentReport(
            experiment="x", headers=["a"], notes="hello"
        )
        report.add_row(1)
        assert "note: hello" in report.render()

    def test_str_is_render(self):
        report = ExperimentReport(experiment="title-here", headers=["a"])
        report.add_row(2)
        assert str(report) == report.render()
