"""Every regenerated table/figure must pass its DESIGN.md acceptance checks.

These are the reproduction's integration tests: each experiment runs the
full stack (traces -> SM pipeline -> launch composition -> platforms) and
asserts the paper-shape criteria recorded in EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    run_area_overhead,
    run_catalog_devices,
    run_fig1,
    run_fig2_inventory,
    run_fig3,
    run_fig7_left,
    run_fig7_right,
    run_fig8_energy,
    run_fig8_speedup,
    run_fig9_left,
    run_fig9_preemption,
    run_fig9_right,
    run_table1,
    run_table2,
)

_EXPERIMENTS = [
    ("fig1", run_fig1),
    ("fig2", run_fig2_inventory),
    ("fig3", run_fig3),
    ("fig7_left", run_fig7_left),
    ("fig7_right", run_fig7_right),
    ("fig8_speedup", run_fig8_speedup),
    ("fig8_energy", run_fig8_energy),
    ("fig9_left", run_fig9_left),
    ("fig9_right", run_fig9_right),
    ("fig9_preemption", run_fig9_preemption),
    ("table1", run_table1),
    ("table2", run_table2),
    ("area", run_area_overhead),
    ("catalog_devices", run_catalog_devices),
]


@pytest.mark.parametrize("name,runner", _EXPERIMENTS)
def test_experiment_checks_pass(name, runner):
    report = runner()
    failures = [crit for crit, ok in report.checks.items() if not ok]
    assert not failures, f"{name}: failed {failures}"


@pytest.mark.parametrize("name,runner", _EXPERIMENTS)
def test_experiment_renders(name, runner):
    report = runner()
    text = report.render()
    assert report.experiment in text
    assert len(report.rows) > 0


def test_fig1_row_shape():
    report = run_fig1(sizes=(128, 256))
    assert len(report.rows) == 2
    assert report.headers == ["size", "tpu_efficiency", "tc_efficiency"]


def test_fig9_right_intervals_respected():
    report = run_fig9_right(intervals=(2, 5))
    assert [row[0] for row in report.rows] == [2, 5]
