"""SMA unit (reconfigurable MAC cluster) tests."""

import numpy as np
import pytest

from repro.config import DataType, SmaConfig
from repro.errors import MappingError
from repro.sma.mode import ExecutionMode
from repro.sma.unit import SmaUnit


class TestSmaUnit:
    def test_starts_in_simd_mode(self):
        assert SmaUnit().mode is ExecutionMode.SIMD

    def test_lsma_requires_systolic_mode(self):
        unit = SmaUnit()
        with pytest.raises(MappingError):
            unit.run_lsma(np.zeros((8, 8)), np.zeros((8, 8)))

    def test_functional_lsma(self):
        unit = SmaUnit()
        unit.enter_systolic_mode()
        rng = np.random.default_rng(0)
        a = rng.standard_normal((32, 8))
        b = rng.standard_normal((8, 8))
        c, timing = unit.run_lsma(a, b)
        np.testing.assert_allclose(c, a @ b)
        assert timing.macs == 32 * 64

    def test_accumulating_lsma(self):
        unit = SmaUnit()
        unit.enter_systolic_mode()
        rng = np.random.default_rng(1)
        a = rng.standard_normal((16, 8))
        b = rng.standard_normal((8, 8))
        c_in = rng.standard_normal((16, 8))
        c, _t = unit.run_lsma(a, b, c_in)
        np.testing.assert_allclose(c, a @ b + c_in)

    def test_fp16_array_shape(self):
        unit = SmaUnit(SmaConfig(dtype=DataType.FP16))
        assert unit.array_shape == (8, 16)

    def test_wrong_subtile_shape(self):
        unit = SmaUnit(SmaConfig(dtype=DataType.FP16))
        unit.enter_systolic_mode()
        with pytest.raises(MappingError):
            unit.run_lsma(np.zeros((16, 8)), np.zeros((8, 8)))

    def test_mode_round_trip_cost(self):
        unit = SmaUnit()
        cost_in = unit.enter_systolic_mode()
        cost_out = unit.enter_simd_mode()
        assert cost_in == cost_out == SmaConfig().reconfiguration_cycles
        assert unit.tracker.switches == 2

    def test_simd_flops(self):
        assert SmaUnit().simd_flops_per_cycle() == 128
