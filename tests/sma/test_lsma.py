"""LSMA functional semantics tests (paper Eq. 1)."""

import numpy as np
import pytest

from repro.errors import MappingError
from repro.sma.lsma import LsmaOperation, execute_lsma
from repro.systolic.dataflow import Dataflow


class TestLsmaOperation:
    def test_operands(self):
        op = LsmaOperation(a_address=0, c_address=64, b_height=8, stream_rows=128)
        assert op.stream_rows == 128

    def test_validation(self):
        with pytest.raises(MappingError):
            LsmaOperation(0, 0, 8, 0)
        with pytest.raises(MappingError):
            LsmaOperation(0, 0, 0, 128)


class TestExecuteLsma:
    def test_eq1_semantics(self):
        """C[out] <- A[in] x B + C[in]."""
        rng = np.random.default_rng(7)
        a = rng.standard_normal((128, 8))
        b = rng.standard_normal((8, 8))
        c_in = rng.standard_normal((128, 8))
        result = execute_lsma(a, b, c_in)
        np.testing.assert_allclose(result, a @ b + c_in)

    def test_without_accumulator(self):
        rng = np.random.default_rng(8)
        a = rng.standard_normal((16, 8))
        b = rng.standard_normal((8, 8))
        np.testing.assert_allclose(execute_lsma(a, b), a @ b)

    def test_fp16_unit_shape(self):
        """8x16 FP16 array accepts a K=8, N=16 B sub-tile."""
        rng = np.random.default_rng(9)
        a = rng.standard_normal((32, 8))
        b = rng.standard_normal((8, 16))
        np.testing.assert_allclose(execute_lsma(a, b), a @ b)

    def test_ws_dataflow_same_result(self):
        """Both dataflows compute identical results (Fig 4)."""
        rng = np.random.default_rng(10)
        a = rng.standard_normal((24, 8))
        b = rng.standard_normal((8, 8))
        sb = execute_lsma(a, b, dataflow=Dataflow.SEMI_BROADCAST_WS)
        ws = execute_lsma(a, b, dataflow=Dataflow.WEIGHT_STATIONARY)
        np.testing.assert_allclose(sb, ws)

    def test_flexible_k_shape(self):
        """The K x 8 x 8 flexible shape: any stream length works."""
        rng = np.random.default_rng(11)
        for stream in (1, 7, 129):
            a = rng.standard_normal((stream, 8))
            b = rng.standard_normal((8, 8))
            np.testing.assert_allclose(execute_lsma(a, b), a @ b)

    def test_shape_mismatch(self):
        with pytest.raises(MappingError):
            execute_lsma(np.zeros((8, 4)), np.zeros((8, 8)))

    def test_c_shape_mismatch(self):
        with pytest.raises(MappingError):
            execute_lsma(np.zeros((8, 8)), np.zeros((8, 8)), np.zeros((4, 8)))

    def test_output_stationary_rejected(self):
        with pytest.raises(MappingError):
            execute_lsma(
                np.zeros((8, 8)), np.zeros((8, 8)),
                dataflow=Dataflow.OUTPUT_STATIONARY,
            )
