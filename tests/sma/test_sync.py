"""Warp-set partition / cooperative-group tests."""

import pytest

from repro.errors import MappingError
from repro.sma.sync import (
    GROUP_ALL,
    GROUP_COMPUTERS,
    GROUP_LOADERS,
    make_double_buffer_groups,
    partition_warps,
)


class TestPartition:
    def test_even_split(self):
        partition = partition_warps(64)
        assert len(partition.loaders) == 32
        assert len(partition.computers) == 32
        assert partition.loaders.isdisjoint(partition.computers)

    def test_all_warps_covered(self):
        partition = partition_warps(64)
        assert partition.all_warps == frozenset(range(64))

    def test_set_of(self):
        partition = partition_warps(4)
        assert partition.set_of(0) == "loaders"
        assert partition.set_of(3) == "computers"

    def test_set_of_unknown(self):
        with pytest.raises(MappingError):
            partition_warps(4).set_of(9)

    def test_odd_count_rejected(self):
        with pytest.raises(MappingError):
            partition_warps(7)


class TestGroups:
    def test_group_table(self):
        groups = make_double_buffer_groups(64)
        assert groups[GROUP_LOADERS] == frozenset(range(32))
        assert groups[GROUP_COMPUTERS] == frozenset(range(32, 64))
        assert groups[GROUP_ALL] == frozenset(range(64))
