"""Systolic controller (LsmaEngine) timing tests."""

import pytest

from repro.config import DataType, SmaConfig
from repro.errors import SimulationError
from repro.sma.controller import SystolicControllerModel
from repro.systolic.dataflow import Dataflow


@pytest.fixture
def controller():
    return SystolicControllerModel(SmaConfig(units_per_sm=3))


class TestIssue:
    def test_accepts_idle_unit(self, controller):
        outcome = controller.issue(0, 128, now=0.0)
        assert outcome.accepted
        assert outcome.busy_until > 0

    def test_rejects_busy_unit(self, controller):
        controller.issue(0, 128, now=0.0)
        assert not controller.issue(0, 128, now=1.0).accepted

    def test_other_units_independent(self, controller):
        controller.issue(0, 128, now=0.0)
        assert controller.issue(1, 128, now=0.0).accepted
        assert controller.issue(2, 128, now=0.0).accepted

    def test_busy_until_scales_with_stream(self, controller):
        short = controller.issue(0, 64, now=0.0).busy_until
        controller.reset()
        long = controller.issue(0, 256, now=0.0).busy_until
        assert long > short

    def test_streaming_rate_near_one_row_per_cycle(self, controller):
        """Semi-broadcast on reserved banks: ~1 cycle per A row."""
        outcome = controller.issue(0, 128, now=0.0)
        assert 128 <= outcome.busy_until <= 128 * 1.25

    def test_out_of_range_unit(self, controller):
        with pytest.raises(SimulationError):
            controller.issue(5, 128, now=0.0)

    def test_bad_extent(self, controller):
        with pytest.raises(SimulationError):
            controller.issue(0, 0, now=0.0)


class TestCounters:
    def test_mac_count_fp32(self):
        controller = SystolicControllerModel(SmaConfig(dtype=DataType.FP32))
        outcome = controller.issue(0, 128, now=0.0)
        assert outcome.counters.get("sma_macs") == 128 * 8 * 8
        assert outcome.counters.get("sma_macs_fp32") == 128 * 8 * 8

    def test_mac_count_fp16_wider_array(self):
        controller = SystolicControllerModel(SmaConfig(dtype=DataType.FP16))
        outcome = controller.issue(0, 128, now=0.0)
        assert outcome.counters.get("sma_macs") == 128 * 8 * 16

    def test_a_feed_smem_words(self, controller):
        outcome = controller.issue(0, 128, now=0.0)
        # A diagonal: K words per streamed row, plus the resident weights.
        assert outcome.counters.get("smem_read_words") == 128 * 8 + 64

    def test_c_rf_traffic_coalesced(self, controller):
        outcome = controller.issue(0, 128, now=0.0)
        # One warp-operand per 32 words: C in + C out.
        assert outcome.counters.get("rf_writes") == pytest.approx(128 * 8 / 32)


class TestDrainAndDataflow:
    def test_idle_at_after_drain(self, controller):
        outcome = controller.issue(0, 128, now=0.0)
        assert controller.idle_at(0.0) == outcome.busy_until
        assert controller.idle_at(outcome.busy_until + 1) == outcome.busy_until + 1

    def test_reset_clears(self, controller):
        controller.issue(0, 128, now=0.0)
        controller.reset()
        assert controller.idle_at(0.0) == 0.0
        assert controller.lsma_count == 0

    def test_ws_dataflow_slower(self):
        sb = SystolicControllerModel(
            SmaConfig(), dataflow=Dataflow.SEMI_BROADCAST_WS
        )
        ws = SystolicControllerModel(
            SmaConfig(), dataflow=Dataflow.WEIGHT_STATIONARY
        )
        t_sb = sb.issue(0, 128, now=0.0).busy_until
        t_ws = ws.issue(0, 128, now=0.0).busy_until
        assert t_ws > t_sb

    def test_ws_dataflow_charges_lsu(self):
        ws = SystolicControllerModel(
            SmaConfig(), dataflow=Dataflow.WEIGHT_STATIONARY
        )
        sb = SystolicControllerModel(SmaConfig())
        assert ws.issue(0, 128, now=0.0).lsu_overhead_cycles > 0
        assert sb.issue(0, 128, now=0.0).lsu_overhead_cycles == 0

    def test_storage_claim(self, controller):
        assert controller.storage_bytes == 256
