"""Fig 6 GEMM mapping / trace-generation tests."""

import pytest

from repro.config import DataType, SmaConfig, volta_gpu
from repro.errors import MappingError
from repro.gemm.problem import GemmProblem
from repro.gemm.tiling import plan_gemm
from repro.gpu.sm import StreamingMultiprocessor
from repro.isa.instructions import Opcode
from repro.sma.mapping import SmaGemmMapper


def _mapper(units=3, dtype=DataType.FP32):
    return SmaGemmMapper(volta_gpu(), SmaConfig(units_per_sm=units, dtype=dtype))


def _plan(dtype=DataType.FP32):
    return plan_gemm(GemmProblem(1024, 1024, 1024, dtype=dtype), k_slice=8)


class TestKernelShape:
    def test_fp32_subtile_quantization(self):
        """16 sub-tiles over 3 units: 6 rounds, 2 idle slots (Fig 8)."""
        shape = _mapper(3, DataType.FP32).kernel_shape(_plan())
        assert shape.subtiles == 16
        assert shape.rounds == 6
        assert shape.round_utilization == pytest.approx(16 / 18)

    def test_fp16_2sma_clean_quantization(self):
        """8 sub-tiles over 2 FP16 units divide evenly (the 90.7% case)."""
        shape = _mapper(2, DataType.FP16).kernel_shape(_plan(DataType.FP16))
        assert shape.subtiles == 8
        assert shape.rounds == 4
        assert shape.round_utilization == pytest.approx(1.0)

    def test_k_slice_must_match_array(self):
        plan = plan_gemm(GemmProblem(256, 256, 256), k_slice=16)
        with pytest.raises(MappingError):
            _mapper().kernel_shape(plan)


class TestTraceGeneration:
    def test_lsma_count_per_iteration(self):
        mapper = _mapper(3, DataType.FP32)
        spec = mapper.build_kernel(_plan(), iterations=2)
        lsma_total = sum(p.count(Opcode.LSMA) for p in spec.programs)
        assert lsma_total == 2 * 16  # subtiles per iteration x iterations

    def test_only_masters_issue_lsma(self):
        mapper = _mapper(3, DataType.FP32)
        spec = mapper.build_kernel(_plan(), iterations=1)
        issuers = [p for p in spec.programs if p.count(Opcode.LSMA) > 0]
        assert len(issuers) == 3

    def test_double_buffer_groups_attached(self):
        spec = _mapper().build_kernel(_plan(), iterations=1)
        assert len(spec.groups) == 3
        assert spec.scheduler == "sma_rr"

    def test_loaders_stage_tiles(self):
        spec = _mapper().build_kernel(_plan(), iterations=2)
        ldg_total = sum(p.count(Opcode.LDG) for p in spec.programs)
        # fp32: 8 KB staged per iteration = 64 warp accesses, 2 per loader;
        # prologue adds one more staging pass.
        assert ldg_total == 64 * 3

    def test_writeback_epilogue(self):
        spec = _mapper().build_kernel(_plan(), iterations=1)
        stg_total = sum(p.count(Opcode.STG) for p in spec.programs)
        # Csub 128x128 FP32 = 64 KB = 512 warp stores.
        assert stg_total == 512

    def test_zero_iterations_rejected(self):
        with pytest.raises(MappingError):
            _mapper().build_kernel(_plan(), iterations=0)


class TestPipelineExecution:
    def test_kernel_runs_to_completion(self):
        mapper = _mapper(3, DataType.FP32)
        spec = mapper.build_kernel(_plan(), iterations=2)
        result = StreamingMultiprocessor(volta_gpu()).run(spec)
        assert result.cycles > 0
        assert result.counters.get("sma_macs") == 2 * 16 * 128 * 64

    def test_systolic_phase_dominates(self):
        """The double buffer hides the loads behind the LSMA streams."""
        mapper = _mapper(3, DataType.FP32)
        lo = StreamingMultiprocessor(volta_gpu()).run(
            mapper.build_kernel(_plan(), iterations=2)
        )
        hi = StreamingMultiprocessor(volta_gpu()).run(
            mapper.build_kernel(_plan(), iterations=4)
        )
        per_iteration = (hi.cycles - lo.cycles) / 2
        # 6 rounds x ~(128 stream + overheads) per iteration.
        assert 6 * 128 * 0.9 <= per_iteration <= 6 * 160
