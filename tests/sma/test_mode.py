"""Temporal mode-switch tracker tests."""

import pytest

from repro.config import SmaConfig
from repro.errors import SimulationError
from repro.sma.mode import ExecutionMode, ModeSwitchTracker


@pytest.fixture
def tracker():
    return ModeSwitchTracker(SmaConfig())


class TestModeSwitchTracker:
    def test_starts_in_simd(self, tracker):
        assert tracker.mode is ExecutionMode.SIMD

    def test_switch_costs_configured_cycles(self, tracker):
        cost = tracker.switch_to(ExecutionMode.SYSTOLIC)
        assert cost == SmaConfig().reconfiguration_cycles
        assert tracker.mode is ExecutionMode.SYSTOLIC

    def test_same_mode_is_free(self, tracker):
        tracker.switch_to(ExecutionMode.SYSTOLIC)
        assert tracker.switch_to(ExecutionMode.SYSTOLIC) == 0.0
        assert tracker.switches == 1

    def test_accounting_per_mode(self, tracker):
        tracker.account(100)
        tracker.switch_to(ExecutionMode.SYSTOLIC)
        tracker.account(900)
        assert tracker.cycles_in_mode["simd"] == 100
        assert tracker.cycles_in_mode["systolic"] == 900

    def test_overhead_fraction_small(self, tracker):
        """Temporal integration claim: reconfiguration is negligible."""
        for _ in range(100):
            tracker.switch_to(ExecutionMode.SYSTOLIC)
            tracker.account(10_000)
            tracker.switch_to(ExecutionMode.SIMD)
            tracker.account(10_000)
        assert tracker.overhead_fraction() < 0.001

    def test_negative_cycles_rejected(self, tracker):
        with pytest.raises(SimulationError):
            tracker.account(-1)

    def test_bad_mode_rejected(self, tracker):
        with pytest.raises(SimulationError):
            tracker.switch_to("systolic")
