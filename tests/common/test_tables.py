"""Table-rendering tests."""

import pytest

from repro.common.tables import format_quantity, render_table


class TestFormatQuantity:
    def test_float_precision(self):
        assert format_quantity(1.23456) == "1.235"

    def test_large_float_scientific(self):
        assert "e" in format_quantity(123456.0)

    def test_small_float_scientific(self):
        assert "e" in format_quantity(0.00001)

    def test_zero(self):
        assert format_quantity(0.0) == "0.000"

    def test_nan(self):
        assert format_quantity(float("nan")) == "nan"

    def test_string_passthrough(self):
        assert format_quantity("abc") == "abc"

    def test_bool(self):
        assert format_quantity(True) == "True"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_headers_present(self):
        text = render_table(["alpha", "beta"], [[1, 2]])
        assert "alpha" in text and "beta" in text
