"""Tiling-math tests."""

import pytest

from repro.common.mathutil import (
    ceil_div,
    clamp,
    is_power_of_two,
    log2_int,
    prod,
    round_up,
    split_range,
    tile_spans,
)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(128, 8) == 16

    def test_remainder(self):
        assert ceil_div(129, 8) == 17

    def test_zero_numerator(self):
        assert ceil_div(0, 8) == 0

    def test_bad_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)


class TestRoundUpClamp:
    def test_round_up(self):
        assert round_up(100, 128) == 128
        assert round_up(128, 128) == 128

    def test_clamp_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_clamp_edges(self):
        assert clamp(-3, 0, 1) == 0
        assert clamp(9, 0, 1) == 1

    def test_clamp_empty_range(self):
        with pytest.raises(ValueError):
            clamp(0.5, 2.0, 1.0)


class TestPowersAndProducts:
    def test_prod_empty(self):
        assert prod([]) == 1

    def test_prod(self):
        assert prod([2, 3, 4]) == 24

    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(4096)
        assert not is_power_of_two(0)
        assert not is_power_of_two(48)

    def test_log2_int(self):
        assert log2_int(128) == 7

    def test_log2_int_rejects(self):
        with pytest.raises(ValueError):
            log2_int(100)


class TestTileSpans:
    def test_even_coverage(self):
        spans = list(tile_spans(256, 128))
        assert spans == [(0, 128), (128, 128)]

    def test_residual_tile(self):
        spans = list(tile_spans(300, 128))
        assert spans == [(0, 128), (128, 128), (256, 44)]

    def test_covers_exactly(self):
        spans = list(tile_spans(777, 32))
        assert sum(size for _s, size in spans) == 777
        assert spans[0][0] == 0

    def test_empty_extent(self):
        assert list(tile_spans(0, 8)) == []

    def test_bad_tile(self):
        with pytest.raises(ValueError):
            list(tile_spans(8, 0))


class TestSplitRange:
    def test_balanced(self):
        assert split_range(10, 2) == [(0, 5), (5, 5)]

    def test_remainder_goes_first(self):
        spans = split_range(10, 3)
        assert spans == [(0, 4), (4, 3), (7, 3)]

    def test_more_parts_than_extent(self):
        spans = split_range(2, 4)
        assert sum(size for _s, size in spans) == 2
        assert len(spans) == 4

    def test_bad_parts(self):
        with pytest.raises(ValueError):
            split_range(4, 0)
