"""CounterBag behaviour tests."""

from repro.common.stats import CounterBag


class TestCounterBag:
    def test_default_zero(self):
        bag = CounterBag()
        assert bag.get("anything") == 0.0
        assert "anything" not in bag

    def test_add_and_get(self):
        bag = CounterBag()
        bag.add("macs", 64)
        bag.add("macs", 64)
        assert bag["macs"] == 128

    def test_initial_mapping(self):
        bag = CounterBag({"a": 1, "b": 2.5})
        assert bag["a"] == 1.0
        assert bag["b"] == 2.5

    def test_merge_in_place(self):
        left = CounterBag({"x": 1})
        right = CounterBag({"x": 2, "y": 3})
        left.merge(right)
        assert left["x"] == 3
        assert left["y"] == 3

    def test_merged_returns_new(self):
        left = CounterBag({"x": 1})
        right = CounterBag({"y": 1})
        result = left.merged(right)
        assert result["x"] == 1 and result["y"] == 1
        assert "y" not in left

    def test_scaled(self):
        bag = CounterBag({"a": 3})
        assert bag.scaled(2.0)["a"] == 6
        assert bag["a"] == 3  # original untouched

    def test_total(self):
        assert CounterBag({"a": 1, "b": 2}).total() == 3

    def test_equality(self):
        assert CounterBag({"a": 1}) == CounterBag({"a": 1})
        assert CounterBag({"a": 1}) != CounterBag({"a": 2})

    def test_len_and_iter(self):
        bag = CounterBag({"a": 1, "b": 2})
        assert len(bag) == 2
        assert sorted(bag) == ["a", "b"]

    def test_repr_sorted(self):
        bag = CounterBag({"b": 2, "a": 1})
        assert repr(bag) == "CounterBag(a=1, b=2)"
