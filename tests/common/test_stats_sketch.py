"""P² quantile sketch tests: exactness, tolerance, and round-trips.

The streaming serving path replaces per-frame latency lists with
:class:`~repro.common.stats.QuantileSketch` accumulators, so these
estimators carry the reported tail latencies for million-frame runs.
Three contracts matter:

* tiny streams (≤5 samples) lose nothing — the estimate is the *exact*
  nearest-rank percentile, matching :func:`~repro.common.stats.percentile`;
* large streams stay rank-accurate on adversarial shapes (bimodal,
  sorted, heavy-tailed), where value-space tolerances would be
  meaningless;
* JSON round-trips preserve every marker bit, so a restored sketch
  continues bit-identically to the original.
"""

import json
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.stats import (
    SKETCH_QUANTILES,
    P2Quantile,
    QuantileSketch,
    percentile,
)

_LATENCIES = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def _rank_error(values, estimate, p):
    """How far (in rank) ``estimate`` sits from the true ``p`` quantile.

    Robust to plateaus and bimodal gaps: with duplicates an estimate can
    legitimately cover a rank *interval*, so the error is the distance
    from ``p`` to the nearest edge of ``[#(x < est), #(x <= est)] / n``.
    """
    n = len(values)
    below = sum(1 for v in values if v < estimate) / n
    at_or_below = sum(1 for v in values if v <= estimate) / n
    if below <= p <= at_or_below:
        return 0.0
    return min(abs(p - below), abs(p - at_or_below))


class TestP2Exactness:
    @given(st.lists(_LATENCIES, min_size=1, max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_small_streams_are_exact(self, values):
        for p in SKETCH_QUANTILES:
            sketch = P2Quantile(p)
            for value in values:
                sketch.update(value)
            assert sketch.result() == percentile(values, p * 100.0)

    def test_empty_returns_zero(self):
        assert P2Quantile(0.5).result() == 0.0

    def test_invalid_p_rejected(self):
        for p in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                P2Quantile(p)


class TestP2Accuracy:
    """Rank error stays small on adversarial input shapes.

    All cases are seeded and deterministic; the 0.05 rank tolerance is
    far looser than P²'s typical error (<0.01 on these shapes) so the
    gate only fires on real estimator regressions.
    """

    def _samples(self, shape: str, n: int = 2000) -> list:
        rng = random.Random(shape)  # str seeds hash deterministically
        if shape == "uniform":
            return [rng.uniform(0.0, 1.0) for _ in range(n)]
        if shape == "lognormal":
            return [math.exp(rng.gauss(0.0, 1.5)) for _ in range(n)]
        if shape == "bimodal":
            return [
                rng.gauss(1.0, 0.05)
                if rng.random() < 0.5
                else rng.gauss(100.0, 5.0)
                for _ in range(n)
            ]
        if shape == "sorted":
            return sorted(rng.uniform(0.0, 1.0) for _ in range(n))
        if shape == "reversed":
            return sorted(
                (rng.uniform(0.0, 1.0) for _ in range(n)), reverse=True
            )
        if shape == "constant":
            return [0.25] * n
        raise AssertionError(shape)

    @pytest.mark.parametrize(
        "shape",
        ["uniform", "lognormal", "bimodal", "sorted", "reversed", "constant"],
    )
    def test_rank_error_bounded(self, shape):
        values = self._samples(shape)
        for p in SKETCH_QUANTILES:
            sketch = P2Quantile(p)
            for value in values:
                sketch.update(value)
            error = _rank_error(values, sketch.result(), p)
            assert error <= 0.05, (
                f"{shape} p={p}: rank error {error:.4f} at estimate"
                f" {sketch.result():.6g}"
            )

    def test_estimates_stay_within_range(self):
        values = self._samples("lognormal")
        sketch = QuantileSketch()
        for value in values:
            sketch.add(value)
        for q in (50, 95, 99):
            assert min(values) <= sketch.quantile(q) <= max(values)


class TestRoundTrip:
    @given(
        st.lists(_LATENCIES, min_size=0, max_size=40),
        st.lists(_LATENCIES, min_size=0, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_p2_resumes_bit_identically(self, first, second):
        """Serialize mid-stream, resume, and both paths stay identical."""
        straight = P2Quantile(0.95)
        for value in first:
            straight.update(value)
        resumed = P2Quantile.from_dict(
            json.loads(json.dumps(straight.to_dict()))
        )
        assert resumed.result() == straight.result()
        for value in second:
            straight.update(value)
            resumed.update(value)
        assert resumed.to_dict() == straight.to_dict()
        assert resumed.result() == straight.result()

    @given(st.lists(_LATENCIES, min_size=0, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_sketch_roundtrip_preserves_everything(self, values):
        sketch = QuantileSketch()
        for value in values:
            sketch.add(value)
        restored = QuantileSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict()))
        )
        assert restored.count == sketch.count
        assert restored.total == sketch.total
        assert restored.max_value == sketch.max_value
        for q in (50, 95, 99):
            assert restored.quantile(q) == sketch.quantile(q)


class TestQuantileSketch:
    def test_counts_and_moments_exact(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        sketch = QuantileSketch()
        for value in values:
            sketch.add(value)
        assert sketch.count == len(values)
        assert sketch.total == sum(values)
        assert sketch.max_value == max(values)
        assert sketch.mean == sum(values) / len(values)

    def test_unsupported_quantile_rejected(self):
        sketch = QuantileSketch()
        sketch.add(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(75)

    def test_percentile_validates_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        assert percentile([], 50) == 0.0
        assert percentile([5.0, 1.0, 3.0], 50) == 3.0
        assert percentile([5.0, 1.0, 3.0], 100) == 5.0
