"""Unit-conversion tests."""

import pytest

from repro.common.units import (
    cycles_to_ms,
    cycles_to_seconds,
    cycles_to_us,
    flops_to_tflops,
    human_bytes,
    human_flops,
    ms_to_cycles,
    seconds_to_cycles,
)


class TestCycleConversions:
    def test_one_gigahertz_second(self):
        assert cycles_to_seconds(1e9, 1.0) == pytest.approx(1.0)

    def test_volta_clock_roundtrip(self):
        cycles = 123_456.0
        seconds = cycles_to_seconds(cycles, 1.53)
        assert seconds_to_cycles(seconds, 1.53) == pytest.approx(cycles)

    def test_ms_roundtrip(self):
        assert ms_to_cycles(cycles_to_ms(5000, 1.53), 1.53) == pytest.approx(5000)

    def test_us_scale(self):
        assert cycles_to_us(1530, 1.53) == pytest.approx(1.0)

    def test_zero_clock_rejected(self):
        with pytest.raises(ValueError):
            cycles_to_seconds(100, 0.0)
        with pytest.raises(ValueError):
            seconds_to_cycles(1.0, -1.0)


class TestHumanFormatting:
    def test_flops_to_tflops(self):
        assert flops_to_tflops(15.7e12) == pytest.approx(15.7)

    def test_human_bytes_kib(self):
        assert human_bytes(96 * 1024) == "96.0 KiB"

    def test_human_bytes_bytes(self):
        assert human_bytes(17) == "17.0 B"

    def test_human_bytes_large(self):
        assert "TiB" in human_bytes(5 * 1024 ** 4)

    def test_human_flops_gflop(self):
        assert human_flops(2.3e9) == "2.30 GFLOP"

    def test_human_flops_small(self):
        assert human_flops(12.0) == "12.00 FLOP"
