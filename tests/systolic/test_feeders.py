"""Feed/drain schedule tests."""

from repro.systolic.feeders import (
    diagonal_a_coords,
    output_coords_semi_broadcast,
    output_coords_weight_stationary,
    streaming_cycle_range,
)


class TestDiagonalFeed:
    def test_skew_window(self):
        # Cycle 3 with K=8: columns 0..3 active (rows 3..0).
        coords = diagonal_a_coords(3, m_extent=16, k_extent=8)
        assert coords == [(3, 0), (2, 1), (1, 2), (0, 3)]

    def test_steady_state_full_diagonal(self):
        coords = diagonal_a_coords(10, m_extent=16, k_extent=8)
        assert len(coords) == 8
        assert all(m + k == 10 for m, k in coords)

    def test_drain_window(self):
        coords = diagonal_a_coords(17, m_extent=16, k_extent=8)
        assert all(m < 16 for m, _k in coords)
        assert len(coords) < 8

    def test_out_of_range_empty(self):
        assert diagonal_a_coords(100, 16, 8) == []


class TestOutputSchedules:
    def test_semi_broadcast_one_row_per_cycle(self):
        out = output_coords_semi_broadcast(7, m_extent=16, k_extent=8, n_extent=8)
        assert out == [(0, n) for n in range(8)]

    def test_semi_broadcast_before_first_row(self):
        assert output_coords_semi_broadcast(3, 16, 8, 8) == []

    def test_ws_diagonal_spans_rows(self):
        out = output_coords_weight_stationary(12, 16, 8, 8)
        # Each column emits a different C row: m + n is constant.
        assert all(m + n == 12 - 7 for m, n in out)
        rows = [m for m, _n in out]
        assert rows == sorted(rows, reverse=True)

    def test_total_outputs_cover_matrix(self):
        seen = set()
        for cycle in streaming_cycle_range(16, 8, 8, diagonal_output=True):
            for coord in output_coords_weight_stationary(cycle, 16, 8, 8):
                seen.add(coord)
        assert seen == {(m, n) for m in range(16) for n in range(8)}

    def test_semi_broadcast_covers_matrix(self):
        seen = set()
        for cycle in streaming_cycle_range(16, 8, 8, diagonal_output=False):
            for coord in output_coords_semi_broadcast(cycle, 16, 8, 8):
                seen.add(coord)
        assert seen == {(m, n) for m in range(16) for n in range(8)}
