"""Processing-element reference semantics."""

import pytest

from repro.systolic.pe import ProcessingElement


class TestProcessingElement:
    def test_mac_semantics(self):
        pe = ProcessingElement()
        pe.load_weight(3.0)
        assert pe.step(a_in=2.0, psum_in=1.0) == pytest.approx(7.0)

    def test_psum_latched(self):
        pe = ProcessingElement(weight=2.0)
        pe.step(1.0, 0.0)
        assert pe.psum == pytest.approx(2.0)

    def test_mac_count(self):
        pe = ProcessingElement(weight=1.0)
        for _ in range(5):
            pe.step(1.0, 0.0)
        assert pe.mac_count == 5

    def test_reset(self):
        pe = ProcessingElement(weight=1.0)
        pe.step(1.0, 1.0)
        pe.reset()
        assert pe.psum == 0.0
        assert pe.mac_count == 0

    def test_weight_survives_reset(self):
        pe = ProcessingElement(weight=4.0)
        pe.reset()
        assert pe.weight == 4.0
