"""Dataflow traits and bank-contention analysis tests."""

import pytest

from repro.errors import SimulationError
from repro.systolic.dataflow import (
    Dataflow,
    analyze_dataflow_cost,
    output_coords,
    traits_of,
)


class TestTraits:
    def test_semi_broadcast_coalesces_c(self):
        traits = traits_of(Dataflow.SEMI_BROADCAST_WS, 8)
        assert traits.c_drain == "row"
        assert traits.c_to_register_file
        assert traits.a_reuse == 8

    def test_weight_stationary_diagonal_c(self):
        traits = traits_of(Dataflow.WEIGHT_STATIONARY, 8)
        assert traits.c_drain == "diagonal"
        assert not traits.c_to_register_file

    def test_output_stationary_burst(self):
        assert traits_of(Dataflow.OUTPUT_STATIONARY, 8).c_drain == "burst"


class TestCostAnalysis:
    def test_semi_broadcast_conflict_free_a_feed(self):
        cost = analyze_dataflow_cost(
            Dataflow.SEMI_BROADCAST_WS, 128, 8, 8, a_banks=8
        )
        assert cost.a_conflict_degree == pytest.approx(1.0)

    def test_semi_broadcast_no_contention_single_unit(self):
        cost = analyze_dataflow_cost(
            Dataflow.SEMI_BROADCAST_WS, 128, 8, 8,
            background_sts_words_per_cycle=8.0,
        )
        assert cost.contention_factor == pytest.approx(1.0)

    def test_ws_slower_than_semi_broadcast(self):
        """Fig 7 (right): staged diagonal C drain stretches streaming."""
        sb = analyze_dataflow_cost(Dataflow.SEMI_BROADCAST_WS, 128, 8, 8)
        ws = analyze_dataflow_cost(Dataflow.WEIGHT_STATIONARY, 128, 8, 8)
        assert ws.effective_streaming_cycles > sb.effective_streaming_cycles
        ratio = ws.total_cycles / sb.total_cycles
        assert 1.1 <= ratio <= 1.6

    def test_ws_penalty_grows_with_array_width(self):
        """Wider (combined) arrays stage more C words per cycle."""
        narrow = analyze_dataflow_cost(Dataflow.WEIGHT_STATIONARY, 128, 8, 8)
        wide = analyze_dataflow_cost(Dataflow.WEIGHT_STATIONARY, 128, 8, 24)
        assert wide.contention_factor > narrow.contention_factor

    def test_output_stationary_drain(self):
        cost = analyze_dataflow_cost(Dataflow.OUTPUT_STATIONARY, 8, 8, 8)
        assert cost.drain_cycles > 0

    def test_bad_extents(self):
        with pytest.raises(SimulationError):
            analyze_dataflow_cost(Dataflow.SEMI_BROADCAST_WS, 0, 8, 8)


class TestOutputCoords:
    def test_semi_broadcast_full_rows(self):
        coords = output_coords(Dataflow.SEMI_BROADCAST_WS, 10, 16, 8, 8)
        assert coords == [(3, n) for n in range(8)]

    def test_ws_diagonal(self):
        coords = output_coords(Dataflow.WEIGHT_STATIONARY, 10, 16, 8, 8)
        rows = {m for m, _n in coords}
        assert len(rows) == len(coords)  # all from distinct C rows

    def test_os_has_no_streaming_schedule(self):
        with pytest.raises(SimulationError):
            output_coords(Dataflow.OUTPUT_STATIONARY, 0, 8, 8, 8)
