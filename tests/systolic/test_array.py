"""Cycle-level systolic array functional and timing tests."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.systolic.array import SystolicArray
from repro.systolic.dataflow import Dataflow


def _random(m, k, n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, k)), rng.standard_normal((k, n))


class TestSemiBroadcast:
    def test_matches_numpy(self):
        a, b = _random(13, 8, 8)
        array = SystolicArray(8, 8, Dataflow.SEMI_BROADCAST_WS)
        result = array.run_gemm(a, b)
        np.testing.assert_allclose(result.c, a @ b)

    def test_rectangular_array(self):
        a, b = _random(20, 8, 16)
        array = SystolicArray(16, 8, Dataflow.SEMI_BROADCAST_WS)
        result = array.run_gemm(a, b)
        np.testing.assert_allclose(result.c, a @ b)

    def test_streaming_cycles(self):
        a, b = _random(128, 8, 8)
        array = SystolicArray(8, 8, Dataflow.SEMI_BROADCAST_WS)
        result = array.run_gemm(a, b)
        # M + K - 1 streaming plus K weight-load cycles.
        assert result.streaming_cycles == 128 + 8 - 1
        assert result.cycles == result.streaming_cycles + 8

    def test_overlapped_weight_load(self):
        a, b = _random(64, 8, 8)
        array = SystolicArray(8, 8, Dataflow.SEMI_BROADCAST_WS)
        overlapped = array.run_gemm(a, b, overlap_weight_load=True)
        exposed = array.run_gemm(a, b)
        assert overlapped.cycles == exposed.cycles - 8

    def test_shape_validation(self):
        array = SystolicArray(8, 8, Dataflow.SEMI_BROADCAST_WS)
        a, b = _random(16, 4, 8)
        with pytest.raises(SimulationError):
            array.run_gemm(a, b)

    def test_mac_and_access_counts(self):
        a, b = _random(32, 8, 8)
        array = SystolicArray(8, 8, Dataflow.SEMI_BROADCAST_WS)
        result = array.run_gemm(a, b)
        assert result.macs == 32 * 8 * 8
        assert result.a_reads == 32 * 8
        assert result.c_writes == 32 * 8


class TestWeightStationary:
    def test_matches_numpy(self):
        a, b = _random(17, 8, 8, seed=3)
        array = SystolicArray(8, 8, Dataflow.WEIGHT_STATIONARY)
        result = array.run_gemm(a, b)
        np.testing.assert_allclose(result.c, a @ b)

    def test_tpu_shape_128_tile(self):
        a, b = _random(16, 16, 16, seed=4)
        array = SystolicArray(16, 16, Dataflow.WEIGHT_STATIONARY)
        result = array.run_gemm(a, b)
        np.testing.assert_allclose(result.c, a @ b)

    def test_longer_drain_than_semi_broadcast(self):
        """The WS diagonal drain adds N-1 cycles over semi-broadcast."""
        a, b = _random(64, 8, 8)
        ws = SystolicArray(8, 8, Dataflow.WEIGHT_STATIONARY).run_gemm(a, b)
        sb = SystolicArray(8, 8, Dataflow.SEMI_BROADCAST_WS).run_gemm(a, b)
        assert ws.streaming_cycles == sb.streaming_cycles + 8 - 1


class TestOutputStationary:
    def test_matches_numpy(self):
        a, b = _random(8, 24, 8, seed=5)
        array = SystolicArray(8, 8, Dataflow.OUTPUT_STATIONARY)
        result = array.run_gemm(a, b)
        np.testing.assert_allclose(result.c, a @ b)

    def test_drain_phase_counted(self):
        a, b = _random(8, 16, 8)
        array = SystolicArray(8, 8, Dataflow.OUTPUT_STATIONARY)
        result = array.run_gemm(a, b)
        assert result.drain_cycles > 0


class TestValidation:
    def test_incompatible_operands(self):
        array = SystolicArray(8, 8, Dataflow.SEMI_BROADCAST_WS)
        with pytest.raises(SimulationError):
            array.run_gemm(np.zeros((4, 3)), np.zeros((5, 4)))

    def test_bad_dims(self):
        with pytest.raises(SimulationError):
            SystolicArray(0, 8, Dataflow.SEMI_BROADCAST_WS)

    def test_num_pes(self):
        assert SystolicArray(8, 16, Dataflow.SEMI_BROADCAST_WS).num_pes == 128
