"""Closed-loop arrival clients: completion-paced releases plus think time."""

import pytest

from repro.api import ScenarioSpec, Session, StreamSpec, TimingCache
from repro.errors import ConfigError, SchedulingError
from repro.serving import ArrivalSpec, generate_arrivals
from repro.schedule.resources import ResourceClaim, ResourceKind
from repro.schedule.timeline import OpTask, TimelineScheduler


def _session() -> Session:
    return Session(cache=TimingCache())


def _closed_loop_scenario(think_s: float, frames: int = 4) -> ScenarioSpec:
    return ScenarioSpec(
        name="closed",
        platform="sma:2",
        frames=frames,
        streams=(
            StreamSpec(
                name="client",
                model="alexnet",
                arrivals=ArrivalSpec(kind="closed_loop", think_s=think_s),
            ),
        ),
    )


class TestSpecValidation:
    def test_defaults_think_to_zero(self):
        spec = ArrivalSpec(kind="closed_loop")
        assert spec.think_s == 0.0

    def test_round_trips_through_json(self):
        spec = ArrivalSpec(kind="closed_loop", think_s=0.25)
        assert ArrivalSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict()["think_s"] == 0.25

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_hz": 10.0},
            {"period_s": 0.1},
            {"times_s": (0.0, 1.0)},
        ],
    )
    def test_rejects_generator_fields(self, kwargs):
        with pytest.raises(ConfigError, match="closed_loop"):
            ArrivalSpec(kind="closed_loop", **kwargs)

    def test_rejects_negative_think(self):
        with pytest.raises(ConfigError, match="think_s"):
            ArrivalSpec(kind="closed_loop", think_s=-0.1)

    def test_think_is_closed_loop_only(self):
        with pytest.raises(ConfigError, match="think_s"):
            ArrivalSpec(kind="poisson", rate_hz=5.0, think_s=0.1)

    def test_no_static_schedule(self):
        spec = ArrivalSpec(kind="closed_loop", think_s=0.1)
        with pytest.raises(ConfigError, match="no static"):
            generate_arrivals(spec, 4)
        stream = StreamSpec(name="a", model="alexnet", arrivals=spec)
        with pytest.raises(ConfigError, match="static"):
            stream.release_times(4)
        assert stream.closed_loop

    def test_cannot_be_rerated(self):
        with pytest.raises(ConfigError, match="re-rated"):
            ArrivalSpec(kind="closed_loop", think_s=0.1).at_rate(10.0)


class TestClosedLoopServing:
    def test_releases_pace_on_completion_plus_think(self):
        think = 0.02
        report = _session().run_serving(_closed_loop_scenario(think))
        frames = report.stream("client").frames
        assert len(frames) == 4
        assert frames[0].release_s == 0.0
        for prev, nxt in zip(frames, frames[1:]):
            assert nxt.release_s == pytest.approx(
                prev.completion_s + think, abs=1e-15
            )

    def test_zero_think_back_to_back(self):
        report = _session().run_serving(_closed_loop_scenario(0.0))
        frames = report.stream("client").frames
        for prev, nxt in zip(frames, frames[1:]):
            assert nxt.release_s == prev.completion_s
            # Latency is measured from the dynamic release, so every
            # frame of an uncontended closed loop sees the same latency.
            assert nxt.latency_s == pytest.approx(frames[0].latency_s)

    def test_deterministic_across_runs(self):
        one = _session().run_serving(_closed_loop_scenario(0.01))
        two = _session().run_serving(_closed_loop_scenario(0.01))
        assert one == two

    def test_closed_loop_never_queues_behind_itself(self):
        """A closed-loop client offers exactly one frame at a time, so a
        queue-cap admission policy has nothing to drop."""
        from repro.serving import QosSpec

        spec = _closed_loop_scenario(0.0, frames=6)
        spec = ScenarioSpec.from_dict(
            {**spec.to_dict(), "qos": {"kind": "queue_cap", "cap": 1}}
        )
        report = _session().run_serving(spec)
        assert report.dropped == 0
        assert report.completed == 6

    def test_mixed_open_and_closed_loop_streams(self):
        spec = ScenarioSpec(
            name="mixed",
            platform="sma:2",
            frames=3,
            streams=(
                StreamSpec(
                    name="open",
                    model="goturn",
                    arrivals=ArrivalSpec(
                        kind="poisson", rate_hz=50.0, seed=4
                    ),
                ),
                StreamSpec(
                    name="closed",
                    model="alexnet",
                    arrivals=ArrivalSpec(kind="closed_loop", think_s=0.005),
                ),
            ),
        )
        report = _session().run_serving(spec)
        closed = report.stream("closed").frames
        for prev, nxt in zip(closed, closed[1:]):
            assert nxt.release_s == pytest.approx(
                prev.completion_s + 0.005, abs=1e-15
            )
        # The open-loop stream keeps its seeded trace regardless.
        open_frames = report.stream("open").frames
        expected = spec.stream("open").release_times(3)
        assert tuple(f.release_s for f in open_frames) == expected

    def test_open_loop_scenarios_unchanged(self):
        """Regression guard: the pacing seam must not perturb open-loop
        scheduling (think_s=None everywhere is the old engine path)."""
        spec = ScenarioSpec(
            name="open",
            platform="sma:2",
            frames=3,
            streams=(
                StreamSpec(name="a", model="alexnet", period_s=0.01),
            ),
        )
        report = _session().run_scenario(spec)
        assert [s.frame for s in report.segments] == sorted(
            s.frame for s in report.segments
        )


class TestEngineThinkValidation:
    def _claim(self):
        return (ResourceClaim(ResourceKind.SIMD, 1.0),)

    def test_think_requires_deps(self):
        with pytest.raises(SchedulingError, match="dependencies"):
            OpTask(
                uid=0, name="t", seconds=1.0, claims=self._claim(),
                think_s=0.5,
            )

    def test_negative_think_rejected(self):
        with pytest.raises(SchedulingError, match="negative think"):
            OpTask(
                uid=1, name="t", seconds=1.0, claims=self._claim(),
                deps=(0,), think_s=-1.0,
            )

    def test_paced_task_waits_out_think_time(self):
        tasks = [
            OpTask(uid=0, name="a", seconds=1.0, claims=self._claim()),
            OpTask(
                uid=1, name="b", seconds=1.0, claims=self._claim(),
                deps=(0,), think_s=2.0,
            ),
        ]
        timeline = TimelineScheduler("fifo").run(tasks)
        ends = {seg.uid: seg.end_s for seg in timeline.segments}
        starts = {seg.uid: seg.start_s for seg in timeline.segments}
        assert ends[0] == 1.0
        assert starts[1] == 3.0  # 1.0 completion + 2.0 think
        assert timeline.makespan_s == 4.0
