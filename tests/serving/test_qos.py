"""Admission control on the timeline engine (synthetic task sets)."""

import pytest

from repro.errors import ConfigError
from repro.api.results import ServingReport
from repro.schedule.resources import ResourceClaim, ResourceKind
from repro.schedule.streams import ScenarioSpec, StreamSpec, instantiate_frames
from repro.schedule.timeline import OpTask, TimelineScheduler
from repro.serving.qos import (
    DropLatePolicy,
    QosSpec,
    QueueCapPolicy,
    ShedPolicy,
    make_qos,
)
from repro.serving.traces import ArrivalSpec

SIMD = (ResourceClaim(ResourceKind.SIMD),)


def template(count, seconds=0.5):
    return [
        OpTask(
            uid=index,
            name=f"op{index}",
            seconds=seconds,
            claims=SIMD,
            deps=(index - 1,) if index else (),
        )
        for index in range(count)
    ]


def overloaded_spec(qos, *, deadline=1.2, frames=8, rate=2.0, policy="fifo"):
    """1 s of work per frame, offered every 0.5 s: the backlog grows."""
    return ScenarioSpec(
        name="overload",
        frames=frames,
        policy=policy,
        qos=qos,
        streams=(
            StreamSpec(
                name="a",
                model="m",
                deadline_s=deadline,
                arrivals=ArrivalSpec(kind="fixed", rate_hz=rate),
            ),
        ),
    )


def run(spec, chain=2, seconds=0.5):
    plan = instantiate_frames(spec, {
        stream.name: template(chain, seconds) for stream in spec.streams
    })
    timeline = TimelineScheduler(spec.policy, qos=make_qos(spec.qos)).run(
        plan.tasks
    )
    return plan, timeline


class TestSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(ConfigError):
            QosSpec(kind="banana")

    def test_caps_required(self):
        with pytest.raises(ConfigError):
            QosSpec(kind="queue_cap")
        with pytest.raises(ConfigError):
            QosSpec(kind="shed", cap=0)

    def test_negative_slack(self):
        with pytest.raises(ConfigError):
            QosSpec(kind="drop_late", slack_s=-1.0)

    def test_round_trip(self):
        for spec in (
            QosSpec(kind="drop_late", slack_s=0.01),
            QosSpec(kind="queue_cap", cap=3),
            QosSpec(kind="shed", cap=5, min_priority=2.0),
        ):
            assert QosSpec.from_dict(spec.to_dict()) == spec

    def test_make_qos_resolution(self):
        assert make_qos(None) is None
        assert isinstance(make_qos("drop_late"), DropLatePolicy)
        assert isinstance(make_qos(QosSpec(kind="queue_cap", cap=1)),
                          QueueCapPolicy)
        assert isinstance(make_qos({"kind": "shed", "cap": 2}), ShedPolicy)


class TestDropLate:
    def test_drops_frames_that_cannot_start_by_expiry(self):
        plan, timeline = run(overloaded_spec(QosSpec(kind="drop_late")))
        assert timeline.drops
        # Drop times land exactly on release + deadline (expiry events).
        for record in timeline.drops:
            release = plan.runs[record.frame].release_s
            assert record.time_s == pytest.approx(release + 1.2)
        # Whole frames are cancelled: both chain tasks of a dropped frame.
        dropped_frames = {record.frame for record in timeline.drops}
        for frame in dropped_frames:
            uids = plan.runs[frame].uids
            assert all(
                any(record.uid == uid for record in timeline.drops)
                for uid in uids
            )
        # Dropped tasks never produce segments.
        segment_uids = {segment.uid for segment in timeline.segments}
        assert segment_uids.isdisjoint(
            record.uid for record in timeline.drops
        )
        assert len(timeline.segments) + len(timeline.drops) == len(plan.tasks)

    def test_drops_bound_the_backlog(self):
        no_qos_plan, no_qos = run(overloaded_spec(None))
        _plan, with_qos = run(overloaded_spec(QosSpec(kind="drop_late")))
        assert not no_qos.drops
        assert with_qos.drops
        assert with_qos.makespan_s < no_qos.makespan_s

    def test_slack_delays_the_drop(self):
        tight = overloaded_spec(QosSpec(kind="drop_late"))
        slack = overloaded_spec(QosSpec(kind="drop_late", slack_s=10.0))
        _plan, tight_timeline = run(tight)
        _plan, slack_timeline = run(slack)
        assert len(slack_timeline.drops) < len(tight_timeline.drops)

    def test_streams_without_deadline_never_drop(self):
        spec = ScenarioSpec(
            name="no-deadline",
            frames=6,
            qos=QosSpec(kind="drop_late"),
            streams=(
                StreamSpec(
                    name="a",
                    model="m",
                    arrivals=ArrivalSpec(kind="fixed", rate_hz=2.0),
                ),
            ),
        )
        _plan, timeline = run(spec)
        assert not timeline.drops


class TestQueueCap:
    def test_caps_waiting_frames_per_stream(self):
        spec = ScenarioSpec(
            name="cap",
            frames=8,
            qos=QosSpec(kind="queue_cap", cap=1),
            streams=(
                StreamSpec(
                    name="a",
                    model="m",
                    arrivals=ArrivalSpec(kind="fixed", rate_hz=4.0),
                ),
            ),
        )
        plan, timeline = run(spec)
        assert timeline.drops
        assert all(record.reason == "queue_full" for record in timeline.drops)
        # With every arrival beyond one waiting frame dropped, completed
        # frames are back-to-back: the backlog never exceeds cap.
        completed = {segment.frame for segment in timeline.segments}
        dropped = {record.frame for record in timeline.drops}
        assert completed.isdisjoint(dropped)
        assert completed | dropped == {run.frame for run in plan.runs}


class TestShed:
    def test_sheds_lowest_priority_first(self):
        spec = ScenarioSpec(
            name="shed",
            frames=6,
            policy="priority",
            qos=QosSpec(kind="shed", cap=2),
            streams=(
                StreamSpec(
                    name="hi", model="m", priority=4.0,
                    arrivals=ArrivalSpec(kind="fixed", rate_hz=4.0),
                ),
                StreamSpec(
                    name="lo", model="m", priority=1.0,
                    arrivals=ArrivalSpec(kind="fixed", rate_hz=4.0),
                ),
            ),
        )
        plan, timeline = run(spec)
        assert timeline.drops
        assert all(record.reason == "load_shed" for record in timeline.drops)
        # Low priority sheds first (and more); high priority is only shed
        # once the low-priority queue is exhausted and overload persists.
        assert timeline.drops[0].stream == "lo"
        by_stream = {"hi": 0, "lo": 0}
        for record in timeline.drops:
            by_stream[record.stream] += 1
        assert by_stream["lo"] > by_stream["hi"]

    def test_min_priority_protects_streams(self):
        spec = ScenarioSpec(
            name="shed-protected",
            frames=6,
            policy="priority",
            qos=QosSpec(kind="shed", cap=1, min_priority=0.5),
            streams=(
                StreamSpec(
                    name="hi", model="m", priority=4.0,
                    arrivals=ArrivalSpec(kind="fixed", rate_hz=4.0),
                ),
                StreamSpec(
                    name="lo", model="m", priority=1.0,
                    arrivals=ArrivalSpec(kind="fixed", rate_hz=4.0),
                ),
            ),
        )
        _plan, timeline = run(spec)
        # Every stream is at or above the floor: nothing sheddable.
        assert not timeline.drops


class TestServingReportAccounting:
    def test_drop_counts_flow_into_report(self):
        spec = overloaded_spec(QosSpec(kind="drop_late"))
        plan, timeline = run(spec)
        report = ServingReport.from_timeline(spec, "test", timeline, plan)
        stream = report.stream("a")
        assert stream.offered == len(plan.runs)
        assert stream.dropped == len(
            {record.frame for record in timeline.drops}
        )
        assert stream.completed == stream.offered - stream.dropped
        assert report.dropped == stream.dropped
        assert 0.0 < report.drop_fraction < 1.0
        dropped_frames = [
            frame for frame in stream.frames if frame.dropped
        ]
        assert all(frame.drop_reason == "deadline_slip"
                   for frame in dropped_frames)
        assert all(frame.completion_s is None for frame in dropped_frames)

    def test_report_round_trips_with_drops(self):
        spec = overloaded_spec(QosSpec(kind="queue_cap", cap=1))
        plan, timeline = run(spec)
        report = ServingReport.from_timeline(spec, "test", timeline, plan)
        assert ServingReport.from_json(report.to_json()) == report
        assert report.qos == {"kind": "queue_cap", "cap": 1}
