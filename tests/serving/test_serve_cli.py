"""`repro serve`: table/JSON output and the trace-replay golden contract.

The determinism satellite: a seeded Poisson serving run, its arrival
trace serialized to JSON, must replay to the *byte-identical*
ServingReport — in-process and across processes (fresh interpreter,
fresh caches) via ``repro serve --trace``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[2]

SERVE_ARGS = [
    "serve",
    "-p", "sma:2",
    "--frames", "3",
    "--policy", "priority",
    "--qos", "drop_late:0.05",
    "--seed", "9",
    "-s", "alexnet@deadline=0.05,rate=40,prio=2,seed=9",
    "-s", "goturn@rate=40,seed=9",
]


class TestServeTable:
    def test_table_output(self, capsys):
        assert main(SERVE_ARGS) == 0
        out = capsys.readouterr().out
        for needle in ("serving", "p95_ms", "goodput_fps", "alexnet",
                       "makespan", "qos=drop_late"):
            assert needle in out

    def test_json_output(self, capsys):
        assert main(SERVE_ARGS + ["--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "serving"
        assert data["platform"] == "sma:2"
        assert data["offered"] == 6
        assert data["qos"] == {"kind": "drop_late", "slack_s": 0.05}

    def test_explore_output(self, capsys):
        assert main([
            "serve", "-p", "sma:2", "--frames", "2",
            "-s", "alexnet@deadline=0.1",
            "--explore", "--rates", "20,40", "--slo-ms", "100",
        ]) == 0
        out = capsys.readouterr().out
        assert "SLO exploration" in out
        assert "max sustainable rate on sma:2" in out


class TestTraceReplayGolden:
    def test_in_process_replay_is_bit_identical(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(
            SERVE_ARGS + ["--save-trace", str(trace_path), "--json"]
        ) == 0
        original = capsys.readouterr().out
        assert trace_path.exists()
        assert main(
            SERVE_ARGS + ["--trace", str(trace_path), "--json"]
        ) == 0
        replayed = capsys.readouterr().out
        assert replayed == original

    def test_cross_process_replay_is_bit_identical(self, tmp_path):
        """Two fresh interpreters: seeded run + trace replay must agree."""
        trace_path = tmp_path / "trace.json"
        env = {
            **os.environ,
            "PYTHONPATH": str(REPO_ROOT / "src"),
        }

        def serve(extra):
            result = subprocess.run(
                [sys.executable, "-m", "repro", *SERVE_ARGS, *extra],
                capture_output=True,
                text=True,
                env=env,
                cwd=REPO_ROOT,
                timeout=300,
            )
            assert result.returncode == 0, result.stderr
            return result.stdout

        original = serve(["--save-trace", str(trace_path), "--json"])
        replayed = serve(["--trace", str(trace_path), "--json"])
        assert json.loads(original)["kind"] == "serving"
        assert replayed == original

    def test_trace_file_contents_match_spec_arrivals(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(
            SERVE_ARGS + ["--save-trace", str(trace_path), "--json"]
        ) == 0
        capsys.readouterr()
        data = json.loads(trace_path.read_text())
        assert data["kind"] == "arrival_trace"
        assert set(data["streams"]) == {"alexnet", "goturn"}
        assert data["frames"] == 3
        for times in data["streams"].values():
            assert len(times) == 3
            assert times == sorted(times)
