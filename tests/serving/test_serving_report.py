"""ServingReport plumbing: requests, session, sweep/store integration."""

import pytest

from repro.api import (
    ScenarioSpec,
    ServingReport,
    Session,
    SimRequest,
    StreamSpec,
    report_from_dict,
)
from repro.errors import ConfigError
from repro.gemm.cache import TimingCache
from repro.serving import ArrivalSpec, QosSpec
from repro.serving.slo import apply_trace, scenario_at_rate, trace_scenario
from repro.sweep import ResultStore, grid_from_requests, run_sweep
from repro.sweep.grid import request_fingerprint


def serving_scenario(frames=3, qos=None):
    return ScenarioSpec(
        name="serving-report",
        frames=frames,
        policy="priority",
        qos=qos,
        streams=(
            StreamSpec(
                name="a",
                model="alexnet",
                priority=2.0,
                deadline_s=0.100,
                arrivals=ArrivalSpec(kind="poisson", rate_hz=30.0, seed=4),
            ),
            StreamSpec(
                name="b",
                model="goturn",
                arrivals=ArrivalSpec(kind="poisson", rate_hz=30.0, seed=4),
            ),
        ),
    )


@pytest.fixture(scope="module")
def session():
    return Session()


@pytest.fixture(scope="module")
def report(session):
    return session.run_serving(serving_scenario(), "sma:2")


class TestSimRequestServing:
    def test_kind_and_round_trip(self):
        request = SimRequest(
            platform="sma:2", scenario=serving_scenario(), serving=True
        )
        assert request.kind == "serving"
        restored = SimRequest.from_json(request.to_json())
        assert restored == request
        assert restored.kind == "serving"

    def test_serving_requires_scenario(self):
        with pytest.raises(ConfigError):
            SimRequest(platform="sma:2", model="alexnet", serving=True)

    def test_serving_and_schedule_fingerprints_differ(self):
        scenario = serving_scenario()
        plain = SimRequest(platform="sma:2", scenario=scenario)
        serving = SimRequest(
            platform="sma:2", scenario=scenario, serving=True
        )
        assert request_fingerprint(plain) != request_fingerprint(serving)

    def test_closed_loop_fingerprint_unchanged_by_serving_fields(self):
        # The serving/arrivals/qos keys are emitted only when set, so
        # every pre-serving request fingerprint (and with it the CI
        # store-diff regression gate) is untouched by this refactor.
        scenario = ScenarioSpec(
            name="x",
            frames=2,
            streams=(StreamSpec(name="a", model="alexnet", period_s=0.1),),
        )
        request = SimRequest(platform="sma:2", scenario=scenario)
        payload = request.to_json()
        for needle in ("arrivals", "qos", "serving"):
            assert needle not in payload


class TestRunServing:
    def test_accounting(self, report):
        assert report.platform == "sma:2"
        assert report.offered == report.completed + report.dropped
        assert report.offered == 6  # 3 frames x 2 streams
        for stream in report.streams:
            assert stream.p50_s <= stream.p95_s <= stream.p99_s
            assert len(stream.frames) == stream.offered
        assert report.goodput_fps > 0

    def test_json_round_trip(self, report):
        restored = ServingReport.from_json(report.to_json())
        assert restored == report
        assert report_from_dict(report.to_dict()) == report

    def test_deterministic_across_sessions(self, report):
        fresh = Session(cache=TimingCache())
        again = fresh.run_serving(serving_scenario(), "sma:2")
        assert again.to_json() == report.to_json()

    def test_matches_run_request(self, session, report):
        request = SimRequest(
            platform="sma:2", scenario=serving_scenario(), serving=True
        )
        assert session.run_request(request) == report

    def test_trace_replay_reproduces_exactly(self, session, report):
        scenario = serving_scenario()
        trace = trace_scenario(scenario)
        replayed = session.run_serving(apply_trace(scenario, trace), "sma:2")
        assert replayed.to_json() == report.to_json()


class TestServingSweep:
    def test_rides_store_and_resume(self, session, report):
        request = SimRequest(
            platform="sma:2", scenario=serving_scenario(), serving=True
        )
        grid = grid_from_requests([request])
        assert grid.points[0].request_id.startswith("serving-")
        with ResultStore(":memory:") as store:
            first = run_sweep(grid, store=store, session=session)
            assert first.reports[0] == report
            resumed = run_sweep(
                grid, store=store, resume=True, session=session
            )
            assert not resumed.executed
            assert resumed.reports[0] == report

    def test_scenario_at_rate_renames_and_rerates(self):
        scenario = serving_scenario()
        rated = scenario_at_rate(scenario, 12.5)
        assert rated.name == "serving-report@12.5hz"
        assert all(
            stream.arrivals.rate_hz == 12.5 for stream in rated.streams
        )
        # Closed-loop streams gain a process; kinds are preserved.
        assert all(
            stream.arrivals.kind == "poisson" for stream in rated.streams
        )


class TestScheduleReportDrops:
    def test_schedule_report_counts_dropped_frames(self, session):
        scenario = serving_scenario(qos=QosSpec(kind="queue_cap", cap=1))
        serving = session.run_serving(scenario, "sma:2")
        schedule = session.run_scenario(scenario, "sma:2")
        for stream in schedule.streams:
            counterpart = serving.stream(stream.name)
            assert stream.frames_dropped == counterpart.dropped
            assert stream.frames_run == counterpart.completed
