"""SLO auto-search: bisect on arrival rate to the max sustainable rate."""

import pytest

from repro.api import ScenarioSpec, Session, StreamSpec, TimingCache
from repro.errors import ConfigError
from repro.serving.slo import explore_slo
from repro.sweep import ResultStore

SCENARIO = ScenarioSpec(
    name="bisect",
    platform=None,
    frames=4,
    streams=(
        StreamSpec(name="det", model="alexnet", deadline_s=0.004),
    ),
)

SLO_KWARGS = dict(slo_s=0.004, percentile_q=95.0, seed=3)


def _session() -> Session:
    return Session(cache=TimingCache())


class TestBisect:
    def test_converges_within_tolerance(self):
        report = explore_slo(
            SCENARIO,
            ["sma:2"],
            (8.0, 512.0),
            mode="bisect",
            tolerance_hz=8.0,
            session=_session(),
            **SLO_KWARGS,
        )
        assert report.mode == "bisect"
        best = report.max_sustainable_rate("sma:2")
        assert best is not None
        # The bracket collapsed: some probed rate within tolerance above
        # the best one must have failed.
        failing = [
            p.rate_hz
            for p in report.platform_points("sma:2")
            if not p.meets_slo
        ]
        assert failing and min(failing) - best <= 8.0
        assert min(failing) > best

    def test_bisect_agrees_with_grid(self):
        """The bisect answer brackets the grid answer on the same rates."""
        rates = (8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)
        grid = explore_slo(
            SCENARIO, ["sma:2"], rates, session=_session(), **SLO_KWARGS
        )
        bisect = explore_slo(
            SCENARIO,
            ["sma:2"],
            (min(rates), max(rates)),
            mode="bisect",
            tolerance_hz=4.0,
            session=_session(),
            **SLO_KWARGS,
        )
        grid_best = grid.max_sustainable_rate("sma:2")
        bisect_best = bisect.max_sustainable_rate("sma:2")
        assert grid_best is not None and bisect_best is not None
        # Bisect refines between grid points, so it can only do better
        # than the coarse grid, and never by more than one grid gap.
        assert bisect_best >= grid_best
        failing_grid = [
            p.rate_hz for p in grid.platform_points("sma:2") if not p.meets_slo
        ]
        if failing_grid:
            assert bisect_best <= min(failing_grid)

    def test_unsustainable_floor_stops_early(self):
        report = explore_slo(
            SCENARIO,
            ["sma:2"],
            (1e4, 1e6),
            mode="bisect",
            tolerance_hz=1e4,
            session=_session(),
            slo_s=1e-9,  # nothing can meet a nanosecond SLO
            percentile_q=95.0,
            seed=3,
        )
        assert report.max_sustainable_rate("sma:2") is None
        # Only the floor probe ran: the bracket invariant never held.
        assert len(report.points) == 1

    def test_fully_sustainable_bracket_stops_early(self):
        report = explore_slo(
            SCENARIO,
            ["sma:2"],
            (1.0, 2.0),
            mode="bisect",
            tolerance_hz=0.5,
            session=_session(),
            slo_s=10.0,  # everything meets a 10-second SLO
            percentile_q=95.0,
            seed=3,
        )
        assert report.max_sustainable_rate("sma:2") == 2.0
        assert len(report.points) == 2  # floor + ceiling only

    def test_store_keys_interleave_with_grid(self, tmp_path):
        """Bisect probes resume from grid results and vice versa."""
        rates = (8.0, 512.0)
        with ResultStore(tmp_path / "slo.sqlite") as store:
            explore_slo(
                SCENARIO,
                ["sma:2"],
                rates,
                store=store,
                session=_session(),
                **SLO_KWARGS,
            )
            stored_after_grid = len(store)
            explore_slo(
                SCENARIO,
                ["sma:2"],
                rates,
                mode="bisect",
                tolerance_hz=128.0,
                store=store,
                resume=True,
                session=_session(),
                **SLO_KWARGS,
            )
            # The bracket endpoints were already stored by grid mode;
            # only interior bisect probes added rows.
            assert len(store) > stored_after_grid
            probes = len(store) - stored_after_grid
            assert probes <= 3  # log2(504/128) rounds


class TestValidation:
    def test_unknown_mode(self):
        with pytest.raises(ConfigError, match="search mode"):
            explore_slo(
                SCENARIO, ["sma:2"], (1.0, 2.0), mode="newton", **SLO_KWARGS
            )

    def test_bisect_needs_a_bracket(self):
        with pytest.raises(ConfigError, match="bracket"):
            explore_slo(
                SCENARIO, ["sma:2"], (10.0,), mode="bisect", **SLO_KWARGS
            )

    def test_bisect_needs_positive_tolerance(self):
        with pytest.raises(ConfigError, match="tolerance"):
            explore_slo(
                SCENARIO,
                ["sma:2"],
                (1.0, 2.0),
                mode="bisect",
                tolerance_hz=0.0,
                **SLO_KWARGS,
            )
