"""Acceptance: the SLO explorer reproduces the paper's serving claim.

At equal silicon area (the Fig 8 iso-area configurations), temporal
integration must sustain at least as much open-loop driving traffic under
the paper's 100 ms latency target as the spatially-integrated TensorCore
baseline — flexibility without the efficiency give-back.
"""

import pytest

from repro.api import Session
from repro.apps import open_loop_driving_scenario
from repro.errors import ConfigError
from repro.serving.slo import SloReport, explore_slo

RATES = (10.0, 11.0, 12.0, 12.5, 13.0, 14.0)


@pytest.fixture(scope="module")
def exploration() -> SloReport:
    session = Session()
    scenario = open_loop_driving_scenario(frames=12, seed=3)
    return explore_slo(
        scenario,
        platforms=("sma:3", "gpu-tc"),
        rates=RATES,
        slo_s=0.100,
        session=session,
    )


class TestDrivingSlo:
    def test_sma_sustains_at_least_tc_rate_at_equal_area(self, exploration):
        sma = exploration.max_sustainable_rate("sma:3")
        tc = exploration.max_sustainable_rate("gpu-tc")
        assert sma is not None, "sma:3 must sustain some driving rate"
        assert tc is not None, "gpu-tc must sustain some driving rate"
        assert sma >= tc

    def test_sma_tail_latency_dominates_tc_pointwise(self, exploration):
        for rate in RATES:
            sma = next(
                p for p in exploration.platform_points("sma:3")
                if p.rate_hz == rate
            )
            tc = next(
                p for p in exploration.platform_points("gpu-tc")
                if p.rate_hz == rate
            )
            assert sma.p95_s <= tc.p95_s * 1.05, (
                f"sma:3 p95 should not trail gpu-tc at {rate} Hz"
            )

    def test_latency_monotone_in_offered_rate(self, exploration):
        for platform in exploration.platforms:
            points = exploration.platform_points(platform)
            tails = [point.p95_s for point in points]
            assert tails == sorted(tails)

    def test_report_export(self, exploration):
        data = exploration.to_dict()
        assert data["kind"] == "slo"
        assert len(data["points"]) == len(RATES) * 2
        assert set(data["max_sustainable"]) == {"sma:3", "gpu-tc"}

    def test_explorer_input_validation(self):
        scenario = open_loop_driving_scenario(frames=2)
        with pytest.raises(ConfigError):
            explore_slo(scenario, platforms=(), rates=(1.0,), slo_s=0.1)
        with pytest.raises(ConfigError):
            explore_slo(scenario, platforms=("sma:3",), rates=(), slo_s=0.1)
        with pytest.raises(ConfigError):
            explore_slo(
                scenario, platforms=("sma:3",), rates=(1.0,), slo_s=0.0
            )
