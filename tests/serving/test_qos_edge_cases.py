"""Drop-cascade edge cases of the admission policies.

Three corners the broad QoS suite skips over: a deadline expiry landing
*exactly* on the event that would have started the frame, a same-instant
burst against ``queue_cap``, and drops interleaving with closed-loop
think-time pacing (where a drop, not a completion, paces the next
release). Timing assertions mirror the engine's own float arithmetic so
they hold bit-for-bit, and the fuzz oracle pack runs over every timeline
to tie these shapes to the campaign invariants.
"""

import pytest

from repro.errors import ConfigError
from repro.fuzz.oracles import (
    assert_conservation,
    assert_frame_atomicity,
    assert_monotone_events,
)
from repro.schedule.resources import ResourceClaim, ResourceKind
from repro.schedule.streams import ScenarioSpec, StreamSpec, instantiate_frames
from repro.schedule.timeline import OpTask, TimelineScheduler
from repro.serving.qos import QosSpec, make_qos
from repro.serving.traces import ArrivalSpec

SIMD = (ResourceClaim(ResourceKind.SIMD),)


def template(seconds):
    return [OpTask(uid=0, name="op0", seconds=seconds, claims=SIMD)]


def run(spec, seconds):
    plan = instantiate_frames(spec, {
        stream.name: template(seconds) for stream in spec.streams
    })
    timeline = TimelineScheduler(spec.policy, qos=make_qos(spec.qos)).run(
        plan.tasks
    )
    return plan, timeline


def check_oracles(plan, timeline):
    assert_conservation(plan.tasks, timeline)
    assert_frame_atomicity(plan.tasks, timeline)
    assert_monotone_events(plan.tasks, timeline)


class TestExactDeadlineAtEventBoundary:
    """A frame whose expiry coincides with the completion that would
    have let it start: ``now >= expiry`` means the drop wins the tie."""

    def spec(self):
        return ScenarioSpec(
            name="boundary",
            frames=2,
            qos=QosSpec(kind="drop_late"),
            streams=(
                StreamSpec(
                    name="a",
                    model="m",
                    deadline_s=0.5,
                    arrivals=ArrivalSpec(kind="replay", times_s=(0.0, 0.5)),
                ),
            ),
        )

    def test_expiry_at_completion_event_drops(self):
        # Frame 0 occupies [0, 1]; frame 1 arrives at 0.5 with expiry
        # 0.5 + 0.5 = 1.0 — the very instant frame 0 completes.
        plan, timeline = run(self.spec(), seconds=1.0)
        assert len(timeline.drops) == 1
        record = timeline.drops[0]
        assert record.frame == 1
        assert record.reason == "deadline_slip"
        assert record.time_s == 0.5 + 0.5  # exact: the expiry event
        # The dropped frame never ran; the makespan is frame 0 alone.
        assert {segment.frame for segment in timeline.segments} == {0}
        assert timeline.makespan_s == 1.0
        check_oracles(plan, timeline)

    def test_expiry_after_completion_event_runs(self):
        # Shrink the work by any amount and the frame starts instead:
        # at the completion event its expiry is still in the future.
        plan, timeline = run(self.spec(), seconds=0.75)
        assert not timeline.drops
        starts = {
            segment.frame: segment.start_s for segment in timeline.segments
        }
        assert starts[1] == 0.75  # started the instant the machine freed
        check_oracles(plan, timeline)


class TestQueueCapBurst:
    """A same-instant burst against ``queue_cap``: the cull happens at
    the arrival event itself, oldest arrivals are kept."""

    def spec(self, frames=4):
        return ScenarioSpec(
            name="burst",
            frames=frames,
            qos=QosSpec(kind="queue_cap", cap=1),
            streams=(
                StreamSpec(
                    name="a",
                    model="m",
                    arrivals=ArrivalSpec(
                        kind="replay", times_s=(0.0,) * frames
                    ),
                ),
            ),
        )

    def test_burst_culled_at_arrival_instant(self):
        plan, timeline = run(self.spec(), seconds=0.5)
        # Admission review runs before dispatch at the burst event: all
        # four heads count as queued, the cap keeps the oldest (frame 0,
        # which then dispatches) and culls the rest in one cascade.
        assert {record.frame for record in timeline.drops} == {1, 2, 3}
        assert all(record.time_s == 0.0 for record in timeline.drops)
        assert all(
            record.reason == "queue_full" for record in timeline.drops
        )
        starts = {
            segment.frame: segment.start_s for segment in timeline.segments
        }
        assert starts == {0: 0.0}
        assert timeline.makespan_s == 0.5
        check_oracles(plan, timeline)

    def test_cap_floor_is_enforced(self):
        # cap=0 would silently drop every arrival — rejected at the spec.
        with pytest.raises(ConfigError):
            QosSpec(kind="queue_cap", cap=0)
        with pytest.raises(ConfigError):
            QosSpec(kind="shed", cap=0)


class TestClosedLoopDropPacing:
    """Drops interleaved with closed-loop think-time releases: a dropped
    frame still paces its successor (release = drop time + think)."""

    THINK = 0.3
    DEADLINE = 0.9

    def spec(self):
        return ScenarioSpec(
            name="loop-vs-batch",
            frames=3,
            policy="exclusive",
            qos=QosSpec(kind="drop_late"),
            streams=(
                StreamSpec(
                    name="batch",
                    model="m",
                    priority=4.0,
                    arrivals=ArrivalSpec(
                        kind="replay", times_s=(0.0, 0.0, 0.0)
                    ),
                ),
                StreamSpec(
                    name="loop",
                    model="m",
                    priority=1.0,
                    deadline_s=self.DEADLINE,
                    arrivals=ArrivalSpec(
                        kind="closed_loop", think_s=self.THINK
                    ),
                ),
            ),
        )

    def run_mixed(self):
        spec = self.spec()
        plan = instantiate_frames(spec, {
            "batch": template(1.0),
            "loop": template(0.1),
        })
        timeline = TimelineScheduler(
            spec.policy, qos=make_qos(spec.qos)
        ).run(plan.tasks)
        return spec, plan, timeline

    def test_drops_interleave_with_think_paced_releases(self):
        _spec, plan, timeline = self.run_mixed()
        # The batch stream monopolizes the exclusive machine in [0, 3].
        # Loop frame 0 (released 0) expires at 0.9; frame 1 is paced
        # think_s after that *drop*, expires mid-batch too; frame 2 is
        # paced off frame 1's drop and finally runs once batch drains.
        drops = [r for r in timeline.drops if r.stream == "loop"]
        assert [r.frame for r in drops] == [0, 1]
        assert len(timeline.drops) == len(drops)  # batch never drops

        expiry_0 = self.DEADLINE
        release_1 = expiry_0 + self.THINK
        expiry_1 = release_1 + self.DEADLINE
        assert drops[0].time_s == expiry_0
        assert drops[1].time_s == expiry_1  # same float expr the engine ran

        loop_segments = [
            s for s in timeline.segments if s.stream == "loop"
        ]
        assert [s.frame for s in loop_segments] == [2]
        # Frame 2 was released at drop(1) + think (= 2.4 < 3.0) and had
        # to wait for the batch to drain before dispatch at t=3.0.
        assert loop_segments[0].start_s == 3.0
        check_oracles(plan, timeline)

    def test_frame_records_recover_drop_paced_releases(self):
        spec, plan, timeline = self.run_mixed()
        records = plan.frame_records(timeline)["loop"]
        release_1 = self.DEADLINE + self.THINK
        release_2 = release_1 + self.DEADLINE + self.THINK
        assert records[1].release_s == release_1
        assert records[2].release_s == release_2
        assert records[0].dropped and records[1].dropped
        assert not records[2].dropped
