"""Arrival-trace generators: determinism, validation, and replay."""

import pytest

from repro.errors import ConfigError
from repro.schedule.resources import ResourceClaim, ResourceKind
from repro.schedule.streams import ScenarioSpec, StreamSpec, instantiate_frames
from repro.schedule.timeline import OpTask
from repro.serving.traces import (
    ArrivalSpec,
    ArrivalTrace,
    generate_arrivals,
    stream_seed,
)

SIMD = (ResourceClaim(ResourceKind.SIMD),)


def template(count):
    return [
        OpTask(
            uid=index,
            name=f"op{index}",
            seconds=0.010,
            claims=SIMD,
            deps=(index - 1,) if index else (),
        )
        for index in range(count)
    ]


class TestSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(ConfigError):
            ArrivalSpec(kind="uniform", rate_hz=1.0)

    def test_poisson_needs_rate(self):
        with pytest.raises(ConfigError):
            ArrivalSpec(kind="poisson")

    def test_rate_must_be_positive(self):
        with pytest.raises(ConfigError):
            ArrivalSpec(kind="poisson", rate_hz=0.0)

    def test_fixed_needs_exactly_one_of_rate_or_period(self):
        with pytest.raises(ConfigError):
            ArrivalSpec(kind="fixed")
        with pytest.raises(ConfigError):
            ArrivalSpec(kind="fixed", rate_hz=2.0, period_s=0.5)

    def test_replay_needs_sorted_nonnegative_times(self):
        with pytest.raises(ConfigError):
            ArrivalSpec(kind="replay")
        with pytest.raises(ConfigError):
            ArrivalSpec(kind="replay", times_s=(0.2, 0.1))
        with pytest.raises(ConfigError):
            ArrivalSpec(kind="replay", times_s=(-0.1, 0.1))

    def test_replay_cannot_be_rerated(self):
        spec = ArrivalSpec(kind="replay", times_s=(0.0, 1.0))
        with pytest.raises(ConfigError):
            spec.at_rate(10.0)

    def test_mmpp_parameter_validation(self):
        with pytest.raises(ConfigError):
            ArrivalSpec(kind="mmpp", rate_hz=5.0, burst_fraction=1.5)
        with pytest.raises(ConfigError):
            ArrivalSpec(kind="mmpp", rate_hz=5.0, dwell=0)

    def test_json_round_trip(self):
        for spec in (
            ArrivalSpec(kind="poisson", rate_hz=12.5, seed=7),
            ArrivalSpec(kind="fixed", period_s=0.04),
            ArrivalSpec(kind="mmpp", rate_hz=4.0, burst_rate_hz=20.0,
                        burst_fraction=0.2, dwell=4, seed=3),
            ArrivalSpec(kind="replay", times_s=(0.0, 0.5, 1.25)),
        ):
            assert ArrivalSpec.from_dict(spec.to_dict()) == spec


class TestGenerators:
    def test_fixed_matches_periodic_release_bit_for_bit(self):
        # Closed-loop periodic release is the degenerate fixed trace.
        period = 0.033
        stream = StreamSpec(name="a", model="m", period_s=period)
        open_loop = StreamSpec(
            name="a",
            model="m",
            arrivals=ArrivalSpec(kind="fixed", period_s=period),
        )
        assert stream.release_times(7) == open_loop.release_times(7)
        assert stream.release_times(7) == tuple(
            frame * period for frame in range(7)
        )

    def test_fixed_scenario_schedules_identically(self):
        closed = ScenarioSpec(
            name="x",
            frames=4,
            streams=(StreamSpec(name="a", model="m", period_s=0.02),),
        )
        open_loop = ScenarioSpec(
            name="x",
            frames=4,
            streams=(
                StreamSpec(
                    name="a",
                    model="m",
                    arrivals=ArrivalSpec(kind="fixed", period_s=0.02),
                ),
            ),
        )
        templates = {"a": template(3)}
        plan_closed = instantiate_frames(closed, templates)
        plan_open = instantiate_frames(open_loop, templates)
        assert plan_closed.tasks == plan_open.tasks

    def test_poisson_deterministic_per_seed_and_salt(self):
        spec = ArrivalSpec(kind="poisson", rate_hz=20.0, seed=5)
        first = generate_arrivals(spec, 50, salt="det")
        again = generate_arrivals(spec, 50, salt="det")
        other_salt = generate_arrivals(spec, 50, salt="tra")
        other_seed = generate_arrivals(
            ArrivalSpec(kind="poisson", rate_hz=20.0, seed=6), 50, salt="det"
        )
        assert first == again
        assert first != other_salt
        assert first != other_seed

    def test_poisson_times_sorted_positive_and_rate_scaled(self):
        spec = ArrivalSpec(kind="poisson", rate_hz=50.0, seed=0)
        times = generate_arrivals(spec, 400, salt="s")
        assert all(t > 0 for t in times)
        assert list(times) == sorted(times)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1 / 50.0, rel=0.25)

    def test_mmpp_bursts_between_base_and_burst_rate(self):
        spec = ArrivalSpec(
            kind="mmpp", rate_hz=10.0, burst_rate_hz=100.0,
            burst_fraction=0.3, seed=2,
        )
        times = generate_arrivals(spec, 500, salt="s")
        assert list(times) == sorted(times)
        mean_gap = times[-1] / len(times)
        assert 1 / 100.0 < mean_gap < 1 / 10.0
        assert generate_arrivals(spec, 500, salt="s") == times

    def test_replay_truncates_to_available_times(self):
        spec = ArrivalSpec(kind="replay", times_s=(0.0, 0.1, 0.2))
        assert generate_arrivals(spec, 5) == (0.0, 0.1, 0.2)
        assert generate_arrivals(spec, 2) == (0.0, 0.1)
        assert generate_arrivals(spec, 0) == ()

    def test_stream_seed_is_stable(self):
        # Pinned: a cross-process determinism anchor (hash() is salted,
        # this derivation must not be).
        assert stream_seed(0, "det") == stream_seed(0, "det")
        assert stream_seed(0, "det") != stream_seed(1, "det")
        assert stream_seed(0, "det") == 6776629297942328754


class TestArrivalTrace:
    def test_json_round_trip_is_exact(self):
        spec = ArrivalSpec(kind="poisson", rate_hz=17.0, seed=11)
        trace = ArrivalTrace(
            streams={"a": generate_arrivals(spec, 20, salt="a")},
            scenario="x",
            frames=20,
        )
        restored = ArrivalTrace.from_json(trace.to_json())
        assert restored == trace
        # Float times survive JSON bit-for-bit (repr round-trip).
        assert restored.streams["a"] == trace.streams["a"]

    def test_save_and_load(self, tmp_path):
        trace = ArrivalTrace(streams={"a": (0.0, 0.25)}, frames=2)
        path = tmp_path / "trace.json"
        trace.save(path)
        assert ArrivalTrace.load(path) == trace

    def test_load_missing_file_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError):
            ArrivalTrace.load(tmp_path / "nope.json")


class TestStreamSpecIntegration:
    def test_arrivals_and_period_are_exclusive(self):
        with pytest.raises(ConfigError):
            StreamSpec(
                name="a",
                model="m",
                period_s=0.1,
                arrivals=ArrivalSpec(kind="poisson", rate_hz=5.0),
            )

    def test_stream_round_trip_with_arrivals(self):
        stream = StreamSpec(
            name="a",
            model="m",
            deadline_s=0.1,
            arrivals=ArrivalSpec(kind="poisson", rate_hz=5.0, seed=2),
        )
        assert StreamSpec.from_dict(stream.to_dict()) == stream

    def test_closed_loop_dict_has_no_arrivals_key(self):
        # Fingerprint stability: pre-serving scenario payloads unchanged.
        stream = StreamSpec(name="a", model="m", period_s=0.1)
        assert "arrivals" not in stream.to_dict()

    def test_replay_shorter_than_frames_yields_fewer_frames(self):
        spec = ScenarioSpec(
            name="x",
            frames=6,
            streams=(
                StreamSpec(
                    name="a",
                    model="m",
                    arrivals=ArrivalSpec(kind="replay", times_s=(0.0, 0.3)),
                ),
            ),
        )
        plan = instantiate_frames(spec, {"a": template(2)})
        assert len(plan.runs) == 2
        assert [run.release_s for run in plan.runs] == [0.0, 0.3]
