"""Streaming serving engine: exact parity and bounded-memory contracts.

:meth:`Session.run_serving_stream` consumes arrivals lazily and retires
frames into P² sketches. Its contract has two halves:

* with ``keep_records=True`` the report must equal
  :meth:`Session.run_serving`'s **byte for byte** — streaming is a
  different driver over the same engine, not a different model;
* without it, counts/makespan stay exact, per-frame records vanish, and
  percentiles come from sketches — with live engine state bounded by
  queue depth, not trace length.
"""

import json
import random

import pytest

from repro.api import ScenarioSpec, Session, StreamSpec
from repro.errors import ConfigError
from repro.serving import ArrivalSpec

MODELS = ["deeplab:nocrf", "goturn", "orb_slam"]
QOS = [
    None,
    {"kind": "drop_late"},
    {"kind": "queue_cap", "cap": 2},
    {"kind": "shed", "cap": 3, "min_priority": 2},
]


def _random_scenario(trial: int) -> ScenarioSpec:
    rng = random.Random(1000 + trial)
    streams = []
    for i in range(rng.randint(1, 3)):
        kind = rng.choice(["poisson", "fixed", "mmpp", "none"])
        if kind == "poisson":
            arr = ArrivalSpec(
                kind="poisson",
                rate_hz=rng.choice([30.0, 120.0]),
                seed=trial * 10 + i,
            )
        elif kind == "mmpp":
            arr = ArrivalSpec(
                kind="mmpp",
                rate_hz=60.0,
                burst_fraction=0.3,
                dwell=4,
                seed=trial * 10 + i,
            )
        else:
            arr = None
        streams.append(
            StreamSpec(
                name=f"s{i}",
                model=rng.choice(MODELS),
                priority=rng.randint(1, 3),
                skip_interval=rng.choice([1, 1, 2]),
                period_s=None if arr is not None else 1 / 60.0,
                deadline_s=rng.choice([None, 0.05, 0.2]),
                arrivals=arr,
            )
        )
    return ScenarioSpec(
        name=f"stream-{trial}",
        streams=tuple(streams),
        platform=rng.choice(["gpu-tc", "sma", "sma@a100"]),
        frames=rng.randint(1, 12),
        policy=rng.choice(["fifo", "priority", "exclusive"]),
        framework_overhead_s=rng.choice([0.0, 50e-6]),
        qos=rng.choice(QOS),
    )


class TestStreamingParity:
    @pytest.mark.parametrize("trial", range(12))
    def test_keep_records_equals_materialized(self, trial):
        session = Session()
        scenario = _random_scenario(trial)
        materialized = session.run_serving(scenario).to_dict()
        streamed = session.run_serving_stream(
            scenario, keep_records=True
        ).to_dict()
        assert json.dumps(materialized, sort_keys=True) == json.dumps(
            streamed, sort_keys=True
        ), f"streaming diverged on scenario {scenario.name!r}"

    @pytest.mark.parametrize("trial", range(12))
    def test_sketch_mode_counts_exact(self, trial):
        session = Session()
        scenario = _random_scenario(trial)
        materialized = session.run_serving(scenario)
        streamed = session.run_serving_stream(scenario)
        assert streamed.makespan_s == materialized.makespan_s
        for want, got in zip(materialized.streams, streamed.streams):
            assert got.name == want.name
            for field in ("offered", "completed", "dropped", "missed", "skipped"):
                assert getattr(got, field) == getattr(want, field), (
                    f"{field} diverged on stream {got.name!r}"
                )
            assert got.frames == (), "sketch mode must not keep records"
            if got.completed:
                assert got.sketches is not None


class TestBoundedMemory:
    def test_live_state_tracks_queue_not_trace(self):
        """Peak in-flight tasks must be far below the materialized total."""
        scenario = ScenarioSpec(
            name="stream-window",
            platform="sma",
            frames=256,
            policy="fifo",
            qos={"kind": "drop_late"},
            streams=(
                StreamSpec(
                    name="cam",
                    model="goturn",
                    priority=1.0,
                    deadline_s=0.050,
                    arrivals=ArrivalSpec(
                        kind="poisson", rate_hz=120.0, seed=3
                    ),
                ),
            ),
        )
        stats: dict = {}
        report = Session().run_serving_stream(scenario, stats_out=stats)
        # A materialized run holds all 256 frames' tasks at once; the
        # streaming window holds a handful of frames. The bound is a
        # loose multiple of the observed queue depth, far under the
        # trace-scale task count.
        assert stats["peak_live"] < 500, (
            f"peak_live={stats['peak_live']} is trace-scale, not queue-scale"
        )
        assert report.streams[0].offered == 256


class TestStreamingRejections:
    def test_closed_loop_rejected(self):
        scenario = ScenarioSpec(
            name="closed",
            platform="sma",
            frames=4,
            streams=(
                StreamSpec(
                    name="loop",
                    model="goturn",
                    priority=1.0,
                    arrivals=ArrivalSpec(kind="closed_loop", think_s=0.001),
                ),
            ),
        )
        with pytest.raises(ConfigError):
            Session().run_serving_stream(scenario)
