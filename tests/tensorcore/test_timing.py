"""Analytic TC GEMM timing tests (the Fig 1 estimate)."""

import pytest

from repro.errors import SimulationError
from repro.tensorcore.timing import (
    estimate_tc_gemm_efficiency,
    wmma_schedule,
)


class TestEfficiencyEstimate:
    def test_plateau_below_rf_bound(self):
        estimate = estimate_tc_gemm_efficiency(8192, 8192, 8192)
        assert 0.60 <= estimate.efficiency <= 0.72

    def test_small_sizes_dominated_by_overheads(self):
        small = estimate_tc_gemm_efficiency(128, 128, 128)
        large = estimate_tc_gemm_efficiency(8192, 8192, 8192)
        assert small.efficiency < 0.2 * large.efficiency

    def test_monotone_ramp_on_powers_of_two(self):
        effs = [
            estimate_tc_gemm_efficiency(n, n, n).efficiency
            for n in (128, 256, 512, 1024, 2048, 4096)
        ]
        assert all(a <= b + 1e-9 for a, b in zip(effs, effs[1:]))

    def test_rf_bound_value(self):
        estimate = estimate_tc_gemm_efficiency(1024, 1024, 1024)
        # 8 banks x 0.95 collector efficiency / 8 reads per HMMA, times
        # the pipeline-calibrated steady-state factor.
        assert estimate.rf_bound == pytest.approx(0.95 * 0.72, abs=0.01)

    def test_tile_quantization_penalty(self):
        # 80 x 1 full tiles fill one wave exactly; one extra row forces a
        # second, nearly empty wave.
        aligned = estimate_tc_gemm_efficiency(80 * 128, 128, 1024)
        ragged = estimate_tc_gemm_efficiency(80 * 128 + 1, 128, 1024)
        assert ragged.quantization < 0.6 * aligned.quantization

    def test_invalid_dims(self):
        with pytest.raises(SimulationError):
            estimate_tc_gemm_efficiency(0, 128, 128)

    def test_macs(self):
        assert estimate_tc_gemm_efficiency(2, 3, 4).macs == 24


class TestWmmaSchedule:
    def test_default_warp_tile(self):
        schedule = wmma_schedule()
        assert schedule["wmmas"] == 16
        assert schedule["hmma_steps"] == 256

    def test_fragment_loads(self):
        schedule = wmma_schedule(64, 64, 16)
        assert schedule["a_fragment_loads"] == 16
        assert schedule["b_fragment_loads"] == 16

    def test_alignment_enforced(self):
        with pytest.raises(SimulationError):
            wmma_schedule(60, 64, 16)
