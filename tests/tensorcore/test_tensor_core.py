"""TensorCore functional tests."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.tensorcore.dot_product import dot4
from repro.tensorcore.tensor_core import (
    HMMA_REG_READS,
    HMMA_REG_WRITES,
    TensorCore,
    WmmaOp,
)


class TestDot4:
    def test_exact_fp32(self):
        value = dot4([1, 2, 3, 4], [1, 1, 1, 1], 10.0, fp16_inputs=False)
        assert value == pytest.approx(20.0)

    def test_fp16_rounding_applied(self):
        # 2049 is not representable in fp16 (rounds to 2048).
        value = dot4([2049, 0, 0, 0], [1, 0, 0, 0], 0.0, fp16_inputs=True)
        assert value == pytest.approx(2048.0)

    def test_accumulator_fp32(self):
        value = dot4([1, 0, 0, 0], [1, 0, 0, 0], 1e6, fp16_inputs=True)
        assert value == pytest.approx(1e6 + 1.0)


class TestMmaStep:
    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((4, 4)).astype(np.float32)
        b = rng.standard_normal((4, 4)).astype(np.float32)
        c = rng.standard_normal((4, 4)).astype(np.float32)
        tc = TensorCore(fp16_inputs=False)
        np.testing.assert_allclose(tc.mma_step(a, b, c), a @ b + c, rtol=1e-5)

    def test_shape_validation(self):
        tc = TensorCore()
        with pytest.raises(SimulationError):
            tc.mma_step(np.zeros((4, 5)), np.zeros((4, 4)), np.zeros((4, 4)))
        with pytest.raises(SimulationError):
            tc.mma_step(np.zeros((4, 4)), np.zeros((4, 4)), np.zeros((5, 4)))

    def test_mma_counter(self):
        tc = TensorCore()
        tc.mma_step(np.zeros((4, 4)), np.zeros((4, 4)), np.zeros((4, 4)))
        assert tc.mma_count == 1


class TestWmma:
    def test_matches_numpy_fp32(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((16, 16)).astype(np.float32)
        b = rng.standard_normal((16, 16)).astype(np.float32)
        c = np.zeros((16, 16), dtype=np.float32)
        tc = TensorCore(fp16_inputs=False)
        np.testing.assert_allclose(tc.wmma(a, b, c), a @ b, rtol=1e-4)

    def test_fp16_quantization_visible(self):
        a = np.full((16, 16), 0.1, dtype=np.float32)
        b = np.eye(16, dtype=np.float32)
        tc = TensorCore(fp16_inputs=True)
        result = tc.wmma(a, b, np.zeros((16, 16), dtype=np.float32))
        assert result[0, 0] != pytest.approx(0.1, abs=1e-9)
        assert result[0, 0] == pytest.approx(0.1, abs=1e-3)

    def test_uses_64_mma_steps(self):
        tc = TensorCore()
        tc.wmma(
            np.zeros((16, 16)), np.zeros((16, 16)), np.zeros((16, 16))
        )
        assert tc.mma_count == 64

    def test_fragment_validation(self):
        tc = TensorCore()
        with pytest.raises(SimulationError):
            tc.wmma(np.zeros((8, 16)), np.zeros((16, 16)), np.zeros((16, 16)))


class TestWmmaOp:
    def test_register_appetite(self):
        """The RF traffic that caps TC efficiency (paper SS II-A)."""
        op = WmmaOp()
        assert op.register_reads == 16 * HMMA_REG_READS
        assert op.register_writes == 16 * HMMA_REG_WRITES
        assert op.macs == 4096
