"""Server lifecycle and typed client errors over real TCP and stdio."""

import io
from dataclasses import replace

import pytest

from repro.api import Session, TimingCache
from repro.cluster import ClusterClient, ClusterServer, protocol
from repro.cluster.client import parse_address
from repro.errors import (
    ClusterConnectionError,
    ClusterUnavailableError,
    ConfigError,
    FingerprintMismatchError,
    ProtocolVersionError,
)
from repro.sweep import SweepSpec, expand, run_sweep

GRID = expand(SweepSpec(platforms=("sma:2",), gemms=(128, 256)))
POINTS = tuple(GRID)


@pytest.fixture()
def server():
    with ClusterServer(jobs=1) as srv:
        srv.start()
        yield srv


class TestAddressParsing:
    def test_host_port(self):
        assert parse_address("10.0.0.2:7070") == ("10.0.0.2", 7070)
        assert parse_address("[::1]:7070") == ("::1", 7070)

    @pytest.mark.parametrize("bad", ("7070", "host:", ":7070", "host:abc"))
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigError):
            parse_address(bad)


class TestServerLifecycle:
    def test_hello_status_submit(self, server):
        with ClusterClient(server.address) as client:
            welcome = client.hello()
            assert welcome["protocol"] == protocol.PROTOCOL_VERSION
            assert welcome["state"] == "serving"
            reports, _delta = client.submit_points(POINTS)
            status = client.status()
        local = run_sweep(GRID, session=Session(cache=TimingCache()))
        assert reports == local.report_by_id()
        assert status["submissions"] == 1
        assert status["points"] == len(POINTS)

    def test_warm_resubmission_reports_hits_via_status(self, server):
        """Tentpole acceptance: warm resubmission => cache hits > 0."""
        with ClusterClient(server.address) as client:
            client.submit_points(POINTS)
            assert client.status()["cache"]["hits"] == 0
            client.submit_points(POINTS)
            status = client.status()
        assert status["cache"]["hits"] > 0
        assert status["cache"]["misses"] == len(POINTS)

    def test_cache_persists_across_connections(self, server):
        with ClusterClient(server.address) as first:
            first.submit_points(POINTS)
        with ClusterClient(server.address) as second:
            status = second.status()
            second.submit_points(POINTS)
            warm = second.status()
        assert status["cache"]["timings"] == len(POINTS)
        assert warm["cache"]["hits"] > 0

    def test_drain_refuses_submissions_with_typed_error(self, server):
        with ClusterClient(server.address) as client:
            client.drain()
            assert client.status()["state"] == "draining"
            with pytest.raises(ClusterUnavailableError, match="draining"):
                client.submit_points(POINTS)

    def test_graceful_shutdown(self, server):
        with ClusterClient(server.address) as client:
            response = client.shutdown()
        assert response["state"] == "stopped"
        server.wait()
        with pytest.raises(ClusterConnectionError):
            ClusterClient(server.address).status()

    def test_connect_to_dead_port_is_typed(self):
        with pytest.raises(ClusterConnectionError, match="cannot connect"):
            ClusterClient("127.0.0.1:1").status()


class TestTypedRejections:
    def test_version_mismatch_is_refused(self, server):
        client = ClusterClient(server.address)
        try:
            bad = {**protocol.status_message(), "v": 999}
            with pytest.raises(ProtocolVersionError, match="protocol"):
                client._rpc(bad)
        finally:
            client.close()

    def test_fingerprint_mismatch_is_refused(self, server):
        forged = (replace(POINTS[0], fingerprint="0" * 64),)
        with ClusterClient(server.address) as client:
            with pytest.raises(FingerprintMismatchError, match="diverged"):
                client.submit_points(forged)
            # The server survives the refusal and still serves good work.
            reports, _delta = client.submit_points(POINTS)
        assert len(reports) == len(POINTS)

    def test_unknown_verb_is_protocol_error(self, server):
        from repro.errors import ClusterProtocolError

        with ClusterClient(server.address) as client:
            with pytest.raises(ClusterProtocolError, match="unknown verb"):
                client._rpc(
                    {"v": protocol.PROTOCOL_VERSION, "type": "warp-nine"}
                )


class TestStdioTransport:
    def _converse(self, *messages) -> list[dict]:
        stdin = io.BytesIO(
            b"".join(protocol.encode_message(m) for m in messages)
        )
        stdout = io.BytesIO()
        from repro.cluster.server import serve_stdio

        serve_stdio(jobs=1, stdin=stdin, stdout=stdout)
        return [
            protocol.decode_message(line)
            for line in stdout.getvalue().splitlines()
        ]

    def test_status_and_submit_over_stdio(self):
        responses = self._converse(
            protocol.hello_message(),
            protocol.submit_message(POINTS),
            protocol.status_message(),
        )
        assert [r["type"] for r in responses] == ["welcome", "result", "status"]
        reports, _cache = protocol.parse_result(responses[1])
        local = run_sweep(GRID, session=Session(cache=TimingCache()))
        assert reports == local.report_by_id()
        assert responses[2]["points"] == len(POINTS)

    def test_malformed_line_answers_error_and_continues(self):
        stdin = io.BytesIO(
            b"this is not json\n"
            + protocol.encode_message(protocol.status_message())
        )
        stdout = io.BytesIO()
        from repro.cluster.server import serve_stdio

        serve_stdio(jobs=1, stdin=stdin, stdout=stdout)
        first, second = [
            protocol.decode_message(line)
            for line in stdout.getvalue().splitlines()
        ]
        assert first["type"] == "error" and first["code"] == "protocol"
        assert second["type"] == "status"
