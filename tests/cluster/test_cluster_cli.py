"""`repro cluster` CLI: happy paths and typed failures exit nonzero."""

import json

import pytest

from repro.__main__ import main
from repro.cluster import ClusterClient, ClusterServer


@pytest.fixture()
def server():
    with ClusterServer(jobs=1) as srv:
        srv.start()
        yield srv


def run_cli(capsys, argv):
    code = main(argv)
    return code, capsys.readouterr()


class TestStatusAndLifecycle:
    def test_status_human(self, capsys, server):
        code, captured = run_cli(capsys, ["cluster", "status", server.address])
        assert code == 0
        assert "serving" in captured.out
        assert "protocol v1" in captured.out

    def test_status_json(self, capsys, server):
        code, captured = run_cli(
            capsys, ["cluster", "status", server.address, "--json"]
        )
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["type"] == "status"
        assert payload["state"] == "serving"

    def test_drain_then_shutdown(self, capsys, server):
        code, captured = run_cli(capsys, ["cluster", "drain", server.address])
        assert code == 0 and "draining" in captured.out
        code, captured = run_cli(
            capsys, ["cluster", "shutdown", server.address]
        )
        assert code == 0 and "stopped" in captured.out
        server.wait()

    def test_unreachable_server_exits_2(self, capsys):
        code, captured = run_cli(capsys, ["cluster", "status", "127.0.0.1:1"])
        assert code == 2
        assert captured.err.startswith("error:")
        assert "cannot connect" in captured.err

    def test_bad_address_exits_2(self, capsys):
        code, captured = run_cli(capsys, ["cluster", "status", "nonsense"])
        assert code == 2
        assert "host:port" in captured.err


class TestClusterSweep:
    def test_sweep_against_server_matches_local(
        self, capsys, server, tmp_path, monkeypatch
    ):
        import repro.gemm.cache as cache_mod
        from repro.api import TimingCache

        remote_store = tmp_path / "remote.sqlite"
        local_store = tmp_path / "local.sqlite"
        argv_tail = ["-p", "sma:2", "-g", "128", "-g", "256"]
        # Each CLI run gets a cold process-wide cache, as separate
        # interpreter invocations would — otherwise the second run's
        # reports wear cached=True and the stores differ by that flag.
        monkeypatch.setattr(cache_mod, "_PROCESS_CACHE", TimingCache())
        code, _ = run_cli(
            capsys,
            ["cluster", "sweep", *argv_tail, "--server", server.address,
             "--store", str(remote_store), "--json"],
        )
        assert code == 0
        monkeypatch.setattr(cache_mod, "_PROCESS_CACHE", TimingCache())
        code, _ = run_cli(
            capsys,
            ["sweep", *argv_tail, "--store", str(local_store), "--json"],
        )
        assert code == 0
        code, captured = run_cli(
            capsys, ["store-diff", str(local_store), str(remote_store)]
        )
        assert code == 0
        assert "2 unchanged, 0 changed" in captured.out

    def test_sweep_against_dead_server_exits_2(self, capsys):
        code, captured = run_cli(
            capsys,
            ["cluster", "sweep", "-p", "sma:2", "-g", "128",
             "--server", "127.0.0.1:1"],
        )
        assert code == 2
        assert "dead or draining" in captured.err


class TestClusterServing:
    STREAMS = [
        "-s", "alexnet@rate=40,seed=3",
        "-s", "goturn@rate=40,seed=3",
    ]

    def test_local_and_remote_split_agree(self, capsys, server):
        base = ["cluster", "serving", "-p", "sma:2", "--frames", "2",
                "--name", "split", *self.STREAMS, "--partitions", "2",
                "--json"]
        code, local = run_cli(capsys, [*base, "--local"])
        assert code == 0
        code, remote = run_cli(
            capsys, [*base, "--server", server.address]
        )
        assert code == 0
        assert json.loads(local.out) == json.loads(remote.out)
        payload = json.loads(local.out)
        assert payload["kind"] == "serving"
        assert payload["scenario"] == "split"
        assert [s["name"] for s in payload["streams"]] == [
            "alexnet", "goturn",
        ]

    def test_local_and_server_flags_are_exclusive(self, capsys, server):
        code, captured = run_cli(
            capsys,
            ["cluster", "serving", "-p", "sma:2", *self.STREAMS,
             "--local", "--server", server.address],
        )
        assert code == 2
        assert "not both" in captured.err

    def test_needs_local_or_server(self, capsys):
        code, captured = run_cli(
            capsys, ["cluster", "serving", "-p", "sma:2", *self.STREAMS]
        )
        assert code == 2
        assert "--server" in captured.err
