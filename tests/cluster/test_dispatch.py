"""Cross-host dispatch: bit-identical goldens, failure re-dispatch, stores.

The acceptance contract of the cluster subsystem: a sweep sharded across
two servers and a serving run split across two platform instances must be
bit-identical to their single-process equivalents, and losing a server
must re-dispatch its shard rather than lose or corrupt results.
"""

import pytest

from repro.api import ScenarioSpec, Session, StreamSpec, TimingCache
from repro.cluster import (
    ClusterClient,
    ClusterServer,
    run_serving_split,
    run_sweep_remote,
    split_scenario,
)
from repro.errors import ClusterError, ConfigError
from repro.serving import ArrivalSpec
from repro.sweep import ResultStore, SweepSpec, expand, run_sweep

GRID = expand(SweepSpec(platforms=("sma:2..3",), gemms=(128, 256)))

SERVING = ScenarioSpec(
    name="fleet",
    platform=None,
    frames=3,
    policy="fifo",
    streams=(
        StreamSpec(
            name="det",
            model="alexnet",
            arrivals=ArrivalSpec(kind="poisson", rate_hz=30.0, seed=7),
        ),
        StreamSpec(
            name="trk",
            model="goturn",
            arrivals=ArrivalSpec(kind="poisson", rate_hz=30.0, seed=8),
        ),
    ),
)


@pytest.fixture()
def two_servers():
    with ClusterServer(jobs=1) as one, ClusterServer(jobs=1) as two:
        one.start()
        two.start()
        yield one, two


def _fresh_session() -> Session:
    return Session(cache=TimingCache())


class TestSweepGolden:
    def test_two_server_sweep_bit_identical_to_local(self, two_servers):
        one, two = two_servers
        local = run_sweep(GRID, session=_fresh_session())
        remote = run_sweep_remote(
            GRID, (one.address, two.address), session=_fresh_session()
        )
        assert remote.reports == local.reports
        assert remote.executed == local.executed
        assert remote.jobs == 2
        # Both servers actually took work.
        for server in two_servers:
            with ClusterClient(server.address) as client:
                assert client.status()["points"] > 0

    def test_remote_cache_merges_back_warm(self, two_servers):
        one, two = two_servers
        session = _fresh_session()
        run_sweep_remote(GRID, (one.address, two.address), session=session)
        assert len(session.cache) == len(GRID)
        # A local re-run over the merged cache is pure hits.
        rerun = run_sweep(GRID, session=session)
        assert all(report.cached for report in rerun.reports)

    def test_store_write_through_and_resume(self, two_servers, tmp_path):
        one, two = two_servers
        servers = (one.address, two.address)
        path = tmp_path / "remote.sqlite"
        with ResultStore(path) as store:
            run_sweep_remote(
                GRID, servers, store=store, session=_fresh_session()
            )
            assert len(store) == len(GRID)
            resumed = run_sweep_remote(
                GRID,
                servers,
                store=store,
                resume=True,
                session=_fresh_session(),
            )
        assert resumed.executed == ()
        assert len(resumed.loaded) == len(GRID)

    def test_remote_store_equals_local_store(self, two_servers, tmp_path):
        """The regression-gate contract: store payloads are identical."""
        one, two = two_servers
        with ResultStore(tmp_path / "local.sqlite") as local_store:
            run_sweep(GRID, store=local_store, session=_fresh_session())
            with ResultStore(tmp_path / "remote.sqlite") as remote_store:
                run_sweep_remote(
                    GRID,
                    (one.address, two.address),
                    store=remote_store,
                    session=_fresh_session(),
                )
                diff = local_store.diff(remote_store)
        assert diff.identical
        assert len(diff.unchanged) == len(GRID)


class TestFailureRedispatch:
    def test_dead_server_shard_is_redispatched(self, two_servers):
        """A server killed mid-sweep loses its shard, not the sweep."""
        one, two = two_servers
        two.close()  # killed before its shard lands
        local = run_sweep(GRID, session=_fresh_session())
        remote = run_sweep_remote(
            GRID, (one.address, two.address), session=_fresh_session()
        )
        assert remote.reports == local.reports
        with ClusterClient(one.address) as client:
            assert client.status()["points"] == len(GRID)

    def test_draining_server_shard_is_redispatched(self, two_servers):
        one, two = two_servers
        with ClusterClient(two.address) as client:
            client.drain()
        local = run_sweep(GRID, session=_fresh_session())
        remote = run_sweep_remote(
            GRID, (one.address, two.address), session=_fresh_session()
        )
        assert remote.reports == local.reports

    def test_all_servers_dead_raises(self, two_servers):
        one, two = two_servers
        one.close()
        two.close()
        with pytest.raises(ClusterError, match="dead or draining"):
            run_sweep_remote(
                GRID,
                (one.address, two.address),
                session=_fresh_session(),
            )

    def test_no_servers_is_config_error(self):
        with pytest.raises(ConfigError, match="at least one server"):
            run_sweep_remote(GRID, (), session=_fresh_session())


class TestServingSplit:
    def test_split_preserves_release_times(self):
        subs = split_scenario(SERVING, 2)
        assert [len(sub.streams) for sub in subs] == [1, 1]
        for sub in subs:
            for stream in sub.streams:
                original = SERVING.stream(stream.name)
                assert stream.arrivals.kind == "replay"
                assert stream.arrivals.times_s == original.release_times(
                    SERVING.frames
                )

    def test_single_partition_equals_plain_serving(self):
        plain = _fresh_session().run_serving(SERVING, "sma:2")
        merged = run_serving_split(
            SERVING, "sma:2", partitions=1, session=_fresh_session()
        )
        assert merged == plain

    def test_remote_split_bit_identical_to_local_split(self, two_servers):
        one, two = two_servers
        local = run_serving_split(
            SERVING, "sma:2", partitions=2, session=_fresh_session()
        )
        remote = run_serving_split(
            SERVING, "sma:2", servers=(one.address, two.address)
        )
        assert remote == local
        # Stream order and aggregate percentiles follow the original spec.
        assert [s.name for s in remote.streams] == ["det", "trk"]
        assert remote.p95_s == local.p95_s

    def test_remote_split_redispatches_dead_server(self, two_servers):
        one, two = two_servers
        two.close()
        local = run_serving_split(
            SERVING, "sma:2", partitions=2, session=_fresh_session()
        )
        remote = run_serving_split(
            SERVING, "sma:2", servers=(one.address, two.address)
        )
        assert remote == local

    def test_closed_loop_streams_cannot_split(self):
        spec = ScenarioSpec(
            name="cl",
            streams=(
                StreamSpec(
                    name="a",
                    model="alexnet",
                    arrivals=ArrivalSpec(kind="closed_loop", think_s=0.01),
                ),
            ),
        )
        with pytest.raises(ConfigError, match="closed_loop"):
            split_scenario(spec, 2)

    def test_session_facade_routes_through_cluster(self, two_servers):
        one, two = two_servers
        clustered = Session(
            cache=TimingCache(), cluster=(one.address, two.address)
        )
        local = run_sweep(GRID, session=_fresh_session())
        remote = clustered.run_sweep(GRID)
        assert remote.reports == local.reports
        split_local = run_serving_split(
            SERVING, "sma:2", partitions=2, session=_fresh_session()
        )
        split_remote = clustered.run_serving_split(SERVING, "sma:2")
        assert split_remote == split_local
