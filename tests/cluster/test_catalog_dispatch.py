"""Catalog-aware dispatch: capacity sharding, fingerprint-checked catalogs.

The acceptance contract of the catalog subsystem's cluster side: a
device-range sweep over named parts runs end-to-end through a two-server
dispatch bit-identically to its local run, shards are sized by each
server's reported pool capacity, and a shard whose catalog fingerprint
does not match the server's own catalog is refused, not simulated.
"""

import dataclasses

import pytest

from repro.api import Session, TimingCache
from repro.cluster import ClusterClient, ClusterServer, run_sweep_remote
from repro.cluster.dispatch import server_capacities, weighted_assignments
from repro.cluster.protocol import verify_points
from repro.errors import FingerprintMismatchError
from repro.sweep import ResultStore, SweepSpec, expand, run_sweep
from repro.sweep.grid import point_extras, request_fingerprint

#: Three named parts x two models — the catalog-axis acceptance grid.
CATALOG_GRID = expand(
    SweepSpec(platforms=("v100..h100",), models=("alexnet", "goturn"))
)


@pytest.fixture()
def two_servers():
    with ClusterServer(jobs=1) as one, ClusterServer(jobs=1) as two:
        one.start()
        two.start()
        yield one, two


def _fresh_session() -> Session:
    return Session(cache=TimingCache())


class TestCapacitySharding:
    def test_weighted_assignments_proportional(self):
        points = tuple(range(9))
        shards = dict(
            weighted_assignments(
                points, ("big", "small"), {"big": 2, "small": 1}
            )
        )
        assert len(shards["big"]) == 6
        assert len(shards["small"]) == 3
        # Every point lands exactly once.
        assert sorted(shards["big"] + shards["small"]) == list(points)

    def test_zero_capacity_server_gets_no_shard(self):
        shards = dict(
            weighted_assignments(
                tuple(range(4)), ("up", "down"), {"up": 1, "down": 0}
            )
        )
        assert "down" not in shards
        assert len(shards["up"]) == 4

    def test_all_zero_falls_back_to_uniform(self):
        shards = dict(
            weighted_assignments(
                tuple(range(4)), ("a", "b"), {"a": 0, "b": 0}
            )
        )
        assert len(shards["a"]) == 2 and len(shards["b"]) == 2

    def test_deterministic_in_address_order(self):
        capacities = {"a": 2, "b": 1}
        first = weighted_assignments(tuple(range(7)), ("a", "b"), capacities)
        second = weighted_assignments(tuple(range(7)), ("a", "b"), capacities)
        assert first == second

    def test_capacity_probe_reads_pool_jobs(self, two_servers):
        one, two = two_servers
        capacities = server_capacities((one.address, two.address))
        assert capacities == {one.address: 1, two.address: 1}

    def test_dead_server_probes_to_zero(self, two_servers):
        one, two = two_servers
        two.close()
        capacities = server_capacities((one.address, two.address))
        assert capacities[one.address] == 1
        assert capacities[two.address] == 0

    def test_all_dead_probes_fall_back_to_one(self, two_servers):
        one, two = two_servers
        one.close()
        two.close()
        capacities = server_capacities((one.address, two.address))
        assert capacities == {one.address: 1, two.address: 1}

    def test_bigger_pool_takes_bigger_shard(self):
        with ClusterServer(jobs=2) as big, ClusterServer(jobs=1) as small:
            big.start()
            small.start()
            servers = (big.address, small.address)
            local = run_sweep(CATALOG_GRID, session=_fresh_session())
            remote = run_sweep_remote(
                CATALOG_GRID, servers, session=_fresh_session()
            )
            assert remote.reports == local.reports
            with ClusterClient(big.address) as client:
                big_points = client.status()["points"]
            with ClusterClient(small.address) as client:
                small_points = client.status()["points"]
        # 6 points over a 2:1 slot ring: 4 to the big pool, 2 to the small.
        assert big_points == 4
        assert small_points == 2


class TestCatalogFingerprintCheck:
    def test_pristine_points_verify(self):
        verify_points(tuple(CATALOG_GRID))

    def _with_catalog(self, point, catalog):
        """The point as sent by a client whose catalog value is ``catalog``.

        The wire fingerprint is recomputed over the altered request — an
        *internally consistent* client whose catalog data genuinely
        differs, which is exactly what the plain fingerprint check cannot
        see and the explicit catalog comparison must.
        """
        request = dataclasses.replace(point.request)
        object.__setattr__(request, "catalog", catalog)
        fingerprint = request_fingerprint(
            request, point_extras(None, request.kind)
        )
        return dataclasses.replace(
            point, request=request, fingerprint=fingerprint
        )

    def test_diverged_catalog_is_refused(self):
        point = next(iter(CATALOG_GRID))
        tampered = self._with_catalog(point, "deadbeefdeadbeef")
        with pytest.raises(FingerprintMismatchError, match="catalog"):
            verify_points((tampered,))

    def test_missing_catalog_on_catalog_platform_is_refused(self):
        # An old client that never learned about catalogs must not slip
        # catalog-platform shards past the divergence check.
        point = next(iter(CATALOG_GRID))
        stripped = self._with_catalog(point, None)
        with pytest.raises(FingerprintMismatchError, match="diverged"):
            verify_points((stripped,))


class TestCatalogSweepAcceptance:
    def test_device_range_sweep_through_cluster_and_store(
        self, two_servers, tmp_path
    ):
        """The issue's acceptance gate: >= 3 named parts, end to end."""
        one, two = two_servers
        servers = (one.address, two.address)
        with ResultStore(tmp_path / "local.sqlite") as local_store:
            local = run_sweep(
                CATALOG_GRID, store=local_store, session=_fresh_session()
            )
            with ResultStore(tmp_path / "remote.sqlite") as remote_store:
                remote = run_sweep_remote(
                    CATALOG_GRID,
                    servers,
                    store=remote_store,
                    session=_fresh_session(),
                )
                diff = local_store.diff(remote_store)
        assert remote.reports == local.reports
        assert diff.identical
        assert len(diff.unchanged) == len(CATALOG_GRID)
        # Every point was content-addressed with its device fingerprint.
        assert all(
            point.request.catalog is not None for point in CATALOG_GRID
        )
        # Both servers took part of the device range.
        for server in servers:
            with ClusterClient(server) as client:
                assert client.status()["points"] > 0
