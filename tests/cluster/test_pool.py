"""Warm pool: cross-submission cache reuse, sharding, delta export."""

from repro.api import Session, TimingCache
from repro.cluster.pool import WarmPool
from repro.sweep import SweepSpec, expand, run_sweep

GRID = expand(SweepSpec(platforms=("sma:2",), gemms=(128, 256)))


class TestWarmPool:
    def test_reports_match_local_run(self):
        local = run_sweep(GRID, session=Session(cache=TimingCache()))
        with WarmPool(jobs=1) as pool:
            reports, _delta = pool.run_points(tuple(GRID))
        assert reports == local.report_by_id()

    def test_warm_resubmission_hits_instead_of_recomputing(self):
        with WarmPool(jobs=1) as pool:
            pool.run_points(tuple(GRID))
            cold = pool.cache.stats()
            assert cold.hits == 0 and cold.misses == len(GRID)
            _reports, delta = pool.run_points(tuple(GRID))
            warm = pool.cache.stats()
        assert warm.hits == len(GRID)
        # Nothing new was computed, so the second delta ships no entries.
        assert len(delta.timings) == 0 and len(delta.windows) == 0
        assert delta.stats.hits == len(GRID)
        assert pool.submissions == 2
        assert pool.points_run == 2 * len(GRID)

    def test_first_delta_carries_everything(self):
        with WarmPool(jobs=1) as pool:
            _reports, delta = pool.run_points(tuple(GRID))
        assert len(delta.timings) == len(GRID)
        assert delta.stats.misses == len(GRID)

    def test_sharded_pool_matches_local(self):
        local = run_sweep(GRID, session=Session(cache=TimingCache()))
        with WarmPool(jobs=2) as pool:
            reports, delta = pool.run_points(tuple(GRID))
            assert reports == local.report_by_id()
            assert len(delta.timings) == len(GRID)
            # Workers were cold; the warm resubmission ships nothing and
            # surfaces worker-side hits in the pool's merged counters.
            reports2, delta2 = pool.run_points(tuple(GRID))
        # Warm reports wear cached=True (as a warm local session's do);
        # the timings themselves are identical.
        assert all(report.cached for report in reports2.values())
        assert {rid: r.seconds for rid, r in reports2.items()} == {
            rid: r.seconds for rid, r in local.report_by_id().items()
        }
        assert len(delta2.timings) == 0
        assert delta2.stats.hits == len(GRID)

    def test_status_shape(self):
        with WarmPool(jobs=1) as pool:
            pool.run_points(tuple(GRID))
            status = pool.status()
        assert status["jobs"] == 1
        assert status["submissions"] == 1
        assert status["points"] == len(GRID)
        assert status["cache"]["timings"] == len(GRID)
        assert status["cache"]["misses"] == len(GRID)
