"""Wire protocol: framing round-trips, version and fingerprint checks."""

import pytest

from repro.api import SimRequest
from repro.cluster import protocol
from repro.errors import (
    ClusterError,
    ClusterProtocolError,
    ClusterUnavailableError,
    FingerprintMismatchError,
    ProtocolVersionError,
)
from repro.gemm.cache import CacheEntries
from repro.sweep.grid import SweepSpec, expand

GRID = expand(SweepSpec(platforms=("sma:2",), models=("alexnet",), gemms=(128,)))


class TestFraming:
    def test_message_round_trip(self):
        message = protocol.submit_message(tuple(GRID), 0.0)
        line = protocol.encode_message(message)
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        assert protocol.decode_message(line) == message

    def test_rejects_non_json(self):
        with pytest.raises(ClusterProtocolError, match="not valid JSON"):
            protocol.decode_message(b"{nope\n")

    def test_rejects_untyped_frames(self):
        with pytest.raises(ClusterProtocolError, match="'type'"):
            protocol.decode_message(b"[1, 2]\n")
        with pytest.raises(ClusterProtocolError, match="'type'"):
            protocol.decode_message(b'{"v": 1}\n')

    def test_rejects_non_utf8(self):
        with pytest.raises(ClusterProtocolError, match="UTF-8"):
            protocol.decode_message(b"\xff\xfe\n")


class TestVersioning:
    def test_current_version_passes(self):
        protocol.check_version(protocol.hello_message())

    @pytest.mark.parametrize("version", (0, 2, None, "1"))
    def test_other_versions_rejected(self, version):
        message = {**protocol.hello_message(), "v": version}
        with pytest.raises(ProtocolVersionError):
            protocol.check_version(message)


class TestPoints:
    def test_point_round_trip(self):
        for point in GRID:
            wired = protocol.point_from_wire(protocol.point_to_wire(point))
            assert wired == point

    def test_verify_accepts_matching_fingerprints(self):
        protocol.verify_points(tuple(GRID))

    def test_verify_rejects_tampered_fingerprint(self):
        point = next(iter(GRID))
        from dataclasses import replace

        forged = replace(point, fingerprint="0" * 64)
        with pytest.raises(FingerprintMismatchError, match="diverged"):
            protocol.verify_points((forged,))

    def test_verify_honors_overhead_extras(self):
        # The same request under a different framework overhead is a
        # different stored identity; the server must not accept one as
        # the other.
        grid = expand(
            SweepSpec(
                platforms=("sma:2",),
                models=("alexnet",),
                framework_overhead_s=0.0,
            )
        )
        points = tuple(grid)
        protocol.verify_points(points, 0.0)
        with pytest.raises(FingerprintMismatchError):
            protocol.verify_points(points, None)

    def test_point_from_wire_rejects_garbage(self):
        with pytest.raises(ClusterProtocolError):
            protocol.point_from_wire({"request_id": "x"})
        with pytest.raises(ClusterProtocolError, match="undecodable"):
            protocol.point_from_wire(
                {
                    "request_id": "x",
                    "fingerprint": "f",
                    "request": {"platform": "sma:2"},  # no workload
                }
            )


class TestResults:
    def test_result_round_trip(self):
        from repro.api import Session, TimingCache

        session = Session(cache=TimingCache())
        point = next(p for p in GRID if p.request.kind == "gemm")
        report = session.run_request(point.request)
        message = protocol.result_message(
            {point.request_id: report}, session.cache.export_entries()
        )
        decoded = protocol.decode_message(protocol.encode_message(message))
        reports, cache = protocol.parse_result(decoded)
        assert reports == {point.request_id: report}
        assert isinstance(cache, CacheEntries)
        assert len(cache.timings) == 1

    def test_parse_result_rejects_wrong_type(self):
        with pytest.raises(ClusterProtocolError, match="expected a result"):
            protocol.parse_result(protocol.hello_message())

    def test_cache_blob_round_trip_rejects_garbage(self):
        entries = CacheEntries(timings={}, windows={})
        blob = protocol.encode_cache_entries(entries)
        assert protocol.decode_cache_entries(blob) == entries
        with pytest.raises(ClusterProtocolError, match="undecodable"):
            protocol.decode_cache_entries("!!!not-base64!!!")


class TestErrors:
    @pytest.mark.parametrize(
        "code,exc",
        [
            ("protocol", ClusterProtocolError),
            ("version_mismatch", ProtocolVersionError),
            ("fingerprint_mismatch", FingerprintMismatchError),
            ("unavailable", ClusterUnavailableError),
            ("internal", ClusterError),
        ],
    )
    def test_error_frames_raise_typed(self, code, exc):
        message = protocol.error_message(code, "boom")
        with pytest.raises(exc, match="boom"):
            protocol.raise_for_error(message)

    def test_error_code_mapping(self):
        assert (
            protocol.error_code_for(FingerprintMismatchError("x"))
            == "fingerprint_mismatch"
        )
        assert (
            protocol.error_code_for(ProtocolVersionError("x"))
            == "version_mismatch"
        )
        assert protocol.error_code_for(ValueError("x")) == "internal"

    def test_non_error_frames_pass_through(self):
        protocol.raise_for_error(protocol.hello_message())
