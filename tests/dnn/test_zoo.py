"""Model zoo tests — Table II layer counts and structural sanity."""

import pytest

from repro.dnn.ops import ArgMax, Crf, Dense, RegionProposal, RoIAlign
from repro.dnn.zoo import (
    MODEL_BUILDERS,
    TABLE_II_CONV_LAYERS,
    build_deeplab,
    build_goturn,
    build_mask_rcnn,
)


class TestTableII:
    @pytest.mark.parametrize("name", sorted(TABLE_II_CONV_LAYERS))
    def test_conv_layer_counts(self, name):
        graph = MODEL_BUILDERS[name]()
        assert graph.conv_layer_count == TABLE_II_CONV_LAYERS[name]

    @pytest.mark.parametrize("name", sorted(TABLE_II_CONV_LAYERS))
    def test_graphs_are_valid_dags(self, name):
        MODEL_BUILDERS[name]().validate()

    @pytest.mark.parametrize("name", sorted(TABLE_II_CONV_LAYERS))
    def test_nonzero_flops(self, name):
        assert MODEL_BUILDERS[name]().total_flops > 1e9


class TestClassifiers:
    def test_alexnet_has_three_fc(self):
        graph = MODEL_BUILDERS["AlexNet"]()
        fcs = [op for op in graph.operators() if isinstance(op, Dense)]
        assert len(fcs) == 3
        assert fcs[-1].out_features == 1000

    def test_vgg_flops_exceed_alexnet(self):
        assert (
            MODEL_BUILDERS["VGG-A"]().total_flops
            > 3 * MODEL_BUILDERS["AlexNet"]().total_flops
        )

    def test_googlenet_small_despite_depth(self):
        googlenet = MODEL_BUILDERS["GoogLeNet"]()
        vgg = MODEL_BUILDERS["VGG-A"]()
        assert googlenet.conv_layer_count > vgg.conv_layer_count
        assert googlenet.total_flops < vgg.total_flops


class TestHybridModels:
    def test_mask_rcnn_irregular_ops(self):
        graph = build_mask_rcnn()
        kinds = {type(op) for op in graph.irregular_ops}
        assert RoIAlign in kinds and RegionProposal in kinds

    def test_deeplab_irregular_ops(self):
        graph = build_deeplab(with_crf=True)
        kinds = {type(op) for op in graph.irregular_ops}
        assert ArgMax in kinds and Crf in kinds

    def test_deeplab_without_crf(self):
        graph = build_deeplab(with_crf=False)
        kinds = {type(op) for op in graph.irregular_ops}
        assert Crf not in kinds
        assert graph.conv_layer_count == 108

    def test_deeplab_input_scaling(self):
        small = build_deeplab(with_crf=False, input_size=257)
        large = build_deeplab(with_crf=False, input_size=513)
        assert small.total_flops < large.total_flops
        assert small.conv_layer_count == 108

    def test_gemm_flops_dominate_hybrids(self):
        """CNN work dominates; the irregular ops are the latency problem."""
        for name in ("Mask R-CNN", "DeepLab"):
            graph = MODEL_BUILDERS[name]()
            assert graph.gemm_compatible_flops / graph.total_flops > 0.8


class TestGoturn:
    def test_twin_towers(self):
        graph = build_goturn()
        assert graph.conv_layer_count == 10

    def test_regression_head(self):
        graph = build_goturn()
        last = graph.operators()[-1]
        assert isinstance(last, Dense)
        assert last.out_features == 4  # bounding box
