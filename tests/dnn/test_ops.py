"""Operator IR tests."""

import pytest

from repro.dnn.ops import (
    ArgMax,
    Conv2d,
    Crf,
    Dense,
    Eltwise,
    OpCategory,
    Pool,
    RegionProposal,
    Relu,
    RoIAlign,
    Softmax,
    TpuSupport,
)
from repro.dnn.tensor import TensorShape, nchw
from repro.errors import GraphError


class TestConv2d:
    def test_gemm_dims_match_im2col(self):
        conv = Conv2d.build("c", 3, 96, 227, 227, kernel=11, stride=4)
        assert conv.gemm_dims() == (55 * 55, 96, 3 * 121)
        assert conv.is_gemm_compatible

    def test_flops_are_2mnk(self):
        conv = Conv2d.build("c", 8, 16, 10, 10, kernel=3, padding=1)
        m, n, k = conv.gemm_dims()
        assert conv.flops == 2 * m * n * k

    def test_output_shape(self):
        conv = Conv2d.build("c", 3, 64, 224, 224, kernel=7, stride=2, padding=3)
        assert conv.output_shape.dims == (1, 64, 112, 112)

    def test_weight_bytes(self):
        conv = Conv2d.build("c", 4, 8, 8, 8, kernel=3, padding=1)
        assert conv.weight_bytes == 8 * 4 * 9 * 4

    def test_category_and_tpu(self):
        conv = Conv2d.build("c", 1, 1, 4, 4, kernel=1)
        assert conv.category is OpCategory.CONV
        assert conv.tpu_support is TpuSupport.NATIVE
        assert conv.kernel_launches == 1


class TestDense:
    def test_gemm_dims(self):
        fc = Dense.build("fc", 4096, 1000, batch=8)
        assert fc.gemm_dims() == (8, 1000, 4096)

    def test_weight_bytes(self):
        fc = Dense.build("fc", 16, 8)
        assert fc.weight_bytes == 16 * 8 * 4


class TestPool:
    def test_output_extent(self):
        pool = Pool.build("p", 64, 56, 56, kernel=2)
        assert pool.output_shape.dims == (1, 64, 28, 28)

    def test_global_average(self):
        pool = Pool.build("p", 1024, 7, 7, kernel=7, kind="global_avg")
        assert pool.output_shape.dims == (1, 1024, 1, 1)

    def test_not_gemm_compatible(self):
        assert Pool.build("p", 4, 8, 8, kernel=2).gemm_dims() is None

    def test_invalid_kind(self):
        with pytest.raises(GraphError):
            Pool.build("p", 4, 8, 8, kernel=2, kind="median")


class TestIrregularOps:
    def test_roialign_flags(self):
        op = RoIAlign.build("roi", nchw(1, 256, 200, 256), num_rois=1000)
        assert op.category is OpCategory.IRREGULAR
        assert op.tpu_support is TpuSupport.LOWERED
        assert not op.is_gemm_compatible
        assert op.kernel_launches > 1

    def test_nms_efficiency_tiny(self):
        op = RegionProposal.build("rp", nchw(1, 256, 200, 256))
        assert op.simd_efficiency < 0.01

    def test_argmax_classes(self):
        op = ArgMax.build("am", nchw(1, 21, 513, 513))
        assert op.num_classes == 21
        assert op.output_shape.dims == (1, 1, 513, 513)

    def test_crf_ships_to_host(self):
        op = Crf.build("crf", nchw(1, 21, 513, 513))
        assert op.tpu_support is TpuSupport.HOST
        assert 0 < op.host_serial_fraction < 1
        assert op.flops > 1e9

    def test_crf_iterations_scale_flops(self):
        shape = nchw(1, 21, 129, 129)
        few = Crf.build("crf", shape, iterations=2)
        many = Crf.build("crf", shape, iterations=10)
        assert many.flops == pytest.approx(5 * few.flops)


class TestElementwise:
    def test_relu_shape_preserved(self):
        shape = nchw(1, 8, 4, 4)
        assert Relu.build("r", shape).output_shape == shape

    def test_eltwise(self):
        shape = nchw(1, 8, 4, 4)
        assert Eltwise.build("add", shape).output_shape == shape

    def test_softmax_flops(self):
        shape = TensorShape((1, 1000))
        assert Softmax.build("sm", shape).flops == 5000
