"""Layer-graph structure tests."""

import pytest

from repro.dnn.graph import LayerGraph
from repro.dnn.ops import Conv2d, Eltwise, Relu
from repro.dnn.tensor import nchw
from repro.errors import GraphError


def _conv(name="c"):
    return Conv2d.build(name, 3, 8, 16, 16, kernel=3, padding=1)


class TestGraphConstruction:
    def test_add_returns_sequential_ids(self):
        graph = LayerGraph("g")
        first = graph.add(_conv("a"))
        second = graph.add(_conv("b"), (first,))
        assert (first, second) == (0, 1)

    def test_forward_reference_rejected(self):
        graph = LayerGraph("g")
        with pytest.raises(GraphError):
            graph.add(_conv(), (5,))

    def test_topological_order_is_construction_order(self):
        graph = LayerGraph("g")
        a = graph.add(_conv("a"))
        b = graph.add(Relu.build("r", nchw(1, 8, 16, 16)), (a,))
        graph.add(Eltwise.build("e", nchw(1, 8, 16, 16)), (a, b))
        order = [node.op.name for node in graph.topological_order()]
        assert order == ["a", "r", "e"]

    def test_validate_passes_on_dag(self):
        graph = LayerGraph("g")
        a = graph.add(_conv("a"))
        graph.add(_conv("b"), (a,))
        graph.validate()


class TestGraphStats:
    def test_conv_count(self):
        graph = LayerGraph("g")
        a = graph.add(_conv("a"))
        graph.add(Relu.build("r", nchw(1, 8, 16, 16)), (a,))
        graph.add(_conv("b"), (a,))
        assert graph.conv_layer_count == 2

    def test_flops_aggregation(self):
        graph = LayerGraph("g")
        conv = _conv()
        graph.add(conv)
        assert graph.total_flops == conv.flops
        assert graph.gemm_compatible_flops == conv.flops

    def test_category_histogram(self):
        graph = LayerGraph("g")
        a = graph.add(_conv("a"))
        graph.add(Relu.build("r", nchw(1, 8, 16, 16)), (a,))
        hist = graph.category_histogram()
        assert hist == {"conv": 1, "activation": 1}

    def test_len(self):
        graph = LayerGraph("g")
        graph.add(_conv())
        assert len(graph) == 1
