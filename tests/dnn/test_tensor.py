"""TensorShape tests."""

import pytest

from repro.config import DataType
from repro.dnn.tensor import TensorShape, nchw
from repro.errors import GraphError


class TestTensorShape:
    def test_elements_and_bytes(self):
        shape = TensorShape((2, 3, 4), dtype=DataType.FP16)
        assert shape.elements == 24
        assert shape.bytes == 48

    def test_nchw_helper(self):
        shape = nchw(1, 64, 56, 56)
        assert shape.dims == (1, 64, 56, 56)
        assert shape.rank == 4

    def test_with_dims_preserves_dtype(self):
        shape = TensorShape((4,), dtype=DataType.FP16)
        assert shape.with_dims((8,)).dtype is DataType.FP16

    def test_validation(self):
        with pytest.raises(GraphError):
            TensorShape(())
        with pytest.raises(GraphError):
            TensorShape((4, 0))

    def test_str(self):
        assert str(TensorShape((2, 3))) == "2x3:fp32"
