"""CLI tests for the Session-backed subcommands."""

import json

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_platforms_and_models(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for needle in ("experiments:", "platforms", "models:", "sma",
                       "mask_rcnn", "fig7_left"):
            assert needle in out


class TestBench:
    def test_table(self, capsys):
        assert main(["bench", "256", "-p", "sma:2"]) == 0
        out = capsys.readouterr().out
        assert "GEMM 256x256x256" in out
        assert "sma:2" in out
        assert "shared GEMM cache" in out

    def test_json(self, capsys):
        assert main(["bench", "128x256x512", "-p", "gpu-tc", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["kind"] == "gemm"
        assert (data[0]["m"], data[0]["n"], data[0]["k"]) == (128, 256, 512)

    def test_bad_shape(self):
        with pytest.raises(SystemExit):
            main(["bench", "12xbanana"])


class TestSimulate:
    def test_json(self, capsys):
        assert main(["simulate", "alexnet", "sma:2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["reports"][0]["model"] == "alexnet"
        assert data["reports"][0]["platform"] == "sma:2"

    def test_unknown_model_is_clean_error(self, capsys):
        assert main(["simulate", "resnext", "sma:2"]) == 2
        assert "unknown model" in capsys.readouterr().err
