"""CLI tests for the Session-backed subcommands."""

import json

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_platforms_and_models(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for needle in ("experiments:", "platforms", "models:", "sma",
                       "mask_rcnn", "fig7_left"):
            assert needle in out


class TestBench:
    def test_table(self, capsys):
        assert main(["bench", "256", "-p", "sma:2"]) == 0
        out = capsys.readouterr().out
        assert "GEMM 256x256x256" in out
        assert "sma:2" in out
        assert "shared GEMM cache" in out

    def test_json(self, capsys):
        assert main(["bench", "128x256x512", "-p", "gpu-tc", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["kind"] == "gemm"
        assert (data[0]["m"], data[0]["n"], data[0]["k"]) == (128, 256, 512)

    def test_bad_shape(self):
        with pytest.raises(SystemExit):
            main(["bench", "12xbanana"])


class TestSimulate:
    def test_json(self, capsys):
        assert main(["simulate", "alexnet", "sma:2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["reports"][0]["model"] == "alexnet"
        assert data["reports"][0]["platform"] == "sma:2"

    def test_unknown_model_is_clean_error(self, capsys):
        assert main(["simulate", "resnext", "sma:2"]) == 2
        assert "unknown model" in capsys.readouterr().err


class TestStoreDiff:
    def _make_store(self, path, seconds=1.0):
        from repro.api import SimRequest
        from repro.api.results import GemmReport
        from repro.sweep.grid import SweepPoint, request_fingerprint
        from repro.sweep.store import ResultStore

        request = SimRequest(platform="sma:2", gemm=None, model="alexnet")
        fingerprint = request_fingerprint(request)
        point = SweepPoint(
            index=0,
            request_id=f"model-{fingerprint[:12]}",
            fingerprint=fingerprint,
            request=request,
        )
        report = GemmReport(
            platform="sma:2", backend="sma", m=1, n=1, k=1, dtype="fp16",
            alpha=1.0, beta=0.0, seconds=seconds, cycles=1.0, tb_cycles=1.0,
            tflops=1.0, efficiency=1.0, sm_efficiency=1.0,
        )
        with ResultStore(path) as store:
            store.put(point, report)

    def test_identical_stores_pass(self, tmp_path, capsys):
        left, right = tmp_path / "a.sqlite", tmp_path / "b.sqlite"
        self._make_store(left)
        self._make_store(right)
        assert main(["store-diff", str(left), str(right)]) == 0
        assert "0 changed" in capsys.readouterr().out

    def test_changed_payload_fails_the_gate(self, tmp_path, capsys):
        left, right = tmp_path / "a.sqlite", tmp_path / "b.sqlite"
        self._make_store(left, seconds=1.0)
        self._make_store(right, seconds=2.0)
        assert main(["store-diff", str(left), str(right)]) == 1
        captured = capsys.readouterr()
        assert "1 changed" in captured.out
        assert "regression gate" in captured.err

    def test_json_output(self, tmp_path, capsys):
        left, right = tmp_path / "a.sqlite", tmp_path / "b.sqlite"
        self._make_store(left)
        self._make_store(right)
        assert main(["store-diff", str(left), str(right), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["identical"] is True


class TestScenarioCliErrors:
    def test_needs_streams_or_spec(self, capsys):
        assert main(["scenario", "-p", "sma:2"]) == 2
        assert "stream" in capsys.readouterr().err

    def test_bad_stream_option(self, capsys):
        assert main(
            ["scenario", "-p", "sma:2", "-s", "alexnet@bogus=1"]
        ) == 2
        assert "unknown key" in capsys.readouterr().err

    def test_needs_platform(self, capsys):
        assert main(["scenario", "-s", "alexnet"]) == 2
        assert "platform" in capsys.readouterr().err

    def test_missing_store_is_clean_error(self, tmp_path, capsys):
        from repro.sweep.store import ResultStore

        present = tmp_path / "present.sqlite"
        ResultStore(present).close()
        missing = tmp_path / "missing.sqlite"
        assert main(["store-diff", str(missing), str(present)]) == 2
        assert "does not exist" in capsys.readouterr().err
        assert not missing.exists()  # sqlite must not create it

    def test_malformed_spec_json_is_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["scenario", "--spec", str(bad)]) == 2
        assert "invalid scenario JSON" in capsys.readouterr().err

    def test_spec_missing_keys_is_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x", "streams": [{"name": "a"}]}')
        assert main(["scenario", "--spec", str(bad), "-p", "sma:2"]) == 2
        assert "missing 'model'" in capsys.readouterr().err

    def test_spec_conflicting_streams_rejected(self, tmp_path, capsys):
        spec = tmp_path / "s.json"
        spec.write_text(
            '{"name": "x", "platform": "sma:2",'
            ' "streams": [{"name": "a", "model": "alexnet"}]}'
        )
        assert main(
            ["scenario", "--spec", str(spec), "-s", "goturn"]
        ) == 2
        assert "drop the -s" in capsys.readouterr().err

    def test_spec_flags_override_file(self, tmp_path, capsys):
        spec = tmp_path / "s.json"
        spec.write_text(
            '{"name": "x", "platform": "sma:2", "frames": 1,'
            ' "streams": [{"name": "a", "model": "alexnet"}]}'
        )
        assert main(
            ["scenario", "--spec", str(spec), "--frames", "2",
             "--name", "renamed", "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["frames"] == 2
        assert data["scenario"] == "renamed"
