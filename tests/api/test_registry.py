"""Registry tests: spec parsing, resolution, self-registration."""

import pytest

from repro.api import registry
from repro.api.registry import (
    available_models,
    available_platforms,
    build_model,
    build_platform,
    gemm_config,
    parse_spec,
    register_model,
    register_platform,
)
from repro.config import DataType
from repro.errors import ConfigError
from repro.platforms import (
    CpuPlatform,
    GpuSimdPlatform,
    GpuSmaPlatform,
    GpuTcPlatform,
    TpuPlatform,
)


class TestParseSpec:
    def test_bare_name(self):
        assert parse_spec("gpu-simd") == ("gpu-simd", ())

    def test_args(self):
        assert parse_spec("sma:2,fp32") == ("sma", ("2", "fp32"))

    def test_whitespace_and_case(self):
        assert parse_spec("  SMA : 3 ") == ("sma", ("3",))

    @pytest.mark.parametrize("bad", ["", "   ", ":3", "sma:", "sma:2,,fp32"])
    def test_invalid(self, bad):
        with pytest.raises(ConfigError):
            parse_spec(bad)


class TestPlatformRegistry:
    def test_builtins_listed(self):
        names = available_platforms()
        assert {"gpu-simd", "gpu-tc", "sma", "tpu", "cpu"} <= set(names)
        assert all(description for description in names.values())

    @pytest.mark.parametrize(
        "spec,cls",
        [
            ("gpu-simd", GpuSimdPlatform),
            ("simd", GpuSimdPlatform),
            ("gpu-tc", GpuTcPlatform),
            ("tc", GpuTcPlatform),
            ("gpu-4tc", GpuTcPlatform),
            ("sma", GpuSmaPlatform),
            ("tpu", TpuPlatform),
            ("cpu", CpuPlatform),
        ],
    )
    def test_build_by_spec(self, spec, cls):
        assert isinstance(build_platform(spec), cls)

    def test_sma_units_parsed(self):
        platform = build_platform("sma:2")
        assert platform.system.sma.units_per_sm == 2

    def test_sma_dtype_parsed(self):
        platform = build_platform("sma:3,fp32")
        assert platform.system.sma.dtype is DataType.FP32

    @pytest.mark.parametrize(
        "bad",
        ["sma:0", "sma:-1", "sma:banana", "sma:2,fp64", "sma:2,fp16,extra",
         "tpu:2", "gpu-simd:8", "warp9"],
    )
    def test_invalid_specs(self, bad):
        with pytest.raises(ConfigError):
            build_platform(bad)

    def test_kwargs_forwarded(self):
        platform = build_platform("gpu-tc", framework_overhead_s=0.0)
        assert platform.framework_overhead_s == 0.0

    def test_gemm_config(self):
        system, backend = gemm_config("sma:2")
        assert backend == "sma"
        assert system.sma.units_per_sm == 2

    def test_gemm_config_unsupported(self):
        with pytest.raises(ConfigError):
            gemm_config("cpu")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError):
            register_platform("sma")(lambda *a, **k: None)

    def test_self_registration_decorator(self):
        @register_platform("test-null", description="for tests")
        def _build_null(*args, cache=None, **kwargs):
            return CpuPlatform(**kwargs)

        try:
            assert "test-null" in available_platforms()
            assert isinstance(build_platform("test-null"), CpuPlatform)
        finally:
            registry.unregister_platform("test-null")
        assert "test-null" not in available_platforms()


class TestModelRegistry:
    def test_builtins_listed(self):
        assert {
            "alexnet", "vgg_a", "googlenet", "mask_rcnn", "deeplab", "goturn"
        } <= set(available_models())

    def test_build_by_spec(self):
        graph = build_model("mask_rcnn")
        assert graph.name == "Mask R-CNN"

    def test_alias(self):
        assert build_model("vgg").name == build_model("vgg_a").name

    def test_deeplab_crf_flag(self):
        with_crf = build_model("deeplab")
        without = build_model("deeplab:nocrf")
        assert len(with_crf.nodes) == len(without.nodes) + 1

    @pytest.mark.parametrize("bad", ["resnext", "alexnet:2", "deeplab:maybe"])
    def test_invalid(self, bad):
        with pytest.raises(ConfigError):
            build_model(bad)

    def test_self_registration_decorator(self):
        @register_model("test-tiny", description="for tests")
        def _build_tiny(*args):
            return build_model("alexnet")

        try:
            assert build_model("test-tiny").name == "AlexNet"
        finally:
            registry.unregister_model("test-tiny")
        assert "test-tiny" not in available_models()
