"""Report object tests: JSON round-trips and derived quantities."""

import json

import pytest

from repro.api import (
    GemmReport,
    ModelReport,
    OpReport,
    ScenarioSpec,
    ScheduleReport,
    Session,
    SimRequest,
    StreamSpec,
    TimingCache,
    report_from_dict,
)
from repro.errors import ConfigError
from repro.gemm.problem import GemmProblem

GEMM_REPORT = GemmReport(
    platform="sma:3",
    backend="sma",
    m=512,
    n=256,
    k=1024,
    dtype="fp16",
    alpha=1.0,
    beta=0.5,
    seconds=1.5e-4,
    cycles=229500.0,
    tb_cycles=1024.0,
    tflops=1.79,
    efficiency=0.41,
    sm_efficiency=0.88,
    cached=True,
    tag="unit",
)

MODEL_REPORT = ModelReport(
    model="deeplab",
    platform="gpu-tc",
    ops=(
        OpReport("conv1", "CNN&FC", "gemm-tc", 1e-3, 2e9),
        OpReport("argmax", "ArgMax", "simd", 5e-4, 1e6),
    ),
    tag="unit",
)


class TestGemmReport:
    def test_dict_round_trip(self):
        assert GemmReport.from_dict(GEMM_REPORT.to_dict()) == GEMM_REPORT

    def test_json_round_trip(self):
        assert GemmReport.from_json(GEMM_REPORT.to_json()) == GEMM_REPORT

    def test_kind_tagged(self):
        assert GEMM_REPORT.to_dict()["kind"] == "gemm"

    def test_wrong_kind_rejected(self):
        with pytest.raises(ConfigError):
            GemmReport.from_dict(MODEL_REPORT.to_dict())

    def test_milliseconds(self):
        assert GEMM_REPORT.milliseconds == pytest.approx(0.15)


class TestModelReport:
    def test_dict_round_trip(self):
        assert ModelReport.from_dict(MODEL_REPORT.to_dict()) == MODEL_REPORT

    def test_json_round_trip(self):
        assert ModelReport.from_json(MODEL_REPORT.to_json()) == MODEL_REPORT

    def test_totals_and_groups(self):
        assert MODEL_REPORT.total_seconds == pytest.approx(1.5e-3)
        assert MODEL_REPORT.total_ms == pytest.approx(1.5)
        groups = MODEL_REPORT.grouped_seconds()
        assert groups["CNN&FC"] == pytest.approx(1e-3)
        assert groups["ArgMax"] == pytest.approx(5e-4)

    def test_exported_totals_match_fields(self):
        data = MODEL_REPORT.to_dict()
        assert data["total_seconds"] == pytest.approx(
            MODEL_REPORT.total_seconds
        )
        assert data["grouped_seconds"] == MODEL_REPORT.grouped_seconds()


class TestSimRequestRoundTrip:
    def test_gemm_request_round_trip(self):
        request = SimRequest(
            platform="sma:2",
            gemm=GemmProblem(512, 256, 1024, beta=1.0),
            tag="rt",
            dataflow="ws",
            scheduler="sma_rr",
        )
        assert SimRequest.from_json(request.to_json()) == request

    def test_model_request_round_trip(self):
        request = SimRequest(
            platform="gpu-tc", model="alexnet", scheduler="lrr"
        )
        recovered = SimRequest.from_dict(request.to_dict())
        assert recovered == request
        assert recovered.dataflow is None

    def test_dataflow_enum_normalized_to_value(self):
        from repro.systolic.dataflow import Dataflow

        request = SimRequest(
            platform="sma:2",
            gemm=GemmProblem(64, 64, 64),
            dataflow=Dataflow.WEIGHT_STATIONARY,
        )
        assert request.dataflow == "ws"

    def test_unknown_dataflow_rejected(self):
        with pytest.raises(ConfigError):
            SimRequest(
                platform="sma:2",
                gemm=GemmProblem(64, 64, 64),
                dataflow="spiral",
            )


class TestOpReportEnergy:
    def test_energy_dict_round_trips(self):
        report = ModelReport(
            model="alexnet",
            platform="sma:2",
            ops=(
                OpReport(
                    "conv1", "CNN&FC", "gemm-sma", 1e-3, 2e9,
                    energy={"Global": 0.25, "PE": 0.5},
                ),
            ),
        )
        assert ModelReport.from_dict(report.to_dict()) == report

    def test_live_model_report_carries_energy(self):
        session = Session(cache=TimingCache())
        report = session.run_model("alexnet", "sma:2")
        assert any(op.energy for op in report.ops)
        assert ModelReport.from_json(report.to_json()) == report


class TestReportFromDict:
    def test_dispatch(self):
        assert report_from_dict(GEMM_REPORT.to_dict()) == GEMM_REPORT
        assert report_from_dict(MODEL_REPORT.to_dict()) == MODEL_REPORT

    def test_unknown_kind(self):
        with pytest.raises(ConfigError):
            report_from_dict({"kind": "mystery"})


class TestLiveRoundTrip:
    """End-to-end: reports produced by a real simulation survive JSON."""

    def test_session_reports_round_trip(self):
        session = Session(cache=TimingCache())
        gemm = session.time_gemm("sma:2", 256, tag="live")
        assert GemmReport.from_json(gemm.to_json()) == gemm
        model = session.run_model("alexnet", "sma:2", tag="live")
        recovered = ModelReport.from_json(model.to_json())
        assert recovered == model
        assert recovered.total_seconds == pytest.approx(model.total_seconds)

    def test_batch_reports_parse_back(self):
        session = Session(cache=TimingCache())
        batch = session.run_batch(
            [
                SimRequest(platform="sma:2", model="alexnet"),
                SimRequest(platform="sma:2", gemm=GemmProblem(256, 256, 256)),
            ]
        )
        parsed = json.loads(batch.to_json())
        recovered = [report_from_dict(item) for item in parsed["reports"]]
        assert recovered == list(batch.reports)


SCENARIO = ScenarioSpec(
    name="pair",
    platform="sma:2",
    frames=2,
    policy="priority",
    streams=(
        StreamSpec(name="a", model="alexnet", priority=2.0,
                   deadline_s=0.05),
        StreamSpec(name="b", model="goturn", skip_interval=2),
    ),
)


class TestScenarioRequest:
    def test_kind_and_round_trip(self):
        request = SimRequest(platform="sma:2", scenario=SCENARIO, tag="mt")
        assert request.kind == "scenario"
        recovered = SimRequest.from_json(request.to_json())
        assert recovered == request
        assert recovered.scenario == SCENARIO

    def test_exactly_one_workload(self):
        with pytest.raises(ConfigError):
            SimRequest(platform="sma:2", model="alexnet", scenario=SCENARIO)

    def test_model_request_dict_has_no_scenario_key(self):
        # Fingerprint stability: model/gemm request dicts are identical to
        # the pre-scenario format, so stored IDs survive this refactor.
        assert "scenario" not in SimRequest(
            platform="sma:2", model="alexnet"
        ).to_dict()


class TestScheduleReport:
    def test_live_round_trip(self):
        session = Session(cache=TimingCache())
        report = session.run_scenario(SCENARIO, tag="live")
        assert isinstance(report, ScheduleReport)
        recovered = ScheduleReport.from_json(report.to_json())
        assert recovered == report
        assert report_from_dict(json.loads(report.to_json())) == report

    def test_report_contents(self):
        session = Session(cache=TimingCache())
        report = session.run_scenario(SCENARIO)
        assert report.scenario == "pair"
        assert report.platform == "sma:2"
        assert report.frames == 2
        assert report.makespan_s > 0
        assert report.avg_frame_latency_s == pytest.approx(
            report.makespan_s / 2
        )
        assert report.stream("a").frames_run == 2
        assert report.stream("b").frames_run == 1
        assert report.stream("b").frames_skipped == 1
        with pytest.raises(ConfigError):
            report.stream("zzz")
        assert set(report.occupancy) <= {
            "simd", "array", "tc", "transfer", "host",
        }
        # Segments cover every lowered task of every executed frame.
        assert len(report.segments) == 2 * 18 + 1 * 24

    def test_segment_and_stream_stretch(self):
        session = Session(cache=TimingCache())
        report = session.run_scenario(SCENARIO)
        for stream in report.streams:
            assert stream.stretch >= 1.0 - 1e-9
        assert all(
            segment.stretch >= 1.0 - 1e-9 for segment in report.segments
        )

    def test_request_binds_platform(self):
        session = Session(cache=TimingCache())
        request = SimRequest(
            platform="sma:3",
            scenario=ScenarioSpec(
                name="open", frames=1,
                streams=(StreamSpec(name="a", model="alexnet"),),
            ),
        )
        report = session.run_request(request)
        assert report.platform == "sma:3"
