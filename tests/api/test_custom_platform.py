"""User-defined platforms work end-to-end (ROADMAP PR-1 leftover).

A ``register_platform``-decorated custom spec must flow through
``Session.run_model``, sweep-grid expansion, and the scenario path exactly
like the built-ins — including the default lowering into timeline tasks.
"""

import pytest

from repro.api import ScenarioSpec, Session, StreamSpec, TimingCache
from repro.api.registry import (
    available_platforms,
    register_platform,
    unregister_platform,
)
from repro.dnn.ops import Operator
from repro.errors import ConfigError
from repro.platforms.base import OpStats, Platform, reporting_group
from repro.schedule.resources import ResourceKind
from repro.sweep import SweepSpec, expand, run_sweep
from repro.sweep.store import ResultStore


class ToyNpuPlatform(Platform):
    """A fixed-rate accelerator: every op at ``tops`` TFLOP/s."""

    def __init__(self, tops: float = 10.0, framework_overhead_s=10e-6):
        super().__init__(f"toy-npu-{tops:g}", framework_overhead_s)
        self.flops_per_s = tops * 1e12

    def run_op(self, op: Operator) -> OpStats:
        return OpStats(
            op_name=op.name,
            group=reporting_group(op),
            mode="host",
            seconds=max(op.flops, 1.0) / self.flops_per_s,
            flops=op.flops,
        )


@pytest.fixture()
def toy_npu():
    name = "toy-npu"

    @register_platform(
        name, description="test-only fixed-rate NPU (toy-npu[:TOPS])"
    )
    def _build(*args, cache=None, **kwargs):
        del cache
        if len(args) > 1:
            raise ConfigError(f"toy-npu takes at most TOPS, got {args}")
        tops = float(args[0]) if args else 10.0
        return ToyNpuPlatform(tops, **kwargs)

    try:
        yield name
    finally:
        unregister_platform(name)


class TestRegistration:
    def test_listed_and_buildable(self, toy_npu):
        assert toy_npu in available_platforms()
        session = Session(cache=TimingCache())
        platform = session.platform("toy-npu:20")
        assert platform.name == "toy-npu-20"

    def test_unregistered_after_teardown(self):
        with pytest.raises(ConfigError):
            Session(cache=TimingCache()).platform("toy-npu")


class TestRunModel:
    def test_end_to_end(self, toy_npu):
        session = Session(cache=TimingCache())
        report = session.run_model("alexnet", "toy-npu:20")
        assert report.platform == "toy-npu:20"
        assert len(report.ops) == 18
        assert report.total_seconds > 0

    def test_default_lowering_schedules(self, toy_npu):
        session = Session(cache=TimingCache())
        platform = session.platform("toy-npu")
        tasks = platform.lower_model(session.model("alexnet"))
        # mode "host" maps to the HOST resource via the default claims.
        assert all(
            claim.kind is ResourceKind.HOST
            for task in tasks
            for claim in task.claims
        )
        result = platform.run_model(session.model("alexnet"))
        assert result.timeline.makespan_s == result.total_seconds


class TestSweepExpansion:
    def test_grid_and_run(self, toy_npu, tmp_path):
        spec = SweepSpec(
            platforms=("toy-npu:10", "toy-npu:20"),
            models=("alexnet",),
        )
        grid = expand(spec)
        assert len(grid) == 2
        with ResultStore(tmp_path / "npu.sqlite") as store:
            result = run_sweep(
                grid, store=store, session=Session(cache=TimingCache())
            )
            assert len(result.executed) == 2
            resumed = run_sweep(
                grid,
                store=store,
                resume=True,
                session=Session(cache=TimingCache()),
            )
        assert resumed.executed == ()
        assert [report.to_dict() for report in resumed.reports] == [
            report.to_dict() for report in result.reports
        ]

    def test_unknown_platform_fails_fast(self):
        with pytest.raises(ConfigError):
            expand(SweepSpec(platforms=("toy-npu",), models=("alexnet",)))


class TestScenarioPath:
    def test_custom_platform_scenario(self, toy_npu):
        session = Session(cache=TimingCache())
        spec = ScenarioSpec(
            name="npu-pair",
            platform="toy-npu:20",
            frames=2,
            policy="priority",
            streams=(
                StreamSpec(name="fast", model="alexnet", priority=2.0),
                StreamSpec(name="slow", model="goturn", skip_interval=2),
            ),
        )
        report = session.run_scenario(spec)
        assert report.platform == "toy-npu:20"
        assert report.stream("fast").frames_run == 2
        assert report.stream("slow").frames_run == 1
        # Both streams contend for the single HOST resource: the schedule
        # is work conserving, so the makespan is the total work.
        total = report.stream("fast").busy_s + report.stream("slow").busy_s
        assert report.makespan_s == pytest.approx(total)
