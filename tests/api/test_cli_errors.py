"""CLI error paths: bad inputs must exit 2 with a clean stderr message.

Covers `repro scenario`, `repro serve`, `repro sweep`, and
`repro store-diff` — bad spec files, unknown platform/model strings, and
conflicting flags (no tracebacks, no partial output on stdout).
"""

import json

import pytest

from repro.__main__ import main


def expect_error(capsys, argv, *needles):
    assert main(argv) == 2
    captured = capsys.readouterr()
    assert captured.err.startswith("error:")
    for needle in needles:
        assert needle in captured.err
    return captured


class TestScenarioErrors:
    def test_missing_spec_file(self, capsys, tmp_path):
        expect_error(
            capsys,
            ["scenario", "-p", "sma:2", "--spec", str(tmp_path / "no.json")],
            "cannot read scenario file",
        )

    def test_malformed_spec_file(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        expect_error(
            capsys,
            ["scenario", "-p", "sma:2", "--spec", str(path)],
            "invalid scenario JSON",
        )

    def test_spec_conflicts_with_streams(self, capsys, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "name": "x",
            "platform": "sma:2",
            "streams": [{"name": "a", "model": "alexnet"}],
        }))
        expect_error(
            capsys,
            ["scenario", "--spec", str(path), "-s", "alexnet"],
            "drop the -s options",
        )

    def test_unknown_platform(self, capsys):
        expect_error(
            capsys,
            ["scenario", "-p", "warp9", "-s", "alexnet"],
            "unknown platform",
        )

    def test_missing_platform(self, capsys):
        expect_error(capsys, ["scenario", "-s", "alexnet"], "-p/--platform")

    def test_missing_streams(self, capsys):
        expect_error(capsys, ["scenario", "-p", "sma:2"], "-s/--stream")

    def test_bad_stream_option(self, capsys):
        expect_error(
            capsys,
            ["scenario", "-p", "sma:2", "-s", "alexnet@warp=9"],
            "unknown key",
        )

    def test_bad_stream_value(self, capsys):
        expect_error(
            capsys,
            ["scenario", "-p", "sma:2", "-s", "alexnet@prio=fast"],
            "bad value",
        )


class TestServeErrors:
    def test_unknown_qos_kind(self, capsys):
        expect_error(
            capsys,
            ["serve", "-p", "sma:2", "-s", "alexnet", "--qos", "jettison"],
            "unknown qos kind",
        )

    def test_queue_cap_needs_cap(self, capsys):
        expect_error(
            capsys,
            ["serve", "-p", "sma:2", "-s", "alexnet", "--qos", "queue_cap"],
            "needs a cap",
        )

    def test_explore_needs_rates(self, capsys):
        expect_error(
            capsys,
            ["serve", "-p", "sma:2", "-s", "alexnet", "--explore"],
            "--rates",
        )

    def test_explore_conflicts_with_trace(self, capsys, tmp_path):
        expect_error(
            capsys,
            ["serve", "-p", "sma:2", "-s", "alexnet", "--explore",
             "--rates", "5", "--trace", str(tmp_path / "t.json")],
            "exclusive",
        )

    def test_explore_conflicts_with_save_trace(self, capsys, tmp_path):
        # Single-run-only flags are rejected, not silently ignored.
        expect_error(
            capsys,
            ["serve", "-p", "sma:2", "-s", "alexnet", "--explore",
             "--rates", "5", "--save-trace", str(tmp_path / "t.json")],
            "exclusive",
        )

    def test_explore_conflicts_with_rate(self, capsys):
        expect_error(
            capsys,
            ["serve", "-p", "sma:2", "-s", "alexnet", "--explore",
             "--rates", "5", "--rate", "10"],
            "exclusive",
        )

    def test_wrong_json_as_trace_is_clean_error(self, capsys, tmp_path):
        # Easy mix-up: the serve command writes both a ServingReport and
        # an ArrivalTrace; feeding the report back must not traceback.
        path = tmp_path / "report.json"
        path.write_text(json.dumps({
            "kind": "serving", "streams": [{"name": "a"}],
        }))
        expect_error(
            capsys,
            ["serve", "-p", "sma:2", "-s", "alexnet",
             "--trace", str(path)],
            "not an arrival trace",
        )

    def test_non_numeric_trace_times_are_clean_error(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({
            "kind": "arrival_trace",
            "streams": {"alexnet": [0.0, "soon"]},
        }))
        expect_error(
            capsys,
            ["serve", "-p", "sma:2", "-s", "alexnet",
             "--trace", str(path)],
            "list of numbers",
        )

    def test_bad_rates_list(self, capsys):
        expect_error(
            capsys,
            ["serve", "-p", "sma:2", "-s", "alexnet", "--explore",
             "--rates", "5,fast"],
            "bad --rates",
        )

    def test_missing_trace_file(self, capsys):
        expect_error(
            capsys,
            ["serve", "-p", "sma:2", "-s", "alexnet",
             "--trace", "/nonexistent/trace.json"],
            "cannot read arrival trace",
        )

    def test_multiple_platforms_without_explore(self, capsys):
        expect_error(
            capsys,
            ["serve", "-p", "sma:2", "-p", "gpu-tc", "-s", "alexnet"],
            "--explore",
        )

    def test_rate_conflicts_with_period_stream(self, capsys):
        expect_error(
            capsys,
            ["serve", "-p", "sma:2",
             "-s", "alexnet@period=0.1,rate=5"],
            "exclusive",
        )

    def test_unknown_arrival_kind(self, capsys):
        expect_error(
            capsys,
            ["serve", "-p", "sma:2", "-s", "alexnet@rate=5,arrival=uniform"],
            "unknown arrival kind",
        )


class TestSweepErrors:
    def test_resume_without_store(self, capsys):
        expect_error(
            capsys,
            ["sweep", "-p", "sma:2", "-g", "64", "--resume"],
            "result store",
        )

    def test_unknown_platform_fails_fast(self, capsys):
        expect_error(
            capsys,
            ["sweep", "-p", "warp9", "-g", "64"],
            "unknown platform",
        )


class TestStoreDiffErrors:
    def test_missing_left_store(self, capsys, tmp_path):
        right = tmp_path / "right.sqlite"
        right.write_bytes(b"")
        expect_error(
            capsys,
            ["store-diff", str(tmp_path / "left.sqlite"), str(right)],
            "does not exist",
        )

    def test_missing_right_store(self, capsys, tmp_path):
        left = tmp_path / "left.sqlite"
        left.write_bytes(b"")
        expect_error(
            capsys,
            ["store-diff", str(left), str(tmp_path / "right.sqlite")],
            "does not exist",
        )
