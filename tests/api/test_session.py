"""Session tests: shared caching, batching, request validation."""

import pytest

from repro.api import Session, SimRequest, TimingCache
from repro.config import DataType
from repro.errors import BatchRequestError, ConfigError
from repro.gemm.problem import GemmProblem
from repro.systolic.dataflow import Dataflow


@pytest.fixture()
def session():
    """A session with a private cache so counters start at zero."""
    return Session(cache=TimingCache())


SMALL = GemmProblem(512, 512, 512, dtype=DataType.FP16)


class TestTimeGemm:
    def test_report_fields(self, session):
        report = session.time_gemm("sma:2", SMALL)
        assert report.platform == "sma:2"
        assert report.backend == "sma"
        assert (report.m, report.n, report.k) == (512, 512, 512)
        assert report.dtype == "fp16"
        assert report.seconds > 0
        assert report.tflops > 0
        assert not report.cached

    def test_repeat_hits_cache(self, session):
        first = session.time_gemm("sma:2", SMALL)
        second = session.time_gemm("sma:2", SMALL)
        assert not first.cached
        assert second.cached
        assert second.seconds == first.seconds
        assert session.cache_stats.hits == 1

    def test_int_and_triple_coercion(self, session):
        as_int = session.time_gemm("gpu-tc", 512)
        as_triple = session.time_gemm("gpu-tc", (512, 512, 512))
        assert as_triple.cached  # same problem, backend-default dtype
        assert as_triple.seconds == as_int.seconds

    def test_backend_default_dtypes(self, session):
        assert session.time_gemm("gpu-simd", 128).dtype == "fp32"
        assert session.time_gemm("gpu-tc", 128).dtype == "fp16"

    def test_bad_shape(self, session):
        with pytest.raises(ConfigError):
            session.time_gemm("gpu-tc", (512, 512))

    def test_non_gemm_platform(self, session):
        with pytest.raises(ConfigError):
            session.time_gemm("cpu", 512)

    def test_alpha_beta_not_collided(self, session):
        """Satellite regression: beta adds C read traffic; distinct keys."""
        plain = session.time_gemm("gpu-tc", SMALL)
        accumulating = session.time_gemm(
            "gpu-tc", GemmProblem(512, 512, 512, dtype=DataType.FP16, beta=1.0)
        )
        assert not accumulating.cached
        assert session.cache_stats.misses == 2
        assert accumulating.beta == 1.0


class TestSharedCache:
    def test_two_platforms_share_backend_cache(self, session):
        """'sma' and 'sma:3' are distinct Platform objects but identical
        frozen executor configs — the second model run is timed entirely
        from the shared cache."""
        first = session.run_model("alexnet", "sma")
        misses_after_first = session.cache_stats.misses
        second = session.run_model("alexnet", "sma:3")
        stats = session.cache_stats
        assert session.platform("sma") is not session.platform("sma:3")
        assert stats.misses == misses_after_first  # no new simulation
        assert stats.hits > 0
        assert second.total_seconds == pytest.approx(first.total_seconds)

    def test_sessions_share_explicit_cache(self):
        cache = TimingCache()
        one = Session(cache=cache)
        other = Session(cache=cache)
        assert not one.time_gemm("sma:2", SMALL).cached
        report = other.time_gemm("sma:2", SMALL)
        assert report.cached
        assert cache.stats().hits == 1

    def test_default_sessions_share_process_cache(self):
        assert Session().cache is Session().cache

    def test_executor_memoized_across_equivalent_specs(self, session):
        assert session.executor("sma") is session.executor("sma:3")
        assert session.executor("sma") is not session.executor("sma:2")
        assert session.executor(
            "sma", dataflow=Dataflow.WEIGHT_STATIONARY
        ) is not session.executor("sma")

    def test_different_sma_configs_do_not_collide(self, session):
        two = session.time_gemm("sma:2", SMALL)
        three = session.time_gemm("sma:3", SMALL)
        assert not three.cached
        assert three.seconds != two.seconds

    def test_executor_knobs_do_not_collide(self):
        """sample_window / collector_efficiency are part of the key."""
        from repro.config import system_sma
        from repro.gemm.executor import GemmExecutor

        cache = TimingCache()
        default = GemmExecutor(system_sma(2), "sma", cache=cache)
        tweaked = GemmExecutor(
            system_sma(2), "sma", cache=cache, collector_efficiency=0.5
        )
        first = default.time_gemm(SMALL)
        second = tweaked.time_gemm(SMALL)
        assert second is not first
        assert cache.stats().misses == 2


class TestRunModel:
    def test_report_addresses(self, session):
        report = session.run_model("alexnet", "gpu-tc", tag="t0")
        assert report.model == "alexnet"
        assert report.platform == "gpu-tc"
        assert report.tag == "t0"
        assert report.total_seconds > 0
        assert report.grouped_seconds()["CNN&FC"] > 0

    def test_unknown_model(self, session):
        with pytest.raises(ConfigError):
            session.run_model("resnext", "gpu-tc")


class TestRunBatch:
    def test_ordering_and_tags(self, session):
        batch = session.run_batch(
            [
                SimRequest(platform="sma:2", gemm=SMALL, tag="bench"),
                SimRequest(platform="sma:2", model="alexnet", tag="model"),
                SimRequest(platform="sma:2", gemm=SMALL, tag="again"),
            ]
        )
        assert [r.tag for r in batch.reports] == ["bench", "model", "again"]
        assert len(batch) == 3
        assert batch.reports[2].cached

    def test_two_platform_sweep_has_shared_hits(self, session):
        """Acceptance: the same model on two platforms pools timings."""
        batch = session.run_batch(
            [
                SimRequest(platform="sma", model="alexnet", tag="a"),
                SimRequest(platform="sma:3", model="alexnet", tag="b"),
            ]
        )
        assert batch.cache_stats.hits > 0
        a, b = batch.reports
        assert a.total_seconds == pytest.approx(b.total_seconds)

    def test_rejects_non_requests(self, session):
        with pytest.raises(ConfigError):
            session.run_batch(["alexnet"])

    def test_failure_carries_index_and_tag(self, session):
        """Satellite regression: a bad request mid-batch keeps its position."""
        requests = [
            SimRequest(platform="sma:2", gemm=SMALL, tag="ok"),
            SimRequest(platform="sma:2", model="not_a_model", tag="broken"),
        ]
        with pytest.raises(BatchRequestError) as excinfo:
            session.run_batch(requests)
        error = excinfo.value
        assert error.index == 1
        assert error.tag == "broken"
        assert "not_a_model" in str(error)
        assert isinstance(error.__cause__, ConfigError)

    def test_dataflow_override_honored(self, session):
        """Satellite regression: request-level dataflow reaches the executor."""
        batch = session.run_batch(
            [
                SimRequest(platform="sma:2", gemm=SMALL),
                SimRequest(platform="sma:2", gemm=SMALL, dataflow="ws"),
            ]
        )
        default, ws = batch.reports
        assert ws.dataflow == "ws"
        assert not ws.cached  # distinct executor config, distinct cache key
        assert ws.seconds > default.seconds  # diagonal drain is slower

    def test_override_on_incapable_platform_is_config_error(self, session):
        """gpu-tc has no dataflow axis: the failure is a clean ConfigError
        (wrapped with its batch position), not a raw TypeError."""
        with pytest.raises(BatchRequestError) as excinfo:
            session.run_batch(
                [SimRequest(platform="gpu-tc", model="alexnet", dataflow="ws")]
            )
        assert isinstance(excinfo.value.__cause__, ConfigError)
        assert "gpu-tc" in str(excinfo.value)

    def test_scheduler_override_honored(self, session):
        default = session.time_gemm("sma:2", SMALL)
        lrr = session.time_gemm("sma:2", SMALL, scheduler="lrr")
        assert lrr.scheduler == "lrr"
        assert default.scheduler is None
        assert not lrr.cached  # scheduler is part of the cache key

    def test_batch_json_export(self, session):
        batch = session.run_batch(
            [SimRequest(platform="sma:2", gemm=SMALL, tag="x")]
        )
        data = batch.to_dict()
        assert data["reports"][0]["kind"] == "gemm"
        assert set(data["cache"]) >= {"hits", "misses", "hit_rate"}


class TestSimRequestValidation:
    def test_needs_exactly_one_payload(self):
        with pytest.raises(ConfigError):
            SimRequest(platform="sma:2")
        with pytest.raises(ConfigError):
            SimRequest(platform="sma:2", model="alexnet", gemm=SMALL)

    def test_kind(self):
        assert SimRequest(platform="sma:2", model="alexnet").kind == "model"
        assert SimRequest(platform="sma:2", gemm=SMALL).kind == "gemm"


class TestCachePersistence:
    def test_save_and_warm_start(self, tmp_path):
        from repro.api import ScenarioSpec, StreamSpec  # noqa: F401

        path = tmp_path / "timings.pkl"
        with Session(cache=TimingCache(), cache_path=path) as warmup:
            warmup.time_gemm("sma:2", 256)
            entries_before = len(warmup.cache.export_entries())
        assert path.exists()

        # A fresh process (simulated by a fresh cache) starts warm: the
        # same GEMM is a pure cache hit, zero new window simulations.
        fresh = Session(cache=TimingCache(), cache_path=path)
        assert len(fresh.cache.export_entries()) == entries_before
        baseline = fresh.cache_stats
        fresh.time_gemm("sma:2", 256)
        delta = fresh.cache_stats.since(baseline)
        assert delta.hits == 1
        assert delta.misses == 0
        assert delta.window_misses == 0

    def test_loaded_counters_not_inherited(self, tmp_path):
        path = tmp_path / "timings.pkl"
        session = Session(cache=TimingCache(), cache_path=path)
        session.time_gemm("sma:2", 128)
        session.close()
        fresh = Session(cache=TimingCache(), cache_path=path)
        stats = fresh.cache_stats
        assert stats.hits == 0 and stats.misses == 0

    def test_save_cache_requires_path(self):
        with pytest.raises(ConfigError):
            Session(cache=TimingCache()).save_cache()

    def test_run_sweep_persists(self, tmp_path):
        from repro.sweep import SweepSpec

        path = tmp_path / "sweep-cache.pkl"
        session = Session(cache=TimingCache(), cache_path=path)
        session.run_sweep(SweepSpec(platforms=("sma:2",), gemms=(128,)))
        assert path.exists()
        fresh = Session(cache=TimingCache(), cache_path=path)
        assert len(fresh.cache.export_entries()) > 0

    def test_corrupt_cache_file(self, tmp_path):
        path = tmp_path / "garbage.pkl"
        path.write_bytes(b"not a pickle")
        with pytest.raises(ConfigError):
            Session(cache=TimingCache(), cache_path=path)


class TestRunScenarioErrors:
    def test_needs_a_platform(self):
        from repro.api import ScenarioSpec, StreamSpec

        spec = ScenarioSpec(
            name="open", frames=1,
            streams=(StreamSpec(name="a", model="alexnet"),),
        )
        with pytest.raises(ConfigError):
            Session(cache=TimingCache()).run_scenario(spec)

    def test_rejects_non_spec(self):
        with pytest.raises(ConfigError):
            Session(cache=TimingCache()).run_scenario("not-a-spec")

    def test_dict_form_accepted(self):
        from repro.api import ScenarioSpec, StreamSpec

        spec = ScenarioSpec(
            name="open", frames=1,
            streams=(StreamSpec(name="a", model="alexnet"),),
        )
        report = Session(cache=TimingCache()).run_scenario(
            spec.to_dict(), "sma:2"
        )
        assert report.platform == "sma:2"
