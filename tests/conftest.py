"""Shared fixtures: configurations and (expensive) cached executors."""

from __future__ import annotations

import pytest

from repro.config import (
    DataType,
    system_gpu_simd,
    system_sma,
    volta_gpu,
)
from repro.gemm.executor import GemmExecutor


@pytest.fixture(scope="session")
def gpu_config():
    return volta_gpu()


@pytest.fixture(scope="session")
def simd_system():
    return system_gpu_simd()


@pytest.fixture(scope="session")
def sma2_system():
    return system_sma(2)


@pytest.fixture(scope="session")
def sma3_system():
    return system_sma(3)


@pytest.fixture(scope="session")
def simd_executor(simd_system):
    return GemmExecutor(simd_system, "simd")


@pytest.fixture(scope="session")
def tc_executor(simd_system):
    return GemmExecutor(simd_system, "tc")


@pytest.fixture(scope="session")
def sma2_executor(sma2_system):
    return GemmExecutor(sma2_system, "sma")


@pytest.fixture(scope="session")
def sma3_executor(sma3_system):
    return GemmExecutor(sma3_system, "sma")


@pytest.fixture(scope="session")
def fp16():
    return DataType.FP16


@pytest.fixture(scope="session")
def fp32():
    return DataType.FP32
