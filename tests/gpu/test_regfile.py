"""Register-file port-budget tests."""

import pytest

from repro.config import GpuConfig
from repro.errors import SimulationError
from repro.gpu.regfile import RegisterFileModel


class TestRegisterFileModel:
    def test_capacity_from_banks(self):
        rf = RegisterFileModel(GpuConfig(), collector_efficiency=0.75)
        assert rf.read_capacity == pytest.approx(6.0)
        assert rf.write_capacity == pytest.approx(3.0)

    def test_reserve_within_budget(self):
        rf = RegisterFileModel(GpuConfig(), collector_efficiency=1.0)
        rf.new_cycle()
        assert rf.try_reserve(reads=8, writes=4)
        assert rf.total_reads == 8

    def test_reserve_over_budget_fails(self):
        rf = RegisterFileModel(GpuConfig(), collector_efficiency=0.75)
        rf.new_cycle()
        assert rf.try_reserve(reads=6, writes=0)
        assert not rf.try_reserve(reads=1, writes=0)

    def test_budget_resets_each_cycle(self):
        rf = RegisterFileModel(GpuConfig(), collector_efficiency=0.75)
        rf.new_cycle()
        assert rf.try_reserve(reads=6, writes=0)
        rf.new_cycle()
        assert rf.try_reserve(reads=6, writes=0)

    def test_write_budget_enforced(self):
        rf = RegisterFileModel(GpuConfig(), collector_efficiency=0.75)
        rf.new_cycle()
        assert rf.try_reserve(reads=0, writes=3)
        assert not rf.try_reserve(reads=0, writes=1)

    def test_negative_counts_rejected(self):
        rf = RegisterFileModel(GpuConfig())
        rf.new_cycle()
        with pytest.raises(SimulationError):
            rf.try_reserve(reads=-1, writes=0)

    def test_bad_efficiency_rejected(self):
        with pytest.raises(SimulationError):
            RegisterFileModel(GpuConfig(), collector_efficiency=0.0)
