"""Global-memory coalescing tests."""

import pytest

from repro.gpu.coalescer import coalesce
from repro.isa.instructions import MemSpace, coalesced_access, strided_access


class TestCoalescer:
    def test_unit_stride_fp32_is_4_sectors(self):
        result = coalesce(coalesced_access(MemSpace.GLOBAL, 0))
        assert result.sectors == 4
        assert result.lines == 1
        assert result.efficiency == pytest.approx(1.0)

    def test_offset_access_extra_sector(self):
        result = coalesce(coalesced_access(MemSpace.GLOBAL, 16))
        assert result.sectors == 5

    def test_strided_touches_more_sectors(self):
        result = coalesce(strided_access(MemSpace.GLOBAL, 0, stride_bytes=128))
        assert result.sectors == 32
        assert result.efficiency == pytest.approx(128 / (32 * 32))

    def test_wide_access_crosses_sectors(self):
        access = coalesced_access(MemSpace.GLOBAL, 0, width_bytes=16)
        result = coalesce(access)
        assert result.sectors == 16
        assert result.bytes_requested == 512

    def test_shared_space_rejected(self):
        with pytest.raises(ValueError):
            coalesce(coalesced_access(MemSpace.SHARED, 0))

    def test_bytes_moved_sector_granularity(self):
        result = coalesce(coalesced_access(MemSpace.GLOBAL, 0))
        assert result.bytes_moved == 4 * 32
