"""DRAM bandwidth model tests."""

import pytest

from repro.config import GpuConfig
from repro.errors import SimulationError
from repro.gpu.dram import DramModel, DramTraffic


class TestDramModel:
    def test_bytes_per_cycle(self):
        gpu = GpuConfig()
        dram = DramModel(gpu)
        expected = gpu.dram_bandwidth_gbps * 1e9 / (gpu.clock_ghz * 1e9)
        assert dram.bytes_per_cycle == pytest.approx(expected)

    def test_min_cycles_scales_linearly(self):
        dram = DramModel(GpuConfig())
        t1 = dram.min_cycles(DramTraffic(read_bytes=1e6))
        t2 = dram.min_cycles(DramTraffic(read_bytes=2e6))
        assert t2 == pytest.approx(2 * t1)

    def test_reads_and_writes_sum(self):
        dram = DramModel(GpuConfig())
        combined = dram.min_cycles(DramTraffic(read_bytes=5e5, write_bytes=5e5))
        reads_only = dram.min_cycles(DramTraffic(read_bytes=1e6))
        assert combined == pytest.approx(reads_only)

    def test_negative_traffic_rejected(self):
        dram = DramModel(GpuConfig())
        with pytest.raises(SimulationError):
            dram.min_cycles(DramTraffic(read_bytes=-1.0))

    def test_latency_exposed(self):
        gpu = GpuConfig()
        assert DramModel(gpu).access_latency() == gpu.dram_latency_cycles
