"""Warp-scheduler policy tests."""

import pytest

from repro.errors import ConfigError
from repro.gpu.scheduler import (
    GreedyThenOldestScheduler,
    LooseRoundRobinScheduler,
    SmaRoundRobinScheduler,
    make_scheduler,
)


class TestGto:
    def test_oldest_first_initially(self):
        gto = GreedyThenOldestScheduler()
        assert gto.order([3, 1, 2]) == [1, 2, 3]

    def test_greedy_sticks_with_issuer(self):
        gto = GreedyThenOldestScheduler()
        gto.notify_issued(2)
        assert gto.order([1, 2, 3]) == [2, 1, 3]

    def test_greedy_falls_back_when_issuer_absent(self):
        gto = GreedyThenOldestScheduler()
        gto.notify_issued(9)
        assert gto.order([1, 2, 3]) == [1, 2, 3]


class TestLrr:
    def test_rotates_after_issue(self):
        lrr = LooseRoundRobinScheduler()
        assert lrr.order([0, 1, 2]) == [0, 1, 2]
        lrr.notify_issued(0)
        assert lrr.order([0, 1, 2]) == [1, 2, 0]

    def test_pointer_wraps(self):
        lrr = LooseRoundRobinScheduler()
        for _ in range(3):
            lrr.notify_issued(0)
        assert lrr.order([0, 1, 2]) == [0, 1, 2]

    def test_empty(self):
        assert LooseRoundRobinScheduler().order([]) == []


class TestSmaRoundRobin:
    def test_starts_after_last_issuer(self):
        rr = SmaRoundRobinScheduler()
        rr.notify_issued(1)
        assert rr.order([0, 1, 2, 3]) == [2, 3, 0, 1]

    def test_wraps_past_highest(self):
        rr = SmaRoundRobinScheduler()
        rr.notify_issued(3)
        assert rr.order([0, 1, 2, 3]) == [0, 1, 2, 3]

    def test_no_history(self):
        assert SmaRoundRobinScheduler().order([2, 0]) == [0, 2]

    def test_alternates_two_sets(self):
        """The double-buffer sets must interleave instead of starving."""
        rr = SmaRoundRobinScheduler()
        issued = []
        warps = [0, 1, 2, 3]
        for _ in range(8):
            pick = rr.order(warps)[0]
            issued.append(pick)
            rr.notify_issued(pick)
        assert issued == [0, 1, 2, 3, 0, 1, 2, 3]


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_scheduler("gto"), GreedyThenOldestScheduler)
        assert isinstance(make_scheduler("lrr"), LooseRoundRobinScheduler)
        assert isinstance(make_scheduler("sma_rr"), SmaRoundRobinScheduler)

    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            make_scheduler("fifo")
