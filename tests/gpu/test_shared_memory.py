"""Shared-memory bank-conflict model tests."""

import pytest

from repro.errors import SimulationError
from repro.gpu.shared_memory import SharedMemoryModel
from repro.isa.instructions import (
    MemSpace,
    broadcast_access,
    coalesced_access,
    strided_access,
)


@pytest.fixture
def smem():
    return SharedMemoryModel(num_banks=32, bank_bytes=4)


class TestBankMapping:
    def test_word_to_bank(self, smem):
        assert smem.bank_of(0) == 0
        assert smem.bank_of(4) == 1
        assert smem.bank_of(4 * 32) == 0  # wraps

    def test_bank_offset_window(self):
        windowed = SharedMemoryModel(num_banks=8, bank_offset=8)
        assert windowed.bank_of(0) == 8


class TestConflicts:
    def test_unit_stride_conflict_free(self, smem):
        access = coalesced_access(MemSpace.SHARED, 0)
        assert smem.access(access).cycles == 1

    def test_broadcast_conflict_free(self, smem):
        access = broadcast_access(MemSpace.SHARED, 128)
        result = smem.access(access)
        assert result.cycles == 1
        assert result.words_touched == 1

    def test_two_way_conflict(self, smem):
        # Stride of 2 words: lanes 0 and 16 hit bank 0 with distinct words.
        access = strided_access(MemSpace.SHARED, 0, stride_bytes=8)
        assert smem.access(access).cycles == 2

    def test_worst_case_32_way(self, smem):
        # Stride of 32 words: every lane maps to bank 0.
        access = strided_access(MemSpace.SHARED, 0, stride_bytes=128)
        assert smem.access(access).cycles == 32

    def test_same_word_lanes_merge(self, smem):
        addresses = tuple([0] * 16 + [4] * 16)
        result = smem.cost_addresses(addresses)
        assert result.cycles == 1
        assert result.words_touched == 2

    def test_conflict_free_helper(self, smem):
        assert smem.conflict_free(tuple(4 * i for i in range(32)))
        assert not smem.conflict_free((0, 128))

    def test_rejects_global_space(self, smem):
        with pytest.raises(SimulationError):
            smem.access(coalesced_access(MemSpace.GLOBAL, 0))

    def test_empty_access_rejected(self, smem):
        with pytest.raises(SimulationError):
            smem.cost_addresses(())


class TestSmaBankAssignment:
    """The paper's A-feed layout must be conflict-free on 8 banks."""

    def test_diagonal_feed_conflict_free_with_row_stride_8(self):
        smem = SharedMemoryModel(num_banks=8)
        # Diagonal A[t-k, k] with row-major stride of 8 words.
        for t in range(8, 64):
            addresses = tuple(4 * ((t - k) * 8 + k) for k in range(8))
            assert smem.cost_addresses(addresses).cycles == 1

    def test_diagonal_feed_conflicts_with_bad_stride(self):
        smem = SharedMemoryModel(num_banks=8)
        # Row stride 9 words: (m*9 + k) with m = t - k collapses to a
        # single bank for the whole diagonal (8-way serialization).
        addresses = tuple(4 * ((16 - k) * 9 + k) for k in range(8))
        assert smem.cost_addresses(addresses).cycles == 8
