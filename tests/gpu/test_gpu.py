"""Whole-GPU launch composition tests."""

import pytest

from repro.common.stats import CounterBag
from repro.config import GpuConfig
from repro.errors import SimulationError
from repro.gpu.dram import DramTraffic
from repro.gpu.gpu import GpuTimingModel, KernelLaunch


@pytest.fixture(scope="module")
def model():
    return GpuTimingModel(GpuConfig())


def _launch(tb_cycles=1000.0, num_tbs=80, counters=None, **kwargs):
    return KernelLaunch(
        name="k",
        tb_cycles=tb_cycles,
        num_thread_blocks=num_tbs,
        tb_counters=counters or CounterBag(),
        **kwargs,
    )


class TestWaves:
    def test_single_wave(self, model):
        result = model.launch(_launch(num_tbs=80))
        assert result.waves == 1

    def test_partial_wave_rounds_up(self, model):
        assert model.launch(_launch(num_tbs=81)).waves == 2

    def test_compute_scales_with_waves(self, model):
        one = model.launch(_launch(num_tbs=80))
        two = model.launch(_launch(num_tbs=160))
        assert two.compute_cycles == pytest.approx(2 * one.compute_cycles)

    def test_tbs_per_sm_concurrency(self, model):
        packed = model.launch(_launch(num_tbs=160, tbs_per_sm=2))
        assert packed.waves == 1


class TestDramBound:
    def test_memory_bound_kernel(self, model):
        counters = CounterBag({"global_read_bytes": 10e6})
        result = model.launch(_launch(tb_cycles=10.0, counters=counters))
        assert result.dram_bound
        assert result.cycles > result.compute_cycles

    def test_compute_bound_kernel(self, model):
        result = model.launch(_launch(tb_cycles=100000.0))
        assert not result.dram_bound

    def test_counter_traffic_can_be_ignored(self, model):
        counters = CounterBag({"global_read_bytes": 100e6})
        filtered = model.launch(
            _launch(
                tb_cycles=10.0,
                counters=counters,
                extra_traffic=DramTraffic(read_bytes=1e3),
                use_counter_traffic=False,
            )
        )
        assert not filtered.dram_bound

    def test_dram_bytes_counter_recorded(self, model):
        counters = CounterBag({"global_read_bytes": 1e6})
        result = model.launch(_launch(counters=counters))
        assert result.counters.get("dram_bytes") == pytest.approx(80e6)


class TestAggregation:
    def test_counters_scaled_by_grid(self, model):
        counters = CounterBag({"fp32_macs": 100})
        result = model.launch(_launch(num_tbs=160, counters=counters))
        assert result.counters.get("fp32_macs") == pytest.approx(16000)

    def test_launch_overhead_included(self, model):
        result = model.launch(_launch(tb_cycles=0.0))
        assert result.cycles >= model.launch_overhead_cycles

    def test_sustained_flops(self, model):
        counters = CounterBag({"fp16_macs": 1e6})
        result = model.launch(_launch(counters=counters))
        assert model.sustained_flops(result) > 0

    def test_invalid_launch(self):
        with pytest.raises(SimulationError):
            KernelLaunch(
                name="bad", tb_cycles=-1.0, num_thread_blocks=1,
                tb_counters=CounterBag(),
            )
        with pytest.raises(SimulationError):
            KernelLaunch(
                name="bad", tb_cycles=1.0, num_thread_blocks=0,
                tb_counters=CounterBag(),
            )
