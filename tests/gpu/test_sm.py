"""SM pipeline tests with hand-built micro-traces."""

import pytest

from repro.common.stats import CounterBag
from repro.config import GpuConfig
from repro.errors import SimulationError
from repro.gpu.sm import (
    KernelSpec,
    LsmaEngine,
    LsmaIssue,
    StreamingMultiprocessor,
    ThroughputResource,
)
from repro.isa.instructions import MemSpace, coalesced_access, strided_access
from repro.isa.program import ProgramBuilder


@pytest.fixture(scope="module")
def sm():
    return StreamingMultiprocessor(GpuConfig())


def _single_warp(program):
    return KernelSpec(name="t", programs=[program])


class TestThroughputResource:
    def test_accept_advances_free_time(self):
        res = ThroughputResource("x")
        done = res.accept(0.0, 2.0)
        assert done == 2.0
        assert res.accept(0.0, 1.0) == 3.0  # queues behind

    def test_backpressure(self):
        res = ThroughputResource("x", queue_depth=2.0)
        res.accept(0.0, 3.0)
        assert not res.can_accept(0.0, 1.0)
        assert res.can_accept(3.0, 1.0)

    def test_utilization(self):
        res = ThroughputResource("x")
        res.accept(0.0, 5.0)
        assert res.utilization(10.0) == pytest.approx(0.5)


class TestBasicExecution:
    def test_empty_arithmetic_chain(self, sm):
        builder = ProgramBuilder("chain")
        builder.mov(1, 0)
        for _ in range(10):
            builder.ffma(2, 1, 1, 2)
        builder.exit()
        result = sm.run(_single_warp(builder.build()))
        assert result.cycles > 10  # dependent chain: ~4 cycles each
        assert result.counters.get("fp32_macs") == 320

    def test_independent_ffmas_pipeline(self, sm):
        builder = ProgramBuilder("ilp")
        for reg in range(10, 40):
            builder.ffma(reg, 1, 2, reg)
        builder.exit()
        dependent = ProgramBuilder("dep")
        for _ in range(30):
            dependent.ffma(10, 1, 2, 10)
        dependent.exit()
        fast = sm.run(_single_warp(builder.build()))
        slow = sm.run(_single_warp(dependent.build()))
        assert fast.cycles < slow.cycles

    def test_barrier_joins_warps(self, sm):
        # Warp 0 computes a long chain; warp 1 arrives at the barrier early.
        w0 = ProgramBuilder("w0")
        for _ in range(50):
            w0.ffma(1, 1, 1, 1)
        w0.bar()
        w0.exit()
        w1 = ProgramBuilder("w1").bar().exit()
        spec = KernelSpec(name="bar", programs=[w0.build(), w1.build()])
        result = sm.run(spec)
        # Both must have passed the barrier: cycles bounded by w0's chain.
        assert result.cycles >= 50
        assert result.counters.get("sync_ops") == 2

    def test_shared_memory_conflict_slows_lsu(self, sm):
        conflict_free = ProgramBuilder("cf")
        conflicted = ProgramBuilder("cx")
        for i in range(32):
            conflict_free.lds(
                100 + i, coalesced_access(MemSpace.SHARED, i * 128), 1
            )
            conflicted.lds(
                200 + i,
                strided_access(MemSpace.SHARED, i * 128, stride_bytes=128),
                1,
            )
        conflict_free.exit()
        conflicted.exit()
        fast = sm.run(_single_warp(conflict_free.build()))
        slow = sm.run(_single_warp(conflicted.build()))
        assert slow.cycles > 2 * fast.cycles

    def test_counters_track_smem_words(self, sm):
        builder = ProgramBuilder("w")
        builder.lds(5, coalesced_access(MemSpace.SHARED, 0), 1)
        builder.exit()
        result = sm.run(_single_warp(builder.build()))
        assert result.counters.get("smem_read_words") == 32

    def test_too_many_warps_rejected(self, sm):
        program = ProgramBuilder("x").exit().build()
        spec = KernelSpec(name="big", programs=[program] * 65)
        with pytest.raises(SimulationError):
            sm.run(spec)

    def test_group_validation(self):
        program = ProgramBuilder("x").exit().build()
        with pytest.raises(SimulationError):
            KernelSpec(
                name="bad", programs=[program], groups={0: frozenset({3})}
            )


class _StubEngine(LsmaEngine):
    """Accepts every LSMA with a fixed 10-cycle occupancy."""

    def __init__(self):
        self.busy_until = 0.0
        self.issued = 0

    def issue(self, unit_id, k_extent, now):
        if self.busy_until > now:
            return LsmaIssue(accepted=False)
        self.busy_until = now + 10.0
        self.issued += 1
        return LsmaIssue(
            accepted=True,
            busy_until=self.busy_until,
            counters=CounterBag({"sma_macs": k_extent * 64}),
        )

    def idle_at(self, now):
        return max(now, self.busy_until)

    def reset(self):
        self.busy_until = 0.0
        self.issued = 0


class TestLsmaIntegration:
    def test_lsma_runs_async_and_smawait_drains(self, sm):
        builder = ProgramBuilder("lsma")
        builder.mov(1, 0)
        builder.lsma(1, 1, 1, 1, k_extent=128, unit_id=0)
        builder.smawait()
        builder.exit()
        engine = _StubEngine()
        spec = KernelSpec(name="l", programs=[builder.build()], lsma_engine=engine)
        result = sm.run(spec)
        assert engine.issued == 1
        assert result.counters.get("sma_macs") == 128 * 64

    def test_busy_unit_backpressures(self, sm):
        builder = ProgramBuilder("lsma2")
        builder.mov(1, 0)
        builder.lsma(1, 1, 1, 1, k_extent=8, unit_id=0)
        builder.lsma(1, 1, 1, 1, k_extent=8, unit_id=0)
        builder.smawait()
        builder.exit()
        engine = _StubEngine()
        spec = KernelSpec(name="l2", programs=[builder.build()], lsma_engine=engine)
        result = sm.run(spec)
        assert engine.issued == 2
        assert result.cycles >= 20  # second op waited for the first

    def test_lsma_without_engine_raises(self, sm):
        builder = ProgramBuilder("bad")
        builder.mov(1, 0)
        builder.lsma(1, 1, 1, 1, k_extent=8)
        builder.exit()
        with pytest.raises(SimulationError):
            sm.run(_single_warp(builder.build()))
