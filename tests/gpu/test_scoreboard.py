"""Scoreboard dependence-tracking tests."""

from repro.gpu.scoreboard import Scoreboard


class TestScoreboard:
    def test_ready_when_no_pending(self):
        sb = Scoreboard(2)
        assert sb.ready(0, [1, 2, 3], now=0.0)

    def test_blocks_until_ready_time(self):
        sb = Scoreboard(1)
        sb.set_pending(0, [5], ready_at=10.0)
        assert not sb.ready(0, [5], now=9.0)
        assert sb.ready(0, [5], now=10.0)

    def test_per_warp_isolation(self):
        sb = Scoreboard(2)
        sb.set_pending(0, [5], ready_at=10.0)
        assert sb.ready(1, [5], now=0.0)

    def test_waw_keeps_latest(self):
        sb = Scoreboard(1)
        sb.set_pending(0, [5], ready_at=10.0)
        sb.set_pending(0, [5], ready_at=8.0)  # earlier write cannot shrink
        assert not sb.ready(0, [5], now=9.0)

    def test_earliest_ready(self):
        sb = Scoreboard(1)
        sb.set_pending(0, [1], ready_at=4.0)
        sb.set_pending(0, [2], ready_at=9.0)
        assert sb.earliest_ready(0, [1, 2]) == 9.0
        assert sb.earliest_ready(0, [3]) == 0.0

    def test_prune_removes_stale(self):
        sb = Scoreboard(1)
        sb.set_pending(0, [1, 2], ready_at=5.0)
        sb.prune(0, now=6.0)
        assert sb.outstanding(0) == 0

    def test_prune_keeps_pending(self):
        sb = Scoreboard(1)
        sb.set_pending(0, [1], ready_at=5.0)
        sb.set_pending(0, [2], ready_at=100.0)
        sb.prune(0, now=6.0)
        assert sb.outstanding(0) == 1
