"""Set-associative LRU cache tests."""

import pytest

from repro.errors import SimulationError
from repro.gpu.caches import CacheModel


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        cache = CacheModel(capacity_bytes=4096, line_bytes=128, associativity=4)
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_line_hits(self):
        cache = CacheModel(4096)
        cache.access(0)
        assert cache.access(64) is True  # same 128B line

    def test_lru_eviction_order(self):
        # 1 set, 2 ways: line size 128, capacity 256.
        cache = CacheModel(capacity_bytes=256, line_bytes=128, associativity=2)
        cache.access(0)        # A
        cache.access(256)      # B (same set: only one set exists)
        cache.access(0)        # touch A -> B becomes LRU
        cache.access(512)      # C evicts B
        assert cache.access(0) is True
        assert cache.access(256) is False

    def test_dirty_writeback_counted(self):
        cache = CacheModel(capacity_bytes=256, line_bytes=128, associativity=2)
        cache.access(0, is_store=True)
        cache.access(256)
        cache.access(512)  # evicts dirty line 0
        assert cache.stats.writebacks == 1

    def test_flush_writes_back_dirty(self):
        cache = CacheModel(4096)
        cache.access(0, is_store=True)
        cache.access(128)
        assert cache.flush() == 1
        assert cache.resident_lines == 0

    def test_hit_rate(self):
        cache = CacheModel(4096)
        cache.access(0)
        cache.access(0)
        cache.access(0)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_invalid_geometry(self):
        with pytest.raises(SimulationError):
            CacheModel(capacity_bytes=0)
        with pytest.raises(SimulationError):
            CacheModel(capacity_bytes=128, line_bytes=128, associativity=4)


class TestCacheSets:
    def test_distinct_sets_do_not_conflict(self):
        cache = CacheModel(capacity_bytes=1024, line_bytes=128, associativity=2)
        # 4 sets; addresses 0 and 128 map to different sets.
        cache.access(0)
        cache.access(128)
        assert cache.access(0) is True
        assert cache.access(128) is True
