"""Cross-module integration tests: full stacks wired together."""

import numpy as np
import pytest

from repro.config import DataType, SmaConfig, volta_gpu
from repro.dnn.zoo import build_alexnet
from repro.gemm.problem import GemmProblem
from repro.gemm.reference import reference_gemm
from repro.gemm.tiling import plan_gemm
from repro.platforms import GpuSmaPlatform, GpuTcPlatform
from repro.sma.lsma import execute_lsma


class TestTiledSystolicGemm:
    """Functional check of the whole Fig 6 mapping: tile the problem,
    execute every sub-tile with LSMA on the array simulator, and compare
    against the dense reference."""

    def test_full_tiled_gemm_matches_reference(self):
        rng = np.random.default_rng(42)
        m, n, k = 96, 80, 24
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        plan = plan_gemm(GemmProblem(m, n, k), tile_m=32, tile_n=32, k_slice=8)
        unit_width = 8

        c = np.zeros((m, n))
        for tile in plan.thread_blocks():
            c_sub = np.zeros((tile.rows, tile.cols))
            for k0 in range(0, k, plan.k_slice):
                k_extent = min(plan.k_slice, k - k0)
                a_tile = np.zeros((tile.rows, plan.k_slice))
                a_tile[:, :k_extent] = a[
                    tile.row : tile.row + tile.rows, k0 : k0 + k_extent
                ]
                for n0 in range(0, tile.cols, unit_width):
                    width = min(unit_width, tile.cols - n0)
                    b_sub = np.zeros((plan.k_slice, unit_width))
                    b_sub[:k_extent, :width] = b[
                        k0 : k0 + k_extent,
                        tile.col + n0 : tile.col + n0 + width,
                    ]
                    c_sub[:, n0 : n0 + width] += execute_lsma(a_tile, b_sub)[
                        :, :width
                    ]
            c[tile.row : tile.row + tile.rows,
              tile.col : tile.col + tile.cols] = c_sub

        np.testing.assert_allclose(c, reference_gemm(a, b), rtol=1e-9)


class TestPlatformAgreementOnWorkload:
    def test_alexnet_speedup_band(self):
        """Full-stack AlexNet: SMA beats TC by the Fig 8 kernel ratio."""
        tc = GpuTcPlatform(framework_overhead_s=0.0)
        sma = GpuSmaPlatform(3, framework_overhead_s=0.0)
        graph = build_alexnet()
        t_tc = sum(
            s.seconds for s in tc.run_model(graph).op_stats
            if s.mode.startswith("gemm")
        )
        t_sma = sum(
            s.seconds for s in sma.run_model(graph).op_stats
            if s.mode.startswith("gemm")
        )
        assert 1.4 <= t_tc / t_sma <= 1.9

    def test_energy_follows_time_ordering(self):
        tc = GpuTcPlatform(framework_overhead_s=0.0)
        sma = GpuSmaPlatform(3, framework_overhead_s=0.0)
        graph = build_alexnet()
        e_tc = tc.run_model(graph).total_energy().total
        e_sma = sma.run_model(graph).total_energy().total
        assert e_sma < e_tc


class TestConfigPlumbing:
    def test_custom_sma_width_flows_through(self):
        """A 4-unit SMA config must change the mapping quantization."""
        from repro.sma.mapping import SmaGemmMapper

        plan = plan_gemm(GemmProblem(512, 512, 512, dtype=DataType.FP32), k_slice=8)
        three = SmaGemmMapper(volta_gpu(), SmaConfig(units_per_sm=3)).kernel_shape(plan)
        four = SmaGemmMapper(volta_gpu(), SmaConfig(units_per_sm=4)).kernel_shape(plan)
        assert four.rounds == 4 and three.rounds == 6
        assert four.round_utilization == pytest.approx(1.0)
