"""Autonomous-driving pipeline tests (Fig 9)."""

import pytest

from repro.apps.driving import LATENCY_TARGET_S, DrivingPipeline
from repro.apps.tasks import OrbSlamFrontend, build_driving_workloads
from repro.errors import SchedulingError


@pytest.fixture(scope="module")
def pipeline():
    return DrivingPipeline()


class TestWorkloads:
    def test_task_graphs(self):
        workloads = build_driving_workloads()
        assert workloads.detection.conv_layer_count == 108
        assert workloads.tracking.conv_layer_count == 10
        assert len(workloads.localization) == 1

    def test_orb_slam_is_irregular(self):
        op = OrbSlamFrontend.build()
        assert not op.is_gemm_compatible
        assert op.simd_efficiency < 0.05


class TestFrameLatency:
    def test_gpu_misses_target(self, pipeline):
        assert not pipeline.frame_latency("gpu").meets_target

    def test_sma_and_tc_meet_target(self, pipeline):
        assert pipeline.frame_latency("sma").meets_target
        assert pipeline.frame_latency("tc").meets_target

    def test_tc_similar_to_sma(self, pipeline):
        """Paper Fig 9 left: TC has a similar latency to SMA."""
        tc = pipeline.frame_latency("tc").latency_s
        sma = pipeline.frame_latency("sma").latency_s
        assert abs(tc - sma) <= 0.25 * sma

    def test_latency_target_constant(self):
        assert LATENCY_TARGET_S == pytest.approx(0.100)

    def test_unknown_platform(self, pipeline):
        with pytest.raises(SchedulingError):
            pipeline.frame_latency("fpga")

    def test_bad_interval(self, pipeline):
        with pytest.raises(SchedulingError):
            pipeline.frame_latency("sma", 0)


class TestFrameSkipping:
    def test_latency_decreases_with_skipping(self, pipeline):
        latencies = [
            pipeline.frame_latency("sma", n).latency_s for n in (1, 2, 4, 8)
        ]
        assert all(a > b for a, b in zip(latencies, latencies[1:]))

    def test_sma_below_tc_everywhere(self, pipeline):
        for n in range(2, 10):
            assert (
                pipeline.frame_latency("sma", n).latency_s
                < pipeline.frame_latency("tc", n).latency_s
            )

    def test_substantial_reduction_at_n4(self, pipeline):
        """Paper: 'reduce the frame latency by almost 50%' with N=4."""
        base = pipeline.frame_latency("sma", 1).latency_s
        at4 = pipeline.frame_latency("sma", 4).latency_s
        assert at4 <= 0.70 * base

    def test_sweep_shape(self, pipeline):
        rows = pipeline.sweep_skip(("tc", "sma"), (2, 3))
        assert len(rows) == 4
        assert {r.platform for r in rows} == {"tc", "sma"}

    def test_detection_cost_amortized_exactly(self, pipeline):
        one = pipeline.frame_latency("sma", 1)
        four = pipeline.frame_latency("sma", 4)
        expected = one.latency_s - 0.75 * one.detection_s
        assert four.latency_s == pytest.approx(expected)
