"""Autonomous-driving pipeline tests (Fig 9)."""

import pytest

from repro.apps.driving import (
    LATENCY_TARGET_S,
    DrivingPipeline,
    driving_scenario,
)
from repro.apps.tasks import OrbSlamFrontend, build_driving_workloads
from repro.errors import SchedulingError


@pytest.fixture(scope="module")
def pipeline():
    return DrivingPipeline()


class TestWorkloads:
    def test_task_graphs(self):
        workloads = build_driving_workloads()
        assert workloads.detection.conv_layer_count == 108
        assert workloads.tracking.conv_layer_count == 10
        assert len(workloads.localization) == 1

    def test_orb_slam_is_irregular(self):
        op = OrbSlamFrontend.build()
        assert not op.is_gemm_compatible
        assert op.simd_efficiency < 0.05


class TestFrameLatency:
    def test_gpu_misses_target(self, pipeline):
        assert not pipeline.frame_latency("gpu").meets_target

    def test_sma_and_tc_meet_target(self, pipeline):
        assert pipeline.frame_latency("sma").meets_target
        assert pipeline.frame_latency("tc").meets_target

    def test_tc_similar_to_sma(self, pipeline):
        """Paper Fig 9 left: TC has a similar latency to SMA."""
        tc = pipeline.frame_latency("tc").latency_s
        sma = pipeline.frame_latency("sma").latency_s
        assert abs(tc - sma) <= 0.25 * sma

    def test_latency_target_constant(self):
        assert LATENCY_TARGET_S == pytest.approx(0.100)

    def test_unknown_platform(self, pipeline):
        with pytest.raises(SchedulingError):
            pipeline.frame_latency("fpga")

    def test_bad_interval(self, pipeline):
        with pytest.raises(SchedulingError):
            pipeline.frame_latency("sma", 0)


class TestFrameSkipping:
    def test_latency_decreases_with_skipping(self, pipeline):
        latencies = [
            pipeline.frame_latency("sma", n).latency_s for n in (1, 2, 4, 8)
        ]
        assert all(a > b for a, b in zip(latencies, latencies[1:]))

    def test_sma_below_tc_everywhere(self, pipeline):
        for n in range(2, 10):
            assert (
                pipeline.frame_latency("sma", n).latency_s
                < pipeline.frame_latency("tc", n).latency_s
            )

    def test_substantial_reduction_at_n4(self, pipeline):
        """Paper: 'reduce the frame latency by almost 50%' with N=4."""
        base = pipeline.frame_latency("sma", 1).latency_s
        at4 = pipeline.frame_latency("sma", 4).latency_s
        assert at4 <= 0.70 * base

    def test_sweep_shape(self, pipeline):
        rows = pipeline.sweep_skip(("tc", "sma"), (2, 3))
        assert len(rows) == 4
        assert {r.platform for r in rows} == {"tc", "sma"}


#: Fig 9 TC frame latency (ms) per skip interval, pinned to the values the
#: derived co-run contention model reproduces (paper: TC meets the 100 ms
#: target at N=1, then flattens at its contention floor above SMA).
FIG9_TC_CURVE_MS = {
    1: 64.234,
    2: 48.536,
    3: 43.591,
    4: 41.119,
    5: 39.636,
    6: 38.647,
    7: 37.941,
    8: 37.411,
    9: 36.999,
}


class TestFig9TcRegression:
    def test_tc_curve_pinned(self, pipeline):
        """The derived contention model reproduces the pinned TC curve."""
        for interval, expected_ms in FIG9_TC_CURVE_MS.items():
            latency = pipeline.frame_latency("tc", interval).latency_ms
            assert latency == pytest.approx(expected_ms, rel=5e-3), interval

    def test_tc_flattens_at_contention_floor(self, pipeline):
        """Doubling N from 4 to 8 barely moves TC (the paper's plateau)."""
        at4 = pipeline.frame_latency("tc", 4).latency_s
        at8 = pipeline.frame_latency("tc", 8).latency_s
        assert (at4 - at8) / at4 < 0.10

    def test_tc_floor_stays_above_loc(self, pipeline):
        """The floor is LOC stretched by co-run contention, not bare LOC."""
        at9 = pipeline.frame_latency("tc", 9)
        assert at9.latency_s > at9.localization_s * 1.15


class TestDerivedContention:
    def test_tc_corun_contention_matches_rf_saturation(self, pipeline):
        """LOC's derived stretch on TC sits near the paper's ~1.7 factor.

        The TC GEMM kernels' measured register-file port occupancy is
        ~0.75, so LOC should be stretched by ~1.75 while they are in
        flight (and by 2.0 against co-running SIMD ops), bracketing the
        old hand-coded constant without hard-coding it.
        """
        contention = pipeline.corun_contention("tc")
        assert 1.5 <= contention <= 2.1

    def test_contention_is_derived_not_constant(self, pipeline):
        """No TC_CORUN_CONTENTION constant survives in the app."""
        import repro.apps.driving as driving

        assert not hasattr(driving, "TC_CORUN_CONTENTION")

    def test_temporal_platforms_time_multiplex(self, pipeline):
        """On GPU/SMA the streams time-share the chip (stretch > 1)."""
        for kind in ("gpu", "sma"):
            assert pipeline.corun_contention(kind) > 1.0


class TestScenarioDeclaration:
    def test_scenario_spec_shape(self):
        spec = driving_scenario("sma", 4)
        assert spec.frames == 4
        assert spec.platform == "sma:3"
        assert [stream.name for stream in spec.streams] == [
            "det", "tra", "loc",
        ]
        assert spec.stream("det").skip_interval == 4
        assert spec.stream("loc").skip_interval == 1

    def test_scenario_report_streams(self, pipeline):
        report = pipeline.schedule("sma", 4)
        assert report.stream("det").frames_run == 1
        assert report.stream("det").frames_skipped == 3
        assert report.stream("tra").frames_run == 4
        assert report.makespan_s == pytest.approx(
            report.avg_frame_latency_s * 4
        )

    def test_detection_cost_amortized(self, pipeline):
        # Amortization is exact up to the cross-stream mode-switch resync
        # the timeline now charges (a few warp-set syncs, O(100 ns) per
        # window against a ~40 ms frame).
        one = pipeline.frame_latency("sma", 1)
        four = pipeline.frame_latency("sma", 4)
        expected = one.latency_s - 0.75 * one.detection_s
        assert four.latency_s == pytest.approx(expected, abs=2e-6)
        switch_overhead = pipeline.schedule("sma", 4).switch_overhead_s
        assert 0.0 < switch_overhead < 1e-5
        assert four.latency_s - expected <= switch_overhead
