"""GemmProblem descriptor tests."""

import pytest

from repro.config import DataType
from repro.errors import MappingError
from repro.gemm.problem import GemmProblem


class TestGemmProblem:
    def test_macs_and_flops(self):
        problem = GemmProblem(2, 3, 4)
        assert problem.macs == 24
        assert problem.flops == 48

    def test_operand_bytes_fp16(self):
        problem = GemmProblem(128, 64, 32, dtype=DataType.FP16)
        assert problem.a_bytes == 128 * 32 * 2
        assert problem.b_bytes == 32 * 64 * 2

    def test_c_bytes_write_only(self):
        problem = GemmProblem(16, 16, 16, beta=0.0)
        assert problem.c_bytes == 16 * 16 * 4

    def test_c_bytes_read_modify_write(self):
        problem = GemmProblem(16, 16, 16, beta=1.0)
        assert problem.c_bytes == 2 * 16 * 16 * 4

    def test_arithmetic_intensity_grows_with_size(self):
        small = GemmProblem(128, 128, 128)
        large = GemmProblem(4096, 4096, 4096)
        assert large.arithmetic_intensity > small.arithmetic_intensity

    def test_square(self):
        assert GemmProblem(8, 8, 8).square()
        assert not GemmProblem(8, 8, 16).square()

    def test_validation(self):
        with pytest.raises(MappingError):
            GemmProblem(0, 1, 1)

    def test_str(self):
        assert "128x64x32" in str(GemmProblem(128, 64, 32))
