"""Functional tiled-GEMM tests (full Fig 6 mapping, bit-exact)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DataType, SmaConfig
from repro.errors import MappingError
from repro.gemm.functional import tiled_systolic_gemm
from repro.gemm.problem import GemmProblem
from repro.gemm.tiling import plan_gemm
from repro.systolic.dataflow import Dataflow


class TestTiledSystolicGemm:
    def test_matches_dense_reference(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((40, 24))
        b = rng.standard_normal((24, 56))
        plan = plan_gemm(GemmProblem(40, 56, 24), tile_m=32, tile_n=32, k_slice=8)
        result = tiled_systolic_gemm(a, b, plan=plan)
        np.testing.assert_allclose(result.c, a @ b, rtol=1e-9)

    def test_alpha_beta_epilogue(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((16, 8))
        b = rng.standard_normal((8, 16))
        c_in = rng.standard_normal((16, 16))
        plan = plan_gemm(GemmProblem(16, 16, 8), tile_m=16, tile_n=16, k_slice=8)
        result = tiled_systolic_gemm(
            a, b, plan=plan, alpha=2.0, beta=0.5, c_in=c_in
        )
        np.testing.assert_allclose(result.c, 2 * (a @ b) + 0.5 * c_in, rtol=1e-9)

    def test_fp16_unit_width(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((32, 16))
        b = rng.standard_normal((16, 48))
        sma = SmaConfig(dtype=DataType.FP16)
        plan = plan_gemm(GemmProblem(32, 48, 16), tile_m=32, tile_n=48, k_slice=8)
        result = tiled_systolic_gemm(a, b, sma=sma, plan=plan)
        np.testing.assert_allclose(result.c, a @ b, rtol=1e-9)
        # 1 TB x 2 K-slices x ceil(48/16)=3 sub-tiles.
        assert result.lsma_count == 6

    def test_ws_dataflow_identical_result(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((24, 8))
        b = rng.standard_normal((8, 24))
        plan = plan_gemm(GemmProblem(24, 24, 8), tile_m=24, tile_n=24, k_slice=8)
        sb = tiled_systolic_gemm(a, b, plan=plan)
        ws = tiled_systolic_gemm(
            a, b, plan=plan, dataflow=Dataflow.WEIGHT_STATIONARY
        )
        np.testing.assert_allclose(sb.c, ws.c, rtol=1e-9)

    def test_beta_requires_c(self):
        with pytest.raises(MappingError):
            tiled_systolic_gemm(np.ones((8, 8)), np.ones((8, 8)), beta=1.0)

    def test_shape_mismatch(self):
        with pytest.raises(MappingError):
            tiled_systolic_gemm(np.ones((8, 4)), np.ones((8, 8)))

    def test_plan_k_slice_mismatch(self):
        plan = plan_gemm(GemmProblem(8, 8, 8), k_slice=16)
        with pytest.raises(MappingError):
            tiled_systolic_gemm(np.ones((8, 8)), np.ones((8, 8)), plan=plan)

    @given(
        st.integers(1, 40), st.integers(1, 24), st.integers(1, 40),
    )
    @settings(max_examples=15, deadline=None)
    def test_arbitrary_shapes(self, m, k, n):
        rng = np.random.default_rng(m * 1000 + k * 100 + n)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        plan = plan_gemm(GemmProblem(m, n, k), tile_m=16, tile_n=16, k_slice=8)
        result = tiled_systolic_gemm(a, b, plan=plan)
        np.testing.assert_allclose(result.c, a @ b, rtol=1e-8, atol=1e-8)
