"""Sample-window extrapolation math (the sampling methodology's core)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.stats import CounterBag
from repro.errors import MappingError
from repro.gemm.executor import _extrapolate
from repro.gpu.sm import SmResult


def _result(cycles: float, **counts) -> SmResult:
    return SmResult(cycles=cycles, counters=CounterBag(counts), stalls=CounterBag())


class TestExtrapolate:
    def test_exact_linear_model(self):
        lo = _result(100.0, macs=10)
        hi = _result(180.0, macs=18)
        cycles, counters = _extrapolate(lo, 2, hi, 4, iterations=10)
        # base 20 + 10 * 40 = 420; macs: base 2 + 10 * 4 = 42.
        assert cycles == pytest.approx(420.0)
        assert counters["macs"] == pytest.approx(42.0)

    def test_interpolation_matches_endpoints(self):
        lo = _result(100.0, x=5)
        hi = _result(300.0, x=15)
        cycles, counters = _extrapolate(lo, 1, hi, 3, iterations=3)
        assert cycles == pytest.approx(300.0)
        assert counters["x"] == pytest.approx(15.0)

    def test_negative_clamped(self):
        lo = _result(100.0)
        hi = _result(100.0, only_in_hi=4)
        cycles, counters = _extrapolate(lo, 2, hi, 4, iterations=1)
        assert cycles >= 0
        assert counters["only_in_hi"] >= 0

    def test_shrinking_window_rejected(self):
        with pytest.raises(MappingError):
            _extrapolate(_result(1.0), 4, _result(2.0), 2, iterations=8)

    @given(
        st.floats(1.0, 1e4),        # base
        st.floats(1.0, 1e4),        # slope
        st.integers(5, 1000),       # target iterations
    )
    @settings(max_examples=50, deadline=None)
    def test_recovers_any_affine_model(self, base, slope, iterations):
        lo = _result(base + 2 * slope)
        hi = _result(base + 4 * slope)
        cycles, _counters = _extrapolate(lo, 2, hi, 4, iterations=iterations)
        assert cycles == pytest.approx(base + iterations * slope, rel=1e-9)
