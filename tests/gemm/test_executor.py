"""GEMM executor timing tests — the paper's headline kernel numbers."""

import pytest

from repro.config import DataType, system_gpu_simd, system_sma
from repro.errors import MappingError
from repro.gemm.executor import GemmExecutor
from repro.gemm.problem import GemmProblem


@pytest.fixture(scope="module")
def big_fp16():
    return GemmProblem(4096, 4096, 4096, dtype=DataType.FP16)


class TestBackendSelection:
    def test_unknown_backend(self):
        with pytest.raises(MappingError):
            GemmExecutor(system_gpu_simd(), "dsp")

    def test_sma_requires_units(self):
        with pytest.raises(MappingError):
            GemmExecutor(system_gpu_simd(), "sma")

    def test_k_slices(self, simd_executor, tc_executor, sma2_executor):
        assert simd_executor.k_slice() == 8
        assert tc_executor.k_slice() == 16
        assert sma2_executor.k_slice() == 8

    def test_default_dtypes(self, simd_executor, tc_executor, sma2_executor):
        assert simd_executor.default_dtype() is DataType.FP32
        assert tc_executor.default_dtype() is DataType.FP16
        assert sma2_executor.default_dtype() is DataType.FP16


class TestHeadlineEfficiencies:
    def test_sma2_steady_state_efficiency(self, sma2_executor, big_fp16):
        """Paper Fig 7: 90.71% for 2-SMA."""
        timing = sma2_executor.time_gemm(big_fp16)
        assert 0.85 <= timing.sm_efficiency <= 0.95

    def test_tc_steady_state_efficiency(self, tc_executor, big_fp16):
        """Paper Fig 7: 68.46% for 4-TC."""
        timing = tc_executor.time_gemm(big_fp16)
        assert 0.60 <= timing.sm_efficiency <= 0.72

    def test_sma_beats_tc_iso_flop(self, tc_executor, sma2_executor, big_fp16):
        t_tc = tc_executor.time_gemm(big_fp16)
        t_sma = sma2_executor.time_gemm(big_fp16)
        speedup = t_tc.seconds / t_sma.seconds
        assert 1.2 <= speedup <= 1.5  # paper: up to 1.47x

    def test_3sma_fastest(self, tc_executor, sma3_executor, big_fp16):
        t_tc = tc_executor.time_gemm(big_fp16)
        t_sma3 = sma3_executor.time_gemm(big_fp16)
        assert 1.5 <= t_tc.seconds / t_sma3.seconds <= 1.85  # paper 1.63x

    def test_simd_slowest(self, simd_executor, tc_executor):
        p32 = GemmProblem(4096, 4096, 4096, dtype=DataType.FP32)
        p16 = GemmProblem(4096, 4096, 4096, dtype=DataType.FP16)
        t_simd = simd_executor.time_gemm(p32)
        t_tc = tc_executor.time_gemm(p16)
        assert t_simd.seconds > 2.5 * t_tc.seconds


class TestScaling:
    def test_cycles_scale_with_k(self, sma2_executor):
        short = sma2_executor.time_gemm(GemmProblem(1024, 1024, 512, dtype=DataType.FP16))
        long = sma2_executor.time_gemm(GemmProblem(1024, 1024, 2048, dtype=DataType.FP16))
        assert long.tb_cycles > 3 * short.tb_cycles

    def test_small_k_exact_simulation(self, sma2_executor):
        # K = 16 -> 2 iterations <= window: simulated exactly.
        timing = sma2_executor.time_gemm(GemmProblem(128, 128, 16, dtype=DataType.FP16))
        assert timing.tb_cycles > 0

    def test_cache_hit_on_repeat(self, sma2_executor, big_fp16):
        first = sma2_executor.time_gemm(big_fp16)
        second = sma2_executor.time_gemm(big_fp16)
        assert first is second

    def test_mac_extrapolation_consistent(self, sma2_executor):
        """Extrapolated MAC counters must match the tile arithmetic."""
        problem = GemmProblem(1024, 1024, 1024, dtype=DataType.FP16)
        timing = sma2_executor.time_gemm(problem)
        plan = sma2_executor.plan(problem)
        padded_macs = (
            plan.num_thread_blocks * plan.tile_m * plan.tile_n
            * plan.k_iterations * plan.k_slice
        )
        measured = timing.counters.get("sma_macs")
        assert measured == pytest.approx(padded_macs, rel=0.01)

    def test_tflops_positive(self, sma2_executor, big_fp16):
        assert sma2_executor.time_gemm(big_fp16).tflops > 0
