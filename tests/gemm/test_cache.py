"""TimingCache: merge/export semantics, stats reset, picklability."""

import pickle

import pytest

from repro.api import Session
from repro.config import DataType, system_sma
from repro.gemm.cache import CacheEntries, CacheStats, TimingCache
from repro.gemm.executor import GemmExecutor
from repro.gemm.problem import GemmProblem

SMALL = GemmProblem(128, 128, 128, dtype=DataType.FP16)
OTHER = GemmProblem(256, 256, 256, dtype=DataType.FP16)


def _warm_cache(problems) -> TimingCache:
    cache = TimingCache()
    executor = GemmExecutor(system_sma(2), "sma", cache=cache)
    for problem in problems:
        executor.time_gemm(problem)
    return cache


class TestExportAndMerge:
    def test_export_snapshot_counts(self):
        cache = _warm_cache([SMALL, SMALL])
        entries = cache.export_entries()
        assert len(entries.timings) == 1
        assert entries.stats.hits == 1  # the repeated problem
        assert entries.stats.misses == 1

    def test_merge_adds_missing_entries(self):
        target = TimingCache()
        entries = _warm_cache([SMALL]).export_entries()
        added = target.merge(entries)
        assert added == len(entries)  # timings + windows, all new
        assert len(target) == 1

    def test_merge_is_idempotent(self):
        target = TimingCache()
        entries = _warm_cache([SMALL]).export_entries()
        target.merge(entries)
        assert target.merge(entries) == 0
        assert len(target) == 1

    def test_merge_accepts_cache_directly(self):
        target = _warm_cache([SMALL])
        target.merge(_warm_cache([OTHER]))
        assert len(target) == 2

    def test_first_write_wins_on_collision(self):
        """Both sides computed the same deterministic result; keeping the
        existing entry keeps the parent bit-identical to a sequential run."""
        target = _warm_cache([SMALL])
        original = target.peek_timing(next(iter(target.export_entries().timings)))
        target.merge(_warm_cache([SMALL, OTHER]))
        key = GemmExecutor(system_sma(2), "sma", cache=TimingCache()).cache_key(
            SMALL
        )
        assert target.peek_timing(key) is original

    def test_merge_accumulates_counters(self):
        target = _warm_cache([SMALL])
        target.merge(_warm_cache([OTHER, OTHER]))
        stats = target.stats()
        assert stats.misses == 2
        assert stats.hits == 1

    def test_merged_timings_equal_fresh_simulation(self):
        """Satellite acceptance: a merged cache serves the same timing a
        sequential simulation would produce."""
        merged = TimingCache()
        merged.merge(_warm_cache([SMALL]))
        via_merge = GemmExecutor(system_sma(2), "sma", cache=merged).time_gemm(
            SMALL
        )
        fresh = GemmExecutor(
            system_sma(2), "sma", cache=TimingCache()
        ).time_gemm(SMALL)
        assert via_merge.seconds == fresh.seconds
        assert via_merge.cycles == fresh.cycles
        assert merged.stats().hits == 1  # served from the merged entries


class TestStatsReset:
    def test_reset_keeps_entries(self):
        cache = _warm_cache([SMALL])
        before = cache.reset_stats()
        assert before.misses == 1
        assert len(cache) == 1
        assert cache.stats() == CacheStats()

    def test_cold_vs_warm_measurable_in_process(self):
        session = Session(cache=TimingCache())
        session.time_gemm("sma:2", SMALL)
        cold = session.cache.reset_stats()
        session.time_gemm("sma:2", SMALL)
        warm = session.cache.stats()
        assert cold.misses == 1 and cold.hits == 0
        assert warm.hits == 1 and warm.misses == 0
        assert warm.hit_rate == 1.0

    def test_stats_since_baseline(self):
        cache = _warm_cache([SMALL])
        baseline = cache.stats()
        GemmExecutor(system_sma(2), "sma", cache=cache).time_gemm(SMALL)
        delta = cache.stats().since(baseline)
        assert delta.hits == 1 and delta.misses == 0

    def test_clear_drops_entries_and_stats(self):
        cache = _warm_cache([SMALL])
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == CacheStats()


class TestPicklability:
    def test_entries_round_trip(self):
        entries = _warm_cache([SMALL, OTHER]).export_entries()
        recovered = pickle.loads(pickle.dumps(entries))
        assert isinstance(recovered, CacheEntries)
        assert recovered.timings.keys() == entries.timings.keys()
        assert recovered.stats == entries.stats
        for key, timing in entries.timings.items():
            assert recovered.timings[key].seconds == timing.seconds

    def test_whole_cache_round_trips(self):
        cache = _warm_cache([SMALL])
        recovered = pickle.loads(pickle.dumps(cache))
        assert len(recovered) == len(cache)
        assert recovered.stats() == cache.stats()
        # the recreated lock still guards the recovered cache
        recovered.merge(_warm_cache([OTHER]))
        assert len(recovered) == 2
