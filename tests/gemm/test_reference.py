"""Numpy reference GEMM / im2col tests."""

import numpy as np
import pytest

from repro.errors import MappingError
from repro.gemm.reference import (
    conv2d_reference,
    conv_output_shape,
    conv_to_gemm,
    im2col,
    reference_gemm,
)


class TestReferenceGemm:
    def test_plain_product(self):
        rng = np.random.default_rng(0)
        a, b = rng.standard_normal((5, 4)), rng.standard_normal((4, 3))
        np.testing.assert_allclose(reference_gemm(a, b), a @ b)

    def test_alpha_beta(self):
        rng = np.random.default_rng(1)
        a, b = rng.standard_normal((3, 3)), rng.standard_normal((3, 3))
        c = rng.standard_normal((3, 3))
        out = reference_gemm(a, b, c, alpha=2.0, beta=0.5)
        np.testing.assert_allclose(out, 2 * (a @ b) + 0.5 * c)

    def test_beta_requires_c(self):
        with pytest.raises(MappingError):
            reference_gemm(np.eye(2), np.eye(2), beta=1.0)

    def test_shape_mismatch(self):
        with pytest.raises(MappingError):
            reference_gemm(np.zeros((2, 3)), np.zeros((4, 2)))


class TestConvShapes:
    def test_alexnet_conv1(self):
        assert conv_output_shape(227, 227, 11, stride=4) == (55, 55)

    def test_same_padding(self):
        assert conv_output_shape(56, 56, 3, padding=1) == (56, 56)

    def test_dilation(self):
        # 3x3 rate-2 atrous with padding 2 preserves extent.
        assert conv_output_shape(65, 65, 3, padding=2, dilation=2) == (65, 65)

    def test_empty_output_rejected(self):
        with pytest.raises(MappingError):
            conv_output_shape(4, 4, 7)

    def test_conv_to_gemm_dims(self):
        m, n, k = conv_to_gemm(3, 96, 227, 227, 11, stride=4)
        assert (m, n, k) == (55 * 55, 96, 3 * 11 * 11)

    def test_batch_scales_m(self):
        m1, _n, _k = conv_to_gemm(3, 8, 32, 32, 3, padding=1)
        m4, _n, _k = conv_to_gemm(3, 8, 32, 32, 3, padding=1, batch=4)
        assert m4 == 4 * m1


class TestIm2colFunctional:
    def test_matrix_shape(self):
        image = np.arange(2 * 5 * 5, dtype=float).reshape(2, 5, 5)
        columns = im2col(image, kernel=3)
        assert columns.shape == (9, 18)

    def test_conv_via_gemm_matches_direct(self):
        rng = np.random.default_rng(2)
        image = rng.standard_normal((3, 8, 8))
        weights = rng.standard_normal((4, 3, 3, 3))
        out = conv2d_reference(image, weights, stride=1, padding=1)
        assert out.shape == (4, 8, 8)
        # Direct correlation at one output position for verification:
        # output (3, 4) reads the padded window starting at (3, 4).
        padded = np.pad(image, ((0, 0), (1, 1), (1, 1)))
        expected = np.sum(padded[:, 3:6, 4:7] * weights[1])
        assert out[1, 3, 4] == pytest.approx(expected)

    def test_channel_mismatch(self):
        with pytest.raises(MappingError):
            conv2d_reference(np.zeros((2, 4, 4)), np.zeros((1, 3, 3, 3)))

    def test_rank_validation(self):
        with pytest.raises(MappingError):
            im2col(np.zeros((4, 4)), kernel=3)
