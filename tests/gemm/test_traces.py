"""SIMD / TC kernel trace-generation tests."""

import pytest

from repro.config import DataType
from repro.errors import MappingError
from repro.gemm.problem import GemmProblem
from repro.gemm.tiling import plan_gemm
from repro.gemm.traces import (
    SIMD_K_SLICE,
    SIMD_WARPS,
    TC_K_SLICE,
    TC_WARPS,
    build_simd_gemm_kernel,
    build_tc_gemm_kernel,
)
from repro.isa.instructions import Opcode


def _simd_plan():
    return plan_gemm(GemmProblem(512, 512, 512, dtype=DataType.FP32),
                     k_slice=SIMD_K_SLICE)


def _tc_plan():
    return plan_gemm(GemmProblem(512, 512, 512, dtype=DataType.FP16),
                     k_slice=TC_K_SLICE)


class TestSimdTrace:
    def test_ffma_count_covers_tile(self):
        spec = build_simd_gemm_kernel(_simd_plan(), iterations=2)
        ffma = sum(p.count(Opcode.FFMA) for p in spec.programs)
        # 128x128x8 MACs per iteration / 32 lanes.
        assert ffma == 2 * 128 * 128 * 8 // 32

    def test_warp_count(self):
        spec = build_simd_gemm_kernel(_simd_plan(), iterations=1)
        assert len(spec.programs) == SIMD_WARPS

    def test_barrier_per_iteration(self):
        spec = build_simd_gemm_kernel(_simd_plan(), iterations=3)
        bars = spec.programs[0].count(Opcode.BAR)
        assert bars == 3 + 1  # prologue + per-iteration

    def test_wrong_k_slice_rejected(self):
        with pytest.raises(MappingError):
            build_simd_gemm_kernel(_tc_plan(), iterations=1)

    def test_stage_stores_after_compute(self):
        """Software pipelining: LDG early, STS late in the iteration."""
        program = build_simd_gemm_kernel(_simd_plan(), iterations=1).programs[0]
        opcodes = [inst.opcode for inst in program]
        first_bar = opcodes.index(Opcode.BAR)
        body = opcodes[first_bar + 1:]
        last_ldg = max(i for i, op in enumerate(body) if op is Opcode.LDG)
        first_body_ffma = body.index(Opcode.FFMA)
        last_sts = max(i for i, op in enumerate(body) if op is Opcode.STS)
        last_ffma = max(i for i, op in enumerate(body) if op is Opcode.FFMA)
        assert last_ldg < first_body_ffma
        assert last_sts > last_ffma


class TestTcTrace:
    def test_hmma_count_covers_tile(self):
        spec = build_tc_gemm_kernel(_tc_plan(), iterations=2)
        hmma = sum(p.count(Opcode.HMMA) for p in spec.programs)
        # 128x128x16 MACs per iteration / 256 MACs per HMMA.
        assert hmma == 2 * 128 * 128 * 16 // 256

    def test_warp_count(self):
        spec = build_tc_gemm_kernel(_tc_plan(), iterations=1)
        assert len(spec.programs) == TC_WARPS

    def test_fragment_loads_per_iteration(self):
        spec = build_tc_gemm_kernel(_tc_plan(), iterations=1)
        lds = spec.programs[0].count(Opcode.LDS)
        assert lds == 4  # 2 A + 2 B fragments

    def test_accumulator_chains_interleaved(self):
        """Dependent HMMA steps must not be adjacent (compiler ILP)."""
        program = build_tc_gemm_kernel(_tc_plan(), iterations=1).programs[0]
        hmma_accs = [
            inst.dst[0] for inst in program if inst.opcode is Opcode.HMMA
        ]
        adjacent_same = sum(
            1 for a, b in zip(hmma_accs, hmma_accs[1:]) if a == b
        )
        assert adjacent_same == 0

    def test_iterations_validated(self):
        with pytest.raises(MappingError):
            build_tc_gemm_kernel(_tc_plan(), iterations=0)
