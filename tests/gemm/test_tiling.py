"""Fig 6 tiling-plan tests."""

import pytest

from repro.errors import MappingError
from repro.gemm.problem import GemmProblem
from repro.gemm.tiling import plan_gemm


class TestPlanGeometry:
    def test_fig6_defaults(self):
        plan = plan_gemm(GemmProblem(1024, 1024, 1024))
        assert plan.tile_m == 128 and plan.tile_n == 128
        assert plan.k_slice == 8
        assert plan.tiles_m == plan.tiles_n == 8
        assert plan.num_thread_blocks == 64
        assert plan.k_iterations == 128

    def test_ragged_dims_round_up(self):
        plan = plan_gemm(GemmProblem(130, 100, 9))
        assert plan.tiles_m == 2
        assert plan.tiles_n == 1
        assert plan.k_iterations == 2

    def test_tile_utilization(self):
        aligned = plan_gemm(GemmProblem(256, 256, 64))
        assert aligned.tile_utilization == pytest.approx(1.0)
        padded = plan_gemm(GemmProblem(129, 128, 8))
        assert padded.tile_utilization == pytest.approx(129 / 256)

    def test_invalid_tile(self):
        with pytest.raises(MappingError):
            plan_gemm(GemmProblem(8, 8, 8), tile_m=0)


class TestThreadBlockIteration:
    def test_covers_output_exactly(self):
        plan = plan_gemm(GemmProblem(300, 200, 64))
        covered = 0
        for tile in plan.thread_blocks():
            covered += tile.rows * tile.cols
            assert tile.row + tile.rows <= 300
            assert tile.col + tile.cols <= 200
        assert covered == 300 * 200

    def test_edge_tiles_clipped(self):
        plan = plan_gemm(GemmProblem(130, 130, 8))
        tiles = list(plan.thread_blocks())
        assert tiles[-1].rows == 2 and tiles[-1].cols == 2

    def test_block_count_matches(self):
        plan = plan_gemm(GemmProblem(1000, 1000, 8))
        assert len(list(plan.thread_blocks())) == plan.num_thread_blocks


class TestStagingArithmetic:
    def test_tile_bytes_fp16(self):
        plan = plan_gemm(GemmProblem(1024, 1024, 1024, dtype=__import__(
            "repro.config", fromlist=["DataType"]).DataType.FP16))
        assert plan.a_tile_bytes() == 128 * 8 * 2
        assert plan.b_tile_bytes() == 8 * 128 * 2
        assert plan.c_tile_bytes() == 128 * 128 * 4

    def test_subtiles_per_iteration(self):
        plan = plan_gemm(GemmProblem(512, 512, 64))
        assert plan.subtiles_per_iteration(8) == 16
        assert plan.subtiles_per_iteration(16) == 8
        assert plan.subtiles_per_iteration(24) == 6

    def test_subtile_width_validated(self):
        plan = plan_gemm(GemmProblem(512, 512, 64))
        with pytest.raises(MappingError):
            plan.subtiles_per_iteration(0)
