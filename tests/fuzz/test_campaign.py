"""Campaign runner: determinism, sqlite corpus resume, remote == local."""

import pytest

from repro.api.results import report_from_dict
from repro.cluster.client import ClusterClient
from repro.cluster.server import ClusterServer
from repro.fuzz.campaign import (
    CaseRecord,
    CorpusStore,
    FuzzReport,
    run_campaign,
    run_indices,
)

CAMPAIGN_SEED = 7
BATCH = 8


def test_run_indices_is_deterministic():
    first = run_indices(CAMPAIGN_SEED, range(BATCH))
    second = run_indices(CAMPAIGN_SEED, range(BATCH))
    assert [r.to_dict() for r in first] == [r.to_dict() for r in second]
    assert all(not record.failed for record in first)


def test_injected_campaign_flags_only_ladder_slots():
    records = run_indices(
        CAMPAIGN_SEED, range(16), inject="invert_priority"
    )
    failed = [record.index for record in records if record.failed]
    assert failed == [2, 11]  # the two priority_ladder slots in 0..15
    for record in records:
        if record.failed:
            assert record.oracles == ("priority_order",)
            assert record.reproducer is not None
            # Acceptance bound: the stored reproducer is minimal.
            assert record.reproducer.case.n_streams <= 2
            assert record.reproducer.case.n_frames <= 3


def test_case_record_round_trip():
    record = run_indices(CAMPAIGN_SEED, [3])[0]
    clone = CaseRecord.from_dict(record.to_dict())
    assert clone.to_dict() == record.to_dict()


class TestCorpusStore:
    def test_put_get_indices_failures(self):
        records = run_indices(CAMPAIGN_SEED, range(4))
        with CorpusStore() as store:
            for record in records:
                store.put(CAMPAIGN_SEED, record)
            assert len(store) == 4
            assert store.indices(CAMPAIGN_SEED) == {0, 1, 2, 3}
            assert store.failures(CAMPAIGN_SEED) == []
            fetched = store.get(CAMPAIGN_SEED, 2)
            assert fetched.to_dict() == records[2].to_dict()

    def test_campaign_seeds_are_isolated(self):
        records = run_indices(CAMPAIGN_SEED, [0])
        with CorpusStore() as store:
            store.put(CAMPAIGN_SEED, records[0])
            assert store.indices(CAMPAIGN_SEED + 1) == set()
            assert store.get(CAMPAIGN_SEED + 1, 0) is None

    def test_resume_skips_stored_indices(self, tmp_path):
        path = tmp_path / "corpus.sqlite"
        with CorpusStore(path) as store:
            first = run_campaign(
                CAMPAIGN_SEED, BATCH, store=store, resume=True
            )
            assert first.executed == BATCH
            assert first.loaded == 0
        # Re-opening the same corpus re-runs nothing.
        with CorpusStore(path) as store:
            second = run_campaign(
                CAMPAIGN_SEED, BATCH, store=store, resume=True
            )
            assert second.executed == 0
            assert second.loaded == BATCH
        assert [r.to_dict() for r in first.records] == [
            r.to_dict() for r in second.records
        ]


class TestFuzzReport:
    def test_json_byte_identity_and_round_trip(self):
        first = run_campaign(CAMPAIGN_SEED, BATCH)
        second = run_campaign(CAMPAIGN_SEED, BATCH)
        assert first.to_json() == second.to_json()
        assert first.ok

        clone = FuzzReport.from_dict(first.to_dict())
        assert clone.to_json() == first.to_json()

    def test_report_from_dict_dispatches_fuzz_kind(self):
        report = run_campaign(CAMPAIGN_SEED, 2)
        loaded = report_from_dict(report.to_dict())
        assert isinstance(loaded, FuzzReport)
        assert loaded.to_json() == report.to_json()

    def test_families_histogram(self):
        report = run_campaign(CAMPAIGN_SEED, BATCH)
        families = report.families()
        assert sum(families.values()) == BATCH
        assert all(count == 1 for count in families.values())


@pytest.fixture(scope="module")
def server():
    with ClusterServer(jobs=1) as srv:
        srv.start()
        yield srv


class TestRemoteDispatch:
    def test_submit_fuzz_matches_local_records(self, server):
        local = run_indices(CAMPAIGN_SEED, range(4))
        with ClusterClient(server.address) as client:
            remote = client.submit_fuzz(CAMPAIGN_SEED, list(range(4)))
        assert [r.to_dict() for r in remote] == [
            r.to_dict() for r in local
        ]

    def test_run_campaign_over_servers(self, server):
        local = run_campaign(CAMPAIGN_SEED, BATCH)
        remote = run_campaign(
            CAMPAIGN_SEED, BATCH, servers=[server.address]
        )
        assert remote.to_json() == local.to_json()
