"""The ``repro fuzz`` CLI: run / replay / shrink, exit codes, byte-identity."""

import json

from repro.__main__ import main

SEED = "7"


def run_json(capsys, *extra):
    code = main(["fuzz", "run", "--seed", SEED, "--batch", "8", "--json",
                 *extra])
    return code, capsys.readouterr().out


def test_run_exits_zero_and_reports(capsys):
    code, out = run_json(capsys)
    assert code == 0
    payload = json.loads(out)
    assert payload["kind"] == "fuzz"
    assert payload["campaign_seed"] == 7
    assert payload["batch"] == 8
    assert payload["failure_count"] == 0


def test_run_json_is_byte_identical_across_runs(capsys):
    code_a, out_a = run_json(capsys)
    code_b, out_b = run_json(capsys)
    assert code_a == code_b == 0
    assert out_a == out_b


def test_injected_run_fails_and_saves_reproducers(capsys, tmp_path):
    repro_dir = tmp_path / "reproducers"
    code = main([
        "fuzz", "run", "--seed", SEED, "--batch", "16",
        "--inject", "invert_priority",
        "--reproducer-dir", str(repro_dir), "--json",
    ])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["failure_count"] == 2
    saved = sorted(path.name for path in repro_dir.glob("*.json"))
    assert saved == [
        "c000002-priority_ladder.json",
        "c000011-priority_ladder.json",
    ]


def test_replay_of_reproducer_re_fails(capsys, tmp_path):
    repro_dir = tmp_path / "reproducers"
    assert main([
        "fuzz", "run", "--seed", SEED, "--batch", "3",
        "--inject", "invert_priority",
        "--reproducer-dir", str(repro_dir),
    ]) == 1
    capsys.readouterr()
    [path] = repro_dir.glob("*.json")
    code = main(["fuzz", "replay", str(path), "--json"])
    out = capsys.readouterr().out
    assert code == 1
    payload = json.loads(out)
    assert "priority_order" in payload["oracles"]
    assert not payload["ok"]


def test_replay_of_passing_case_exits_zero(capsys, tmp_path):
    from repro.fuzz.generators import generate_case

    path = tmp_path / "case.json"
    generate_case(7, 0).save(path)
    assert main(["fuzz", "replay", str(path)]) == 0
    assert "all oracles held" in capsys.readouterr().out


def test_shrink_writes_minimal_reproducer(capsys, tmp_path):
    import dataclasses

    from repro.fuzz.generators import generate_case
    from repro.fuzz.shrink import Reproducer

    case = dataclasses.replace(
        generate_case(7, 2), inject="invert_priority"
    )
    case_path = tmp_path / "case.json"
    case.save(case_path)
    out_path = tmp_path / "min.json"
    code = main([
        "fuzz", "shrink", str(case_path), "-o", str(out_path),
        "--oracle", "priority_order",
    ])
    capsys.readouterr()
    assert code == 0
    reproducer = Reproducer.load(out_path)
    assert reproducer.case.n_streams <= 2
    assert reproducer.case.n_frames <= 3


def test_store_and_resume_round_trip(capsys, tmp_path):
    store = tmp_path / "corpus.sqlite"
    code, first = run_json(capsys, "--store", str(store), "--resume")
    assert code == 0
    code, second = run_json(capsys, "--store", str(store), "--resume")
    assert code == 0
    a, b = json.loads(first), json.loads(second)
    assert a["executed"] == 8 and a["loaded"] == 0
    assert b["executed"] == 0 and b["loaded"] == 8
    assert a["records"] == b["records"]
