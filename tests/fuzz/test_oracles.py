"""The invariant-oracle pack: clean cases pass, planted faults are caught."""

import dataclasses

from repro.fuzz.cases import run_case
from repro.fuzz.generators import generate_case
from repro.fuzz.oracles import (
    ORACLE_NAMES,
    Violation,
    check_conservation,
    check_frame_atomicity,
    check_monotone_events,
    evaluate_case,
)

CAMPAIGN_SEED = 7


def test_oracle_names_are_stable():
    assert ORACLE_NAMES == (
        "capacity",
        "conservation",
        "crash",
        "determinism",
        "engine_divergence",
        "frame_atomicity",
        "merge",
        "monotone_events",
        "preemption_bound",
        "priority_order",
        "report_roundtrip",
        "reports_agree",
        "serving_consistency",
        "trace_roundtrip",
        "trace_transparency",
    )


def test_clean_case_passes_all_oracles():
    case = generate_case(CAMPAIGN_SEED, 0)
    outcome = evaluate_case(case, deep=True)
    assert outcome.ok
    assert outcome.failing_oracles == ()
    assert outcome.result is not None


def test_injected_inversion_fails_exactly_priority_order():
    # Index 2 is the priority_ladder slot; the inversion injection only
    # fires on exclusive-policy cases.
    case = generate_case(CAMPAIGN_SEED, 2)
    bad = dataclasses.replace(case, inject="invert_priority")
    outcome = evaluate_case(bad, deep=False)
    assert not outcome.ok
    assert outcome.failing_oracles == ("priority_order",)


class TestPlantedTimelineFaults:
    """Tamper with a real timeline and prove each oracle notices."""

    def result(self):
        return run_case(generate_case(CAMPAIGN_SEED, 0))

    def test_conservation_catches_shortened_segment(self):
        result = self.result()
        timeline = result.timeline
        segment = timeline.segments[0]
        cut = dataclasses.replace(
            segment,
            end_s=segment.end_s - 0.5 * segment.seconds,
            seconds=0.5 * segment.seconds,
        )
        tampered = dataclasses.replace(
            timeline, segments=(cut,) + tuple(timeline.segments[1:])
        )
        assert check_conservation(result.tasks, tampered)

    def test_monotone_events_catches_reversed_segment(self):
        result = self.result()
        timeline = result.timeline
        segment = timeline.segments[0]
        reversed_segment = dataclasses.replace(
            segment, start_s=segment.end_s + 1.0
        )
        tampered = dataclasses.replace(
            timeline,
            segments=(reversed_segment,) + tuple(timeline.segments[1:]),
        )
        assert check_monotone_events(result.tasks, tampered)

    def test_frame_atomicity_catches_vanished_task(self):
        result = self.result()
        timeline = result.timeline
        lost = timeline.segments[0].uid
        tampered = dataclasses.replace(
            timeline,
            segments=tuple(
                s for s in timeline.segments if s.uid != lost
            ),
        )
        assert check_frame_atomicity(result.tasks, tampered)


def test_violation_round_trip():
    violation = Violation(oracle="capacity", message="over by 0.25")
    clone = Violation.from_dict(violation.to_dict())
    assert clone == violation
