"""Differential fuzzing: the engine_divergence oracle and its wiring.

``evaluate_case(differential=True)`` re-runs every case on the *other*
timeline engine and flags any non-byte-identical report. These tests
pin three things: the oracle finds nothing on a healthy engine pair
(the PR-gating smoke), it *does* fire when the other engine misbehaves
(injected via monkeypatching), and the campaign/cluster plumbing
carries the flag end to end.
"""

import pytest

from repro.cluster import protocol
from repro.fuzz import (
    ORACLE_NAMES,
    evaluate_case,
    generate_batch,
    run_campaign,
)
from repro.fuzz import oracles as oracles_module

#: One case per generator family, all evaluated differentially.
SMOKE_SEED = 20260808


class TestDifferentialOracle:
    def test_oracle_registered(self):
        assert "engine_divergence" in ORACLE_NAMES
        assert tuple(sorted(ORACLE_NAMES)) == ORACLE_NAMES

    @pytest.mark.parametrize(
        "case",
        generate_batch(SMOKE_SEED, 12),
        ids=lambda case: case.case_id,
    )
    def test_no_divergence_across_families(self, case):
        """The PR-gating smoke: both engines agree on every family."""
        outcome = evaluate_case(case, deep=False, differential=True)
        divergences = [
            violation
            for violation in outcome.violations
            if violation.oracle == "engine_divergence"
        ]
        assert not divergences, divergences

    def test_divergence_detected_when_other_engine_breaks(self, monkeypatch):
        """A tampered second run must surface as engine_divergence."""
        case = generate_batch(SMOKE_SEED, 1)[0]
        real_run_case = oracles_module.run_case

        def tampered(case, engine=None):
            result = real_run_case(case, engine=engine)
            if engine is not None:
                # Perturb the differential re-run only: shift the
                # serving makespan so the reports cannot match.
                from dataclasses import replace

                serving = replace(
                    result.serving, makespan_s=result.serving.makespan_s + 1.0
                )
                result = replace(result, serving=serving)
            return result

        monkeypatch.setattr(oracles_module, "run_case", tampered)
        outcome = evaluate_case(case, deep=False, differential=True)
        assert any(
            violation.oracle == "engine_divergence"
            for violation in outcome.violations
        )

    def test_crash_on_other_engine_is_divergence(self, monkeypatch):
        case = generate_batch(SMOKE_SEED, 1)[0]
        real_run_case = oracles_module.run_case

        def crashing(case, engine=None):
            if engine is not None:
                raise RuntimeError("injected engine fault")
            return real_run_case(case, engine=engine)

        monkeypatch.setattr(oracles_module, "run_case", crashing)
        outcome = evaluate_case(case, deep=False, differential=True)
        messages = [
            violation.message
            for violation in outcome.violations
            if violation.oracle == "engine_divergence"
        ]
        assert messages and "raised" in messages[0]

    def test_differential_off_by_default(self):
        case = generate_batch(SMOKE_SEED, 1)[0]
        outcome = evaluate_case(case, deep=False)
        assert not any(
            violation.oracle == "engine_divergence"
            for violation in outcome.violations
        )


class TestCampaignWiring:
    def test_campaign_runs_differentially_clean(self):
        report = run_campaign(
            SMOKE_SEED, 6, shrink=False, differential=True
        )
        assert report.executed == 6
        assert report.ok, [record.oracles for record in report.failures]

    def test_fuzz_message_carries_flag(self):
        message = protocol.fuzz_message(
            seed=7, indices=[0, 1, 2], differential=True
        )
        assert message["differential"] is True
        assert protocol.fuzz_message(seed=7, indices=[0])["differential"] is False

    def test_absent_flag_defaults_off(self):
        """Wire compatibility: old clients omit the key entirely."""
        message = protocol.fuzz_message(seed=7, indices=[0])
        del message["differential"]
        assert bool(message.get("differential", False)) is False
