"""Seeded scenario generators: determinism, family rotation, validity."""

import json

import pytest

from repro.errors import ConfigError
from repro.fuzz.cases import FuzzCase, run_case
from repro.fuzz.generators import FAMILIES, generate_batch, generate_case

CAMPAIGN_SEED = 7


def test_case_is_pure_function_of_seed_and_index():
    for index in (0, 3, 11):
        first = generate_case(CAMPAIGN_SEED, index)
        second = generate_case(CAMPAIGN_SEED, index)
        assert first.to_json() == second.to_json()


def test_distinct_indices_yield_distinct_cases():
    batch = generate_batch(CAMPAIGN_SEED, 16)
    payloads = {case.to_json() for case in batch}
    assert len(payloads) == 16


def test_family_rotation_covers_all_families():
    batch = generate_batch(CAMPAIGN_SEED, len(FAMILIES))
    assert [case.family for case in batch] == list(FAMILIES)
    # The rotation is positional, independent of the campaign seed.
    other = generate_batch(CAMPAIGN_SEED + 1, len(FAMILIES))
    assert [case.family for case in other] == list(FAMILIES)


def test_family_override_pins_family():
    case = generate_case(CAMPAIGN_SEED, 0, family="priority_ladder")
    assert case.family == "priority_ladder"
    assert case.scenario.policy == "exclusive"


def test_unknown_family_rejected():
    with pytest.raises(ConfigError):
        generate_case(CAMPAIGN_SEED, 0, family="nope")


def test_negative_index_rejected():
    with pytest.raises(ConfigError):
        generate_case(CAMPAIGN_SEED, -1)


def test_generate_batch_start_offsets_indices():
    tail = generate_batch(CAMPAIGN_SEED, 4, start=8)
    full = generate_batch(CAMPAIGN_SEED, 12)
    assert [case.to_json() for case in tail] == [
        case.to_json() for case in full[8:]
    ]


def test_every_generated_case_runs():
    """Generators must only emit well-formed, runnable scenarios."""
    for case in generate_batch(CAMPAIGN_SEED, len(FAMILIES)):
        result = run_case(case)
        assert result.timeline.makespan_s >= 0.0
        assert result.case is case


def test_case_json_round_trip():
    case = generate_case(CAMPAIGN_SEED, 6)  # model_mix: has interference
    clone = FuzzCase.from_json(case.to_json())
    assert clone.to_json() == case.to_json()
    # Serialized form is canonical: sorted keys, stable across loads.
    payload = json.loads(case.to_json())
    assert payload["kind"] == "fuzz_case"
    assert list(payload) == sorted(payload)
