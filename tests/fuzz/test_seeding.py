"""The sha-salted seed derivation scheme (repro.common.seeding).

These values are part of the replay contract: a reproducer generated on
one machine must regenerate bit-identically on any other, so the golden
pins here must never move.
"""

from repro.common.seeding import derive_seed
from repro.serving.traces import stream_seed

#: Golden derivations. ``derive_seed(7, "case", 12)`` hashes the literal
#: string ``"7:case:12"`` — if any pin moves, every stored corpus and
#: every shipped reproducer silently re-times.
GOLDEN = {
    (0, ()): 0x5FECEB66FFC86F38,  # sha256(b"0")[:8]
    (7, ("case", 0)): 0x3B71AFE5D1260106,  # sha256(b"7:case:0")[:8]
}


def test_scheme_is_sha256_of_colon_joined_parts():
    import hashlib

    material = "7:case:12"
    expected = int.from_bytes(
        hashlib.sha256(material.encode()).digest()[:8], "big"
    )
    assert derive_seed(7, "case", 12) == expected


def test_golden_pins():
    for (seed, salts), expected in GOLDEN.items():
        assert derive_seed(seed, *salts) == expected


def test_pure_function_of_inputs():
    assert derive_seed(7, "case", 3) == derive_seed(7, "case", 3)


def test_distinct_salt_paths_diverge():
    seen = {
        derive_seed(7, "case", index) for index in range(64)
    }
    assert len(seen) == 64
    # Different salt labels on the same numeric tail stay independent.
    assert derive_seed(7, "case", 1) != derive_seed(7, "batch", 1)
    # Salt-path boundaries matter: ("ca", "se") != ("c", "ase").
    assert derive_seed(7, "ca", "se") != derive_seed(7, "c", "ase")


def test_stream_seed_is_derive_seed_under_its_old_name():
    """Arrival traces salt by stream name via the same scheme."""
    assert stream_seed(42, "alexnet") == derive_seed(42, "alexnet")


def test_64_bit_range():
    for seed in (0, 1, 2**31, 2**63):
        value = derive_seed(seed, "case", 0)
        assert 0 <= value < 2**64
