"""Delta-debugging shrinker: minimality, reproducer round-trip, replay."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.fuzz.generators import generate_case
from repro.fuzz.shrink import Reproducer, replay_reproducer, shrink_case

CAMPAIGN_SEED = 7
LADDER_INDEX = 2  # priority_ladder slot in the family rotation


def injected_case():
    case = generate_case(CAMPAIGN_SEED, LADDER_INDEX)
    return dataclasses.replace(case, inject="invert_priority")


def test_shrink_reaches_minimal_inversion_witness():
    reproducer = shrink_case(
        injected_case(),
        target_oracles=("priority_order",),
        campaign_seed=CAMPAIGN_SEED,
        index=LADDER_INDEX,
    )
    # A priority inversion needs exactly two contenders; the acceptance
    # bound for the campaign is <= 2 streams and <= 3 frames.
    case = reproducer.case
    assert case.n_streams <= 2
    assert case.n_frames <= 3
    assert "priority_order" in reproducer.oracles
    assert reproducer.campaign_seed == CAMPAIGN_SEED
    assert reproducer.index == LADDER_INDEX


def test_reproducer_round_trip_and_replay(tmp_path):
    reproducer = shrink_case(injected_case())
    path = tmp_path / "repro.json"
    reproducer.save(path)
    loaded = Reproducer.load(path)
    assert loaded.to_json() == reproducer.to_json()

    outcome = replay_reproducer(loaded)
    assert not outcome.ok
    assert set(reproducer.oracles) & set(outcome.failing_oracles)


def test_replay_accepts_bare_case():
    case = generate_case(CAMPAIGN_SEED, 0)
    outcome = replay_reproducer(case)
    assert outcome.ok


def test_shrink_refuses_passing_case():
    with pytest.raises(ConfigError):
        shrink_case(generate_case(CAMPAIGN_SEED, 0))


def test_shrunk_case_still_fails_deterministically():
    reproducer = shrink_case(injected_case())
    first = replay_reproducer(reproducer)
    second = replay_reproducer(reproducer)
    assert first.failing_oracles == second.failing_oracles
    assert not first.ok
