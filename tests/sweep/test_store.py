"""ResultStore: persistence round-trips, pending/resume logic, diffing."""

import pytest

from repro.api import GemmReport, ModelReport, OpReport
from repro.sweep.grid import SweepSpec, expand
from repro.sweep.store import ResultStore


def _grid():
    return expand(
        SweepSpec(platforms=("sma:2", "gpu-tc"), gemms=(128, 256))
    )


def _gemm_report(point, seconds=1e-4) -> GemmReport:
    request = point.request
    return GemmReport(
        platform=request.platform,
        backend="sma",
        m=request.gemm.m,
        n=request.gemm.n,
        k=request.gemm.k,
        dtype="fp16",
        alpha=1.0,
        beta=0.0,
        seconds=seconds,
        cycles=1000.0,
        tb_cycles=100.0,
        tflops=1.0,
        efficiency=0.5,
        sm_efficiency=0.9,
    )


class TestRoundTrip:
    def test_put_get_gemm(self):
        grid = _grid()
        with ResultStore(":memory:") as store:
            report = _gemm_report(grid.points[0])
            store.put(grid.points[0], report)
            assert store.get(grid.points[0]) == report
            assert grid.points[0] in store
            assert grid.points[1] not in store

    def test_put_get_model(self):
        grid = expand(SweepSpec(platforms=("sma:2",), models=("alexnet",)))
        report = ModelReport(
            model="alexnet",
            platform="sma:2",
            ops=(
                OpReport(
                    "conv1", "CNN&FC", "gemm-sma", 1e-3, 2e9,
                    energy={"Global": 1.0},
                ),
            ),
        )
        with ResultStore(":memory:") as store:
            store.put(grid.points[0], report)
            assert store.get(grid.points[0]) == report

    def test_unopenable_path_is_config_error(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ResultStore("/nonexistent-dir/deeper/sweep.sqlite")

    def test_persists_across_reopen(self, tmp_path):
        grid = _grid()
        path = tmp_path / "sweep.sqlite"
        report = _gemm_report(grid.points[0])
        with ResultStore(path) as store:
            store.put(grid.points[0], report)
        with ResultStore(path) as store:
            assert len(store) == 1
            assert store.get(grid.points[0]) == report


class TestPending:
    def test_empty_store_leaves_everything_pending(self):
        grid = _grid()
        with ResultStore(":memory:") as store:
            assert store.pending(grid) == grid.points

    def test_fully_stored_grid_resumes_to_zero(self):
        grid = _grid()
        with ResultStore(":memory:") as store:
            for point in grid:
                store.put(point, _gemm_report(point))
            assert store.pending(grid) == ()
            reports = store.reports(grid)
            assert all(report is not None for report in reports)

    def test_changed_fingerprint_is_pending_again(self):
        grid = _grid()
        shifted = expand(
            SweepSpec(platforms=("sma:2", "gpu-tc"), gemms=(128, 256),
                      gemm_dtype="fp32")
        )
        with ResultStore(":memory:") as store:
            for point in grid:
                store.put(point, _gemm_report(point))
            assert len(store.pending(shifted)) == len(shifted)


class TestDiffAndMerge:
    def test_diff_identical(self):
        grid = _grid()
        with ResultStore(":memory:") as a, ResultStore(":memory:") as b:
            for point in grid:
                report = _gemm_report(point)
                a.put(point, report)
                b.put(point, report)
            diff = a.diff(b)
            assert diff.identical
            assert len(diff.unchanged) == len(grid)

    def test_diff_changed_and_missing(self):
        grid = _grid()
        with ResultStore(":memory:") as a, ResultStore(":memory:") as b:
            for point in grid.points[:3]:
                a.put(point, _gemm_report(point))
            for point in grid.points[1:3]:
                b.put(point, _gemm_report(point))
            b.put(grid.points[2], _gemm_report(grid.points[2], seconds=9.0))
            b.put(grid.points[3], _gemm_report(grid.points[3]))
            diff = a.diff(b)
            assert diff.only_left == (grid.points[0].request_id,)
            assert diff.only_right == (grid.points[3].request_id,)
            assert diff.changed == (grid.points[2].request_id,)
            assert not diff.identical

    def test_merge_from_copies_missing_rows(self):
        grid = _grid()
        with ResultStore(":memory:") as a, ResultStore(":memory:") as b:
            a.put(grid.points[0], _gemm_report(grid.points[0]))
            b.put(grid.points[0], _gemm_report(grid.points[0], seconds=9.0))
            b.put(grid.points[1], _gemm_report(grid.points[1]))
            added = a.merge_from(b)
            assert added == 1
            # existing rows keep the local payload (first write wins)
            assert a.get(grid.points[0]).seconds == pytest.approx(1e-4)
            assert a.get(grid.points[1]) is not None
