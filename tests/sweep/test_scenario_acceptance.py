"""PR acceptance: a 3-stream multi-tenant scenario runs via `repro
scenario`, sweeps across sma:2..4, resumes with zero new simulations, and
its ScheduleReport JSON round-trips losslessly."""

import json

import pytest

from repro.__main__ import main
from repro.api import ScenarioSpec, Session, StreamSpec, TimingCache
from repro.api.results import ScheduleReport, report_from_dict
from repro.sweep import SweepSpec, expand, run_sweep
from repro.sweep.store import ResultStore

MULTI_TENANT = ScenarioSpec(
    name="multi-tenant",
    frames=2,
    policy="priority",
    streams=(
        StreamSpec(name="detect", model="mask_rcnn", priority=3.0,
                   deadline_s=0.400),
        StreamSpec(name="segment", model="deeplab:nocrf", priority=2.0,
                   deadline_s=0.600),
        StreamSpec(name="classify", model="vgg_a", priority=1.0,
                   skip_interval=2),
    ),
)


@pytest.fixture(scope="module")
def swept(tmp_path_factory):
    spec = SweepSpec(platforms=("sma:2..4",), scenarios=(MULTI_TENANT,))
    grid = expand(spec)
    path = tmp_path_factory.mktemp("scenario") / "scenarios.sqlite"
    session = Session(cache=TimingCache())
    with ResultStore(path) as store:
        first = run_sweep(grid, store=store, session=session)
        resumed = run_sweep(
            grid, store=store, resume=True,
            session=Session(cache=TimingCache()),
        )
    return grid, first, resumed


class TestSweepAcrossPlatforms:
    def test_grid_shape(self, swept):
        grid, _first, _resumed = swept
        assert [point.request.platform for point in grid] == [
            "sma:2", "sma:3", "sma:4",
        ]
        assert all(
            point.request.kind == "scenario" for point in grid
        )

    def test_all_simulated_then_all_resumed(self, swept):
        _grid, first, resumed = swept
        assert len(first.executed) == 3
        assert first.loaded == ()
        # Resume: zero new simulations, reports equal the stored ones.
        assert resumed.executed == ()
        assert len(resumed.loaded) == 3
        assert [report.to_dict() for report in resumed.reports] == [
            report.to_dict() for report in first.reports
        ]

    def test_reports_are_schedule_reports(self, swept):
        _grid, first, _resumed = swept
        for report, platform in zip(first.reports, ("sma:2", "sma:3", "sma:4")):
            assert isinstance(report, ScheduleReport)
            assert report.platform == platform
            assert report.scenario == "multi-tenant"
            assert report.stream("classify").frames_skipped == 1

    def test_more_units_is_no_slower(self, swept):
        # sma:3 -> sma:4 saturates the mapper (identical timings in the
        # seed simulator), so the curve is non-increasing rather than
        # strictly decreasing past 3 units.
        _grid, first, _resumed = swept
        makespans = [report.makespan_s for report in first.reports]
        assert makespans[0] > makespans[1]
        assert makespans[1] >= makespans[2]

    def test_priority_orders_stretch(self, swept):
        _grid, first, _resumed = swept
        for report in first.reports:
            # Higher-priority streams get larger shares, hence less
            # contention stretch.
            assert (
                report.stream("detect").stretch
                <= report.stream("segment").stretch
            )

    def test_json_round_trip_lossless(self, swept):
        _grid, first, _resumed = swept
        for report in first.reports:
            text = report.to_json()
            assert ScheduleReport.from_json(text) == report
            assert report_from_dict(json.loads(text)) == report


class TestScenarioCli:
    def test_multi_tenant_via_repro_scenario(self, capsys, tmp_path):
        spec_path = tmp_path / "multi_tenant.json"
        spec_path.write_text(MULTI_TENANT.to_json(indent=2))
        assert main(
            ["scenario", "--spec", str(spec_path), "-p", "sma:2", "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        report = report_from_dict(data)
        assert isinstance(report, ScheduleReport)
        assert report.platform == "sma:2"
        assert {stream.name for stream in report.streams} == {
            "detect", "segment", "classify",
        }

    def test_inline_streams_table(self, capsys):
        assert main(
            [
                "scenario", "-p", "sma:2", "--frames", "2",
                "--policy", "priority",
                "-s", "mask_rcnn@prio=3,deadline=0.4",
                "-s", "deeplab:nocrf@prio=2,name=segment",
                "-s", "vgg_a@prio=1,skip=2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "segment" in out
        assert "makespan" in out
        assert "resource occupancy" in out
