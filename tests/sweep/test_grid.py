"""Grid expansion: determinism, dedup, order stability, range patterns."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.gemm.problem import GemmProblem
from repro.sweep.grid import (
    SweepSpec,
    expand,
    expand_platform_spec,
    request_fingerprint,
)


class TestRangeExpansion:
    def test_plain_spec_passes_through(self):
        assert expand_platform_spec("gpu-tc") == ("gpu-tc",)
        assert expand_platform_spec("sma:3") == ("sma:3",)

    def test_simple_range(self):
        assert expand_platform_spec("sma:2..4") == ("sma:2", "sma:3", "sma:4")

    def test_range_with_trailing_arg(self):
        assert expand_platform_spec("sma:2..3,fp32") == (
            "sma:2,fp32",
            "sma:3,fp32",
        )

    def test_degenerate_range(self):
        assert expand_platform_spec("sma:3..3") == ("sma:3",)

    def test_empty_range_rejected(self):
        with pytest.raises(ConfigError):
            expand_platform_spec("sma:4..2")


class TestSpecValidation:
    def test_needs_platforms(self):
        with pytest.raises(ConfigError):
            expand(SweepSpec(platforms=(), gemms=(128,)))

    def test_needs_workload(self):
        with pytest.raises(ConfigError):
            SweepSpec(platforms=("sma:2",))

    def test_unknown_platform_fails_fast(self):
        with pytest.raises(ConfigError):
            expand(SweepSpec(platforms=("warp-drive",), gemms=(128,)))

    def test_bad_gemm_shape_rejected(self):
        with pytest.raises(ConfigError):
            expand(SweepSpec(platforms=("sma:2",), gemms=((1, 2),)))

    def test_unknown_dtype_rejected_as_config_error(self):
        with pytest.raises(ConfigError):
            expand(
                SweepSpec(
                    platforms=("sma:2",), gemms=(128,), gemm_dtype="banana"
                )
            )


# Strategy: small specs drawn from real platform/model names, with
# overlapping ranges so deduplication actually has work to do.
_PLATFORMS = st.lists(
    st.sampled_from(["gpu-tc", "gpu-simd", "sma:2", "sma:2..3", "sma:2..4"]),
    min_size=1,
    max_size=4,
)
_GEMMS = st.lists(
    st.sampled_from([64, 128, (64, 128, 256), GemmProblem(32, 32, 32)]),
    min_size=1,
    max_size=3,
)
_DATAFLOWS = st.sampled_from([(None,), ("sbws",), ("sbws", "ws")])


class TestExpansionProperties:
    @settings(max_examples=60, deadline=None)
    @given(platforms=_PLATFORMS, gemms=_GEMMS, dataflows=_DATAFLOWS)
    def test_deterministic(self, platforms, gemms, dataflows):
        spec = SweepSpec(
            platforms=tuple(platforms),
            gemms=tuple(gemms),
            dataflows=dataflows,
        )
        first, second = expand(spec), expand(spec)
        assert first == second
        assert first.request_ids == second.request_ids

    @settings(max_examples=60, deadline=None)
    @given(platforms=_PLATFORMS, gemms=_GEMMS, dataflows=_DATAFLOWS)
    def test_duplicate_free(self, platforms, gemms, dataflows):
        grid = expand(
            SweepSpec(
                platforms=tuple(platforms),
                gemms=tuple(gemms),
                dataflows=dataflows,
            )
        )
        ids = grid.request_ids
        assert len(set(ids)) == len(ids)
        fingerprints = [point.fingerprint for point in grid]
        assert len(set(fingerprints)) == len(fingerprints)
        requests = [point.request for point in grid]
        assert len(set(requests)) == len(requests)

    @settings(max_examples=60, deadline=None)
    @given(platforms=_PLATFORMS, gemms=_GEMMS)
    def test_order_stable_under_extension(self, platforms, gemms):
        """Appending an axis value never reorders the existing points."""
        base = expand(
            SweepSpec(platforms=tuple(platforms), gemms=tuple(gemms))
        )
        extended = expand(
            SweepSpec(
                platforms=tuple(platforms) + ("gpu-tc",),
                gemms=tuple(gemms) + (96,),
            )
        )
        base_ids = set(base.request_ids)
        surviving = [
            rid for rid in extended.request_ids if rid in base_ids
        ]
        assert surviving == list(base.request_ids)

    @settings(max_examples=60, deadline=None)
    @given(platforms=_PLATFORMS, gemms=_GEMMS)
    def test_indexes_are_positional(self, platforms, gemms):
        grid = expand(
            SweepSpec(platforms=tuple(platforms), gemms=tuple(gemms))
        )
        assert [point.index for point in grid] == list(range(len(grid)))


class TestFingerprints:
    def test_platform_order_does_not_change_point_identity(self):
        forward = expand(
            SweepSpec(platforms=("gpu-tc", "sma:2"), gemms=(128,))
        )
        backward = expand(
            SweepSpec(platforms=("sma:2", "gpu-tc"), gemms=(128,))
        )
        assert set(forward.request_ids) == set(backward.request_ids)
        assert forward.request_ids != backward.request_ids  # order follows spec

    def test_overhead_extras_change_model_fingerprints_only(self):
        plain = expand(
            SweepSpec(
                platforms=("sma:2",), models=("alexnet",), gemms=(128,)
            )
        )
        kernel_study = expand(
            SweepSpec(
                platforms=("sma:2",),
                models=("alexnet",),
                gemms=(128,),
                framework_overhead_s=0.0,
            )
        )
        by_kind = lambda grid: {p.request.kind: p for p in grid}  # noqa: E731
        assert (
            by_kind(plain)["model"].fingerprint
            != by_kind(kernel_study)["model"].fingerprint
        )
        assert (
            by_kind(plain)["gemm"].fingerprint
            == by_kind(kernel_study)["gemm"].fingerprint
        )

    def test_tag_does_not_change_identity(self):
        """Re-running under a new --tag must resume from the same store."""
        untagged = expand(SweepSpec(platforms=("sma:2",), gemms=(128,)))
        tagged = expand(
            SweepSpec(platforms=("sma:2",), gemms=(128,), tag="nightly")
        )
        assert untagged.request_ids == tagged.request_ids
        assert [p.fingerprint for p in untagged] == [
            p.fingerprint for p in tagged
        ]

    def test_fingerprint_is_content_hash_of_request(self):
        grid = expand(SweepSpec(platforms=("sma:2",), gemms=(128,)))
        point = grid.points[0]
        assert point.fingerprint == request_fingerprint(point.request)
        assert point.request_id == f"gemm-{point.fingerprint[:12]}"


class TestScenarioAxis:
    def scenario(self, platform=None):
        from repro.api import ScenarioSpec, StreamSpec

        return ScenarioSpec(
            name="duo",
            platform=platform,
            frames=2,
            streams=(
                StreamSpec(name="a", model="alexnet", priority=2.0),
                StreamSpec(name="b", model="goturn"),
            ),
        )

    def test_expansion_binds_platform_axis(self):
        grid = expand(
            SweepSpec(platforms=("sma:2..3",), scenarios=(self.scenario(),))
        )
        assert [point.request.platform for point in grid] == [
            "sma:2", "sma:3",
        ]
        for point in grid:
            assert point.request.kind == "scenario"
            assert point.request.scenario.platform is None
            assert point.request_id.startswith("scenario-")

    def test_embedded_platform_stripped_for_identity(self):
        # A scenario that names its own platform expands to the same
        # fingerprints as one that leaves it open: the grid's platform
        # axis is the single source of identity.
        open_grid = expand(
            SweepSpec(platforms=("sma:2",), scenarios=(self.scenario(),))
        )
        bound_grid = expand(
            SweepSpec(
                platforms=("sma:2",),
                scenarios=(self.scenario(platform="gpu-tc"),),
            )
        )
        assert open_grid.request_ids == bound_grid.request_ids

    def test_fingerprint_sensitive_to_scenario_content(self):
        from repro.api import ScenarioSpec, StreamSpec

        other = ScenarioSpec(
            name="duo",
            frames=3,  # different window
            streams=(
                StreamSpec(name="a", model="alexnet", priority=2.0),
                StreamSpec(name="b", model="goturn"),
            ),
        )
        left = expand(
            SweepSpec(platforms=("sma:2",), scenarios=(self.scenario(),))
        )
        right = expand(SweepSpec(platforms=("sma:2",), scenarios=(other,)))
        assert left.request_ids != right.request_ids

    def test_framework_overhead_in_scenario_fingerprint(self):
        base = SweepSpec(platforms=("sma:2",), scenarios=(self.scenario(),))
        fast = SweepSpec(
            platforms=("sma:2",),
            scenarios=(self.scenario(),),
            framework_overhead_s=0.0,
        )
        assert expand(base).request_ids != expand(fast).request_ids

    def test_mixed_workloads_keep_order(self):
        grid = expand(
            SweepSpec(
                platforms=("sma:2",),
                models=("alexnet",),
                gemms=(128,),
                scenarios=(self.scenario(),),
            )
        )
        assert [point.request.kind for point in grid] == [
            "model", "gemm", "scenario",
        ]

    def test_rejects_non_scenario(self):
        with pytest.raises(ConfigError):
            SweepSpec(platforms=("sma:2",), scenarios=("nope",))
