"""PR acceptance: the fig7 grid sharded 4 ways matches sequential exactly,
its merged cache shows real hits, and resuming executes nothing."""

import pytest

from repro.api import Session, TimingCache
from repro.experiments.fig7 import fig7_left_grid
from repro.sweep.store import ResultStore
from repro.sweep.workers import run_sweep


@pytest.fixture(scope="module")
def fig7_runs(tmp_path_factory):
    grid = fig7_left_grid()
    sequential = run_sweep(grid, session=Session(cache=TimingCache()))
    path = tmp_path_factory.mktemp("acceptance") / "fig7.sqlite"
    sharded_session = Session(cache=TimingCache())
    with ResultStore(path) as store:
        sharded = run_sweep(
            grid, jobs=4, store=store, session=sharded_session
        )
    return grid, sequential, sharded, sharded_session, path


def test_sharded_bit_identical_to_sequential(fig7_runs):
    _grid, sequential, sharded, _session, _path = fig7_runs
    assert sharded.reports == sequential.reports


def test_merged_cache_hit_rate_nonzero(fig7_runs):
    grid, _sequential, sharded, session, _path = fig7_runs
    # Workers hit their private window caches across sizes; the merged
    # counters surface that, and the merged entries serve timing hits.
    assert sharded.cache_stats.window_hits > 0
    assert sharded.cache_stats.total_hits > 0
    rerun = run_sweep(grid, session=session)
    assert session.cache_stats.hit_rate > 0
    assert all(report.cached for report in rerun.reports)


def test_resume_executes_zero_simulations(fig7_runs):
    grid, sequential, _sharded, _session, path = fig7_runs
    with ResultStore(path) as store:
        resumed = run_sweep(
            grid,
            jobs=4,
            store=store,
            resume=True,
            session=Session(cache=TimingCache()),
        )
    assert resumed.executed == ()
    assert len(resumed.loaded) == len(grid)
    assert resumed.reports == sequential.reports
