"""Sweep engine: sharded == sequential, cache merge, resume, errors.

The sharded tests spawn real worker processes, so grids stay tiny (64-256
square GEMMs simulate in milliseconds through the sampling pipeline).
"""

import pytest

from repro.api import Session, SimRequest, TimingCache
from repro.errors import BatchRequestError, ConfigError
from repro.sweep.grid import SweepGrid, SweepPoint, SweepSpec, expand
from repro.sweep.store import ResultStore
from repro.sweep.workers import run_sweep

GRID = expand(
    SweepSpec(platforms=("gpu-tc", "sma:2..3"), gemms=(128, 256))
)


def _fresh_session() -> Session:
    return Session(cache=TimingCache())


class TestShardedEqualsSequential:
    def test_reports_bit_identical(self):
        sequential = run_sweep(GRID, session=_fresh_session())
        sharded = run_sweep(GRID, jobs=2, session=_fresh_session())
        assert sharded.reports == sequential.reports

    def test_merged_cache_times_identically(self):
        """Satellite acceptance: timings served from a merged cache match a
        sequential run exactly."""
        sequential_session = _fresh_session()
        sequential = run_sweep(GRID, session=sequential_session)

        merged_session = _fresh_session()
        run_sweep(GRID, jobs=3, session=merged_session)
        assert len(merged_session.cache) == len(GRID)

        rerun = run_sweep(GRID, session=merged_session)
        assert rerun.reports != sequential.reports  # cached flags flip...
        assert all(report.cached for report in rerun.reports)
        assert [report.seconds for report in rerun.reports] == [
            report.seconds for report in sequential.reports
        ]
        assert merged_session.cache.stats().hits == len(GRID)

    def test_workers_report_their_cache_traffic(self):
        """Workers sharing shapes inside a shard surface window hits."""
        grid = expand(
            SweepSpec(platforms=("sma:2",), gemms=(128, 256, 512, 1024))
        )
        result = run_sweep(grid, jobs=2, session=_fresh_session())
        stats = result.cache_stats
        assert stats.misses == len(grid)
        assert stats.window_hits > 0  # anchors shared across sizes
        assert stats.total_hits > 0


class TestStoreIntegration:
    def test_sharded_store_resumes_to_zero(self, tmp_path):
        path = tmp_path / "sweep.sqlite"
        with ResultStore(path) as store:
            first = run_sweep(
                GRID, jobs=2, store=store, session=_fresh_session()
            )
            assert len(first.executed) == len(GRID)
            assert store.pending(GRID) == ()

        with ResultStore(path) as store:
            resumed = run_sweep(
                GRID, jobs=2, store=store, resume=True,
                session=_fresh_session(),
            )
            assert resumed.executed == ()
            assert len(resumed.loaded) == len(GRID)
            assert resumed.reports == first.reports

    def test_partial_store_only_runs_the_remainder(self):
        store = ResultStore(":memory:")
        half = SweepGrid(points=GRID.points[: len(GRID) // 2])
        run_sweep(half, store=store, session=_fresh_session())
        result = run_sweep(
            GRID, store=store, resume=True, session=_fresh_session()
        )
        assert len(result.loaded) == len(half)
        assert len(result.executed) == len(GRID) - len(half)
        assert store.pending(GRID) == ()
        store.close()

    def test_resume_requires_store(self):
        with pytest.raises(ConfigError):
            run_sweep(GRID, resume=True, session=_fresh_session())

    def test_resume_under_new_tag_loads_and_restamps(self):
        """Tags are display labels: a retagged sweep still resumes, and
        loaded reports wear the new tag."""
        store = ResultStore(":memory:")
        grid = expand(SweepSpec(platforms=("sma:2",), gemms=(128,)))
        run_sweep(grid, store=store, session=_fresh_session())
        retagged = expand(
            SweepSpec(platforms=("sma:2",), gemms=(128,), tag="nightly")
        )
        result = run_sweep(
            retagged, store=store, resume=True, session=_fresh_session()
        )
        assert result.executed == ()
        assert result.reports[0].tag == "nightly"
        store.close()


class TestErrorHandling:
    def _broken_grid(self) -> SweepGrid:
        grid = expand(SweepSpec(platforms=("sma:2",), gemms=(128,)))
        bad = SweepPoint(
            index=1,
            request_id="model-deadbeef0000",
            fingerprint="deadbeef" * 8,
            request=SimRequest(
                platform="sma:2", model="not_a_model", tag="broken"
            ),
        )
        return SweepGrid(points=grid.points + (bad,))

    def test_sequential_failure_names_the_point(self):
        with pytest.raises(BatchRequestError) as excinfo:
            run_sweep(self._broken_grid(), session=_fresh_session())
        error = excinfo.value
        assert error.request_id == "model-deadbeef0000"
        assert error.index == 1
        assert error.tag == "broken"

    def test_sharded_failure_survives_the_process_boundary(self):
        with pytest.raises(BatchRequestError) as excinfo:
            run_sweep(
                self._broken_grid(), jobs=2, session=_fresh_session()
            )
        assert excinfo.value.request_id == "model-deadbeef0000"

    def test_rejects_bad_jobs(self):
        with pytest.raises(ConfigError):
            run_sweep(GRID, jobs=0, session=_fresh_session())

    def test_rejects_non_grid(self):
        with pytest.raises(ConfigError):
            run_sweep(["not", "a", "grid"], session=_fresh_session())


class TestSessionFacade:
    def test_session_run_sweep_delegates(self):
        session = _fresh_session()
        result = session.run_sweep(
            SweepSpec(platforms=("sma:2",), gemms=(128,))
        )
        assert len(result) == 1
        assert result.reports[0].platform == "sma:2"
        assert session.cache_stats.misses == 1

    def test_model_sweep_through_engine(self):
        session = _fresh_session()
        result = session.run_sweep(
            SweepSpec(
                platforms=("sma:2",),
                models=("alexnet",),
                framework_overhead_s=0.0,
            )
        )
        (report,) = result.reports
        assert report.model == "alexnet"
        assert report.total_seconds > 0
