"""Configuration (Table I) tests."""

import pytest

from repro.config import (
    ALL_SYSTEMS,
    CpuConfig,
    DataType,
    GpuConfig,
    SmaConfig,
    SystemConfig,
    TpuConfig,
    sma_2unit,
    sma_3unit,
    system_gpu_simd,
    system_sma,
    system_tpu,
    tpu_v1,
    tpu_v2_core,
    volta_gpu,
)
from repro.errors import ConfigError


class TestGpuConfig:
    def test_table1_defaults(self):
        gpu = volta_gpu()
        assert gpu.num_sms == 80
        assert gpu.cuda_cores_per_sm == 64
        assert gpu.tensor_cores_per_sm == 4
        assert gpu.fp16_units_per_sm == 256
        assert gpu.shared_memory_banks == 32
        assert gpu.shared_memory_kb == 96
        assert gpu.register_file_kb == 256

    def test_simd_peak_matches_v100(self):
        # 80 SMs x 128 FLOP/cyc x 1.53 GHz = 15.7 FP32 TFLOPS.
        assert volta_gpu().peak_simd_tflops == pytest.approx(15.67, abs=0.1)

    def test_tc_peak(self):
        # Table I config: 256 FP16 FMA units per SM.
        assert volta_gpu().peak_tc_tflops == pytest.approx(62.7, abs=0.5)

    def test_smem_bandwidth(self):
        assert volta_gpu().shared_memory_bandwidth_bytes_per_cycle == 128

    def test_invalid_sm_count(self):
        with pytest.raises(ConfigError):
            GpuConfig(num_sms=0)

    def test_invalid_warp_size(self):
        with pytest.raises(ConfigError):
            GpuConfig(warp_size=64)

    def test_invalid_clock(self):
        with pytest.raises(ConfigError):
            GpuConfig(clock_ghz=0)


class TestSmaConfig:
    def test_fp32_unit_is_8x8(self):
        sma = SmaConfig(units_per_sm=3, dtype=DataType.FP32)
        assert sma.effective_cols == 8
        assert sma.macs_per_cycle_per_unit == 64

    def test_fp16_unit_is_8x16(self):
        sma = sma_2unit(DataType.FP16)
        assert sma.effective_cols == 16
        assert sma.macs_per_cycle_per_unit == 128

    def test_iso_flop_with_4tc(self):
        # 2 FP16 SMA units == 256 FP16 MACs == 4 TCs.
        assert sma_2unit().macs_per_cycle_per_sm == volta_gpu().fp16_units_per_sm

    def test_iso_area_3units(self):
        # 3 units == 384 FP16-unit equivalents == SIMD + 2 TC area.
        assert sma_3unit().fp16_equivalent_units == 384
        assert sma_3unit(DataType.FP32).fp16_equivalent_units == 384
        # Operating precision never changes the physical area.
        assert sma_3unit(DataType.INT8).fp16_equivalent_units == 384

    def test_int8_unit_is_8x32(self):
        """SS IV-A: 'can also be built from other data types such as INT8'."""
        sma = SmaConfig(dtype=DataType.INT8)
        assert sma.effective_cols == 32
        assert sma.macs_per_cycle_per_unit == 256

    def test_controller_storage(self):
        assert SmaConfig().controller_storage_bytes == 256

    def test_invalid_units(self):
        with pytest.raises(ConfigError):
            SmaConfig(units_per_sm=0)

    def test_invalid_banks(self):
        with pytest.raises(ConfigError):
            SmaConfig(smem_banks_for_sma=0)


class TestTpuConfig:
    def test_v2_core_peak(self):
        # 128x128 at 0.7 GHz ~ 22.9 TFLOPS (paper: 22.5 peak).
        assert tpu_v2_core().peak_tflops == pytest.approx(22.9, abs=0.5)

    def test_v1_array(self):
        assert tpu_v1().array_rows == 256

    def test_invalid_dims(self):
        with pytest.raises(ConfigError):
            TpuConfig(array_rows=0)


class TestCpuConfig:
    def test_sustained_gflops(self):
        cpu = CpuConfig()
        assert cpu.sustained_gflops == pytest.approx(
            cpu.clock_ghz * cpu.flops_per_cycle * cpu.sustained_efficiency
        )

    def test_invalid_efficiency(self):
        with pytest.raises(ConfigError):
            CpuConfig(sustained_efficiency=0.0)


class TestSystemConfig:
    def test_needs_some_device(self):
        with pytest.raises(ConfigError):
            SystemConfig(name="empty", gpu=None, tpu=None)

    def test_sma_requires_gpu(self):
        with pytest.raises(ConfigError):
            SystemConfig(name="bad", tpu=tpu_v2_core(), sma=sma_2unit())

    def test_named_systems(self):
        for name, factory in ALL_SYSTEMS.items():
            system = factory()
            assert system.name == name

    def test_system_sma_units(self):
        assert system_sma(2).sma.units_per_sm == 2
        assert system_sma(3).sma.units_per_sm == 3
        assert system_sma(4).sma.units_per_sm == 4

    def test_simd_system_has_gpu(self):
        assert system_gpu_simd().gpu is not None

    def test_tpu_system(self):
        assert system_tpu().tpu is not None
        assert system_tpu().gpu is None


class TestDataType:
    def test_bytes(self):
        assert DataType.FP32.bytes == 4
        assert DataType.FP16.bytes == 2
        assert DataType.INT8.bytes == 1

    def test_fp16_equivalents(self):
        assert DataType.FP32.fp16_equivalents == 2
        assert DataType.FP16.fp16_equivalents == 1
