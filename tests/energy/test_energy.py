"""Energy model tests: CACTI scaling, tables, accounting."""

import pytest

from repro.common.stats import CounterBag
from repro.config import GpuConfig
from repro.energy.accounting import CATEGORIES, EnergyBreakdown, EnergyLedger
from repro.energy.cacti import (
    SramStructure,
    dram_access_energy_pj_per_word,
    mac_energy_pj,
    sram_access_energy_pj,
)
from repro.energy.gpuwattch import default_energy_table
from repro.errors import ConfigError


class TestCacti:
    def test_energy_grows_with_capacity(self):
        small = SramStructure("s", 4 * 1024, banks=1)
        large = SramStructure("l", 64 * 1024, banks=1)
        assert sram_access_energy_pj(large) > sram_access_energy_pj(small)

    def test_banking_reduces_access_energy(self):
        mono = SramStructure("m", 128 * 1024, banks=1)
        banked = SramStructure("b", 128 * 1024, banks=32)
        assert sram_access_energy_pj(banked) < sram_access_energy_pj(mono)

    def test_anchor_point(self):
        anchor = SramStructure("a", 512, banks=1)
        assert sram_access_energy_pj(anchor) == pytest.approx(1.0)

    def test_mac_energy_ordering(self):
        assert mac_energy_pj(8) < mac_energy_pj(16) < mac_energy_pj(32)

    def test_mac_energy_unknown_width(self):
        with pytest.raises(ConfigError):
            mac_energy_pj(64)

    def test_dram_dominates_sram(self):
        smem = SramStructure("s", 96 * 1024, banks=32)
        assert dram_access_energy_pj_per_word() > 10 * sram_access_energy_pj(smem)

    def test_geometry_validation(self):
        with pytest.raises(ConfigError):
            SramStructure("bad", 0)


class TestEnergyTable:
    def test_hierarchy_ordering(self):
        table = default_energy_table(GpuConfig())
        assert table.rf_word_pj < table.smem_word_pj < table.l2_word_pj
        assert table.l2_word_pj < table.dram_word_pj

    def test_fp16_cheaper_than_fp32(self):
        table = default_energy_table()
        assert table.mac_fp16_pj < table.mac_fp32_pj


class TestEnergyBreakdown:
    def test_categories_fixed(self):
        breakdown = EnergyBreakdown()
        assert set(breakdown.joules) == set(CATEGORIES)

    def test_add_and_total(self):
        breakdown = EnergyBreakdown()
        breakdown.add("PE", 2.0)
        breakdown.add("Register", 1.0)
        assert breakdown.total == 3.0

    def test_unknown_category(self):
        with pytest.raises(KeyError):
            EnergyBreakdown().add("Leakage", 1.0)

    def test_merged_and_scaled(self):
        a = EnergyBreakdown()
        a.add("PE", 1.0)
        b = EnergyBreakdown()
        b.add("PE", 2.0)
        assert a.merged(b).joules["PE"] == 3.0
        assert a.scaled(4.0).joules["PE"] == 4.0

    def test_normalized(self):
        a = EnergyBreakdown()
        a.add("PE", 2.0)
        assert a.normalized_to(4.0)["PE"] == 0.5


class TestLedger:
    def test_counts_map_to_categories(self):
        ledger = EnergyLedger(GpuConfig())
        counters = CounterBag(
            {
                "fp16_macs": 1e6,
                "rf_reads": 1e4,
                "smem_read_words": 1e4,
                "dram_bytes": 1e6,
                "const_read_words": 100,
            }
        )
        breakdown = ledger.account(counters)
        assert breakdown.joules["PE"] > 0
        assert breakdown.joules["Register"] > 0
        assert breakdown.joules["Shared"] > 0
        assert breakdown.joules["Global"] > 0
        assert breakdown.joules["Const"] > 0

    def test_static_energy_from_cycles(self):
        ledger = EnergyLedger(GpuConfig())
        idle = ledger.account(CounterBag({"kernel_cycles": 1e6}))
        assert idle.joules["PE"] > 0

    def test_empty_counters_zero_energy(self):
        assert EnergyLedger().account(CounterBag()).total == 0.0

    def test_systolic_reuse_saves_register_energy(self):
        """The Fig 8 mechanism: fewer RF accesses per MAC on SMA."""
        ledger = EnergyLedger()
        macs = 1e6
        tc = CounterBag({"fp16_macs": macs, "rf_reads": macs / 256 * 8,
                         "rf_writes": macs / 256 * 4})
        sma = CounterBag({"sma_macs_fp16": macs, "rf_reads": macs / 128 / 32,
                          "rf_writes": macs / 128 / 32})
        tc_reg = ledger.account(tc).joules["Register"]
        sma_reg = ledger.account(sma).joules["Register"]
        assert sma_reg < 0.1 * tc_reg
