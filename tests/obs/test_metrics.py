"""Metrics registry semantics, pinned where the fleet depends on them.

The load-bearing property is that snapshot merging is associative and
commutative — sweep workers and cluster servers merge in whatever order
shards finish, and every order must agree. Hypothesis generates random
snapshots and random merge trees to pin it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.obs import (
    MetricsRegistry,
    histogram_stats,
    merge_snapshots,
    render_prometheus,
    sample_key,
    validate_snapshot,
)

_NAMES = st.sampled_from(
    ("frames_offered_total", "frames_dropped_total", "rpc_total")
)


@st.composite
def snapshots(draw):
    """A registry-made snapshot: counters, gauges, and real P² sketches."""
    registry = MetricsRegistry()
    for name in draw(st.lists(_NAMES, max_size=3)):
        registry.counter(name).inc(draw(st.integers(0, 1000)))
    for value in draw(st.lists(st.floats(0, 100), max_size=2)):
        registry.gauge("inflight_peak").high_water(value)
    samples = draw(
        st.lists(st.floats(0.001, 10.0), min_size=0, max_size=8)
    )
    for sample in samples:
        registry.histogram("phase_seconds", phase="schedule").observe(sample)
    return registry.snapshot()


class TestMergeAlgebra:
    @given(snapshots(), snapshots())
    @settings(max_examples=40, deadline=None)
    def test_commutative(self, a, b):
        assert merge_snapshots(a, b) == merge_snapshots(b, a)

    @given(snapshots(), snapshots(), snapshots())
    @settings(max_examples=40, deadline=None)
    def test_associative(self, a, b, c):
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert left == right

    @given(snapshots())
    @settings(max_examples=20, deadline=None)
    def test_empty_is_identity(self, a):
        empty = MetricsRegistry().snapshot()
        assert merge_snapshots(a, empty) == validate_snapshot(a)

    @given(snapshots(), snapshots())
    @settings(max_examples=20, deadline=None)
    def test_registry_merge_matches_functional_merge(self, a, b):
        registry = MetricsRegistry()
        registry.merge(a)
        registry.merge(b)
        assert registry.snapshot() == merge_snapshots(a, b)


class TestSamples:
    def test_counter_rejects_floats_and_negatives(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigError):
            registry.counter("x").inc(0.5)
        with pytest.raises(ConfigError):
            registry.counter("x").inc(-1)

    def test_counter_value_does_not_create(self):
        registry = MetricsRegistry()
        assert registry.counter_value("absent") == 0
        assert "absent" not in registry.snapshot()["counters"]

    def test_labels_are_canonically_sorted(self):
        assert sample_key("m", {"b": 1, "a": 2}) == 'm{a="2",b="1"}'
        with pytest.raises(ConfigError):
            sample_key('bad"name')

    def test_gauge_merge_keeps_peak(self):
        a = MetricsRegistry()
        a.gauge("peak").set(3.0)
        b = MetricsRegistry()
        b.gauge("peak").set(7.0)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["gauges"]["peak"] == 7.0

    def test_histogram_multiset_merge_is_exact(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            a.histogram("h").observe(value)
        for value in (10.0, 20.0):
            b.histogram("h").observe(value)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        stats = histogram_stats(merged["histograms"]["h"])
        assert stats["count"] == 5
        assert stats["total"] == pytest.approx(36.0)
        assert stats["max"] == 20.0

    def test_empty_local_histogram_stays_invisible(self):
        registry = MetricsRegistry()
        registry.histogram("queried_never_observed")
        assert registry.snapshot()["histograms"] == {}


class TestExposition:
    def test_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("frames_offered_total").inc(4)
        registry.gauge("inflight_peak").set(2.0)
        registry.histogram("phase_seconds", phase="lower").observe(0.5)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_frames_offered_total counter" in text
        assert "repro_frames_offered_total 4" in text
        assert "repro_inflight_peak 2" in text
        assert 'repro_phase_seconds_count{phase="lower"} 1' in text
        assert text.endswith("\n")

    def test_rejects_malformed_snapshot(self):
        with pytest.raises(ConfigError):
            validate_snapshot({"counters": []})
        with pytest.raises(ConfigError):
            validate_snapshot("nope")
