"""The cluster ``metrics`` verb: merged counters match local totals."""

import pytest

from repro.api import Session, TimingCache
from repro.cluster import ClusterClient, ClusterServer
from repro.obs import MetricsRegistry, merge_snapshots, render_prometheus
from repro.sweep import SweepSpec, expand, run_sweep

GRID = expand(SweepSpec(platforms=("sma:2",), gemms=(128, 256)))
POINTS = tuple(GRID)


@pytest.fixture()
def server():
    with ClusterServer(jobs=1) as srv:
        srv.start()
        yield srv


def local_snapshot():
    session = Session(cache=TimingCache(), metrics=MetricsRegistry())
    run_sweep(GRID, session=session)
    return session.metrics.snapshot()


class TestMetricsVerb:
    def test_counters_match_local_run(self, server):
        with ClusterClient(server.address) as client:
            client.submit_points(POINTS)
            response = client.metrics()
        assert response["type"] == "metrics"
        assert response["address"] == server.address
        remote = response["metrics"]
        assert remote["counters"]  # the equality below must not be vacuous
        assert remote["counters"] == local_snapshot()["counters"]
        # The RPC self-profiling hook only exists server-side.
        assert any(
            key.startswith("phase_seconds") and 'phase="rpc_submit"' in key
            for key in remote["histograms"]
        )

    def test_two_servers_merge_to_fleet_totals(self, server):
        with ClusterServer(jobs=1) as second:
            second.start()
            with ClusterClient(server.address) as client:
                client.submit_points(POINTS)
            with ClusterClient(second.address) as client:
                client.submit_points(POINTS)
            snapshots = []
            for address in (server.address, second.address):
                with ClusterClient(address) as client:
                    snapshots.append(client.metrics()["metrics"])
        merged = merge_snapshots(*snapshots)
        local = local_snapshot()["counters"]
        doubled = {key: 2 * value for key, value in local.items()}
        assert merged["counters"] == doubled

    def test_status_surfaces_frame_summary(self, server):
        with ClusterClient(server.address) as client:
            status = client.status()
        frames = status["frames"]
        assert set(frames) == {
            "offered", "completed", "dropped", "missed", "preempted"
        }
        assert all(value == 0 for value in frames.values())

    def test_snapshot_renders_as_prometheus(self, server):
        with ClusterClient(server.address) as client:
            client.submit_points(POINTS)
            snapshot = client.metrics()["metrics"]
        text = render_prometheus(snapshot)
        assert "# TYPE repro_reports_total counter" in text
