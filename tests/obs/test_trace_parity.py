"""The tentpole gates: engine trace parity and trace transparency.

Parity: the scalar and vectorized timeline cores must emit *identical*
raw event sequences (``Tracer.records``, compared element-for-element)
for the same input — the observability analogue of their bit-identical
timelines. Transparency: attaching a tracer must not perturb the
simulation; a traced run's timeline equals the untraced run's exactly.
"""

import pytest

from repro.schedule.policies import make_policy
from repro.schedule.resources import ResourceClaim, ResourceKind
from repro.schedule.timeline import OpTask, TimelineScheduler
from repro.obs import EVENT_KINDS, Tracer
from repro.serving.qos import QosSpec, make_qos

SIMD = (ResourceClaim(ResourceKind.SIMD),)
ARRAY = (ResourceClaim(ResourceKind.ARRAY),)
ENGINES = ("scalar", "vectorized")


def run(tasks, policy="fifo", qos=None, engine="scalar", tracer=None):
    scheduler = TimelineScheduler(
        make_policy(policy), qos=make_qos(qos), engine=engine, tracer=tracer
    )
    return scheduler.run(list(tasks))


def traced_records(tasks, policy="fifo", qos=None, engine="scalar"):
    tracer = Tracer()
    run(tasks, policy=policy, qos=qos, engine=engine, tracer=tracer)
    return tracer.records


def mode_switch_tasks():
    """Two streams alternating MAC modes: exercises begin/end/switch."""
    tasks = []
    uid = 0
    for frame in range(4):
        release = frame * 0.002
        for stream, mode, claims in (
            ("det", "systolic", ARRAY),
            ("tra", "simd", SIMD),
        ):
            head = uid
            for step, op in enumerate(("conv", "act", "fc")):
                tasks.append(
                    OpTask(
                        uid=uid,
                        name=f"{stream}/{op}",
                        seconds=0.001,
                        claims=claims,
                        mode=mode,
                        stream=stream,
                        frame=frame,
                        deps=(uid - 1,) if step else (),
                        release_s=release,
                        cross_switch_s=0.0005,
                        frame_head=step == 0,
                    )
                )
                uid += 1
            del head
    return tasks


def inversion_tasks():
    """Low-priority frame in flight when a high-priority frame lands —
    ``exclusive_preempt`` yields at the kernel boundary (deschedule)."""
    low = [
        OpTask(uid=0, name="low/op0", seconds=1.0, claims=SIMD,
               stream="low", weight=1.0, frame_head=True),
        OpTask(uid=1, name="low/op1", seconds=1.0, claims=SIMD,
               stream="low", weight=1.0, deps=(0,)),
        OpTask(uid=2, name="low/op2", seconds=1.0, claims=SIMD,
               stream="low", weight=1.0, deps=(1,)),
    ]
    high = [
        OpTask(uid=3, name="high/op0", seconds=0.5, claims=SIMD,
               stream="high", release_s=0.25, weight=2.0, frame_head=True),
        OpTask(uid=4, name="high/op1", seconds=0.5, claims=SIMD,
               stream="high", release_s=0.25, weight=2.0, deps=(3,)),
    ]
    return low + high


def droppy_tasks():
    """Two hopeless deadlines: a frame queued behind its predecessor past
    its expiry (drop), and an in-flight chain whose expiry passes with a
    kernel still unstarted (abort under ``abort_late``)."""
    return [
        # Stream b frame 0 blows frame 1's window: frame 1 arrives at
        # 0.1 with expiry 0.4 but queues until 1.0 — shed at 0.4.
        OpTask(uid=0, name="b/f0", seconds=1.0, claims=SIMD, stream="b",
               frame=0, frame_head=True),
        OpTask(uid=1, name="b/f1", seconds=0.5, claims=SIMD, stream="b",
               frame=1, deps=(0,), release_s=0.1, deadline_s=0.3,
               frame_head=True),
        # Stream c starts at once; expiry 0.4 lands mid-flight with op2
        # unstarted — abort_late cancels exactly that kernel.
        OpTask(uid=2, name="c/op0", seconds=0.3, claims=SIMD, stream="c",
               frame=0, frame_head=True, deadline_s=0.4),
        OpTask(uid=3, name="c/op1", seconds=0.3, claims=SIMD, stream="c",
               frame=0, deps=(2,), deadline_s=0.4),
        OpTask(uid=4, name="c/op2", seconds=0.3, claims=SIMD, stream="c",
               frame=0, deps=(3,), deadline_s=0.4),
    ]


def solo_chain_tasks():
    """One dependency chain, one stream: the vectorized fast path."""
    return [
        OpTask(uid=uid, name=f"solo/op{uid}", seconds=0.001, claims=SIMD,
               stream="solo", deps=(uid - 1,) if uid else (),
               mode="systolic" if uid % 2 else "simd",
               cross_switch_s=0.0002, frame_head=uid == 0)
        for uid in range(16)
    ]


SCENARIOS = (
    ("mode_switch", mode_switch_tasks, "fifo", None),
    ("inversion", inversion_tasks, "exclusive_preempt", None),
    ("qos_drop", droppy_tasks, "fifo", QosSpec(kind="drop_late")),
    ("qos_abort", droppy_tasks, "fifo", QosSpec(kind="abort_late")),
    ("solo_chain", solo_chain_tasks, "fifo", None),
)


class TestEngineParity:
    @pytest.mark.parametrize(
        "name, build, policy, qos", SCENARIOS, ids=[s[0] for s in SCENARIOS]
    )
    def test_identical_event_sequences(self, name, build, policy, qos):
        scalar = traced_records(build(), policy=policy, qos=qos,
                                engine="scalar")
        vector = traced_records(build(), policy=policy, qos=qos,
                                engine="vectorized")
        assert scalar == vector
        assert scalar, f"{name} recorded no events"

    def test_preemption_scenario_emits_deschedule(self):
        records = traced_records(
            inversion_tasks(), policy="exclusive_preempt", engine="scalar"
        )
        kinds = [record[0] for record in records]
        assert "deschedule" in kinds

    def test_qos_scenarios_emit_drop_and_abort(self):
        dropped = traced_records(
            droppy_tasks(), qos=QosSpec(kind="drop_late"), engine="scalar"
        )
        aborted = traced_records(
            droppy_tasks(), qos=QosSpec(kind="abort_late"), engine="scalar"
        )
        assert "drop" in [record[0] for record in dropped]
        assert "abort" in [record[0] for record in aborted]

    def test_every_kind_is_legal(self):
        for _name, build, policy, qos in SCENARIOS:
            for record in traced_records(build(), policy=policy, qos=qos):
                assert record[0] in EVENT_KINDS


class TestTransparency:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "name, build, policy, qos", SCENARIOS, ids=[s[0] for s in SCENARIOS]
    )
    def test_timeline_identical_with_and_without_tracer(
        self, engine, name, build, policy, qos
    ):
        bare = run(build(), policy=policy, qos=qos, engine=engine)
        traced = run(build(), policy=policy, qos=qos, engine=engine,
                     tracer=Tracer())
        assert bare == traced

    def test_tracer_observes_every_completion(self):
        tasks = mode_switch_tasks()
        tracer = Tracer()
        timeline = run(tasks, tracer=tracer)
        ends = [record for record in tracer.records if record[0] == "end"]
        assert len(ends) == len(timeline.segments) == len(tasks)
