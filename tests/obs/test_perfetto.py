"""Chrome/Perfetto export schema, track structure, and the fig9 gate."""

import pytest

from repro.errors import ConfigError
from repro.obs import (
    RESOURCE_PID,
    STREAM_PID,
    Tracer,
    export_chrome_trace,
    save_chrome_trace,
    validate_chrome_trace,
)
from repro.schedule.policies import make_policy
from repro.schedule.timeline import TimelineScheduler

from tests.obs.test_trace_parity import (
    inversion_tasks,
    mode_switch_tasks,
)


def traced(tasks, policy="fifo"):
    tracer = Tracer()
    TimelineScheduler(make_policy(policy), tracer=tracer).run(list(tasks))
    return tracer


class TestExport:
    def test_schema_and_phase_counts(self):
        payload = export_chrome_trace(traced(mode_switch_tasks()))
        counts = validate_chrome_trace(payload)
        # 24 kernels -> 24 complete slices; switches surface as instants.
        assert counts["X"] == 24
        assert counts.get("i", 0) > 0
        assert counts["C"] > 0

    def test_stream_and_resource_tracks(self):
        payload = export_chrome_trace(traced(mode_switch_tasks()))
        events = payload["traceEvents"]
        threads = {
            event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert threads == {"stream det", "stream tra"}
        counters = {
            event["name"] for event in events if event["ph"] == "C"
        }
        assert counters == {"resource array", "resource simd"}
        assert all(
            event["pid"] == RESOURCE_PID
            for event in events
            if event["ph"] == "C"
        )

    def test_queueing_renders_as_async_spans(self):
        payload = export_chrome_trace(traced(mode_switch_tasks()))
        begins = [
            event for event in payload["traceEvents"] if event["ph"] == "b"
        ]
        ends = [
            event for event in payload["traceEvents"] if event["ph"] == "e"
        ]
        assert begins and len(begins) == len(ends)
        assert all(event["cat"] == "queue" for event in begins)

    def test_preemption_surfaces_as_deschedule_instant(self):
        """The fig9 acceptance shape: an exclusive_preempt run must show
        the low-priority stream's yield on its own track."""
        payload = export_chrome_trace(
            traced(inversion_tasks(), policy="exclusive_preempt"),
            name="fig9_preemption",
        )
        validate_chrome_trace(payload)
        instants = [
            event
            for event in payload["traceEvents"]
            if event["ph"] == "i" and event["cat"] == "deschedule"
        ]
        assert len(instants) == 1
        assert instants[0]["args"]["reason"] == "priority"
        assert instants[0]["pid"] == STREAM_PID

    def test_unbalanced_end_is_rejected(self):
        tracer = Tracer()
        tracer.records.append(
            ("end", 1.0, 5, "ghost", "s", 0, "simd", None, (), None, None)
        )
        with pytest.raises(ConfigError, match="never began"):
            export_chrome_trace(tracer)

    def test_save_writes_valid_json(self, tmp_path):
        import json

        path = save_chrome_trace(
            traced(mode_switch_tasks()), tmp_path / "trace.json", name="t"
        )
        validate_chrome_trace(json.loads(path.read_text()))


class TestValidator:
    def test_rejects_unknown_phase(self):
        with pytest.raises(ConfigError, match="phase"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "Z", "pid": 1, "name": "x"}]}
            )

    def test_rejects_negative_ts(self):
        with pytest.raises(ConfigError, match="ts"):
            validate_chrome_trace(
                {"traceEvents": [
                    {"ph": "i", "s": "t", "pid": 1, "name": "x", "ts": -1}
                ]}
            )

    def test_rejects_missing_events(self):
        with pytest.raises(ConfigError, match="traceEvents"):
            validate_chrome_trace({})
