"""Trace JSON round-trips, including the emitted-only-when-set fields."""

import pytest

from repro.errors import ConfigError
from repro.obs import TraceEvent, Tracer

FULL = TraceEvent(
    kind="begin", time_s=0.25, uid=7, name="det/conv", stream="det",
    frame=3, mode="systolic", release_s=0.1,
    resources=("array", "simd"), reason=None, cost_s=None,
)
BARE = TraceEvent(
    kind="end", time_s=1.0, uid=7, name="det/conv", stream="det", frame=3
)


class TestEventSerialization:
    def test_defaults_are_omitted(self):
        payload = BARE.to_dict()
        assert set(payload) == {
            "kind", "time_s", "uid", "name", "stream", "frame"
        }

    def test_set_fields_are_emitted(self):
        payload = FULL.to_dict()
        assert payload["mode"] == "systolic"
        assert payload["release_s"] == 0.1
        assert payload["resources"] == ["array", "simd"]
        assert "reason" not in payload and "cost_s" not in payload

    @pytest.mark.parametrize(
        "event",
        (
            FULL,
            BARE,
            TraceEvent(kind="switch", time_s=0.5, uid=1, name="x",
                       stream="s", frame=0, mode="systolic", cost_s=5e-4),
            TraceEvent(kind="drop", time_s=0.5, uid=1, name="x",
                       stream="s", frame=0, reason="deadline"),
            TraceEvent(kind="deschedule", time_s=2.0, uid=9, name="y",
                       stream="low", frame=1, reason="priority"),
        ),
    )
    def test_event_roundtrip(self, event):
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ConfigError, match="kind"):
            TraceEvent(kind="teleport", time_s=0.0, uid=0, name="x",
                       stream="s", frame=0)


class TestTracerRoundtrip:
    def _tracer(self):
        tracer = Tracer()
        for event in (FULL, BARE):
            tracer.records.append(
                (event.kind, event.time_s, event.uid, event.name,
                 event.stream, event.frame, event.mode, event.release_s,
                 event.resources, event.reason, event.cost_s)
            )
        return tracer

    def test_records_survive_json(self):
        tracer = self._tracer()
        back = Tracer.from_json(tracer.to_json())
        assert back.records == tracer.records
        assert back.events == tracer.events

    def test_save_load(self, tmp_path):
        tracer = self._tracer()
        path = tmp_path / "trace.json"
        tracer.save(path)
        assert Tracer.load(path).records == tracer.records

    def test_rejects_wrong_kind(self):
        with pytest.raises(ConfigError, match="kind"):
            Tracer.from_dict({"kind": "metrics", "events": []})

    def test_rejects_bad_json(self):
        with pytest.raises(ConfigError, match="invalid"):
            Tracer.from_json("{nope")
