"""Program-builder tests."""

from repro.isa.instructions import MemSpace, Opcode, coalesced_access
from repro.isa.program import ProgramBuilder


class TestProgramBuilder:
    def test_fluent_chain(self):
        program = (
            ProgramBuilder("demo")
            .mov(1, 0)
            .ffma(2, 1, 1, 2)
            .bar()
            .exit()
            .build()
        )
        assert len(program) == 4
        assert program[0].opcode is Opcode.MOV
        assert program[-1].opcode is Opcode.EXIT

    def test_fresh_registers_unique(self):
        builder = ProgramBuilder("demo")
        regs = {builder.fresh() for _ in range(100)}
        assert len(regs) == 100
        assert all(reg > 1000 for reg in regs)

    def test_lsma_payload(self):
        program = (
            ProgramBuilder("demo")
            .lsma(1, 2, 3, 4, k_extent=128, unit_id=2)
            .build()
        )
        assert program[0].payload == (128, 2)
        assert len(program[0].srcs) == 4  # the paper's four operands

    def test_memory_helpers(self):
        access = coalesced_access(MemSpace.GLOBAL, 0)
        store = coalesced_access(MemSpace.SHARED, 0, is_store=True)
        program = (
            ProgramBuilder("demo")
            .ldg(5, access, 1)
            .sts(store, 5, 1)
            .build()
        )
        assert program[0].mem.space is MemSpace.GLOBAL
        assert program[1].mem.is_store

    def test_count(self):
        builder = ProgramBuilder("demo")
        for _ in range(7):
            builder.ffma(1, 1, 1, 1)
        builder.bar()
        program = builder.build()
        assert program.count(Opcode.FFMA) == 7
        assert program.count(Opcode.BAR) == 1

    def test_cgsync_group(self):
        program = ProgramBuilder("demo").cgsync(3).build()
        assert program[0].group == 3
