"""Instruction and memory-descriptor tests."""

import pytest

from repro.isa.instructions import (
    ExecUnit,
    Instruction,
    MemAccess,
    MemSpace,
    Opcode,
    broadcast_access,
    coalesced_access,
    strided_access,
)


class TestMemAccess:
    def test_coalesced_addresses(self):
        access = coalesced_access(MemSpace.SHARED, 0)
        assert access.lane_addresses == tuple(4 * lane for lane in range(32))
        assert access.bytes_moved == 128

    def test_strided(self):
        access = strided_access(MemSpace.SHARED, 0, stride_bytes=32, lanes=8)
        assert access.lane_addresses == tuple(32 * lane for lane in range(8))
        assert access.active_lanes == 8

    def test_broadcast_single_word(self):
        access = broadcast_access(MemSpace.SHARED, 64)
        assert set(access.lane_addresses) == {64}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MemAccess(MemSpace.SHARED, ())

    def test_bad_width(self):
        with pytest.raises(ValueError):
            MemAccess(MemSpace.SHARED, (0,), width_bytes=3)


class TestInstruction:
    def test_ffma_unit_and_latency(self):
        inst = Instruction(Opcode.FFMA, (1,), (2, 3, 1))
        assert inst.unit is ExecUnit.FMA
        assert inst.latency == 4
        assert not inst.is_barrier

    def test_memory_ops_require_descriptor(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LDS, (1,), (2,))

    def test_non_memory_ops_reject_descriptor(self):
        with pytest.raises(ValueError):
            Instruction(
                Opcode.FFMA, (1,), (2, 3, 1),
                mem=coalesced_access(MemSpace.SHARED, 0),
            )

    def test_cgsync_requires_group(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.CGSYNC)

    def test_barriers_flagged(self):
        assert Instruction(Opcode.BAR).is_barrier
        assert Instruction(Opcode.CGSYNC, group=1).is_barrier
        assert Instruction(Opcode.SMAWAIT).is_barrier

    def test_lsma_unit(self):
        inst = Instruction(
            Opcode.LSMA, (), (1, 2, 3, 4), payload=(128, 0)
        )
        assert inst.unit is ExecUnit.SMA
        assert inst.payload == (128, 0)

    def test_operand_count(self):
        inst = Instruction(Opcode.FFMA, (1,), (2, 3, 1))
        assert inst.register_operand_count == 3
