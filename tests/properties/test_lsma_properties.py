"""Property-based tests: LSMA equals dense GEMM-accumulate (Eq. 1)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sma.lsma import execute_lsma

_ELEMENTS = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


@st.composite
def lsma_operands(draw):
    stream = draw(st.integers(min_value=1, max_value=40))
    n = draw(st.sampled_from([8, 16]))
    a = draw(arrays(np.float64, (stream, 8), elements=_ELEMENTS))
    b = draw(arrays(np.float64, (8, n), elements=_ELEMENTS))
    c = draw(arrays(np.float64, (stream, n), elements=_ELEMENTS))
    return a, b, c


class TestLsmaEquationOne:
    @given(lsma_operands())
    @settings(max_examples=40, deadline=None)
    def test_accumulate_semantics(self, operands):
        a, b, c = operands
        np.testing.assert_allclose(
            execute_lsma(a, b, c), a @ b + c, rtol=1e-9, atol=1e-9
        )

    @given(lsma_operands())
    @settings(max_examples=30, deadline=None)
    def test_zero_c_is_plain_gemm(self, operands):
        a, b, _c = operands
        np.testing.assert_allclose(
            execute_lsma(a, b), a @ b, rtol=1e-9, atol=1e-9
        )

    @given(lsma_operands())
    @settings(max_examples=25, deadline=None)
    def test_linearity_in_accumulator(self, operands):
        """Issuing LSMA twice accumulates both products."""
        a, b, c = operands
        once = execute_lsma(a, b, c)
        twice = execute_lsma(a, b, once)
        np.testing.assert_allclose(
            twice, 2 * (a @ b) + c, rtol=1e-8, atol=1e-8
        )
