"""Property-based tests: systolic arrays compute exact GEMMs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.systolic.array import SystolicArray
from repro.systolic.dataflow import Dataflow

_ELEMENTS = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def _operands(m, k, n):
    return st.tuples(
        arrays(np.float64, (m, k), elements=_ELEMENTS),
        arrays(np.float64, (k, n), elements=_ELEMENTS),
    )


@st.composite
def gemm_operands(draw, max_m=48, k=8, n=8):
    m = draw(st.integers(min_value=1, max_value=max_m))
    return draw(_operands(m, k, n))


class TestFunctionalEquivalence:
    @given(gemm_operands())
    @settings(max_examples=40, deadline=None)
    def test_semi_broadcast_equals_numpy(self, operands):
        a, b = operands
        array = SystolicArray(8, 8, Dataflow.SEMI_BROADCAST_WS)
        np.testing.assert_allclose(
            array.run_gemm(a, b).c, a @ b, rtol=1e-9, atol=1e-9
        )

    @given(gemm_operands())
    @settings(max_examples=40, deadline=None)
    def test_weight_stationary_equals_numpy(self, operands):
        a, b = operands
        array = SystolicArray(8, 8, Dataflow.WEIGHT_STATIONARY)
        np.testing.assert_allclose(
            array.run_gemm(a, b).c, a @ b, rtol=1e-9, atol=1e-9
        )

    @given(gemm_operands())
    @settings(max_examples=25, deadline=None)
    def test_dataflows_agree(self, operands):
        """Fig 4: both dataflows are the same computation."""
        a, b = operands
        sb = SystolicArray(8, 8, Dataflow.SEMI_BROADCAST_WS).run_gemm(a, b)
        ws = SystolicArray(8, 8, Dataflow.WEIGHT_STATIONARY).run_gemm(a, b)
        np.testing.assert_allclose(sb.c, ws.c, rtol=1e-9, atol=1e-9)


class TestTimingInvariants:
    @given(st.integers(min_value=1, max_value=512))
    @settings(max_examples=30, deadline=None)
    def test_cycle_formula(self, m):
        a = np.ones((m, 8))
        b = np.ones((8, 8))
        result = SystolicArray(8, 8, Dataflow.SEMI_BROADCAST_WS).run_gemm(a, b)
        assert result.streaming_cycles == m + 7
        assert result.macs == m * 64

    @given(st.integers(min_value=1, max_value=256))
    @settings(max_examples=30, deadline=None)
    def test_ws_never_faster_than_semi_broadcast(self, m):
        a = np.ones((m, 8))
        b = np.ones((8, 8))
        sb = SystolicArray(8, 8, Dataflow.SEMI_BROADCAST_WS).run_gemm(a, b)
        ws = SystolicArray(8, 8, Dataflow.WEIGHT_STATIONARY).run_gemm(a, b)
        assert ws.cycles >= sb.cycles

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_utilization_bounded(self, m):
        a = np.ones((m, 8))
        b = np.ones((8, 8))
        result = SystolicArray(8, 8, Dataflow.SEMI_BROADCAST_WS).run_gemm(a, b)
        assert result.macs <= result.cycles * 64
