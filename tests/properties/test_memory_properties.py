"""Property-based tests on the memory-system models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.stats import CounterBag
from repro.gpu.caches import CacheModel
from repro.gpu.coalescer import coalesce
from repro.gpu.shared_memory import SharedMemoryModel
from repro.isa.instructions import MemAccess, MemSpace

_ADDRESSES = st.lists(
    st.integers(min_value=0, max_value=1 << 20).map(lambda v: v * 4),
    min_size=1,
    max_size=32,
)


class TestSharedMemoryProperties:
    @given(_ADDRESSES)
    @settings(max_examples=60, deadline=None)
    def test_conflict_degree_bounds(self, addresses):
        smem = SharedMemoryModel()
        result = smem.cost_addresses(tuple(addresses))
        assert 1 <= result.cycles <= 32
        assert result.words_touched <= len(addresses)

    @given(_ADDRESSES)
    @settings(max_examples=60, deadline=None)
    def test_permutation_invariance(self, addresses):
        smem = SharedMemoryModel()
        forward = smem.cost_addresses(tuple(addresses))
        backward = smem.cost_addresses(tuple(reversed(addresses)))
        assert forward.cycles == backward.cycles

    @given(_ADDRESSES)
    @settings(max_examples=40, deadline=None)
    def test_more_banks_never_hurt(self, addresses):
        narrow = SharedMemoryModel(num_banks=8)
        wide = SharedMemoryModel(num_banks=32)
        assert (
            wide.cost_addresses(tuple(addresses)).cycles
            <= narrow.cost_addresses(tuple(addresses)).cycles
        )


class TestCoalescerProperties:
    @given(_ADDRESSES)
    @settings(max_examples=60, deadline=None)
    def test_sector_bounds(self, addresses):
        access = MemAccess(MemSpace.GLOBAL, tuple(addresses))
        result = coalesce(access)
        assert 1 <= result.sectors <= len(addresses)
        assert result.lines <= result.sectors
        assert 0 < result.efficiency <= 1.0


class TestCacheProperties:
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_stats_conserved(self, lines):
        cache = CacheModel(capacity_bytes=2048, line_bytes=128, associativity=2)
        for line in lines:
            cache.access(line * 128)
        stats = cache.stats
        assert stats.hits + stats.misses == len(lines)
        assert stats.evictions <= stats.misses
        assert cache.resident_lines <= 16

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_small_working_set_all_hits_after_warmup(self, lines):
        cache = CacheModel(capacity_bytes=2048, line_bytes=128, associativity=16)
        for line in set(lines):
            cache.access(line * 128)
        before = cache.stats.hits
        for line in lines:
            assert cache.access(line * 128)
        assert cache.stats.hits == before + len(lines)


class TestCounterBagProperties:
    @given(
        st.dictionaries(st.text(min_size=1, max_size=6),
                        st.floats(0, 1e9), max_size=8),
        st.dictionaries(st.text(min_size=1, max_size=6),
                        st.floats(0, 1e9), max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_commutative(self, left, right):
        a = CounterBag(left).merged(CounterBag(right))
        b = CounterBag(right).merged(CounterBag(left))
        for key in set(left) | set(right):
            assert a[key] == b[key]

    @given(
        st.dictionaries(st.text(min_size=1, max_size=6),
                        st.floats(0, 1e6), max_size=8),
        st.floats(0, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_scaling_distributes(self, counts, factor):
        bag = CounterBag(counts)
        scaled = bag.scaled(factor)
        for key in counts:
            assert scaled[key] == bag[key] * factor
