"""Property-based tests: the Fig 6 tiling covers every GEMM exactly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gemm.problem import GemmProblem
from repro.gemm.tiling import plan_gemm

_DIMS = st.integers(min_value=1, max_value=4096)


class TestTilingCoverage:
    @given(_DIMS, _DIMS, _DIMS)
    @settings(max_examples=60, deadline=None)
    def test_tiles_partition_output(self, m, n, k):
        plan = plan_gemm(GemmProblem(m, n, k))
        seen = set()
        for tile in plan.thread_blocks():
            for row in range(tile.row, tile.row + tile.rows):
                assert row < m
            for col in range(tile.col, tile.col + tile.cols):
                assert col < n
            key = (tile.row, tile.col)
            assert key not in seen
            seen.add(key)
        covered = sum(
            t.rows * t.cols for t in plan.thread_blocks()
        )
        assert covered == m * n

    @given(_DIMS, _DIMS, _DIMS)
    @settings(max_examples=60, deadline=None)
    def test_k_iterations_cover_reduction(self, m, n, k):
        plan = plan_gemm(GemmProblem(m, n, k))
        assert plan.k_iterations * plan.k_slice >= k
        assert (plan.k_iterations - 1) * plan.k_slice < k

    @given(_DIMS, _DIMS, _DIMS)
    @settings(max_examples=60, deadline=None)
    def test_utilization_in_unit_interval(self, m, n, k):
        plan = plan_gemm(GemmProblem(m, n, k))
        assert 0.0 < plan.tile_utilization <= 1.0

    @given(_DIMS, _DIMS)
    @settings(max_examples=40, deadline=None)
    def test_aligned_problems_fully_utilized(self, tiles_m, tiles_n):
        m = min(tiles_m, 32) * 128
        n = min(tiles_n, 32) * 128
        plan = plan_gemm(GemmProblem(m, n, 64))
        assert plan.tile_utilization == 1.0

    @given(_DIMS)
    @settings(max_examples=40, deadline=None)
    def test_subtile_rounds_cover_tile(self, n):
        plan = plan_gemm(GemmProblem(128, n, 8))
        for width in (8, 16, 24):
            subtiles = plan.subtiles_per_iteration(width)
            assert subtiles * width >= plan.tile_n
            assert (subtiles - 1) * width < plan.tile_n
