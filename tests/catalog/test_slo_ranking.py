"""SLO-per-mm² ranking: the fleet question the catalog exists for."""

import pytest

from repro.api import Session, TimingCache
from repro.apps import open_loop_driving_scenario
from repro.serving.slo import explore_slo

RATES = (5.0, 10.0)


@pytest.fixture(scope="module")
def exploration():
    scenario = open_loop_driving_scenario(frames=6, seed=3)
    return explore_slo(
        scenario,
        platforms=("v100", "a100", "h100", "gpu-tc"),
        rates=RATES,
        slo_s=0.200,
        session=Session(cache=TimingCache()),
    )


class TestDeviceMetadataInPoints:
    def test_catalog_points_carry_device_metadata(self, exploration):
        point = exploration.platform_points("v100")[0]
        assert point.device == "v100"
        assert point.area_mm2 == 815.0
        assert point.tdp_w == 300.0

    def test_hand_coded_points_have_no_metadata(self, exploration):
        point = exploration.platform_points("gpu-tc")[0]
        assert point.device is None
        assert point.area_mm2 is None

    def test_to_dict_emits_metadata_only_for_catalog_points(self, exploration):
        catalog_point = exploration.platform_points("a100")[0].to_dict()
        plain_point = exploration.platform_points("gpu-tc")[0].to_dict()
        assert catalog_point["device"] == "a100"
        assert "device" not in plain_point


class TestRanking:
    def test_rank_covers_exactly_the_sustaining_catalog_platforms(
        self, exploration
    ):
        ranked = dict(exploration.rank_by_slo_per_mm2())
        expected = {
            platform
            for platform in ("v100", "a100", "h100")
            if exploration.max_sustainable_rate(platform) is not None
        }
        assert set(ranked) == expected
        assert "gpu-tc" not in ranked  # no silicon metadata, no rank

    def test_rank_is_rate_over_area_sorted_descending(self, exploration):
        ranked = exploration.rank_by_slo_per_mm2()
        efficiencies = [efficiency for _, efficiency in ranked]
        assert efficiencies == sorted(efficiencies, reverse=True)
        for platform, efficiency in ranked:
            assert efficiency == exploration.rate_per_mm2(platform)

    def test_report_dict_includes_ranking(self, exploration):
        payload = exploration.to_dict()
        if exploration.rank_by_slo_per_mm2():
            assert payload["slo_per_mm2"] == dict(
                exploration.rank_by_slo_per_mm2()
            )
        else:
            assert "slo_per_mm2" not in payload
