"""Golden pinning: default catalog devices reproduce hand-coded platforms.

The catalog must be a pure re-parameterization — instantiating the
paper's baseline parts from spec *data* has to produce bit-identical
timing to the hand-coded platform registrations, or every stored result
and golden figure in the repo would silently shift.
"""

import pytest

from repro.api import Session, TimingCache
from repro.catalog.specs import TPU_V2, V100
from repro.config import GpuConfig, TpuConfig

#: (hand-coded spec, catalog spec) pairs that must time identically.
PINNED = (
    ("gpu-tc", "v100"),
    ("gpu-simd", "simd@v100"),
    ("sma:2", "sma@v100:2"),
    ("sma:3", "sma@v100:3"),
    ("tpu", "tpu@v2"),
)


def _fresh_session() -> Session:
    return Session(cache=TimingCache())


class TestConfigPinning:
    def test_v100_is_exactly_the_default_gpu_config(self):
        assert V100.gpu == GpuConfig()

    def test_tpu_v2_is_exactly_the_default_tpu_config(self):
        assert TPU_V2.tpu == TpuConfig()


class TestTimingGoldens:
    @pytest.mark.parametrize("hand,catalog", PINNED, ids=lambda s: s)
    def test_model_run_bit_identical(self, hand, catalog):
        baseline = _fresh_session().run_model("alexnet", hand)
        via_catalog = _fresh_session().run_model("alexnet", catalog)
        # Exact float equality, not approx: same config, same arithmetic.
        assert via_catalog.total_seconds == baseline.total_seconds
        assert [op.seconds for op in via_catalog.ops] == [
            op.seconds for op in baseline.ops
        ]

    def test_gemm_bit_identical(self):
        baseline = _fresh_session().time_gemm("sma:3", 256)
        via_catalog = _fresh_session().time_gemm("sma@v100:3", 256)
        assert via_catalog.seconds == baseline.seconds
        assert via_catalog.cycles == baseline.cycles
