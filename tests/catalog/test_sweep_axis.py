"""The catalog as a sweep axis: device ranges, request fingerprints."""

import pytest

from repro.api import SimRequest
from repro.catalog.loader import catalog_fingerprint, expand_device_range
from repro.errors import ConfigError
from repro.gemm.problem import GemmProblem
from repro.sweep.grid import SweepSpec, expand, expand_platform_spec


class TestDeviceRange:
    def test_gpu_generation_walk(self):
        assert expand_device_range("v100..h100") == ("v100", "a100", "h100")

    def test_full_gpu_family(self):
        assert expand_device_range("v100..orin") == (
            "v100", "a100", "h100", "orin",
        )

    def test_flavor_prefixes(self):
        assert expand_device_range("sma@v100..h100") == (
            "sma@v100", "sma@a100", "sma@h100",
        )
        assert expand_device_range("simd@v100..a100") == (
            "simd@v100", "simd@a100",
        )
        # tc@ resolves through the device's primary name.
        assert expand_device_range("tc@v100..a100") == ("v100", "a100")

    def test_tpu_generation_walk(self):
        assert expand_device_range("tpu@v1..v3") == (
            "tpu-v1", "tpu-v2", "tpu-v3",
        )

    def test_aliases_as_endpoints(self):
        assert expand_device_range("volta..hopper") == (
            "v100", "a100", "h100",
        )

    def test_degenerate_range(self):
        assert expand_device_range("a100..a100") == ("a100",)

    def test_reversed_range_rejected(self):
        with pytest.raises(ConfigError, match="empty"):
            expand_device_range("h100..v100")

    def test_mixed_family_rejected(self):
        with pytest.raises(ConfigError, match="families"):
            expand_device_range("v100..tpu-v3")

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(ConfigError, match="unknown device"):
            expand_device_range("v100..b200")

    def test_unknown_prefix_rejected(self):
        with pytest.raises(ConfigError, match="prefix"):
            expand_device_range("fpga@v100..h100")

    def test_flavor_family_mismatch_rejected(self):
        with pytest.raises(ConfigError, match="GPU devices"):
            expand_device_range("sma@v1..v3")
        with pytest.raises(ConfigError, match="TPU devices"):
            expand_device_range("tpu@v100..h100")


class TestPlatformSpecComposition:
    def test_bare_device_range_through_spec(self):
        assert expand_platform_spec("v100..h100") == (
            "v100", "a100", "h100",
        )

    def test_device_range_composes_with_arg_range(self):
        assert expand_platform_spec("sma@v100..a100:2..3") == (
            "sma@v100:2",
            "sma@v100:3",
            "sma@a100:2",
            "sma@a100:3",
        )

    def test_device_range_with_fixed_args(self):
        assert expand_platform_spec("sma@v100..a100:3,fp16") == (
            "sma@v100:3,fp16",
            "sma@a100:3,fp16",
        )

    def test_plain_catalog_spec_passes_through(self):
        assert expand_platform_spec("sma@a100:3") == ("sma@a100:3",)


class TestGridExpansion:
    def test_catalog_axis_grid(self):
        grid = expand(
            SweepSpec(platforms=("v100..h100",), gemms=(128, 256))
        )
        assert len(grid) == 6  # 3 devices x 2 sizes
        platforms = {point.request.platform for point in grid}
        assert platforms == {"v100", "a100", "h100"}

    def test_every_catalog_point_carries_its_fingerprint(self):
        grid = expand(
            SweepSpec(platforms=("v100..h100",), models=("alexnet",))
        )
        for point in grid:
            expected = catalog_fingerprint(point.request.platform)
            assert point.request.catalog == expected is not None

    def test_mixed_catalog_and_hand_coded_axis(self):
        grid = expand(
            SweepSpec(platforms=("gpu-tc", "a100"), gemms=(128,))
        )
        by_platform = {p.request.platform: p.request for p in grid}
        assert by_platform["gpu-tc"].catalog is None
        assert by_platform["a100"].catalog is not None


class TestRequestFingerprints:
    def test_catalog_filled_lazily(self):
        request = SimRequest(platform="a100", model="alexnet")
        assert request.catalog == catalog_fingerprint("a100")

    def test_non_catalog_request_stays_none(self):
        request = SimRequest(platform="gpu-tc", model="alexnet")
        assert request.catalog is None

    def test_to_dict_omits_catalog_when_none(self):
        # Pre-catalog fingerprints must not shift: the key is conditional.
        payload = SimRequest(platform="gpu-tc", model="alexnet").to_dict()
        assert "catalog" not in payload

    def test_dict_round_trip(self):
        request = SimRequest(platform="sma@a100:3", model="alexnet")
        assert "catalog" in request.to_dict()
        restored = SimRequest.from_dict(request.to_dict())
        assert restored == request

    def test_old_dict_without_catalog_still_decodes(self):
        payload = SimRequest(platform="gpu-tc", model="alexnet").to_dict()
        payload.pop("catalog", None)
        restored = SimRequest.from_dict(payload)
        assert restored.platform == "gpu-tc"
        assert restored.catalog is None

    def test_same_device_different_flavor_same_catalog(self):
        tc = SimRequest(platform="a100", gemm=GemmProblem(128, 128, 128))
        sma = SimRequest(
            platform="sma@a100:3", gemm=GemmProblem(128, 128, 128)
        )
        assert tc.catalog == sma.catalog is not None
