"""Golden pins for the default catalog's measured interference factors.

The co-run factors are *measured data*: any drift silently re-times
every scenario run on a catalog platform. The original pairs are pinned
exactly as shipped; the pairs added later (reverse GPU direction,
copy-engine pressure, TPU host feedback) are pinned separately so a
regression names which measurement moved.
"""

import pytest

from repro.catalog.loader import get_device

#: The factors the catalog shipped with originally. Never edit these —
#: a change here means stored results shifted.
ORIGINAL_FACTORS = {
    ("v100", "tc", "simd"): 0.62,
    ("v100", "transfer", "host"): 0.08,
    ("a100", "tc", "simd"): 0.48,
    ("a100", "transfer", "host"): 0.06,
    ("h100", "tc", "simd"): 0.35,
    ("h100", "transfer", "host"): 0.05,
    ("orin", "tc", "simd"): 0.74,
    ("orin", "transfer", "host"): 0.15,
    ("tpu-v1", "transfer", "host"): 0.22,
    ("tpu-v2", "transfer", "host"): 0.12,
    ("tpu-v3", "transfer", "host"): 0.10,
}

#: Measured co-run pairs added after the initial catalog.
ADDED_FACTORS = {
    ("v100", "simd", "tc"): 0.07,
    ("v100", "transfer", "simd"): 0.11,
    ("a100", "simd", "tc"): 0.05,
    ("a100", "transfer", "simd"): 0.09,
    ("h100", "simd", "tc"): 0.04,
    ("h100", "transfer", "simd"): 0.07,
    ("orin", "simd", "tc"): 0.12,
    ("orin", "transfer", "simd"): 0.20,
    ("tpu-v1", "host", "transfer"): 0.09,
    ("tpu-v2", "host", "transfer"): 0.05,
    ("tpu-v3", "host", "transfer"): 0.04,
}


def _ids(item):
    device, source, victim = item
    return f"{device}:{source}->{victim}"


class TestOriginalFactorsPinned:
    @pytest.mark.parametrize(
        "pair", sorted(ORIGINAL_FACTORS), ids=_ids
    )
    def test_factor_unchanged(self, pair):
        device, source, victim = pair
        matrix = get_device(device).interference
        assert matrix.factor(source, victim) == ORIGINAL_FACTORS[pair]


class TestAddedFactorsPinned:
    @pytest.mark.parametrize("pair", sorted(ADDED_FACTORS), ids=_ids)
    def test_factor_value(self, pair):
        device, source, victim = pair
        matrix = get_device(device).interference
        assert matrix.factor(source, victim) == ADDED_FACTORS[pair]


class TestMatrixShape:
    @pytest.mark.parametrize(
        "device", sorted({device for device, _, _ in ORIGINAL_FACTORS})
    )
    def test_no_unexpected_pairs(self, device):
        """Every entry of every device is accounted for by a pin above."""
        expected = {
            (source, victim)
            for d, source, victim in (*ORIGINAL_FACTORS, *ADDED_FACTORS)
            if d == device
        }
        matrix = get_device(device).interference
        assert {
            (source, victim) for source, victim, _ in matrix.entries
        } == expected

    def test_gpu_contention_ordering_holds(self):
        """Newer parts partition better: factors fall v100 -> h100, and
        the edge part (shared LPDDR) is harsher than all of them."""
        for source, victim in (("tc", "simd"), ("transfer", "simd")):
            v100 = get_device("v100").interference.factor(source, victim)
            a100 = get_device("a100").interference.factor(source, victim)
            h100 = get_device("h100").interference.factor(source, victim)
            orin = get_device("orin").interference.factor(source, victim)
            assert orin > v100 > a100 > h100 > 0.0
