"""Device specs: validation, JSON round-trip, fingerprints, catalog loading."""

import dataclasses

import pytest

from repro.catalog import DEFAULT_DEVICES, DeviceSpec, InterferenceMatrix
from repro.catalog.loader import (
    device_names,
    get_device,
    load_catalog,
    register_device,
    unregister_device,
)
from repro.config import GpuConfig, TpuConfig
from repro.errors import ConfigError


def _gpu_spec(name="testgpu", **overrides) -> DeviceSpec:
    kwargs = dict(
        name=name,
        family="gpu",
        description="a test part",
        vendor="acme",
        year=2024,
        area_mm2=100.0,
        tdp_w=50.0,
        gpu=GpuConfig(name=name, num_sms=4),
        interference=InterferenceMatrix(entries=(("tc", "simd", 0.5),)),
        aliases=("testalias",),
    )
    kwargs.update(overrides)
    return DeviceSpec(**kwargs)


class TestValidation:
    def test_name_must_be_lowercase(self):
        with pytest.raises(ConfigError, match="lowercase"):
            _gpu_spec(name="TestGPU")

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigError, match="family"):
            DeviceSpec(name="x", family="fpga")

    def test_gpu_family_needs_gpu_config(self):
        with pytest.raises(ConfigError, match="GpuConfig"):
            DeviceSpec(name="x", family="gpu", tpu=TpuConfig())

    def test_tpu_family_rejects_gpu_config(self):
        with pytest.raises(ConfigError, match="TpuConfig"):
            DeviceSpec(name="x", family="tpu", gpu=GpuConfig())

    def test_negative_area_rejected(self):
        with pytest.raises(ConfigError, match="non-negative"):
            _gpu_spec(area_mm2=-1.0)

    def test_aliases_lowercased(self):
        assert _gpu_spec(aliases=("Volta",)).aliases == ("volta",)


class TestRoundTrip:
    @pytest.mark.parametrize("spec", DEFAULT_DEVICES, ids=lambda s: s.name)
    def test_default_devices_json_round_trip(self, spec):
        assert DeviceSpec.from_json(spec.to_json()) == spec

    def test_round_trip_preserves_configs_exactly(self):
        spec = _gpu_spec()
        restored = DeviceSpec.from_dict(spec.to_dict())
        assert restored.gpu == spec.gpu
        assert restored.interference == spec.interference

    def test_unknown_key_rejected(self):
        data = _gpu_spec().to_dict()
        data["warp_factor"] = 9
        with pytest.raises(ConfigError, match="unknown keys"):
            DeviceSpec.from_dict(data)

    def test_malformed_config_block_rejected(self):
        data = _gpu_spec().to_dict()
        data["gpu"]["num_smz"] = 4
        with pytest.raises(ConfigError, match="malformed"):
            DeviceSpec.from_dict(data)


class TestFingerprint:
    def test_stable_across_round_trip(self):
        for spec in DEFAULT_DEVICES:
            restored = DeviceSpec.from_json(spec.to_json())
            assert restored.fingerprint() == spec.fingerprint()

    def test_any_field_change_diverges(self):
        spec = _gpu_spec()
        bumped = dataclasses.replace(spec, tdp_w=spec.tdp_w + 1)
        assert bumped.fingerprint() != spec.fingerprint()

    def test_config_change_diverges(self):
        spec = _gpu_spec()
        tweaked = dataclasses.replace(
            spec, gpu=dataclasses.replace(spec.gpu, num_sms=8)
        )
        assert tweaked.fingerprint() != spec.fingerprint()

    def test_defaults_pairwise_distinct(self):
        prints = [spec.fingerprint() for spec in DEFAULT_DEVICES]
        assert len(set(prints)) == len(prints)


class TestRegistration:
    def test_register_lookup_unregister(self):
        spec = _gpu_spec()
        register_device(spec)
        try:
            assert get_device("testgpu") is spec
            assert get_device("testalias") is spec  # alias-aware
            assert "testgpu" in device_names("gpu")
        finally:
            unregister_device("testgpu")
        with pytest.raises(ConfigError, match="unknown device"):
            get_device("testgpu")

    def test_identical_reregistration_is_noop(self):
        spec = _gpu_spec()
        register_device(spec)
        try:
            register_device(_gpu_spec())  # equal spec: fine
            with pytest.raises(ConfigError, match="different spec"):
                register_device(_gpu_spec(tdp_w=999.0))
        finally:
            unregister_device("testgpu")

    def test_default_family_listing(self):
        assert device_names("gpu") == ("v100", "a100", "h100", "orin")
        assert device_names("tpu") == ("tpu-v1", "tpu-v2", "tpu-v3")


class TestLoadCatalog:
    def test_load_from_json_file(self, tmp_path):
        spec = _gpu_spec(name="filegpu", aliases=())
        path = tmp_path / "catalog.json"
        path.write_text(
            '{"devices": [%s]}' % spec.to_json(), encoding="utf-8"
        )
        try:
            loaded = load_catalog(path)
            assert loaded == (spec,)
            assert get_device("filegpu") == spec
            # Loading the same file again is a no-op, not a conflict.
            assert load_catalog(path) == (spec,)
        finally:
            unregister_device("filegpu")

    def test_missing_file_is_config_error(self):
        with pytest.raises(ConfigError, match="not found"):
            load_catalog("/no/such/catalog.json")

    def test_non_list_document_rejected(self):
        with pytest.raises(ConfigError, match="list"):
            load_catalog('{"devices": 42}')
