"""Catalog platform specs through the registry: parsing, errors, wiring."""

import pytest

from repro.api import available_platforms, build_platform, parse_spec
from repro.catalog.loader import catalog_fingerprint, device_for_platform
from repro.errors import ConfigError


class TestResolution:
    def test_device_name_resolves_tc_flavor(self):
        platform = build_platform("a100")
        assert platform.system.gpu.name == "ampere-a100"
        assert platform.interference_matrix() is not None

    def test_tc_alias_and_spec_aliases(self):
        for spec in ("tc@v100", "volta", "tesla-v100"):
            platform = build_platform(spec)
            assert platform.system.name == "v100-4tc"

    def test_simd_flavor(self):
        platform = build_platform("simd@h100")
        assert platform.system.name == "h100-simd"
        assert platform.system.gpu.num_sms == 132

    def test_sma_flavor_with_units(self):
        platform = build_platform("sma@a100:3")
        assert platform.system.name == "a100-3sma"
        assert platform.system.sma.units_per_sm == 3

    def test_sma_flavor_with_units_and_dtype(self):
        platform = build_platform("sma@a100:2,fp32")
        assert platform.system.sma.units_per_sm == 2
        assert platform.system.sma.dtype.value == "fp32"

    def test_tpu_flavors(self):
        for spec in ("tpu-v3", "tpu@v3"):
            platform = build_platform(spec)
            assert platform.config.name == "tpu-v3-core"

    def test_catalog_platforms_listed(self):
        names = available_platforms()
        for expected in ("v100", "a100", "h100", "orin", "sma@v100",
                         "simd@v100", "tpu-v1", "tpu-v2", "tpu-v3"):
            assert expected in names


class TestMalformedSpecs:
    def test_zero_sma_units_rejected(self):
        with pytest.raises(ConfigError):
            build_platform("sma@a100:0")

    def test_non_integer_sma_units_rejected(self):
        with pytest.raises(ConfigError):
            build_platform("sma@a100:banana")

    def test_unexpected_args_on_tc_flavor_rejected(self):
        with pytest.raises(ConfigError):
            build_platform("a100:3")

    def test_unexpected_args_on_tpu_rejected(self):
        with pytest.raises(ConfigError):
            build_platform("tpu@v3:2")

    def test_unknown_device_stays_unknown(self):
        with pytest.raises(ConfigError, match="[Uu]nknown platform"):
            build_platform("b200")

    def test_parse_spec_keeps_at_in_name(self):
        # '@' is part of the platform name, not an argument separator.
        assert parse_spec("sma@a100:3") == ("sma@a100", ("3",))


class TestDeviceBackref:
    def test_all_flavors_map_to_one_device(self):
        for spec in ("a100", "ampere", "tc@a100", "simd@a100", "sma@a100:3"):
            device = device_for_platform(spec)
            assert device is not None and device.name == "a100"

    def test_flavors_share_the_device_fingerprint(self):
        prints = {
            catalog_fingerprint(spec)
            for spec in ("v100", "volta", "sma@v100:3", "simd@v100")
        }
        assert len(prints) == 1 and None not in prints

    def test_hand_coded_platforms_have_no_device(self):
        for spec in ("gpu-tc", "sma:3", "tpu", "cpu"):
            assert device_for_platform(spec) is None
            assert catalog_fingerprint(spec) is None

    def test_malformed_spec_fingerprints_none(self):
        assert catalog_fingerprint("sma@a100:") is None
