"""Interference matrices: validation, directional semantics, timeline effect."""

import pytest

from repro.catalog import InterferenceMatrix
from repro.errors import ConfigError
from repro.schedule.resources import ResourceClaim, ResourceKind
from repro.schedule.timeline import OpTask, TimelineScheduler

TC = (ResourceClaim(ResourceKind.TC),)
SIMD = (ResourceClaim(ResourceKind.SIMD),)

MATRIX = InterferenceMatrix(entries=(("tc", "simd", 0.5),))


class TestValidation:
    def test_entries_canonicalized_and_sorted(self):
        matrix = InterferenceMatrix(
            entries=(("TRANSFER", "host", 0.1), ("tc", "SIMD", 0.5))
        )
        assert matrix.entries == (
            ("tc", "simd", 0.5),
            ("transfer", "host", 0.1),
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="resource kind"):
            InterferenceMatrix(entries=(("tc", "warp-drive", 0.5),))

    def test_self_pair_rejected(self):
        with pytest.raises(ConfigError, match="self-pair"):
            InterferenceMatrix(entries=(("tc", "tc", 0.5),))

    def test_factor_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            InterferenceMatrix(entries=(("tc", "simd", 1.5),))
        with pytest.raises(ConfigError):
            InterferenceMatrix(entries=(("tc", "simd", -0.1),))

    def test_duplicate_pair_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            InterferenceMatrix(
                entries=(("tc", "simd", 0.5), ("tc", "simd", 0.6))
            )

    def test_empty_matrix_is_falsy(self):
        assert not InterferenceMatrix()
        assert MATRIX


class TestRoundTrip:
    def test_dict_round_trip(self):
        matrix = InterferenceMatrix(
            entries=(("tc", "simd", 0.62), ("transfer", "host", 0.08))
        )
        assert matrix.to_dict() == {
            "tc->simd": 0.62,
            "transfer->host": 0.08,
        }
        assert InterferenceMatrix.from_dict(matrix.to_dict()) == matrix

    def test_json_round_trip(self):
        assert InterferenceMatrix.from_json(MATRIX.to_json()) == MATRIX

    def test_malformed_key_rejected(self):
        with pytest.raises(ConfigError):
            InterferenceMatrix.from_dict({"tc": 0.5})


class TestPressure:
    def test_directional(self):
        # A TC source pressures the SIMD victim; not the other way around.
        assert MATRIX.pressure(frozenset({ResourceKind.TC})) == {
            ResourceKind.SIMD: 0.5
        }
        assert MATRIX.pressure(frozenset({ResourceKind.SIMD})) == {}

    def test_own_primary_is_not_a_victim(self):
        # A task holding both ends exerts no pressure on itself.
        both = frozenset({ResourceKind.TC, ResourceKind.SIMD})
        assert MATRIX.pressure(both) == {}

    def test_max_over_sources(self):
        matrix = InterferenceMatrix(
            entries=(("tc", "host", 0.3), ("transfer", "host", 0.8))
        )
        sources = frozenset({ResourceKind.TC, ResourceKind.TRANSFER})
        assert matrix.pressure(sources) == {ResourceKind.HOST: 0.8}


class TestTimelineEffect:
    def test_single_stream_identical_with_and_without_matrix(self):
        tasks = [
            OpTask(uid=0, name="a", seconds=1.25, claims=TC, stream="s"),
            OpTask(
                uid=1, name="b", seconds=0.75, claims=TC, stream="s",
                deps=(0,),
            ),
        ]
        plain = TimelineScheduler().run(tasks)
        matrixed = TimelineScheduler(interference=MATRIX).run(tasks)
        assert matrixed.makespan_s == plain.makespan_s  # bit-for-bit
        assert matrixed.segments == plain.segments

    def test_victim_stretched_source_unaffected(self):
        def tasks():
            return [
                OpTask(uid=0, name="tc", seconds=1.0, claims=TC, stream="a"),
                OpTask(
                    uid=1, name="simd", seconds=1.0, claims=SIMD, stream="b"
                ),
            ]

        timeline = TimelineScheduler(interference=MATRIX).run(tasks())
        ends = {seg.name: seg.end_s for seg in timeline.segments}
        # The TC task runs at full speed. The SIMD task sees 1 + 0.5 load
        # while the TC task runs (2/3 progress by t=1), then recovers full
        # speed for the remaining third of its work.
        assert ends["tc"] == pytest.approx(1.0)
        assert ends["simd"] == pytest.approx(4.0 / 3.0)

        reverse = InterferenceMatrix(entries=(("simd", "tc", 0.5),))
        timeline = TimelineScheduler(interference=reverse).run(tasks())
        ends = {seg.name: seg.end_s for seg in timeline.segments}
        assert ends["simd"] == pytest.approx(1.0)
        assert ends["tc"] == pytest.approx(4.0 / 3.0)

    def test_matrix_supersedes_fractional_claims(self):
        # Under a matrix, sub-unit fractional claims are ignored: the
        # measured factors are the co-run model, not per-kernel guesses.
        fractional = (
            ResourceClaim(ResourceKind.TC),
            ResourceClaim(ResourceKind.SIMD, fraction=0.4),
        )
        tasks = [
            OpTask(
                uid=0, name="tc", seconds=1.0, claims=fractional, stream="a"
            ),
            OpTask(uid=1, name="simd", seconds=1.0, claims=SIMD, stream="b"),
        ]
        timeline = TimelineScheduler(interference=MATRIX).run(tasks)
        ends = {seg.name: seg.end_s for seg in timeline.segments}
        # The SIMD victim sees the measured 0.5 factor, not the kernel's
        # 0.4 guess — same 4/3 end as the pure-primary-claim case above.
        assert ends["simd"] == pytest.approx(4.0 / 3.0)
        assert ends["tc"] == pytest.approx(1.0)
