"""SMA platform: GEMM ops in systolic mode, everything else in SIMD mode.

The temporal reconfiguration between modes is tracked per operator
transition; its cost (8 cycles per switch, paper SS IV-A) is what makes the
"simultaneous multi-mode" design practical and is reported by
``mode_switch_overhead_seconds``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import DataType, SystemConfig, system_sma
from repro.dnn.ops import Operator
from repro.gemm.cache import TimingCache
from repro.gemm.executor import GemmExecutor
from repro.gemm.problem import GemmProblem
from repro.platforms.base import (
    DEFAULT_FRAMEWORK_OVERHEAD_S,
    GpuPlatformBase,
    OpStats,
    reporting_group,
)
from repro.schedule.resources import ResourceClaim, ResourceKind
from repro.sma.mode import ExecutionMode, ModeSwitchTracker
from repro.sma.sync import partition_warps
from repro.systolic.dataflow import Dataflow


class GpuSmaPlatform(GpuPlatformBase):
    """The paper's architecture: 2 or 3 SMA units per SM."""

    def __init__(
        self,
        units: int = 3,
        system: SystemConfig | None = None,
        dataflow: Dataflow = Dataflow.SEMI_BROADCAST_WS,
        framework_overhead_s: float = DEFAULT_FRAMEWORK_OVERHEAD_S,
        cache: TimingCache | None = None,
        scheduler: str | None = None,
        interference=None,
    ) -> None:
        system = system or system_sma(units)
        super().__init__(system, f"gpu-{system.sma.units_per_sm}sma",
                         framework_overhead_s, interference=interference)
        self.executor = GemmExecutor(system, "sma", dataflow=dataflow,
                                     scheduler=scheduler, cache=cache)
        self.mode_tracker = ModeSwitchTracker(system.sma)

    def run_op(self, op: Operator) -> OpStats:
        dims = op.gemm_dims()
        if dims is None:
            switch_cycles = self.mode_tracker.switch_to(ExecutionMode.SIMD)
            stats = self.run_irregular(op)
            switch_seconds = switch_cycles / (self.gpu.clock_ghz * 1e9)
            self.mode_tracker.account(
                stats.seconds * self.gpu.clock_ghz * 1e9
            )
            return replace(stats, seconds=stats.seconds + switch_seconds)
        switch_cycles = self.mode_tracker.switch_to(ExecutionMode.SYSTOLIC)
        m, n, k = dims
        problem = GemmProblem(m, n, k, dtype=self.system.sma.dtype)
        timing = self.executor.time_gemm(problem)
        self.mode_tracker.account(timing.cycles)
        switch_seconds = switch_cycles / (self.gpu.clock_ghz * 1e9)
        return OpStats(
            op_name=op.name,
            group=reporting_group(op),
            mode="gemm-sma",
            seconds=timing.seconds + switch_seconds,
            flops=float(problem.flops),
            energy=self.ledger.account(timing.counters),
        )

    @property
    def mode_switch_overhead_seconds(self) -> float:
        """Total reconfiguration time spent so far (temporal integration)."""
        return self.mode_tracker.reconfiguration_cycles / (
            self.gpu.clock_ghz * 1e9
        )

    # -- scheduling hooks ---------------------------------------------------------
    def task_claims(self, op: Operator, stats: OpStats) -> tuple[ResourceClaim, ...]:
        # Temporal integration: the systolic array *is* the SIMD MAC
        # substrate reconfigured, so a systolic task owns both — a
        # co-scheduled SIMD stream time-multiplexes with it instead of
        # running beside it (that spatial co-run is the TC platform).
        if stats.mode == "gemm-sma":
            return (
                ResourceClaim(ResourceKind.ARRAY),
                ResourceClaim(ResourceKind.SIMD),
            )
        return super().task_claims(op, stats)

    def cross_switch_seconds(self) -> float:
        """Drain/fill plus warp-set resync for a cross-stream mode flip.

        Within one stream the lowering pass prices switches through the
        mode tracker; when the scheduler interleaves *streams* on the MAC
        substrate it charges this extra resync: the array reconfiguration
        cycles plus one cooperative-group sync across both warp sets of
        the double-buffered mapping (:mod:`repro.sma.sync`).
        """
        partition = partition_warps(self.gpu.max_warps_per_sm)
        resync_cycles = float(len(partition.all_warps))
        cycles = self.system.sma.reconfiguration_cycles + resync_cycles
        return cycles / (self.gpu.clock_ghz * 1e9)

    def reset_schedule_state(self) -> None:
        self.mode_tracker = ModeSwitchTracker(self.system.sma)
