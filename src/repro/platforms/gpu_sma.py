"""SMA platform: GEMM ops in systolic mode, everything else in SIMD mode.

The temporal reconfiguration between modes is tracked per operator
transition; its cost (8 cycles per switch, paper SS IV-A) is what makes the
"simultaneous multi-mode" design practical and is reported by
``mode_switch_overhead_seconds``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import DataType, SystemConfig, system_sma
from repro.dnn.ops import Operator
from repro.gemm.cache import TimingCache
from repro.gemm.executor import GemmExecutor
from repro.gemm.problem import GemmProblem
from repro.platforms.base import (
    DEFAULT_FRAMEWORK_OVERHEAD_S,
    GpuPlatformBase,
    OpStats,
    reporting_group,
)
from repro.sma.mode import ExecutionMode, ModeSwitchTracker
from repro.systolic.dataflow import Dataflow


class GpuSmaPlatform(GpuPlatformBase):
    """The paper's architecture: 2 or 3 SMA units per SM."""

    def __init__(
        self,
        units: int = 3,
        system: SystemConfig | None = None,
        dataflow: Dataflow = Dataflow.SEMI_BROADCAST_WS,
        framework_overhead_s: float = DEFAULT_FRAMEWORK_OVERHEAD_S,
        cache: TimingCache | None = None,
        scheduler: str | None = None,
    ) -> None:
        system = system or system_sma(units)
        super().__init__(system, f"gpu-{system.sma.units_per_sm}sma",
                         framework_overhead_s)
        self.executor = GemmExecutor(system, "sma", dataflow=dataflow,
                                     scheduler=scheduler, cache=cache)
        self.mode_tracker = ModeSwitchTracker(system.sma)

    def run_op(self, op: Operator) -> OpStats:
        dims = op.gemm_dims()
        if dims is None:
            switch_cycles = self.mode_tracker.switch_to(ExecutionMode.SIMD)
            stats = self.run_irregular(op)
            switch_seconds = switch_cycles / (self.gpu.clock_ghz * 1e9)
            self.mode_tracker.account(
                stats.seconds * self.gpu.clock_ghz * 1e9
            )
            return replace(stats, seconds=stats.seconds + switch_seconds)
        switch_cycles = self.mode_tracker.switch_to(ExecutionMode.SYSTOLIC)
        m, n, k = dims
        problem = GemmProblem(m, n, k, dtype=self.system.sma.dtype)
        timing = self.executor.time_gemm(problem)
        self.mode_tracker.account(timing.cycles)
        switch_seconds = switch_cycles / (self.gpu.clock_ghz * 1e9)
        return OpStats(
            op_name=op.name,
            group=reporting_group(op),
            mode="gemm-sma",
            seconds=timing.seconds + switch_seconds,
            flops=float(problem.flops),
            energy=self.ledger.account(timing.counters),
        )

    @property
    def mode_switch_overhead_seconds(self) -> float:
        """Total reconfiguration time spent so far (temporal integration)."""
        return self.mode_tracker.reconfiguration_cycles / (
            self.gpu.clock_ghz * 1e9
        )
