"""SIMD-only GPU platform: every operator on the CUDA cores (FP32)."""

from __future__ import annotations

from dataclasses import replace

from repro.config import DataType, SystemConfig, system_gpu_simd
from repro.dnn.ops import Operator
from repro.gemm.cache import TimingCache
from repro.gemm.executor import GemmExecutor
from repro.gemm.problem import GemmProblem
from repro.platforms.base import (
    DEFAULT_FRAMEWORK_OVERHEAD_S,
    GpuPlatformBase,
    OpStats,
    reporting_group,
)


class GpuSimdPlatform(GpuPlatformBase):
    """The baseline GPU with TensorCores unused (paper Fig 8 'SIMD')."""

    def __init__(
        self,
        system: SystemConfig | None = None,
        framework_overhead_s: float = DEFAULT_FRAMEWORK_OVERHEAD_S,
        cache: TimingCache | None = None,
        scheduler: str | None = None,
        interference=None,
    ) -> None:
        system = system or system_gpu_simd()
        super().__init__(
            system, "gpu-simd", framework_overhead_s, interference=interference
        )
        self.executor = GemmExecutor(
            system, "simd", scheduler=scheduler, cache=cache
        )

    def run_op(self, op: Operator) -> OpStats:
        dims = op.gemm_dims()
        if dims is None:
            return self.run_irregular(op)
        m, n, k = dims
        problem = GemmProblem(m, n, k, dtype=DataType.FP32)
        timing = self.executor.time_gemm(problem)
        return OpStats(
            op_name=op.name,
            group=reporting_group(op),
            mode="gemm-simd",
            seconds=timing.seconds,
            flops=float(problem.flops),
            energy=self.ledger.account(timing.counters),
        )
