"""GPU + TensorCore platform: GEMM ops on the 4 TCs, the rest on SIMD.

Spatial integration's co-run cost is *derived* here: a TC GEMM kernel's
thread blocks keep the SIMD-side register-file ports and issue slots busy
(tile loads, address math, accumulator traffic), so a lowered TC task
carries a fractional SIMD claim measured from the kernel's simulated
port-busy counters. A concurrently-scheduled SIMD kernel is stretched by
exactly that fraction — no hard-coded contention constant.
"""

from __future__ import annotations

from repro.config import DataType, SystemConfig, system_gpu_4tc
from repro.dnn.ops import Operator
from repro.gemm.cache import TimingCache
from repro.gemm.executor import GemmExecutor
from repro.gemm.problem import GemmProblem
from repro.platforms.base import (
    DEFAULT_FRAMEWORK_OVERHEAD_S,
    GpuPlatformBase,
    OpStats,
    reporting_group,
)
from repro.schedule.resources import ResourceClaim, ResourceKind


class GpuTcPlatform(GpuPlatformBase):
    """The Volta baseline with spatially integrated TCs (paper '4-TC')."""

    def __init__(
        self,
        system: SystemConfig | None = None,
        framework_overhead_s: float = DEFAULT_FRAMEWORK_OVERHEAD_S,
        cache: TimingCache | None = None,
        scheduler: str | None = None,
        interference=None,
    ) -> None:
        system = system or system_gpu_4tc()
        super().__init__(
            system, "gpu-4tc", framework_overhead_s, interference=interference
        )
        self.executor = GemmExecutor(
            system, "tc", scheduler=scheduler, cache=cache
        )

    def run_op(self, op: Operator) -> OpStats:
        dims = op.gemm_dims()
        if dims is None:
            return self.run_irregular(op)
        m, n, k = dims
        problem = GemmProblem(m, n, k, dtype=DataType.FP16)
        timing = self.executor.time_gemm(problem)
        return OpStats(
            op_name=op.name,
            group=reporting_group(op),
            mode="gemm-tc",
            seconds=timing.seconds,
            flops=float(problem.flops),
            energy=self.ledger.account(timing.counters),
        )

    def corun_simd_fraction(self, op: Operator) -> float:
        """SIMD-side pressure of this op's TC kernel, from measurement.

        The paper's co-run observation is that the TC GEMM alone nearly
        saturates the register-file ports; the simulated kernel exposes
        that directly as the busiest RF port's busy-cycle fraction. The
        timing is served from the shared cache, so this costs one lookup.
        """
        dims = op.gemm_dims()
        if dims is None:
            return 0.0
        m, n, k = dims
        timing = self.executor.time_gemm(
            GemmProblem(m, n, k, dtype=DataType.FP16)
        )
        cycles = timing.counters.get("cycles")
        if cycles <= 0:
            return 0.0
        port_busy = max(
            timing.counters.get("busy_rf_read"),
            timing.counters.get("busy_rf_write"),
        )
        return min(1.0, port_busy / cycles)

    def task_claims(self, op: Operator, stats: OpStats) -> tuple[ResourceClaim, ...]:
        if stats.mode != "gemm-tc":
            return super().task_claims(op, stats)
        if self.interference is not None:
            # Catalog devices carry a measured interference matrix; the
            # scheduler derives the SIMD-side pressure from it, so the
            # per-kernel fractional claim would double-count.
            return (ResourceClaim(ResourceKind.TC),)
        claims = [ResourceClaim(ResourceKind.TC)]
        fraction = self.corun_simd_fraction(op)
        if fraction > 0.0:
            claims.append(ResourceClaim(ResourceKind.SIMD, fraction))
        return tuple(claims)
