"""GPU + TensorCore platform: GEMM ops on the 4 TCs, the rest on SIMD."""

from __future__ import annotations

from repro.config import DataType, SystemConfig, system_gpu_4tc
from repro.dnn.ops import Operator
from repro.gemm.cache import TimingCache
from repro.gemm.executor import GemmExecutor
from repro.gemm.problem import GemmProblem
from repro.platforms.base import (
    DEFAULT_FRAMEWORK_OVERHEAD_S,
    GpuPlatformBase,
    OpStats,
    reporting_group,
)


class GpuTcPlatform(GpuPlatformBase):
    """The Volta baseline with spatially integrated TCs (paper '4-TC')."""

    def __init__(
        self,
        system: SystemConfig | None = None,
        framework_overhead_s: float = DEFAULT_FRAMEWORK_OVERHEAD_S,
        cache: TimingCache | None = None,
        scheduler: str | None = None,
    ) -> None:
        system = system or system_gpu_4tc()
        super().__init__(system, "gpu-4tc", framework_overhead_s)
        self.executor = GemmExecutor(
            system, "tc", scheduler=scheduler, cache=cache
        )

    def run_op(self, op: Operator) -> OpStats:
        dims = op.gemm_dims()
        if dims is None:
            return self.run_irregular(op)
        m, n, k = dims
        problem = GemmProblem(m, n, k, dtype=DataType.FP16)
        timing = self.executor.time_gemm(problem)
        return OpStats(
            op_name=op.name,
            group=reporting_group(op),
            mode="gemm-tc",
            seconds=timing.seconds,
            flops=float(problem.flops),
            energy=self.ledger.account(timing.counters),
        )
