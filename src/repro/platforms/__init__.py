"""Execution platforms: run operator graphs on each simulated system."""

from repro.platforms.base import ModelRunResult, OpStats, Platform
from repro.platforms.cpu import CpuPlatform
from repro.platforms.gpu_simd import GpuSimdPlatform
from repro.platforms.gpu_sma import GpuSmaPlatform
from repro.platforms.gpu_tc import GpuTcPlatform
from repro.platforms.tpu_platform import TpuPlatform

__all__ = [
    "CpuPlatform",
    "GpuSimdPlatform",
    "GpuSmaPlatform",
    "GpuTcPlatform",
    "ModelRunResult",
    "OpStats",
    "Platform",
    "TpuPlatform",
]
