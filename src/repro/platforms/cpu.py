"""Single-core CPU platform (the paper's CRF-on-CPU comparison point)."""

from __future__ import annotations

from repro.config import CpuConfig
from repro.dnn.ops import OpCategory, Operator
from repro.platforms.base import OpStats, Platform, reporting_group
from repro.tpu.host import HostCpuModel


class CpuPlatform(Platform):
    """Runs every operator on one host core via the roofline model."""

    def __init__(
        self,
        config: CpuConfig | None = None,
        framework_overhead_s: float = 10e-6,
    ) -> None:
        super().__init__("cpu", framework_overhead_s)
        self.config = config or CpuConfig()
        self.host = HostCpuModel(self.config)

    def run_op(self, op: Operator) -> OpStats:
        serial = getattr(op, "host_serial_fraction", None)
        if serial is None:
            serial = 0.3 if op.category is OpCategory.IRREGULAR else 0.05
        seconds = self.host.op_seconds(
            op.flops,
            op.input_bytes + op.output_bytes + op.weight_bytes,
            serial_fraction=serial,
        )
        return OpStats(
            op_name=op.name,
            group=reporting_group(op),
            mode="host",
            seconds=seconds,
            flops=op.flops,
        )
