"""TPU platform: native GEMM, compiler-lowered irregular ops, host CRF.

Reproduces the SS II-B behaviour: GEMM-compatible layers run fast on the
weight-stationary array; RoIAlign / NMS / ArgMax get *converted* by the
compiler into cascades of dense ops ("improper mapping causes severe
performance degradation"); the CRF cannot run at all and is shipped to the
host CPU over the (effective) host link, whose serialization overhead the
paper measures at 1.2x the TPU's own GEMM time for DeepLab.
"""

from __future__ import annotations

from repro.config import CpuConfig, TpuConfig
from repro.dnn.ops import (
    ArgMax,
    Crf,
    Operator,
    RegionProposal,
    RoIAlign,
    TpuSupport,
)
from repro.platforms.base import (
    DEFAULT_FRAMEWORK_OVERHEAD_S,
    OpStats,
    Platform,
    reporting_group,
)
from repro.schedule.timeline import OpTask
from repro.tpu.host import HostCpuModel, HostTransferModel
from repro.tpu.lowering import (
    lower_argmax,
    lower_nms_to_gemm,
    lower_roialign_to_pooling,
)
from repro.tpu.tpu import TpuCore

#: Effective host-link bandwidth for cloud-TPU offload (grpc serialization
#: collapses the nominal PCIe bandwidth; calibrated to the paper's measured
#: transfer = 1.2x GEMM time on DeepLab).
CLOUD_EFFECTIVE_LINK_GBPS = 0.7


class TpuPlatform(Platform):
    """One TPU core + host CPU, with compiler lowering for irregular ops."""

    def __init__(
        self,
        config: TpuConfig | None = None,
        cpu: CpuConfig | None = None,
        framework_overhead_s: float = DEFAULT_FRAMEWORK_OVERHEAD_S,
        effective_link_gbps: float = CLOUD_EFFECTIVE_LINK_GBPS,
        interference=None,
    ) -> None:
        super().__init__("tpu", framework_overhead_s, interference=interference)
        self.config = config or TpuConfig()
        self.core = TpuCore(self.config)
        link_config = TpuConfig(
            name=self.config.name,
            array_rows=self.config.array_rows,
            array_cols=self.config.array_cols,
            clock_ghz=self.config.clock_ghz,
            host_transfer_gbps=effective_link_gbps,
        )
        self.link = HostTransferModel(link_config)
        self.host = HostCpuModel(cpu)

    # -- per-kind execution -------------------------------------------------------
    def _native_seconds(self, op: Operator) -> float:
        dims = op.gemm_dims()
        if dims is not None:
            m, n, k = dims
            return self.core.gemm(m, n, k).seconds
        # Pooling / activations / norms: one memory-bound pass.
        bytes_touched = op.input_bytes + op.output_bytes
        memory = bytes_touched / (self.config.dram_bandwidth_gbps * 1e9)
        compute = op.flops / (self.config.peak_tflops * 1e12 * 0.5)
        return max(memory, compute)

    def _lowered(self, op: Operator) -> float:
        if isinstance(op, RegionProposal):
            ops = lower_nms_to_gemm(op.post_nms)
        elif isinstance(op, RoIAlign):
            ops = lower_roialign_to_pooling(
                op.num_rois, op.pooled, op.pooled, op.channels,
                op.sampling_points,
            )
        elif isinstance(op, ArgMax):
            _b, classes, height, width = op.input_shape.dims
            ops = lower_argmax(height, width, classes)
        else:
            ops = lower_nms_to_gemm(max(2, int(op.output_shape.elements ** 0.5)))
        array_seconds = self.core.run_lowered(ops).seconds
        # Every lowered op is a separately dispatched executable on the
        # real system; the dispatch overhead dominates (paper: "improper
        # mapping causes severe performance degradation").
        dispatch = len(ops) * self.framework_overhead_s
        return array_seconds + dispatch

    def _host(self, op: Operator) -> tuple[float, float]:
        """(transfer seconds, host compute seconds)."""
        to_host = self.link.transfer(op.input_bytes).seconds
        from_host = self.link.transfer(op.output_bytes).seconds
        serial = getattr(op, "host_serial_fraction", 0.2)
        compute = self.host.op_seconds(
            op.flops, op.input_bytes + op.output_bytes, serial_fraction=serial
        )
        return to_host + from_host, compute

    def run_op(self, op: Operator) -> OpStats:
        group = reporting_group(op)
        if isinstance(op, Crf) or op.tpu_support is TpuSupport.HOST:
            _transfer, compute = self._host(op)
            # The host round-trip is surfaced separately by run_model as
            # the Fig 3 "Transfer" group; run_op reports host compute only.
            return OpStats(
                op_name=op.name,
                group=group,
                mode="host",
                seconds=compute,
                flops=op.flops,
            )
        if op.tpu_support is TpuSupport.LOWERED:
            return OpStats(
                op_name=op.name,
                group=group,
                mode="tpu-lowered",
                seconds=self._lowered(op),
                flops=op.flops,
            )
        return OpStats(
            op_name=op.name,
            group=group,
            mode="tpu",
            seconds=self._native_seconds(op),
            flops=op.flops,
        )

    def transfer_seconds(self, op: Operator) -> float:
        """Host round-trip time for one operator's tensors (Fig 3)."""
        return (
            self.link.transfer(op.input_bytes).seconds
            + self.link.transfer(op.output_bytes).seconds
        )

    def lower_model(self, graph, *, stream: str | None = None):
        """Lower the graph, surfacing host round-trips as Transfer tasks.

        The transfer tasks ride the host link resource and are appended
        after the compute chain (matching the historical report order);
        each chains on its predecessor so the lowered list stays one
        stream.
        """
        tasks = super().lower_model(graph, stream=stream)
        stream_name = stream if stream is not None else graph.name
        for task, node in zip(list(tasks), graph.nodes):
            if task.payload.mode != "host":
                continue
            stats = OpStats(
                op_name=f"{task.payload.op_name}/transfer",
                group="Transfer",
                mode="transfer",
                seconds=self.transfer_seconds(node.op),
                flops=0.0,
            )
            uid = len(tasks)
            tasks.append(
                OpTask(
                    uid=uid,
                    name=stats.op_name,
                    seconds=stats.seconds,
                    claims=self.task_claims(node.op, stats),
                    mode="transfer",
                    stream=stream_name,
                    deps=(uid - 1,),
                    payload=stats,
                )
            )
        return tasks
