"""Platform interface and the shared GPU operator execution logic.

A platform *lowers* a :class:`repro.dnn.graph.LayerGraph` into
:class:`~repro.schedule.timeline.OpTask`\\ s — per-op timing, energy,
execution mode, and typed resource claims — and hands them to the
timeline scheduler (:mod:`repro.schedule`). Single-model runs are the
degenerate one-stream schedule; multi-stream scenarios share the same
lowered tasks. The Fig 3 breakdown groups ops into the paper's categories
(CNN&FC, RoIAlign, NMS, ArgMax, CRF, Transfer).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace

from repro.common.stats import CounterBag
from repro.config import GpuConfig, SystemConfig
from repro.dnn.graph import LayerGraph
from repro.dnn.ops import (
    ArgMax,
    Crf,
    Operator,
    RegionProposal,
    RoIAlign,
)
from repro.energy.accounting import EnergyBreakdown, EnergyLedger
from repro.schedule.resources import ResourceClaim, claims_for_mode
from repro.schedule.timeline import OpTask, Timeline, TimelineScheduler

#: Per-op framework overhead (graph runtime, kernel dispatch) used by the
#: end-to-end experiments (Fig 3 / Fig 9); pure kernel studies pass 0.
DEFAULT_FRAMEWORK_OVERHEAD_S = 100e-6

#: The paper's Fig 3 reporting groups, in canonical table order.
REPORTING_GROUPS = ("CNN&FC", "RoIAlign", "NMS", "ArgMax", "CRF", "Transfer")


def substrate_mode(mode: str) -> str:
    """Collapse a per-op mode label to its execution-substrate mode.

    ``OpStats.mode`` labels carry backend detail (``"gemm-sma"``,
    ``"tpu-lowered"``); the scheduler cares about *where* the op runs:
    the temporally-switched MAC substrate (``simd``/``systolic``), the
    TensorCores, a standalone array, the host, or the transfer link.
    """
    if "sma" in mode or "systolic" in mode:
        return "systolic"
    if "tc" in mode:
        return "tc"
    if "transfer" in mode:
        return "transfer"
    if "host" in mode or "cpu" in mode:
        return "host"
    if "tpu" in mode:
        return "array"
    return "simd"


@dataclass(frozen=True)
class OpStats:
    """Timing and energy of one operator on one platform."""

    op_name: str
    group: str              # Fig 3 reporting group
    mode: str               # e.g. "gemm-sma", "simd", "tpu-lowered", "host"
    seconds: float
    flops: float
    energy: EnergyBreakdown | None = None


@dataclass
class ModelRunResult:
    """Per-op stats plus aggregates for one model on one platform.

    ``timeline`` is the scheduled execution the stats came from (a
    single-stream :class:`~repro.schedule.timeline.Timeline`); its
    makespan equals ``total_seconds`` for the degenerate one-stream case.
    """

    model_name: str
    platform_name: str
    op_stats: list[OpStats] = field(default_factory=list)
    timeline: Timeline | None = None

    @property
    def total_seconds(self) -> float:
        return sum(stat.seconds for stat in self.op_stats)

    @property
    def total_ms(self) -> float:
        return self.total_seconds * 1e3

    def grouped_seconds(self) -> dict[str, float]:
        """Seconds per Fig 3 reporting group."""
        groups: dict[str, float] = {}
        for stat in self.op_stats:
            groups[stat.group] = groups.get(stat.group, 0.0) + stat.seconds
        return groups

    def total_energy(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for stat in self.op_stats:
            if stat.energy is not None:
                total = total.merged(stat.energy)
        return total


def reporting_group(op: Operator) -> str:
    """Map an operator to the paper's Fig 3 breakdown group."""
    if isinstance(op, RoIAlign):
        return "RoIAlign"
    if isinstance(op, RegionProposal):
        return "NMS"
    if isinstance(op, ArgMax):
        return "ArgMax"
    if isinstance(op, Crf):
        return "CRF"
    return "CNN&FC"


class Platform(abc.ABC):
    """Executes operators; subclasses define per-op timing and energy."""

    def __init__(
        self,
        name: str,
        framework_overhead_s: float = DEFAULT_FRAMEWORK_OVERHEAD_S,
        interference=None,
    ) -> None:
        self.name = name
        self.framework_overhead_s = framework_overhead_s
        self.interference = interference

    @abc.abstractmethod
    def run_op(self, op: Operator) -> OpStats:
        """Execute one operator."""

    def interference_matrix(self):
        """The device's measured co-run contention model, if any.

        Catalog-built platforms carry their device's
        :class:`~repro.catalog.interference.InterferenceMatrix`; the
        scheduler consults it instead of per-kernel fractional claims.
        ``None`` (hand-coded platforms) keeps the legacy claim-derived
        co-run model.
        """
        return self.interference

    # -- lowering into the timeline scheduler -------------------------------------
    def task_claims(self, op: Operator, stats: OpStats) -> tuple[ResourceClaim, ...]:
        """The typed resource claims of one lowered operator.

        The default maps the op's (normalized) mode label to a single full
        claim, which makes any platform — including user-registered ones —
        schedulable; platforms with measured co-run pressure (TensorCores)
        or MAC aliasing (SMA) override this.
        """
        return claims_for_mode(substrate_mode(stats.mode))

    def cross_switch_seconds(self) -> float:
        """Extra cost when the scheduler flips the MAC substrate's mode
        between tasks of *different* streams (intra-stream switches are
        priced during lowering). Zero unless the platform reconfigures."""
        return 0.0

    def reset_schedule_state(self) -> None:
        """Reset per-run lowering state (e.g. the SMA mode tracker) so a
        scenario prices every stream from the same initial conditions."""

    def lower_model(
        self, graph: LayerGraph, *, stream: str | None = None
    ) -> list[OpTask]:
        """Lower a layer graph into a chained single-stream task list.

        Each node becomes one :class:`OpTask` priced by :meth:`run_op`
        (plus the per-launch framework overhead) with resource claims and
        mode metadata; dependencies chain the tasks in topological order.
        The per-op :class:`OpStats` ride along as the task payload.
        """
        stream = stream if stream is not None else graph.name
        tasks: list[OpTask] = []
        for node in graph.topological_order():
            stats = self.run_op(node.op)
            overhead = self.framework_overhead_s * node.op.kernel_launches
            stats = replace(stats, seconds=stats.seconds + overhead)
            uid = len(tasks)
            tasks.append(
                OpTask(
                    uid=uid,
                    name=stats.op_name,
                    seconds=stats.seconds,
                    claims=self.task_claims(node.op, stats),
                    mode=substrate_mode(stats.mode),
                    stream=stream,
                    deps=(uid - 1,) if uid else (),
                    cross_switch_s=self.cross_switch_seconds(),
                    payload=stats,
                )
            )
        return tasks

    def run_model(self, graph: LayerGraph) -> ModelRunResult:
        """Execute a layer graph through the timeline scheduler.

        A single model is the degenerate one-stream scenario: the lowered
        chain runs one task at a time, so the per-op stats (and their sum)
        are identical to the historical sequential execution.
        """
        tasks = self.lower_model(graph)
        timeline = TimelineScheduler(
            "fifo", interference=self.interference_matrix()
        ).run(tasks)
        return ModelRunResult(
            model_name=graph.name,
            platform_name=self.name,
            op_stats=[task.payload for task in tasks],
            timeline=timeline,
        )


class GpuPlatformBase(Platform):
    """Shared GPU logic: the SIMD roofline for non-GEMM operators.

    Non-GEMM operators run in SIMD mode on every GPU variant (the whole
    point of SMA: programmability is preserved). Time is the classic
    roofline ``max(compute, memory)`` with the operator's calibrated
    ``simd_efficiency``, plus the kernel launch overhead.
    """

    def __init__(
        self,
        system: SystemConfig,
        name: str,
        framework_overhead_s: float = DEFAULT_FRAMEWORK_OVERHEAD_S,
        interference=None,
    ) -> None:
        super().__init__(name, framework_overhead_s, interference=interference)
        if system.gpu is None:
            raise ValueError(f"platform {name} requires a GPU system")
        self.system = system
        self.gpu: GpuConfig = system.gpu
        self.ledger = EnergyLedger(self.gpu)

    def _simd_op_seconds(self, op: Operator) -> float:
        peak_flops = (
            self.gpu.num_sms
            * self.gpu.simd_flops_per_cycle_per_sm
            * self.gpu.clock_ghz
            * 1e9
        )
        bytes_touched = op.input_bytes + op.output_bytes + op.weight_bytes
        compute = op.flops / (peak_flops * op.simd_efficiency)
        memory = bytes_touched / (self.gpu.dram_bandwidth_gbps * 1e9)
        launch = 2000.0 / (self.gpu.clock_ghz * 1e9)
        return max(compute, memory) + launch

    def _simd_op_energy(self, op: Operator) -> EnergyBreakdown:
        """Approximate event counts for a SIMD-mode operator.

        Each FLOP pair is one lane-FMA; instructions ~= warp ops with the
        operator's efficiency as issue density; every operand set flows
        through the register file once and DRAM traffic equals the
        operator's footprint.
        """
        bytes_touched = op.input_bytes + op.output_bytes + op.weight_bytes
        warp_ops = op.flops / 2.0 / 32.0
        counters = CounterBag(
            {
                "fp32_macs": op.flops / 2.0,
                "instructions_issued": warp_ops * 1.5,
                "rf_reads": warp_ops * 3.0,
                "rf_writes": warp_ops * 1.0,
                "dram_bytes": bytes_touched,
                "global_read_bytes": op.input_bytes + op.weight_bytes,
                "global_write_bytes": op.output_bytes,
            }
        )
        return self.ledger.account(counters)

    def run_irregular(self, op: Operator) -> OpStats:
        return OpStats(
            op_name=op.name,
            group=reporting_group(op),
            mode="simd",
            seconds=self._simd_op_seconds(op),
            flops=op.flops,
            energy=self._simd_op_energy(op),
        )
