"""``repro.sweep`` — parallel, resumable design-space sweeps.

Turns one declarative :class:`SweepSpec` (platform range patterns like
``"sma:2..4"``, model/GEMM workloads, dataflow/scheduler axes) into an
ordered grid of content-addressed requests, runs it sharded across worker
processes with timing-cache merge on join, and persists results in a
sqlite :class:`ResultStore` so sweeps resume instead of recompute::

    from repro.sweep import ResultStore, SweepSpec, run_sweep

    spec = SweepSpec(platforms=("sma:2..4", "gpu-tc"), gemms=(1024, 4096))
    with ResultStore("sweep.sqlite") as store:
        result = run_sweep(spec, jobs=4, store=store, resume=True)
    print(len(result.executed), "simulated,", len(result.loaded), "loaded")
"""

from repro.sweep.grid import (
    SweepGrid,
    SweepPoint,
    SweepSpec,
    expand,
    expand_platform_spec,
    grid_from_requests,
    request_fingerprint,
)
from repro.sweep.store import ResultStore, StoreDiff, open_store
from repro.sweep.workers import SweepResult, run_sweep

__all__ = [
    "ResultStore",
    "StoreDiff",
    "SweepGrid",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "expand",
    "expand_platform_spec",
    "grid_from_requests",
    "open_store",
    "request_fingerprint",
    "run_sweep",
]
