"""Declarative sweep specs expanded into an ordered, stable request grid.

A :class:`SweepSpec` names the axes of a design-space sweep — platforms
(with ``sma:2..4``-style range patterns), models and/or GEMM shapes, and
optional dataflow/scheduler overrides. :func:`expand` turns it into a
:class:`SweepGrid`: an ordered, duplicate-free tuple of
:class:`SweepPoint`\\ s, each pairing a :class:`~repro.api.results.SimRequest`
with a *stable request ID*.

IDs are content-addressed (a SHA-256 over the request's canonical JSON),
so the same logical request gets the same ID in every process, on every
run, and across grid reorderings — which is what lets a
:class:`~repro.sweep.store.ResultStore` written by one run resume another,
and lets two stores be diffed across commits.

Expansion order is deterministic: platforms (in spec order, ranges
expanded low to high) outermost, then models before GEMMs, then dataflows,
then schedulers. Duplicate requests (e.g. overlapping range patterns)
keep their first position and are dropped thereafter.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import re
from dataclasses import dataclass, replace
from typing import Sequence

from repro.api.registry import parse_spec, platform_entry
from repro.api.results import SimRequest
from repro.config import DataType
from repro.errors import ConfigError
from repro.gemm.problem import GemmProblem
from repro.schedule.streams import ScenarioSpec

#: ``LO..HI`` range pattern inside one platform-spec argument.
_RANGE_RE = re.compile(r"^(?P<lo>\d+)\.\.(?P<hi>\d+)$")


def expand_platform_spec(spec: str) -> tuple[str, ...]:
    """Expand range patterns in one platform spec.

    ``"sma:2..4"`` becomes ``("sma:2", "sma:3", "sma:4")``; ranges compose
    with other arguments (``"sma:2..3,fp32"``) and multiple ranges take
    their cartesian product in argument order. A spec without ranges
    expands to itself (canonicalized by the registry's spec parser).

    Device-catalog ranges expand in the *name* position: ``"v100..h100"``
    walks the catalog's generation order (and composes with argument
    ranges, e.g. ``"sma@v100..h100:2..3"``).
    """
    name, args = parse_spec(spec)
    names: tuple[str, ...] = (name,)
    if ".." in name:
        from repro.catalog.loader import expand_device_range

        names = expand_device_range(name)
    if not args:
        return names
    choices: list[tuple[str, ...]] = []
    for arg in args:
        match = _RANGE_RE.match(arg)
        if match is None:
            choices.append((arg,))
            continue
        lo, hi = int(match.group("lo")), int(match.group("hi"))
        if lo > hi:
            raise ConfigError(
                f"platform range {arg!r} in {spec!r} is empty ({lo} > {hi})"
            )
        choices.append(tuple(str(value) for value in range(lo, hi + 1)))
    return tuple(
        f"{expanded}:{','.join(combo)}"
        for expanded in names
        for combo in itertools.product(*choices)
    )


def _coerce_gemm(
    gemm: GemmProblem | int | Sequence[int], dtype: DataType
) -> GemmProblem:
    if isinstance(gemm, GemmProblem):
        return gemm
    if isinstance(gemm, int):
        return GemmProblem(gemm, gemm, gemm, dtype=dtype)
    dims = tuple(gemm)
    if len(dims) != 3 or not all(isinstance(d, int) for d in dims):
        raise ConfigError(
            f"sweep GEMM must be a GemmProblem, n, or (m, n, k); got {gemm!r}"
        )
    m, n, k = dims
    return GemmProblem(m, n, k, dtype=dtype)


def _normalized(value) -> tuple:
    if value is None:
        return (None,)
    if isinstance(value, (str, int)):
        return (value,)
    normalized = tuple(value)
    return normalized if normalized else (None,)


@dataclass(frozen=True)
class SweepSpec:
    """The declarative axes of one sweep.

    ``platforms`` may use range patterns (``"sma:2..4"``); ``models``,
    ``gemms``, and ``scenarios`` (multi-stream
    :class:`~repro.schedule.streams.ScenarioSpec`\\ s, re-targeted at each
    platform in the axis) are the workloads — at least one must be
    non-empty; bare GEMM sizes are coerced with ``gemm_dtype``.
    ``dataflows``/``schedulers`` add override axes applied to every
    workload (``None`` entries keep the platform default).
    ``framework_overhead_s`` overrides the per-kernel-launch overhead of
    model and scenario runs (kernel studies pass ``0.0``) and is folded
    into those request fingerprints so stored results never leak across
    settings.
    """

    platforms: tuple[str, ...]
    models: tuple[str, ...] = ()
    gemms: tuple = ()
    scenarios: tuple[ScenarioSpec, ...] = ()
    dataflows: tuple[str | None, ...] = (None,)
    schedulers: tuple[str | None, ...] = (None,)
    gemm_dtype: str = "fp16"
    framework_overhead_s: float | None = None
    tag: str | None = None

    def __post_init__(self) -> None:
        platforms = _normalized(self.platforms)
        models = self.models
        if isinstance(models, str):
            models = (models,)
        gemms = self.gemms
        if isinstance(gemms, (int, GemmProblem)):
            gemms = (gemms,)
        scenarios = self.scenarios
        if isinstance(scenarios, ScenarioSpec):
            scenarios = (scenarios,)
        for scenario in scenarios:
            if not isinstance(scenario, ScenarioSpec):
                raise ConfigError(
                    f"sweep scenarios must be ScenarioSpec, got {scenario!r}"
                )
        object.__setattr__(self, "platforms", platforms)
        object.__setattr__(self, "models", tuple(models))
        object.__setattr__(self, "gemms", tuple(gemms))
        object.__setattr__(self, "scenarios", tuple(scenarios))
        object.__setattr__(self, "dataflows", _normalized(self.dataflows))
        object.__setattr__(self, "schedulers", _normalized(self.schedulers))
        if platforms == (None,):
            raise ConfigError("sweep spec needs at least one platform")
        if not self.models and not self.gemms and not self.scenarios:
            raise ConfigError(
                "sweep spec needs at least one model, GEMM, or scenario"
                " workload"
            )


@dataclass(frozen=True)
class SweepPoint:
    """One grid cell: a request plus its stable identity.

    ``request_id`` is a short human-scannable handle
    (``"<kind>-<12 hex>"``); ``fingerprint`` is the full content hash a
    :class:`~repro.sweep.store.ResultStore` keys on alongside it.
    """

    index: int
    request_id: str
    fingerprint: str
    request: SimRequest


@dataclass(frozen=True)
class SweepGrid:
    """An ordered, duplicate-free expansion of one :class:`SweepSpec`."""

    points: tuple[SweepPoint, ...]
    framework_overhead_s: float | None = None

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def request_ids(self) -> tuple[str, ...]:
        return tuple(point.request_id for point in self.points)

    def by_id(self) -> dict[str, SweepPoint]:
        return {point.request_id: point for point in self.points}


def request_fingerprint(
    request: SimRequest, extras: dict | None = None
) -> str:
    """SHA-256 over the request's canonical JSON (plus sweep extras).

    ``extras`` carries sweep-level knobs that change the result but live
    outside :class:`SimRequest` (today: ``framework_overhead_s`` for model
    requests), so two sweeps differing only in those never share stored
    results.
    """
    payload = request.to_dict()
    # The tag is an opaque display label, not identity: re-running a sweep
    # under a different tag must still resume from the same stored results.
    payload.pop("tag", None)
    if extras:
        payload["extras"] = dict(sorted(extras.items()))
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def point_extras(spec_overhead: float | None, kind: str) -> dict | None:
    """The fingerprint extras one grid point carries (see above).

    Public because remote dispatch re-derives fingerprints on the server
    side to reject shards whose canonicalization has diverged.
    """
    if spec_overhead is not None and kind in ("model", "scenario", "serving"):
        return {"framework_overhead_s": spec_overhead}
    return None


_point_extras = point_extras


def grid_from_requests(
    requests, framework_overhead_s: float | None = None
) -> SweepGrid:
    """Build a grid directly from pre-constructed requests.

    This is the assembly half of :func:`expand` — content-addressed IDs,
    duplicate elision, stable order — for callers that generate their own
    request axes (e.g. the serving SLO explorer's arrival-rate grid)
    instead of declaring a :class:`SweepSpec`. Such grids shard, persist,
    and resume through the sweep engine exactly like declarative ones.
    """
    points: list[SweepPoint] = []
    seen: set[str] = set()
    for request in requests:
        if not isinstance(request, SimRequest):
            raise ConfigError(
                f"grid_from_requests expects SimRequest items, got"
                f" {request!r}"
            )
        fingerprint = request_fingerprint(
            request, _point_extras(framework_overhead_s, request.kind)
        )
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        points.append(
            SweepPoint(
                index=len(points),
                request_id=f"{request.kind}-{fingerprint[:12]}",
                fingerprint=fingerprint,
                request=request,
            )
        )
    return SweepGrid(
        points=tuple(points),
        framework_overhead_s=framework_overhead_s,
    )


def expand(spec: SweepSpec) -> SweepGrid:
    """Expand a spec into its ordered, duplicate-free request grid."""
    platforms: list[str] = []
    for raw in spec.platforms:
        for platform in expand_platform_spec(raw):
            platform_entry(platform)  # fail fast on unknown platforms
            platforms.append(platform)
    try:
        dtype = DataType(spec.gemm_dtype)
    except ValueError:
        raise ConfigError(
            f"unknown gemm dtype {spec.gemm_dtype!r}; one of"
            f" {sorted(d.value for d in DataType)}"
        ) from None

    requests: list[SimRequest] = []
    for platform in platforms:
        for model in spec.models:
            for dataflow, scheduler in itertools.product(
                spec.dataflows, spec.schedulers
            ):
                requests.append(
                    SimRequest(
                        platform=platform,
                        model=model,
                        tag=spec.tag,
                        dataflow=dataflow,
                        scheduler=scheduler,
                    )
                )
        for gemm in spec.gemms:
            problem = _coerce_gemm(gemm, dtype)
            for dataflow, scheduler in itertools.product(
                spec.dataflows, spec.schedulers
            ):
                requests.append(
                    SimRequest(
                        platform=platform,
                        gemm=problem,
                        tag=spec.tag,
                        dataflow=dataflow,
                        scheduler=scheduler,
                    )
                )
        for scenario in spec.scenarios:
            # The grid's platform axis is the target: the request carries
            # the platform and the embedded spec drops its own so the
            # fingerprint has one canonical platform field.
            bound = (
                replace(scenario, platform=None)
                if scenario.platform is not None
                else scenario
            )
            for dataflow, scheduler in itertools.product(
                spec.dataflows, spec.schedulers
            ):
                requests.append(
                    SimRequest(
                        platform=platform,
                        scenario=bound,
                        tag=spec.tag,
                        dataflow=dataflow,
                        scheduler=scheduler,
                    )
                )

    return grid_from_requests(
        requests, framework_overhead_s=spec.framework_overhead_s
    )


__all__ = [
    "SweepGrid",
    "SweepPoint",
    "SweepSpec",
    "expand",
    "expand_platform_spec",
    "grid_from_requests",
    "point_extras",
    "request_fingerprint",
]
