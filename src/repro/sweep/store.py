"""Sqlite-backed persistence for sweep results.

A :class:`ResultStore` keys each stored report on ``(request_id,
fingerprint)`` — the stable content-addressed identity minted by
:mod:`repro.sweep.grid` — so results survive process exit, a re-run
against the same store skips everything already present (resumability),
and two stores written at different commits can be diffed.

Reports are stored as their canonical ``to_dict()`` JSON and rehydrated
through :func:`repro.api.results.report_from_dict`, so a loaded report is
equal to the one that was stored.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path

from repro.api.results import GemmReport, ModelReport, report_from_dict
from repro.errors import ConfigError
from repro.sweep.grid import SweepGrid, SweepPoint

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    request_id  TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    kind        TEXT NOT NULL,
    platform    TEXT NOT NULL,
    workload    TEXT NOT NULL,
    tag         TEXT,
    report_json TEXT NOT NULL,
    created_at  TEXT NOT NULL DEFAULT (datetime('now')),
    PRIMARY KEY (request_id, fingerprint)
);
"""


@dataclass(frozen=True)
class StoreDiff:
    """Result of comparing two stores by (request_id, fingerprint)."""

    only_left: tuple[str, ...] = ()
    only_right: tuple[str, ...] = ()
    changed: tuple[str, ...] = ()
    unchanged: tuple[str, ...] = field(default=(), repr=False)

    @property
    def identical(self) -> bool:
        return not (self.only_left or self.only_right or self.changed)


class ResultStore:
    """Persists sweep reports keyed by (request ID, config fingerprint).

    ``path`` may be a filesystem path or ``":memory:"`` (tests). The
    store is a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = str(path)
        try:
            self._conn = sqlite3.connect(self.path)
            self._conn.executescript(_SCHEMA)
            self._conn.commit()
        except sqlite3.Error as error:
            raise ConfigError(
                f"cannot open result store {self.path!r}: {error}"
            ) from None

    # -- writes ------------------------------------------------------------------------
    def put(
        self, point: SweepPoint, report: GemmReport | ModelReport
    ) -> None:
        """Store (or overwrite) the report of one sweep point."""
        request = point.request
        if request.scenario is not None:
            workload = request.scenario.name
        else:
            workload = request.model or str(request.gemm)
        self._conn.execute(
            "INSERT OR REPLACE INTO results"
            " (request_id, fingerprint, kind, platform, workload, tag,"
            "  report_json)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                point.request_id,
                point.fingerprint,
                request.kind,
                request.platform,
                workload,
                request.tag,
                json.dumps(report.to_dict(), sort_keys=True),
            ),
        )
        self._conn.commit()

    # -- reads -------------------------------------------------------------------------
    def get(self, point: SweepPoint) -> GemmReport | ModelReport | None:
        """The stored report of ``point``, or ``None`` if absent."""
        row = self._conn.execute(
            "SELECT report_json FROM results"
            " WHERE request_id = ? AND fingerprint = ?",
            (point.request_id, point.fingerprint),
        ).fetchone()
        if row is None:
            return None
        return report_from_dict(json.loads(row[0]))

    def __contains__(self, point: SweepPoint) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM results WHERE request_id = ? AND fingerprint = ?",
            (point.request_id, point.fingerprint),
        ).fetchone()
        return row is not None

    def stored_keys(self) -> set[tuple[str, str]]:
        """Every stored ``(request_id, fingerprint)`` pair."""
        rows = self._conn.execute(
            "SELECT request_id, fingerprint FROM results"
        ).fetchall()
        return {(request_id, fingerprint) for request_id, fingerprint in rows}

    def pending(self, grid: SweepGrid) -> tuple[SweepPoint, ...]:
        """Grid points with no stored result, in grid order.

        A fully-stored grid resumes to an empty tuple — zero simulations
        left to run.
        """
        stored = self.stored_keys()
        return tuple(
            point
            for point in grid
            if (point.request_id, point.fingerprint) not in stored
        )

    def reports(
        self, grid: SweepGrid
    ) -> tuple[GemmReport | ModelReport | None, ...]:
        """Stored reports in grid order (``None`` where absent)."""
        return tuple(self.get(point) for point in grid)

    def __len__(self) -> int:
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM results"
        ).fetchone()
        return int(count)

    # -- comparison --------------------------------------------------------------------
    def _payloads(self) -> dict[tuple[str, str], str]:
        rows = self._conn.execute(
            "SELECT request_id, fingerprint, report_json FROM results"
        ).fetchall()
        return {(rid, fp): payload for rid, fp, payload in rows}

    def diff(self, other: "ResultStore") -> StoreDiff:
        """Compare against another store (e.g. written at another commit).

        Keys present on one side only land in ``only_left``/``only_right``;
        shared keys whose report payloads differ land in ``changed``.
        """
        left, right = self._payloads(), other._payloads()
        only_left = sorted(rid for rid, _fp in set(left) - set(right))
        only_right = sorted(rid for rid, _fp in set(right) - set(left))
        changed, unchanged = [], []
        for key in sorted(set(left) & set(right)):
            (changed if left[key] != right[key] else unchanged).append(key[0])
        return StoreDiff(
            only_left=tuple(only_left),
            only_right=tuple(only_right),
            changed=tuple(changed),
            unchanged=tuple(unchanged),
        )

    def merge_from(self, other: "ResultStore") -> int:
        """Copy reports absent here from ``other``; returns rows added."""
        mine = self.stored_keys()
        added = 0
        for row in other._conn.execute(
            "SELECT request_id, fingerprint, kind, platform, workload, tag,"
            " report_json, created_at FROM results"
        ):
            if (row[0], row[1]) in mine:
                continue
            self._conn.execute(
                "INSERT INTO results"
                " (request_id, fingerprint, kind, platform, workload, tag,"
                "  report_json, created_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                row,
            )
            added += 1
        self._conn.commit()
        return added

    # -- lifecycle ---------------------------------------------------------------------
    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ResultStore(path={self.path!r}, results={len(self)})"


def open_store(path: str | Path | None) -> ResultStore | None:
    """``ResultStore`` at ``path``, or ``None`` when no path is given."""
    return ResultStore(path) if path is not None else None


__all__ = ["ResultStore", "StoreDiff", "open_store"]
