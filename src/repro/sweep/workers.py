"""The sweep engine: shard a request grid across worker processes.

``jobs=1`` executes the grid in order through one
:class:`~repro.api.session.Session` (same results, same cache, as a plain
``run_batch``). ``jobs>1`` round-robins the pending points across N
worker processes; each worker runs its shard in a private session with a
private :class:`~repro.gemm.cache.TimingCache`, ships its reports and an
exported cache snapshot back, and the parent folds every worker cache
into its own with :meth:`TimingCache.merge` on join.

Because the simulator is deterministic, a sharded run is bit-identical to
the sequential one — workers just recompute shared sample windows instead
of sharing them live. With a :class:`~repro.sweep.store.ResultStore`
attached, every finished point is persisted immediately; with
``resume=True``, points already in the store are loaded instead of
simulated, so re-running a finished sweep executes zero simulations.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace

from repro.api.results import GemmReport, ModelReport
from repro.api.session import Session
from repro.errors import BatchRequestError, ConfigError
from repro.gemm.cache import CacheEntries, CacheStats, TimingCache
from repro.obs.metrics import MetricsRegistry
from repro.sweep.grid import SweepGrid, SweepPoint, SweepSpec, expand
from repro.sweep.store import ResultStore


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one :func:`run_sweep` call.

    ``reports`` follows grid order. ``executed`` and ``loaded`` partition
    the grid's request IDs into points simulated this run vs points served
    from the result store; ``cache_stats`` snapshots the parent cache
    after worker caches were merged in.
    """

    grid: SweepGrid
    reports: tuple[GemmReport | ModelReport, ...]
    executed: tuple[str, ...]
    loaded: tuple[str, ...]
    cache_stats: CacheStats
    jobs: int = 1

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)

    def report_by_id(self) -> dict[str, GemmReport | ModelReport]:
        return {
            point.request_id: report
            for point, report in zip(self.grid.points, self.reports)
        }

    def to_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "executed": list(self.executed),
            "loaded": list(self.loaded),
            "cache": self.cache_stats.to_dict(),
            "reports": [
                {"request_id": point.request_id, **report.to_dict()}
                for point, report in zip(self.grid.points, self.reports)
            ],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)


@dataclass(frozen=True)
class _ShardPayload:
    """Everything one worker process needs (must stay picklable).

    ``warm`` optionally pre-loads the worker's private cache (the cluster
    pool ships its merged cache so warm workers skip recomputation); the
    worker then exports only the entries *beyond* the warm set, keeping
    the returned delta small.
    """

    points: tuple[SweepPoint, ...]
    framework_overhead_s: float | None = None
    warm: CacheEntries | None = None


@dataclass(frozen=True)
class ShardOutcome:
    """One shard's reports (by request ID) plus its new cache entries.

    ``metrics`` is the shard session's metrics snapshot
    (:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`); snapshots
    merge associatively, so fold-in order across shards is irrelevant.
    """

    reports: tuple[tuple[str, GemmReport | ModelReport], ...]
    cache: CacheEntries
    metrics: dict | None = None


def _platform_kwargs(overhead: float | None) -> dict | None:
    if overhead is None:
        return None
    return {"framework_overhead_s": overhead}


def execute_point(
    session: Session, point: SweepPoint, overhead: float | None
) -> GemmReport | ModelReport:
    """Run one grid point, wrapping failures with the point's identity."""
    try:
        return session.run_request(
            point.request, platform_kwargs=_platform_kwargs(overhead)
        )
    except BatchRequestError:
        raise
    except Exception as error:
        raise BatchRequestError.wrap(
            error, point.request, point.index, request_id=point.request_id
        ) from error


def run_shard_points(
    points,
    framework_overhead_s: float | None = None,
    warm: CacheEntries | None = None,
) -> ShardOutcome:
    """The shard-execution core shared by local, pool, and remote paths.

    Runs ``points`` in order through a private session. With ``warm``
    entries the session starts pre-loaded (lookups against them count as
    hits, so warm-pool statistics are observable) and the returned cache
    holds only the entries this shard added beyond the warm set.
    """
    cache = TimingCache()
    baseline = None
    if warm is not None:
        # Entries only: the warm set's historical counters belong to the
        # process that produced them, not to this shard.
        baseline = replace(warm, stats=CacheStats())
        cache.merge(baseline)
    session = Session(cache=cache, metrics=MetricsRegistry())
    reports = tuple(
        (
            point.request_id,
            execute_point(session, point, framework_overhead_s),
        )
        for point in points
    )
    entries = cache.export_entries()
    if baseline is not None:
        entries = entries.minus(baseline)
    return ShardOutcome(
        reports=reports, cache=entries, metrics=session.metrics.snapshot()
    )


def _run_shard(payload: _ShardPayload) -> ShardOutcome:
    """Worker entry point: run one shard in a private session/cache."""
    return run_shard_points(
        payload.points, payload.framework_overhead_s, payload.warm
    )


def shard_points(
    points: tuple[SweepPoint, ...], jobs: int
) -> list[list[SweepPoint]]:
    """Round-robin points into ``jobs`` balanced shards (empty ones dropped)."""
    shards: list[list[SweepPoint]] = [[] for _ in range(jobs)]
    for position, point in enumerate(points):
        shards[position % jobs].append(point)
    return [shard for shard in shards if shard]


_shard = shard_points


def load_resumable(
    grid: SweepGrid, store: ResultStore
) -> dict[str, GemmReport | ModelReport]:
    """Stored reports of ``grid``, keyed by request ID (resume support).

    Tags are display labels outside the stored identity, so loaded
    reports wear the current sweep's tag.
    """
    loaded: dict[str, GemmReport | ModelReport] = {}
    for point in grid:
        report = store.get(point)
        if report is not None:
            if report.tag != point.request.tag:
                report = replace(report, tag=point.request.tag)
            loaded[point.request_id] = report
    return loaded


def run_sweep(
    spec: SweepSpec | SweepGrid,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    resume: bool = False,
    session: Session | None = None,
    cache: TimingCache | None = None,
) -> SweepResult:
    """Run a sweep spec/grid, optionally sharded and optionally resumable.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` runs in-process. Workers get private
        caches that are merged back into the parent session's cache.
    store:
        When given, every finished report is persisted immediately, so an
        interrupted sweep loses at most the in-flight shards.
    resume:
        Skip points whose ``(request_id, fingerprint)`` is already in
        ``store`` (which is then required) and load their reports instead.
    session:
        The parent session (defaults to a fresh one over ``cache``); the
        sequential path executes directly on it, and both paths leave its
        cache warm for whatever the caller runs next.
    """
    grid = expand(spec) if isinstance(spec, SweepSpec) else spec
    if not isinstance(grid, SweepGrid):
        raise ConfigError(
            f"run_sweep expects a SweepSpec or SweepGrid, got {spec!r}"
        )
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    if resume and store is None:
        raise ConfigError("resume=True requires a result store")
    session = session if session is not None else Session(cache=cache)

    loaded = load_resumable(grid, store) if resume else {}
    todo = tuple(
        point for point in grid if point.request_id not in loaded
    )

    executed: dict[str, GemmReport | ModelReport] = {}
    if jobs == 1 or len(todo) <= 1:
        for point in todo:
            report = execute_point(
                session, point, grid.framework_overhead_s
            )
            executed[point.request_id] = report
            if store is not None:
                store.put(point, report)
    else:
        shards = shard_points(todo, jobs)
        payloads = [
            _ShardPayload(
                points=tuple(shard),
                framework_overhead_s=grid.framework_overhead_s,
            )
            for shard in shards
        ]
        by_id = grid.by_id()
        with ProcessPoolExecutor(max_workers=len(payloads)) as pool:
            for result in pool.map(_run_shard, payloads):
                session.cache.merge(result.cache)
                if session.metrics is not None and result.metrics is not None:
                    session.metrics.merge(result.metrics)
                for request_id, report in result.reports:
                    executed[request_id] = report
                    if store is not None:
                        store.put(by_id[request_id], report)

    reports = tuple(
        executed.get(point.request_id, loaded.get(point.request_id))
        for point in grid
    )
    return SweepResult(
        grid=grid,
        reports=reports,
        executed=tuple(
            point.request_id for point in grid if point.request_id in executed
        ),
        loaded=tuple(
            point.request_id for point in grid if point.request_id in loaded
        ),
        cache_stats=session.cache.stats(),
        jobs=jobs,
    )


__all__ = [
    "ShardOutcome",
    "SweepResult",
    "execute_point",
    "load_resumable",
    "run_shard_points",
    "run_sweep",
    "shard_points",
]
