"""Fig 7: iso-FLOP comparisons through the cycle-level pipeline.

Left: 2-SMA vs 4-TC on square GEMMs (both 256 FP16 MAC units per SM).
Paper: 2-SMA reaches 90.71% steady-state FLOP efficiency vs 68.46% for
4-TC, up to 1.47x speedup. Right: the same SMA hardware running the TPU's
plain weight-stationary dataflow is 20-40% slower than the paper's
semi-broadcast dataflow because the diagonal C drain must stage through
the shared-memory banks.
"""

from __future__ import annotations

from repro.api.session import Session
from repro.config import DataType
from repro.experiments.runner import ExperimentReport
from repro.gemm.problem import GemmProblem
from repro.systolic.dataflow import Dataflow

DEFAULT_SIZES = tuple(2 ** p for p in range(7, 14))


def run_fig7_left(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    session: Session | None = None,
) -> ExperimentReport:
    """2-SMA vs 4-TC: speedup and steady-state FLOP efficiency."""
    report = ExperimentReport(
        experiment="Fig 7 (left): iso-FLOP 2-SMA vs 4-TC (square GEMM)",
        headers=["size", "tc_sm_eff", "sma_sm_eff", "speedup_2sma_vs_4tc"],
        notes="sm_eff: per-SM steady state; speedup: whole-GPU time ratio",
    )
    session = session or Session()
    tc = session.executor("gpu-tc")
    sma = session.executor("sma:2")
    tc_effs, sma_effs, speedups = [], [], []
    for n in sizes:
        problem = GemmProblem(n, n, n, dtype=DataType.FP16)
        t_tc = tc.time_gemm(problem)
        t_sma = sma.time_gemm(problem)
        speedup = t_tc.seconds / t_sma.seconds
        tc_effs.append(t_tc.sm_efficiency)
        sma_effs.append(t_sma.sm_efficiency)
        speedups.append(speedup)
        report.add_row(n, t_tc.sm_efficiency, t_sma.sm_efficiency, speedup)

    report.add_check(
        "2-SMA steady-state efficiency >= 85% (paper 90.71%)",
        max(sma_effs) >= 0.85,
    )
    report.add_check(
        "4-TC steady-state efficiency in 60-72% (paper 68.46%)",
        0.60 <= max(tc_effs) <= 0.72,
    )
    report.add_check(
        "2-SMA speedup over 4-TC in 1.2-1.5x (paper up to 1.47x)",
        all(1.2 <= s <= 1.5 for s in speedups),
    )
    return report


def run_fig7_right(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    session: Session | None = None,
) -> ExperimentReport:
    """Semi-broadcast vs TPU weight-stationary dataflow on the SMA units."""
    report = ExperimentReport(
        experiment="Fig 7 (right): SMA dataflow vs TPU weight-stationary",
        headers=["size", "normalized_cycles_ws", "normalized_cycles_sbws"],
        notes="normalized to the semi-broadcast dataflow (lower is better)",
    )
    session = session or Session()
    sbws = session.executor("sma:2", dataflow=Dataflow.SEMI_BROADCAST_WS)
    ws = session.executor("sma:2", dataflow=Dataflow.WEIGHT_STATIONARY)
    ratios = []
    for n in sizes:
        problem = GemmProblem(n, n, n, dtype=DataType.FP16)
        t_sb = sbws.time_gemm(problem)
        t_ws = ws.time_gemm(problem)
        ratio = t_ws.seconds / t_sb.seconds
        ratios.append(ratio)
        report.add_row(n, ratio, 1.0)

    report.add_check(
        "weight-stationary dataflow 15-45% slower (paper 20-40%)",
        all(1.15 <= r <= 1.45 for r in ratios),
    )
    return report
