"""Fig 7: iso-FLOP comparisons through the cycle-level pipeline.

Left: 2-SMA vs 4-TC on square GEMMs (both 256 FP16 MAC units per SM).
Paper: 2-SMA reaches 90.71% steady-state FLOP efficiency vs 68.46% for
4-TC, up to 1.47x speedup. Right: the same SMA hardware running the TPU's
plain weight-stationary dataflow is 20-40% slower than the paper's
semi-broadcast dataflow because the diagonal C drain must stage through
the shared-memory banks.

Both figures are expressed as sweep grids and executed through
:mod:`repro.sweep`, so they shard across worker processes (``jobs``) and
persist/resume through a :class:`~repro.sweep.store.ResultStore` exactly
like any other sweep.
"""

from __future__ import annotations

from repro.api.session import Session
from repro.experiments.runner import ExperimentReport
from repro.sweep.grid import SweepGrid, SweepSpec, expand
from repro.sweep.store import ResultStore
from repro.sweep.workers import run_sweep
from repro.systolic.dataflow import Dataflow

DEFAULT_SIZES = tuple(2 ** p for p in range(7, 14))


def fig7_left_grid(sizes: tuple[int, ...] = DEFAULT_SIZES) -> SweepGrid:
    """The iso-FLOP grid: every size on 4-TC and on 2-SMA, FP16."""
    return expand(
        SweepSpec(
            platforms=("gpu-tc", "sma:2"),
            gemms=sizes,
            gemm_dtype="fp16",
            tag="fig7_left",
        )
    )


def fig7_right_grid(sizes: tuple[int, ...] = DEFAULT_SIZES) -> SweepGrid:
    """The dataflow-ablation grid: 2-SMA under both dataflows, FP16."""
    return expand(
        SweepSpec(
            platforms=("sma:2",),
            gemms=sizes,
            gemm_dtype="fp16",
            dataflows=(
                Dataflow.SEMI_BROADCAST_WS.value,
                Dataflow.WEIGHT_STATIONARY.value,
            ),
            tag="fig7_right",
        )
    )


def run_fig7_left(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    session: Session | None = None,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    resume: bool = False,
) -> ExperimentReport:
    """2-SMA vs 4-TC: speedup and steady-state FLOP efficiency."""
    report = ExperimentReport(
        experiment="Fig 7 (left): iso-FLOP 2-SMA vs 4-TC (square GEMM)",
        headers=["size", "tc_sm_eff", "sma_sm_eff", "speedup_2sma_vs_4tc"],
        notes="sm_eff: per-SM steady state; speedup: whole-GPU time ratio",
    )
    result = run_sweep(
        fig7_left_grid(sizes),
        jobs=jobs,
        store=store,
        resume=resume,
        session=session or Session(),
    )
    by_key = {(r.platform, r.n): r for r in result.reports}
    tc_effs, sma_effs, speedups = [], [], []
    for n in sizes:
        t_tc = by_key[("gpu-tc", n)]
        t_sma = by_key[("sma:2", n)]
        speedup = t_tc.seconds / t_sma.seconds
        tc_effs.append(t_tc.sm_efficiency)
        sma_effs.append(t_sma.sm_efficiency)
        speedups.append(speedup)
        report.add_row(n, t_tc.sm_efficiency, t_sma.sm_efficiency, speedup)

    report.add_check(
        "2-SMA steady-state efficiency >= 85% (paper 90.71%)",
        max(sma_effs) >= 0.85,
    )
    report.add_check(
        "4-TC steady-state efficiency in 60-72% (paper 68.46%)",
        0.60 <= max(tc_effs) <= 0.72,
    )
    report.add_check(
        "2-SMA speedup over 4-TC in 1.2-1.5x (paper up to 1.47x)",
        all(1.2 <= s <= 1.5 for s in speedups),
    )
    return report


def run_fig7_right(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    session: Session | None = None,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    resume: bool = False,
) -> ExperimentReport:
    """Semi-broadcast vs TPU weight-stationary dataflow on the SMA units."""
    report = ExperimentReport(
        experiment="Fig 7 (right): SMA dataflow vs TPU weight-stationary",
        headers=["size", "normalized_cycles_ws", "normalized_cycles_sbws"],
        notes="normalized to the semi-broadcast dataflow (lower is better)",
    )
    result = run_sweep(
        fig7_right_grid(sizes),
        jobs=jobs,
        store=store,
        resume=resume,
        session=session or Session(),
    )
    by_key = {(r.dataflow, r.n): r for r in result.reports}
    ratios = []
    for n in sizes:
        t_sb = by_key[(Dataflow.SEMI_BROADCAST_WS.value, n)]
        t_ws = by_key[(Dataflow.WEIGHT_STATIONARY.value, n)]
        ratio = t_ws.seconds / t_sb.seconds
        ratios.append(ratio)
        report.add_row(n, ratio, 1.0)

    report.add_check(
        "weight-stationary dataflow 15-45% slower (paper 20-40%)",
        all(1.15 <= r <= 1.45 for r in ratios),
    )
    return report
