"""Tables I/II, the Fig 2 operator inventory, and the SS IV-A area claim."""

from __future__ import annotations

from repro.config import sma_3unit, volta_gpu
from repro.dnn.zoo import MODEL_BUILDERS, TABLE_II_CONV_LAYERS
from repro.experiments.runner import ExperimentReport


def run_table1() -> ExperimentReport:
    """Table I: baseline GPU and SMA configurations."""
    gpu = volta_gpu()
    sma = sma_3unit()
    report = ExperimentReport(
        experiment="Table I: Baseline GPU and SMA configurations",
        headers=["parameter", "GPGPU (Volta)", "SMA"],
    )
    report.add_row("SMs", gpu.num_sms, gpu.num_sms)
    report.add_row("CUDA cores / SM", f"{gpu.cuda_cores_per_sm} FP32", "3x 8x8 SMA unit")
    report.add_row(
        "Tensor cores / SM",
        f"{gpu.tensor_cores_per_sm} ({gpu.fp16_units_per_sm} FP16 units)",
        "(reused by SMA units)",
    )
    report.add_row(
        "Shared memory / SM",
        f"{gpu.shared_memory_banks} banks, {gpu.shared_memory_kb} KB",
        f"{gpu.shared_memory_banks} banks"
        f" ({sma.smem_banks_for_sma} for all SMA units)",
    )
    report.add_row(
        "Register file / SM",
        f"{gpu.register_file_kb} KB",
        f"{gpu.register_file_kb} KB",
    )
    report.add_check("80 SMs (Table I)", gpu.num_sms == 80)
    report.add_check("64 FP32 CUDA cores per SM", gpu.cuda_cores_per_sm == 64)
    report.add_check(
        "4 TCs = 256 FP16 units per SM", gpu.fp16_units_per_sm == 256
    )
    report.add_check(
        "3 SMA units iso-area with SIMD+TC (384 FP16 equivalents)",
        sma_3unit().fp16_equivalent_units == 384,
    )
    return report


def run_table2() -> ExperimentReport:
    """Table II: conv layer counts of the evaluated models."""
    report = ExperimentReport(
        experiment="Table II: CNN models used in the evaluation",
        headers=["network", "conv_layers", "paper", "match"],
    )
    all_match = True
    for name, builder in MODEL_BUILDERS.items():
        graph = builder()
        expected = TABLE_II_CONV_LAYERS[name]
        match = graph.conv_layer_count == expected
        all_match = all_match and match
        report.add_row(name, graph.conv_layer_count, expected, match)
    report.add_check("all conv layer counts match Table II", all_match)
    return report


def run_fig2_inventory() -> ExperimentReport:
    """Fig 2: GEMM-compatible vs GEMM-incompatible op inventory."""
    report = ExperimentReport(
        experiment="Fig 2: hybrid model operator inventory",
        headers=[
            "model", "gemm_ops", "irregular_ops", "irregular_names",
            "gemm_flops_%",
        ],
    )
    for name in ("Mask R-CNN", "DeepLab"):
        graph = MODEL_BUILDERS[name]()
        irregular = graph.irregular_ops
        gemm_ops = sum(1 for op in graph.operators() if op.is_gemm_compatible)
        share = 100.0 * graph.gemm_compatible_flops / graph.total_flops
        report.add_row(
            name,
            gemm_ops,
            len(irregular),
            ", ".join(sorted({type(op).__name__ for op in irregular})),
            share,
        )
    mask = MODEL_BUILDERS["Mask R-CNN"]()
    deeplab = MODEL_BUILDERS["DeepLab"]()
    mask_kinds = {type(op).__name__ for op in mask.irregular_ops}
    deeplab_kinds = {type(op).__name__ for op in deeplab.irregular_ops}
    report.add_check(
        "Mask R-CNN has RoIAlign + RegionProposal (Fig 2 top)",
        {"RoIAlign", "RegionProposal"} <= mask_kinds,
    )
    report.add_check(
        "DeepLab has ArgMax + CRF (Fig 2 bottom)",
        {"ArgMax", "Crf"} <= deeplab_kinds,
    )
    return report


def run_area_overhead() -> ExperimentReport:
    """SS IV-A: SMA area overhead below 0.1% of the SM's storage."""
    gpu = volta_gpu()
    sma = sma_3unit()
    controller_bytes = sma.controller_storage_bytes
    sm_storage = (gpu.register_file_kb + gpu.shared_memory_kb + gpu.l1_cache_kb) * 1024
    overhead = controller_bytes / sm_storage
    report = ExperimentReport(
        experiment="SS IV-A: SMA area overhead",
        headers=["structure", "bytes"],
    )
    report.add_row("systolic controller storage", controller_bytes)
    report.add_row("SM storage (RF + SMEM + L1)", sm_storage)
    report.add_row("overhead", f"{overhead * 100:.4f}%")
    report.add_check(
        "controller storage is 256 B (8x8B Ain + 24x8B Cout)",
        controller_bytes == 256,
    )
    report.add_check("area overhead < 0.1%", overhead < 0.001)
    return report
