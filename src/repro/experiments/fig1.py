"""Fig 1: TensorCore vs TPU FLOPS efficiency on square GEMMs.

The paper measures a cloud TPU-v2 core (22.5 peak TFLOPS) against a V100's
TensorCores and shows the TPU ramping to ~100% FLOPS efficiency with
matrix size while the TC plateaus below ~60-70%. We regenerate the sweep
with the weight-stationary array timing model and the RF-bandwidth-bound
TC estimate.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentReport
from repro.tensorcore.timing import estimate_tc_gemm_efficiency
from repro.tpu.array_timing import time_tpu_gemm

DEFAULT_SIZES = tuple(2 ** p for p in range(7, 15))


def run_fig1(sizes: tuple[int, ...] = DEFAULT_SIZES) -> ExperimentReport:
    """Regenerate the Fig 1 efficiency curves."""
    report = ExperimentReport(
        experiment="Fig 1: TPU vs TensorCore FLOPS efficiency (square GEMM)",
        headers=["size", "tpu_efficiency", "tc_efficiency"],
        notes=(
            "TPU ramp = streamed rows vs array fill/drain;"
            " TC plateau = register-file operand bandwidth"
        ),
    )
    tpu_effs = []
    tc_effs = []
    for n in sizes:
        tpu = time_tpu_gemm(n, n, n)
        tc = estimate_tc_gemm_efficiency(n, n, n)
        tpu_effs.append(tpu.efficiency)
        tc_effs.append(tc.efficiency)
        report.add_row(n, tpu.efficiency, tc.efficiency)

    report.add_check(
        "TPU reaches >= 95% efficiency at the largest size", tpu_effs[-1] >= 0.95
    )
    report.add_check("TC plateaus at <= 72% efficiency", max(tc_effs) <= 0.72)
    report.add_check(
        "TPU efficiency ramps monotonically",
        all(a <= b + 1e-9 for a, b in zip(tpu_effs, tpu_effs[1:])),
    )
    report.add_check(
        "TPU overtakes TC at large sizes", tpu_effs[-1] > tc_effs[-1]
    )
    return report
