"""Experiment harness: one module per paper table/figure."""

from repro.experiments.runner import ExperimentReport
from repro.experiments.catalog_devices import run_catalog_devices
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig7 import run_fig7_left, run_fig7_right
from repro.experiments.fig8 import run_fig8_energy, run_fig8_speedup
from repro.experiments.fig9 import (
    run_fig9_left,
    run_fig9_preemption,
    run_fig9_right,
)
from repro.experiments.tables import (
    run_area_overhead,
    run_fig2_inventory,
    run_table1,
    run_table2,
)

__all__ = [
    "ExperimentReport",
    "run_area_overhead",
    "run_catalog_devices",
    "run_fig1",
    "run_fig2_inventory",
    "run_fig3",
    "run_fig7_left",
    "run_fig7_right",
    "run_fig8_energy",
    "run_fig8_speedup",
    "run_fig9_left",
    "run_fig9_preemption",
    "run_fig9_right",
    "run_table1",
    "run_table2",
]
