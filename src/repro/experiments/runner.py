"""Shared experiment reporting: tabular results with pass/fail checks."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.tables import render_table


@dataclass
class ExperimentReport:
    """Rows of one regenerated table/figure plus acceptance checks.

    ``checks`` maps a human-readable criterion (from DESIGN.md SS5) to a
    boolean; the test suite asserts them and the benchmark harness prints
    them under the table.
    """

    experiment: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    checks: dict[str, bool] = field(default_factory=dict)
    notes: str = ""

    def add_row(self, *cells: object) -> None:
        self.rows.append(list(cells))

    def add_check(self, criterion: str, passed: bool) -> None:
        self.checks[criterion] = bool(passed)

    @property
    def all_passed(self) -> bool:
        return all(self.checks.values())

    def render(self) -> str:
        lines = [render_table(self.headers, self.rows, title=self.experiment)]
        if self.checks:
            lines.append("")
            for criterion, passed in self.checks.items():
                marker = "PASS" if passed else "FAIL"
                lines.append(f"  [{marker}] {criterion}")
        if self.notes:
            lines.append("")
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
