"""Device-class sweep: the paper's comparison re-asked over real parts.

Fig 7/8 compare one hand-coded GPU, SMA, and TPU configuration each.
The catalog generalizes that question to a fleet one: for every named
device in the default catalog, run the same model on the device's
best-fit flavor (TC for GPUs, the array for TPUs) plus the SMA flavor
where the device supports it, and report latency alongside the silicon
the device spends to get it — latency, area, TDP, and throughput per
mm², which is the ranking `explore_slo` applies to serving traffic.
"""

from __future__ import annotations

from repro.api import Session
from repro.catalog.loader import device_names, get_device
from repro.experiments.runner import ExperimentReport

#: The workload every device is scored on (hybrid enough to exercise
#: both the GEMM core and the SIMD tail on GPU parts).
MODEL = "alexnet"


def run_catalog_devices(session: Session | None = None) -> ExperimentReport:
    """Latency and silicon efficiency of every default-catalog device."""
    session = session or Session()
    report = ExperimentReport(
        experiment=f"Catalog device classes: {MODEL} across real parts",
        headers=["device", "platform", "latency_ms", "area_mm2", "tdp_w",
                 "fps_per_100mm2"],
        notes=(
            "fps_per_100mm2 = (1 / latency) / (area / 100): throughput per"
            " unit of silicon, the sweep-axis version of SLO-per-mm2."
        ),
    )

    efficiencies: dict[str, float] = {}
    latencies: dict[str, float] = {}
    for name in device_names():
        device = get_device(name)
        platforms = [name] if device.family == "tpu" else [name, f"sma@{name}:3"]
        for platform in platforms:
            seconds = session.run_model(MODEL, platform).total_seconds
            efficiency = (1.0 / seconds) / (device.area_mm2 / 100.0)
            efficiencies[platform] = efficiency
            latencies[platform] = seconds
            report.add_row(
                name,
                platform,
                seconds * 1e3,
                device.area_mm2,
                device.tdp_w,
                efficiency,
            )

    gpus = device_names("gpu")
    report.add_check(
        "SMA flavor beats the TC flavor's latency on every GPU part",
        all(latencies[f"sma@{name}:3"] < latencies[name] for name in gpus),
    )
    report.add_check(
        "the edge part trades latency for area (orin slowest GPU)",
        latencies["orin"] == max(latencies[name] for name in gpus),
    )
    report.add_check(
        "...and wins throughput per mm2 among the GPU parts",
        efficiencies["sma@orin:3"]
        == max(efficiencies[f"sma@{name}:3"] for name in gpus),
    )
    report.add_check(
        "every device carries silicon metadata for the ranking",
        all(get_device(name).area_mm2 > 0 for name in device_names()),
    )
    return report
