"""Export regenerated experiment data to CSV (for external plotting).

The paper's figures are line/bar charts; this module writes each
regenerated table as a CSV file so the series can be re-plotted with any
tool. Used by the ``python -m repro export`` CLI.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable

from repro.experiments.catalog_devices import run_catalog_devices
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig7 import run_fig7_left, run_fig7_right
from repro.experiments.fig8 import run_fig8_energy, run_fig8_speedup
from repro.experiments.fig9 import (
    run_fig9_left,
    run_fig9_preemption,
    run_fig9_right,
)
from repro.experiments.runner import ExperimentReport
from repro.experiments.tables import (
    run_area_overhead,
    run_fig2_inventory,
    run_table1,
    run_table2,
)

EXPERIMENT_RUNNERS: dict[str, Callable[[], ExperimentReport]] = {
    "table1": run_table1,
    "table2": run_table2,
    "fig1": run_fig1,
    "fig2": run_fig2_inventory,
    "fig3": run_fig3,
    "fig7_left": run_fig7_left,
    "fig7_right": run_fig7_right,
    "fig8_speedup": run_fig8_speedup,
    "fig8_energy": run_fig8_energy,
    "fig9_left": run_fig9_left,
    "fig9_right": run_fig9_right,
    "fig9_preemption": run_fig9_preemption,
    "area": run_area_overhead,
    "catalog_devices": run_catalog_devices,
}


def export_report_csv(report: ExperimentReport, path: Path) -> Path:
    """Write one report's rows to ``path`` as CSV."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(report.headers)
        writer.writerows(report.rows)
    return path


def export_all(
    output_dir: str | Path = "results",
    names: list[str] | None = None,
) -> dict[str, Path]:
    """Regenerate and export the selected experiments (default: all).

    Returns a mapping of experiment name to the written CSV path.
    """
    output_dir = Path(output_dir)
    selected = names or list(EXPERIMENT_RUNNERS)
    written = {}
    for name in selected:
        try:
            runner = EXPERIMENT_RUNNERS[name]
        except KeyError:
            raise KeyError(
                f"unknown experiment {name!r}; one of"
                f" {sorted(EXPERIMENT_RUNNERS)}"
            ) from None
        report = runner()
        written[name] = export_report_csv(report, output_dir / f"{name}.csv")
    return written
