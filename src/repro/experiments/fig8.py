"""Fig 8: iso-area comparison on the Table II models.

Top: normalized speedup of 4-TC / 2-SMA / 3-SMA over the SIMD baseline on
the conv/GEMM kernels plus the SIMD-mode irregular operators (the paper's
DeepLab column excludes the CRF — that comparison lives in Fig 3). Paper
averages: 4.6x / 5.6x / 7.5x, with 3-SMA 1.63x over 4-TC.

Bottom: energy normalized to 4-TC with the Global / Shared / Register /
PE / Const split. Paper: 2-SMA 0.88x, 3-SMA 0.77x of the 4-TC energy.
"""

from __future__ import annotations

from repro.api.session import Session
from repro.dnn.graph import LayerGraph
from repro.dnn.zoo import MODEL_BUILDERS, build_deeplab
from repro.energy.accounting import CATEGORIES, EnergyBreakdown
from repro.experiments.runner import ExperimentReport
from repro.platforms.base import ModelRunResult, OpStats

#: Groups included in the kernel-level comparison (the paper's workload:
#: conv/FC layers plus the hybrid models' irregular operators).
_IRREGULAR_GROUPS = ("RoIAlign", "NMS", "ArgMax")


def _fig8_builders():
    builders = dict(MODEL_BUILDERS)
    builders["DeepLab"] = lambda: build_deeplab(with_crf=False)
    return builders


def _included(stat: OpStats) -> bool:
    return stat.mode.startswith("gemm") or stat.group in _IRREGULAR_GROUPS


def _kernel_seconds(result: ModelRunResult) -> float:
    return sum(stat.seconds for stat in result.op_stats if _included(stat))


def _kernel_energy(result: ModelRunResult) -> EnergyBreakdown:
    total = EnergyBreakdown()
    for stat in result.op_stats:
        if _included(stat) and stat.energy is not None:
            total = total.merged(stat.energy)
    return total


def _platforms(session: Session):
    """Kernel-study platforms (zero framework overhead), shared cache."""
    specs = [
        ("SIMD", "gpu-simd"),
        ("4-TC", "gpu-tc"),
        ("2-SMA", "sma:2"),
        ("3-SMA", "sma:3"),
    ]
    return [
        (label, session.platform(spec, framework_overhead_s=0.0))
        for label, spec in specs
    ]


def run_fig8_speedup(session: Session | None = None) -> ExperimentReport:
    """Fig 8 (top): normalized speedup per model and configuration."""
    report = ExperimentReport(
        experiment="Fig 8 (top): iso-area normalized speedup",
        headers=["model", "SIMD", "4-TC", "2-SMA", "3-SMA"],
        notes=(
            "kernel-level comparison; our SIMD baseline models a"
            " CUTLASS-quality SGEMM and is faster than the paper's, so"
            " absolute speedups are lower while accelerator ratios match"
        ),
    )
    platforms = _platforms(session or Session())
    sums = {label: 0.0 for label, _p in platforms}
    count = 0
    tc_avg, sma3_avg, sma2_avg = [], [], []
    for model_name, builder in _fig8_builders().items():
        graph: LayerGraph = builder()
        seconds = {
            label: _kernel_seconds(platform.run_model(graph))
            for label, platform in platforms
        }
        base = seconds["SIMD"]
        speedups = {label: base / value for label, value in seconds.items()}
        report.add_row(model_name, *(speedups[label] for label, _p in platforms))
        for label, value in speedups.items():
            sums[label] += value
        tc_avg.append(speedups["4-TC"])
        sma2_avg.append(speedups["2-SMA"])
        sma3_avg.append(speedups["3-SMA"])
        count += 1
    averages = {label: total / count for label, total in sums.items()}
    report.add_row("Average", *(averages[label] for label, _p in platforms))

    ratio_32 = averages["3-SMA"] / averages["4-TC"]
    ratio_22 = averages["2-SMA"] / averages["4-TC"]
    report.add_check(
        "ordering SIMD < 4-TC < 2-SMA < 3-SMA on every model",
        all(
            1.0 < t < s2 < s3
            for t, s2, s3 in zip(tc_avg, sma2_avg, sma3_avg)
        ),
    )
    report.add_check(
        "3-SMA is 1.5-1.8x faster than 4-TC on average (paper 1.63x)",
        1.5 <= ratio_32 <= 1.8,
    )
    report.add_check(
        "2-SMA is 1.15-1.45x faster than 4-TC on average (paper 1.22x)",
        1.15 <= ratio_22 <= 1.45,
    )
    return report


def run_fig8_energy(session: Session | None = None) -> ExperimentReport:
    """Fig 8 (bottom): energy normalized to 4-TC with structure split."""
    report = ExperimentReport(
        experiment="Fig 8 (bottom): normalized energy vs 4-TC",
        headers=["model", "config", "total"] + list(CATEGORIES),
        notes="each cell: fraction of the 4-TC total energy for that model",
    )
    platforms = [p for p in _platforms(session or Session()) if p[0] != "SIMD"]
    ratios_2sma, ratios_3sma = [], []
    for model_name, builder in _fig8_builders().items():
        graph = builder()
        energies = {
            label: _kernel_energy(platform.run_model(graph))
            for label, platform in platforms
        }
        reference = energies["4-TC"].total
        for label, _platform in platforms:
            normalized = energies[label].normalized_to(reference)
            total = energies[label].total / reference if reference > 0 else 0.0
            report.add_row(
                model_name, label, total,
                *(normalized[cat] for cat in CATEGORIES),
            )
            if label == "2-SMA":
                ratios_2sma.append(total)
            elif label == "3-SMA":
                ratios_3sma.append(total)

    mean2 = sum(ratios_2sma) / len(ratios_2sma)
    mean3 = sum(ratios_3sma) / len(ratios_3sma)
    report.add_row("Average", "2-SMA", mean2, *([""] * len(CATEGORIES)))
    report.add_row("Average", "3-SMA", mean3, *([""] * len(CATEGORIES)))
    report.notes = (
        "our savings overshoot the paper's 12%/23% because the model"
        " counts only the Fig 8 legend structures; GPUWattch's board-level"
        " constants dilute the paper's ratios (EXPERIMENTS.md)"
    )
    report.add_check(
        "2-SMA saves energy vs 4-TC (paper 12%; band 5-40%)",
        0.60 <= mean2 <= 0.95,
    )
    report.add_check(
        "3-SMA saves energy vs 4-TC (paper 23%; band 15-55%)",
        0.45 <= mean3 <= 0.85,
    )
    report.add_check(
        "energy ordering 3-SMA < 2-SMA < 4-TC on every model",
        all(s3 < s2 < 1.0 for s2, s3 in zip(ratios_2sma, ratios_3sma)),
    )
    return report
