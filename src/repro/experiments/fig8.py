"""Fig 8: iso-area comparison on the Table II models.

Top: normalized speedup of 4-TC / 2-SMA / 3-SMA over the SIMD baseline on
the conv/GEMM kernels plus the SIMD-mode irregular operators (the paper's
DeepLab column excludes the CRF — that comparison lives in Fig 3). Paper
averages: 4.6x / 5.6x / 7.5x, with 3-SMA 1.63x over 4-TC.

Bottom: energy normalized to 4-TC with the Global / Shared / Register /
PE / Const split. Paper: 2-SMA 0.88x, 3-SMA 0.77x of the 4-TC energy.

The whole model x platform matrix is one sweep grid executed through
:mod:`repro.sweep` (kernel study: zero framework overhead), so it shards
across workers and persists/resumes like any other sweep; the energy
figure reads the per-op energy dicts carried by the sweep's
:class:`~repro.api.results.ModelReport` objects.
"""

from __future__ import annotations

from repro.api.results import ModelReport, OpReport
from repro.api.session import Session
from repro.energy.accounting import CATEGORIES, EnergyBreakdown
from repro.experiments.runner import ExperimentReport
from repro.sweep.grid import SweepGrid, SweepSpec, expand
from repro.sweep.store import ResultStore
from repro.sweep.workers import run_sweep

#: Groups included in the kernel-level comparison (the paper's workload:
#: conv/FC layers plus the hybrid models' irregular operators).
_IRREGULAR_GROUPS = ("RoIAlign", "NMS", "ArgMax")

#: Fig 8 display label -> model spec (DeepLab without the CRF tail).
FIG8_MODELS = (
    ("AlexNet", "alexnet"),
    ("VGG-A", "vgg_a"),
    ("GoogLeNet", "googlenet"),
    ("Mask R-CNN", "mask_rcnn"),
    ("DeepLab", "deeplab:nocrf"),
)

#: Fig 8 display label -> platform spec, SIMD baseline first.
FIG8_PLATFORMS = (
    ("SIMD", "gpu-simd"),
    ("4-TC", "gpu-tc"),
    ("2-SMA", "sma:2"),
    ("3-SMA", "sma:3"),
)


def fig8_grid() -> SweepGrid:
    """The iso-area grid: every Table II model on every configuration."""
    return expand(
        SweepSpec(
            platforms=tuple(spec for _label, spec in FIG8_PLATFORMS),
            models=tuple(spec for _label, spec in FIG8_MODELS),
            framework_overhead_s=0.0,  # kernel study, no graph runtime
            tag="fig8",
        )
    )


def _included(op: OpReport) -> bool:
    return op.mode.startswith("gemm") or op.group in _IRREGULAR_GROUPS


def _kernel_seconds(report: ModelReport) -> float:
    return sum(op.seconds for op in report.ops if _included(op))


def _kernel_energy(report: ModelReport) -> EnergyBreakdown:
    total = EnergyBreakdown()
    for op in report.ops:
        if _included(op) and op.energy is not None:
            total = total.merged(EnergyBreakdown(joules=dict(op.energy)))
    return total


def _fig8_reports(
    session: Session | None,
    jobs: int,
    store: ResultStore | None,
    resume: bool,
) -> dict[tuple[str, str], ModelReport]:
    """Sweep the grid; reports keyed by (model label, platform label)."""
    result = run_sweep(
        fig8_grid(),
        jobs=jobs,
        store=store,
        resume=resume,
        session=session or Session(),
    )
    by_spec = {(r.model, r.platform): r for r in result.reports}
    return {
        (model_label, platform_label): by_spec[(model_spec, platform_spec)]
        for model_label, model_spec in FIG8_MODELS
        for platform_label, platform_spec in FIG8_PLATFORMS
    }


def run_fig8_speedup(
    session: Session | None = None,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    resume: bool = False,
) -> ExperimentReport:
    """Fig 8 (top): normalized speedup per model and configuration."""
    report = ExperimentReport(
        experiment="Fig 8 (top): iso-area normalized speedup",
        headers=["model"] + [label for label, _spec in FIG8_PLATFORMS],
        notes=(
            "kernel-level comparison; our SIMD baseline models a"
            " CUTLASS-quality SGEMM and is faster than the paper's, so"
            " absolute speedups are lower while accelerator ratios match"
        ),
    )
    reports = _fig8_reports(session, jobs, store, resume)
    labels = [label for label, _spec in FIG8_PLATFORMS]
    sums = {label: 0.0 for label in labels}
    tc_avg, sma3_avg, sma2_avg = [], [], []
    for model_label, _spec in FIG8_MODELS:
        seconds = {
            label: _kernel_seconds(reports[(model_label, label)])
            for label in labels
        }
        base = seconds["SIMD"]
        speedups = {label: base / value for label, value in seconds.items()}
        report.add_row(model_label, *(speedups[label] for label in labels))
        for label, value in speedups.items():
            sums[label] += value
        tc_avg.append(speedups["4-TC"])
        sma2_avg.append(speedups["2-SMA"])
        sma3_avg.append(speedups["3-SMA"])
    count = len(FIG8_MODELS)
    averages = {label: total / count for label, total in sums.items()}
    report.add_row("Average", *(averages[label] for label in labels))

    ratio_32 = averages["3-SMA"] / averages["4-TC"]
    ratio_22 = averages["2-SMA"] / averages["4-TC"]
    report.add_check(
        "ordering SIMD < 4-TC < 2-SMA < 3-SMA on every model",
        all(
            1.0 < t < s2 < s3
            for t, s2, s3 in zip(tc_avg, sma2_avg, sma3_avg)
        ),
    )
    report.add_check(
        "3-SMA is 1.5-1.8x faster than 4-TC on average (paper 1.63x)",
        1.5 <= ratio_32 <= 1.8,
    )
    report.add_check(
        "2-SMA is 1.15-1.45x faster than 4-TC on average (paper 1.22x)",
        1.15 <= ratio_22 <= 1.45,
    )
    return report


def run_fig8_energy(
    session: Session | None = None,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    resume: bool = False,
) -> ExperimentReport:
    """Fig 8 (bottom): energy normalized to 4-TC with structure split."""
    report = ExperimentReport(
        experiment="Fig 8 (bottom): normalized energy vs 4-TC",
        headers=["model", "config", "total"] + list(CATEGORIES),
        notes="each cell: fraction of the 4-TC total energy for that model",
    )
    reports = _fig8_reports(session, jobs, store, resume)
    labels = [label for label, _spec in FIG8_PLATFORMS if label != "SIMD"]
    ratios_2sma, ratios_3sma = [], []
    for model_label, _spec in FIG8_MODELS:
        energies = {
            label: _kernel_energy(reports[(model_label, label)])
            for label in labels
        }
        reference = energies["4-TC"].total
        for label in labels:
            normalized = energies[label].normalized_to(reference)
            total = energies[label].total / reference if reference > 0 else 0.0
            report.add_row(
                model_label, label, total,
                *(normalized[cat] for cat in CATEGORIES),
            )
            if label == "2-SMA":
                ratios_2sma.append(total)
            elif label == "3-SMA":
                ratios_3sma.append(total)

    mean2 = sum(ratios_2sma) / len(ratios_2sma)
    mean3 = sum(ratios_3sma) / len(ratios_3sma)
    report.add_row("Average", "2-SMA", mean2, *([""] * len(CATEGORIES)))
    report.add_row("Average", "3-SMA", mean3, *([""] * len(CATEGORIES)))
    report.notes = (
        "our savings overshoot the paper's 12%/23% because the model"
        " counts only the Fig 8 legend structures; GPUWattch's board-level"
        " constants dilute the paper's ratios (EXPERIMENTS.md)"
    )
    report.add_check(
        "2-SMA saves energy vs 4-TC (paper 12%; band 5-40%)",
        0.60 <= mean2 <= 0.95,
    )
    report.add_check(
        "3-SMA saves energy vs 4-TC (paper 23%; band 15-55%)",
        0.45 <= mean3 <= 0.85,
    )
    report.add_check(
        "energy ordering 3-SMA < 2-SMA < 4-TC on every model",
        all(s3 < s2 < 1.0 for s2, s3 in zip(ratios_2sma, ratios_3sma)),
    )
    return report
