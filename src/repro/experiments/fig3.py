"""Fig 3: TPU vs GPU end-to-end on the hybrid models (+ CRF on CPU).

Paper reference points: Mask R-CNN 358 ms on TPU vs 204 ms on GPU (1.75x);
DeepLab 168 ms on TPU vs 85 ms on GPU (1.98x) with the host transfer alone
costing ~1.2x the TPU's GEMM time; the CRF runs 10.65x slower on one CPU
core (555 ms) than on the GPU (52 ms).
"""

from __future__ import annotations

from repro.api.session import Session
from repro.dnn.ops import Crf
from repro.dnn.tensor import nchw
from repro.dnn.zoo import build_deeplab, build_mask_rcnn
from repro.experiments.runner import ExperimentReport
from repro.platforms.base import REPORTING_GROUPS as GROUP_ORDER


def _grouped_ms(result) -> dict[str, float]:
    groups = result.grouped_seconds()
    return {name: groups.get(name, 0.0) * 1e3 for name in GROUP_ORDER}


def run_fig3(session: Session | None = None) -> ExperimentReport:
    """Regenerate the Fig 3 breakdowns (milliseconds per op group)."""
    report = ExperimentReport(
        experiment="Fig 3: TPU vs GPU breakdown on hybrid models (ms)",
        headers=["model", "platform", "total"] + list(GROUP_ORDER),
        notes=(
            "DeepLab bars exclude the CRF (reported separately, as in the"
            " paper); TPU transfer is the CRF host round-trip"
        ),
    )
    session = session or Session()
    gpu = session.platform("gpu-simd")
    tpu = session.platform("tpu")
    cpu = session.platform("cpu")

    mask_rcnn = build_mask_rcnn()
    mr_gpu = gpu.run_model(mask_rcnn)
    mr_tpu = tpu.run_model(mask_rcnn)
    for label, result in (("GPU", mr_gpu), ("TPU", mr_tpu)):
        groups = _grouped_ms(result)
        report.add_row(
            "Mask R-CNN", label, result.total_ms, *(groups[g] for g in GROUP_ORDER)
        )

    deeplab = build_deeplab(with_crf=True)
    dl_gpu = gpu.run_model(deeplab)
    dl_tpu = tpu.run_model(deeplab)
    dl_rows = {}
    for label, result in (("GPU", dl_gpu), ("TPU", dl_tpu)):
        groups = _grouped_ms(result)
        bar_total = result.total_ms - groups["CRF"]
        dl_rows[label] = bar_total
        groups = dict(groups)
        groups["CRF"] = 0.0
        report.add_row(
            "DeepLab", label, bar_total, *(groups[g] for g in GROUP_ORDER)
        )

    crf = Crf.build("crf", nchw(1, 21, 513, 513))
    crf_graph_gpu = gpu.run_op(crf).seconds + (
        gpu.framework_overhead_s * crf.kernel_launches
    )
    crf_cpu = cpu.run_op(crf).seconds
    report.add_row("CRF", "GPU", crf_graph_gpu * 1e3, 0, 0, 0, 0,
                   crf_graph_gpu * 1e3, 0)
    report.add_row("CRF", "CPU(1core)", crf_cpu * 1e3, 0, 0, 0, 0,
                   crf_cpu * 1e3, 0)

    mr_ratio = mr_tpu.total_seconds / mr_gpu.total_seconds
    dl_ratio = dl_rows["TPU"] / dl_rows["GPU"]
    crf_ratio = crf_cpu / crf_graph_gpu
    mr_gpu_groups = _grouped_ms(mr_gpu)
    mr_tpu_groups = _grouped_ms(mr_tpu)

    report.add_check(
        "Mask R-CNN: TPU 1.5-2.1x slower than GPU (paper 1.75x)",
        1.5 <= mr_ratio <= 2.1,
    )
    report.add_check(
        "Mask R-CNN: TPU beats GPU on CNN&FC (paper >1.6x)",
        mr_tpu_groups["CNN&FC"] < mr_gpu_groups["CNN&FC"] / 1.2,
    )
    report.add_check(
        "Mask R-CNN: TPU far slower on NMS + RoIAlign",
        (mr_tpu_groups["NMS"] + mr_tpu_groups["RoIAlign"])
        > 2.0 * (mr_gpu_groups["NMS"] + mr_gpu_groups["RoIAlign"]),
    )
    report.add_check(
        "DeepLab: TPU 1.5-2.2x slower than GPU (paper 1.98x)",
        1.5 <= dl_ratio <= 2.2,
    )
    report.add_check(
        "CRF: single-core CPU 8-13x slower than GPU (paper 10.65x)",
        8.0 <= crf_ratio <= 13.0,
    )
    return report
