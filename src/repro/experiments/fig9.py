"""Fig 9: end-to-end autonomous-driving application.

Left: single-frame latency of the DET + TRA + LOC pipeline on GPU / TC /
SMA — the GPU misses the 100 ms target, TC and SMA meet it with similar
latencies. Right: frame latency vs detection skip interval N = 2..9 — SMA's
temporal flexibility amortizes detection and stays below the TC curve,
which flattens at its co-run contention floor.

Both figures are thin scenario declarations: the pipeline builds a
:class:`~repro.schedule.streams.ScenarioSpec` per (platform, N) and the
timeline scheduler produces the frame latencies, with the TC co-run
contention derived from the lowered tasks' resource claims.
"""

from __future__ import annotations

from repro.apps.driving import LATENCY_TARGET_S, DrivingPipeline
from repro.experiments.runner import ExperimentReport

_SHARED_PIPELINE: DrivingPipeline | None = None


def _pipeline() -> DrivingPipeline:
    global _SHARED_PIPELINE
    if _SHARED_PIPELINE is None:
        _SHARED_PIPELINE = DrivingPipeline()
    return _SHARED_PIPELINE


def run_fig9_left() -> ExperimentReport:
    """Per-platform frame latency with detection every frame."""
    report = ExperimentReport(
        experiment="Fig 9 (left): driving pipeline frame latency (N=1)",
        headers=["platform", "latency_ms", "DET_ms", "TRA_ms", "LOC_ms",
                 "meets_100ms"],
    )
    pipeline = _pipeline()
    results = {kind: pipeline.frame_latency(kind) for kind in ("gpu", "tc", "sma")}
    for kind, result in results.items():
        report.add_row(
            kind.upper(),
            result.latency_ms,
            result.detection_s * 1e3,
            result.tracking_s * 1e3,
            result.localization_s * 1e3,
            result.meets_target,
        )
    report.add_check(
        "GPU exceeds the 100 ms target", not results["gpu"].meets_target
    )
    report.add_check("SMA meets the 100 ms target", results["sma"].meets_target)
    report.add_check("TC meets the 100 ms target", results["tc"].meets_target)
    report.add_check(
        "TC latency within 25% of SMA (paper: 'similar')",
        abs(results["tc"].latency_s - results["sma"].latency_s)
        <= 0.25 * results["sma"].latency_s,
    )
    return report


def run_fig9_right(
    intervals: tuple[int, ...] = tuple(range(2, 10)),
) -> ExperimentReport:
    """Frame latency vs detection skip interval, TC vs SMA."""
    report = ExperimentReport(
        experiment="Fig 9 (right): frame latency vs skipped frames",
        headers=["skip_N", "TC_ms", "SMA_ms"],
    )
    pipeline = _pipeline()
    sma_below_tc = True
    for interval in intervals:
        tc = pipeline.frame_latency("tc", interval)
        sma = pipeline.frame_latency("sma", interval)
        sma_below_tc = sma_below_tc and sma.latency_s < tc.latency_s
        report.add_row(interval, tc.latency_ms, sma.latency_ms)

    base = pipeline.frame_latency("sma", 1).latency_s
    best = pipeline.frame_latency("sma", max(intervals)).latency_s
    at4 = pipeline.frame_latency("sma", 4).latency_s
    report.add_check("SMA below TC at every skip interval", sma_below_tc)
    report.add_check(
        "SMA latency drops >= 30% by N=4 (paper: 'almost 50%')",
        at4 <= 0.70 * base,
    )
    report.add_check(
        "SMA latency drops >= 40% at the largest N", best <= 0.60 * base
    )
    report.notes = (
        f"SMA reduction at N=4: {(1 - at4 / base) * 100:.0f}% of the N=1"
        " latency"
    )
    return report
