"""Fig 9: end-to-end autonomous-driving application.

Left: single-frame latency of the DET + TRA + LOC pipeline on GPU / TC /
SMA — the GPU misses the 100 ms target, TC and SMA meet it with similar
latencies. Right: frame latency vs detection skip interval N = 2..9 — SMA's
temporal flexibility amortizes detection and stays below the TC curve,
which flattens at its co-run contention floor.

Both figures are thin scenario declarations: the pipeline builds a
:class:`~repro.schedule.streams.ScenarioSpec` per (platform, N) and the
timeline scheduler produces the frame latencies, with the TC co-run
contention derived from the lowered tasks' resource claims.
"""

from __future__ import annotations

from repro.api.session import Session
from repro.apps.driving import (
    LATENCY_TARGET_S,
    DrivingPipeline,
    preemption_driving_scenario,
)
from repro.experiments.runner import ExperimentReport

_SHARED_PIPELINE: DrivingPipeline | None = None


def _pipeline() -> DrivingPipeline:
    global _SHARED_PIPELINE
    if _SHARED_PIPELINE is None:
        _SHARED_PIPELINE = DrivingPipeline()
    return _SHARED_PIPELINE


def run_fig9_left() -> ExperimentReport:
    """Per-platform frame latency with detection every frame."""
    report = ExperimentReport(
        experiment="Fig 9 (left): driving pipeline frame latency (N=1)",
        headers=["platform", "latency_ms", "DET_ms", "TRA_ms", "LOC_ms",
                 "meets_100ms"],
    )
    pipeline = _pipeline()
    results = {kind: pipeline.frame_latency(kind) for kind in ("gpu", "tc", "sma")}
    for kind, result in results.items():
        report.add_row(
            kind.upper(),
            result.latency_ms,
            result.detection_s * 1e3,
            result.tracking_s * 1e3,
            result.localization_s * 1e3,
            result.meets_target,
        )
    report.add_check(
        "GPU exceeds the 100 ms target", not results["gpu"].meets_target
    )
    report.add_check("SMA meets the 100 ms target", results["sma"].meets_target)
    report.add_check("TC meets the 100 ms target", results["tc"].meets_target)
    report.add_check(
        "TC latency within 25% of SMA (paper: 'similar')",
        abs(results["tc"].latency_s - results["sma"].latency_s)
        <= 0.25 * results["sma"].latency_s,
    )
    return report


def run_fig9_right(
    intervals: tuple[int, ...] = tuple(range(2, 10)),
) -> ExperimentReport:
    """Frame latency vs detection skip interval, TC vs SMA."""
    report = ExperimentReport(
        experiment="Fig 9 (right): frame latency vs skipped frames",
        headers=["skip_N", "TC_ms", "SMA_ms"],
    )
    pipeline = _pipeline()
    sma_below_tc = True
    for interval in intervals:
        tc = pipeline.frame_latency("tc", interval)
        sma = pipeline.frame_latency("sma", interval)
        sma_below_tc = sma_below_tc and sma.latency_s < tc.latency_s
        report.add_row(interval, tc.latency_ms, sma.latency_ms)

    base = pipeline.frame_latency("sma", 1).latency_s
    best = pipeline.frame_latency("sma", max(intervals)).latency_s
    at4 = pipeline.frame_latency("sma", 4).latency_s
    report.add_check("SMA below TC at every skip interval", sma_below_tc)
    report.add_check(
        "SMA latency drops >= 30% by N=4 (paper: 'almost 50%')",
        at4 <= 0.70 * base,
    )
    report.add_check(
        "SMA latency drops >= 40% at the largest N", best <= 0.60 * base
    )
    report.notes = (
        f"SMA reduction at N=4: {(1 - at4 / base) * 100:.0f}% of the N=1"
        " latency"
    )
    return report


def _frame_bounds(schedule, stream: str):
    """Per-frame (first kernel start, last kernel end) of ``stream``."""
    first_start: dict[int, float] = {}
    last_end: dict[int, float] = {}
    for segment in schedule.segments:
        if segment.stream != stream:
            continue
        frame = segment.frame
        if frame not in first_start or segment.start_s < first_start[frame]:
            first_start[frame] = segment.start_s
        if frame not in last_end or segment.end_s > last_end[frame]:
            last_end[frame] = segment.end_s
    return first_start, last_end


def _worst_case(spec, schedule, stream: str) -> tuple[float, float]:
    """Worst (start delay, response time) of ``stream``'s frames.

    Both measure from the instant a frame was actually startable — its
    release, or the previous frame's completion (frames of one stream
    run in order). Start delay is the queueing wait before the first
    kernel; response time runs to the last kernel's end, so it also
    captures co-run interference stretch."""
    first_start, last_end = _frame_bounds(schedule, stream)
    releases = spec.stream(stream).release_times(spec.frames)
    delay = response = 0.0
    for frame, start in first_start.items():
        ready = releases[frame]
        if frame - 1 in last_end:
            ready = max(ready, last_end[frame - 1])
        delay = max(delay, start - ready)
        response = max(response, last_end[frame] - ready)
    return delay, response


def run_fig9_preemption() -> ExperimentReport:
    """Priority inversion on the driving pipeline, and its fix.

    The safety-critical LOC pose fix (priority 3) arrives on the camera
    clock while the DET backbone (priority 1) keeps the SMA substrate
    saturated with hundreds of sub-millisecond kernels. ``fifo`` lets the
    backlog stretch every LOC frame (co-run interference), inverting the
    priorities; ``exclusive_preempt`` starts LOC at the next kernel
    boundary — the inversion is bounded by the one kernel already on the
    machine — and records every yield it forced. Plain ``exclusive`` must
    stay bit-identical to the preemptive timeline (same dispatch
    decisions) while recording nothing.
    """
    report = ExperimentReport(
        experiment="Fig 9 (preemption): LOC latency vs policy",
        headers=["policy", "loc_response_ms", "loc_start_delay_ms",
                 "kernel_bound_ms", "deschedules"],
    )
    session = Session()
    delays: dict[str, float] = {}
    responses: dict[str, float] = {}
    bounds: dict[str, float] = {}
    yields: dict[str, int] = {}
    timelines: dict[str, list] = {}
    for policy in ("fifo", "exclusive", "exclusive_preempt"):
        spec = preemption_driving_scenario(policy=policy)
        schedule = session.run_scenario(spec)
        delays[policy], responses[policy] = _worst_case(
            spec, schedule, "loc"
        )
        yields[policy] = sum(
            1 for record in schedule.preemptions
            if record.action == "deschedule"
        )
        timelines[policy] = [
            (s.stream, s.frame, s.start_s, s.end_s)
            for s in schedule.segments
        ]
        bounds[policy] = max(
            s.end_s - s.start_s
            for s in schedule.segments if s.stream != "loc"
        )
        report.add_row(
            policy, responses[policy] * 1e3, delays[policy] * 1e3,
            bounds[policy] * 1e3, yields[policy],
        )
    bound = bounds["exclusive_preempt"]
    report.add_check(
        "fifo suffers the inversion (LOC delayed beyond one kernel)",
        responses["fifo"] > responses["exclusive_preempt"] + bound,
    )
    report.add_check(
        "exclusive_preempt bounds LOC start delay to one kernel",
        delays["exclusive_preempt"] <= bound + 1e-9,
    )
    report.add_check(
        "preemptive policy records its yields",
        yields["exclusive_preempt"] >= 1,
    )
    report.add_check(
        "non-preemptive policies record nothing",
        yields["fifo"] == 0 and yields["exclusive"] == 0,
    )
    report.add_check(
        "exclusive and exclusive_preempt timelines agree bit-for-bit",
        timelines["exclusive"] == timelines["exclusive_preempt"],
    )
    report.notes = (
        f"LOC worst-case response: fifo {responses['fifo'] * 1e3:.1f} ms"
        f" vs exclusive_preempt"
        f" {responses['exclusive_preempt'] * 1e3:.1f} ms"
        f" ({yields['exclusive_preempt']} recorded deschedules,"
        f" start delay bounded by the {bound * 1e3:.2f} ms kernel"
        " already on the machine)"
    )
    return report
