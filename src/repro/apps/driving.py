"""Frame-latency model of the autonomous-driving pipeline (Fig 9).

Execution models per platform (paper SS V-C):

* **GPU (SIMD)** — the three tasks occupy the whole GPU one after another:
  frame latency is their sum. The CNNs are slow, so the 100 ms single-frame
  target is missed.
* **SMA** — same sequential schedule, but the CNNs run in systolic mode.
  With detection frame-skipping (run DET every N frames), the temporal
  architecture interleaves DET's layers across the window at layer
  granularity, amortizing its cost to DET/N per frame.
* **TC** — DET and TRA run back to back on the TensorCores while LOC runs
  concurrently on the SIMD units. Co-running is not free: the TC GEMM
  kernels saturate the register-file ports and issue slots that LOC's
  SIMD kernels also need (the spatial-integration cost), modelled as a
  multiplicative contention factor on the co-running phase.

The `skip_interval` sweep reproduces Fig 9 (right): SMA's frame latency
drops by ~50% at N = 4 and stays below TC everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.session import Session
from repro.apps.tasks import DrivingWorkloads, build_driving_workloads
from repro.errors import SchedulingError
from repro.platforms.base import Platform

#: The single-frame latency target (paper: 100 ms).
LATENCY_TARGET_S = 0.100

#: Slowdown of co-running SIMD work with TC GEMM kernels: the TC kernel
#: alone saturates the RF write ports (repro.gpu pipeline measurement), so
#: concurrent SIMD kernels roughly time-share the issue/LSU bandwidth.
TC_CORUN_CONTENTION = 1.7


@dataclass(frozen=True)
class FrameLatency:
    """Average frame latency of one platform at one skip interval."""

    platform: str
    skip_interval: int
    latency_s: float
    detection_s: float
    tracking_s: float
    localization_s: float

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def meets_target(self) -> bool:
        return self.latency_s <= LATENCY_TARGET_S


class DrivingPipeline:
    """Evaluates the DET/TRA/LOC pipeline on gpu / tc / sma platforms."""

    def __init__(
        self,
        workloads: DrivingWorkloads | None = None,
        framework_overhead_s: float = 50e-6,
        session: Session | None = None,
    ) -> None:
        self.workloads = workloads or build_driving_workloads()
        self.session = session or Session()
        self._platforms: dict[str, Platform] = {
            kind: self.session.platform(
                spec, framework_overhead_s=framework_overhead_s
            )
            for kind, spec in (
                ("gpu", "gpu-simd"), ("tc", "gpu-tc"), ("sma", "sma:3"),
            )
        }
        self._task_cache: dict[tuple[str, str], float] = {}

    def _task_seconds(self, platform_kind: str, task: str) -> float:
        key = (platform_kind, task)
        cached = self._task_cache.get(key)
        if cached is not None:
            return cached
        platform = self._platforms[platform_kind]
        graph = {
            "det": self.workloads.detection,
            "tra": self.workloads.tracking,
            "loc": self.workloads.localization,
        }[task]
        seconds = platform.run_model(graph).total_seconds
        self._task_cache[key] = seconds
        return seconds

    def frame_latency(
        self, platform_kind: str, skip_interval: int = 1
    ) -> FrameLatency:
        """Average frame latency with detection every ``skip_interval``."""
        if platform_kind not in self._platforms:
            raise SchedulingError(
                f"unknown platform {platform_kind!r}; one of"
                f" {sorted(self._platforms)}"
            )
        if skip_interval < 1:
            raise SchedulingError("skip interval must be >= 1")
        det = self._task_seconds(platform_kind, "det")
        tra = self._task_seconds(platform_kind, "tra")
        loc = self._task_seconds(platform_kind, "loc")
        det_amortized = det / skip_interval

        if platform_kind == "tc":
            # CNNs on the TensorCores; LOC co-runs on the SIMD units but
            # contends with the TC kernels' SIMD-side work.
            latency = max(det_amortized + tra, loc) * TC_CORUN_CONTENTION
        else:
            # GPU and SMA run the tasks sequentially on the whole chip.
            latency = det_amortized + tra + loc
        return FrameLatency(
            platform=platform_kind,
            skip_interval=skip_interval,
            latency_s=latency,
            detection_s=det,
            tracking_s=tra,
            localization_s=loc,
        )

    def sweep_skip(
        self, platform_kinds: tuple[str, ...] = ("tc", "sma"),
        intervals: tuple[int, ...] = tuple(range(2, 10)),
    ) -> list[FrameLatency]:
        """Fig 9 (right): frame latency vs number of skipped frames."""
        results = []
        for interval in intervals:
            for kind in platform_kinds:
                results.append(self.frame_latency(kind, interval))
        return results
