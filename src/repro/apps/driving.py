"""Frame-latency model of the autonomous-driving pipeline (Fig 9).

The pipeline is a *scenario declaration*: three concurrent streams — DET
(DeepLab on driving frames), TRA (GOTURN), LOC (ORB-SLAM) — scheduled on
one platform's timeline by :mod:`repro.schedule`. The platform's lowered
resource claims, not per-platform hand-coded formulas, produce the
paper's execution models (SS V-C):

* **GPU (SIMD)** — every task claims the SIMD pipelines in full, so the
  streams time-multiplex the chip: frame latency is their sum.
* **SMA** — the CNNs run in systolic mode, which *is* the SIMD MAC
  substrate temporally reconfigured (their tasks claim both resources),
  so the schedule stays effectively sequential — but faster, and with
  detection frame-skipping the window amortizes DET to DET/N per frame.
* **TC** — DET/TRA GEMMs run on the spatially-integrated TensorCores
  while LOC co-runs on the SIMD units. Each TC GEMM task carries a
  fractional SIMD claim measured from its kernel's register-file port
  occupancy, so the co-run contention that stretches LOC (and flattens
  the TC curve above SMA) is *derived* from the simulation rather than
  hard-coded.

The `skip_interval` sweep reproduces Fig 9 (right): SMA's frame latency
drops by ~50% at N = 4 and stays below TC everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.results import ScheduleReport
from repro.api.session import Session
from repro.errors import SchedulingError
from repro.schedule.streams import ScenarioSpec, StreamSpec
from repro.serving.qos import QosSpec
from repro.serving.traces import ArrivalSpec

#: The single-frame latency target (paper: 100 ms).
LATENCY_TARGET_S = 0.100

#: Platform spec per pipeline kind (paper Fig 9 platforms).
DRIVING_PLATFORMS = {"gpu": "gpu-simd", "tc": "gpu-tc", "sma": "sma:3"}


def driving_scenario(
    platform_kind: str,
    skip_interval: int = 1,
    *,
    framework_overhead_s: float = 50e-6,
    policy: str = "fifo",
) -> ScenarioSpec:
    """The Fig 9 pipeline as a scenario declaration.

    The window is ``skip_interval`` frames: DET runs on the first frame
    only (frame skipping) while TRA and LOC run every frame, so the
    window makespan divided by the frame count is the amortized frame
    latency the paper plots.
    """
    if platform_kind not in DRIVING_PLATFORMS:
        raise SchedulingError(
            f"unknown platform {platform_kind!r}; one of"
            f" {sorted(DRIVING_PLATFORMS)}"
        )
    if skip_interval < 1:
        raise SchedulingError("skip interval must be >= 1")
    return ScenarioSpec(
        name=f"driving-{platform_kind}-skip{skip_interval}",
        platform=DRIVING_PLATFORMS[platform_kind],
        frames=skip_interval,
        policy=policy,
        framework_overhead_s=framework_overhead_s,
        streams=(
            StreamSpec(
                name="det",
                model="driving_det",
                priority=3.0,
                skip_interval=skip_interval,
            ),
            StreamSpec(name="tra", model="goturn", priority=2.0),
            StreamSpec(name="loc", model="orb_slam", priority=1.0),
        ),
    )


def open_loop_driving_scenario(
    platform_kind: str | None = None,
    *,
    rate_hz: float = 10.0,
    frames: int = 16,
    seed: int = 0,
    arrival_kind: str = "poisson",
    deadline_s: float = LATENCY_TARGET_S,
    qos: QosSpec | None = None,
    framework_overhead_s: float = 50e-6,
    policy: str = "priority",
) -> ScenarioSpec:
    """The Fig 9 pipeline as an *open-loop serving* workload.

    Camera frames arrive on their own clock — each of DET/TRA/LOC is
    offered ``rate_hz`` stochastic arrivals instead of the closed-loop
    fixed window — and every frame carries the paper's latency target as
    its deadline. ``platform_kind`` may be ``None`` to leave the target
    open for a platform sweep (the SLO explorer's axis).
    """
    if platform_kind is not None and platform_kind not in DRIVING_PLATFORMS:
        raise SchedulingError(
            f"unknown platform {platform_kind!r}; one of"
            f" {sorted(DRIVING_PLATFORMS)}"
        )
    arrivals = ArrivalSpec(kind=arrival_kind, rate_hz=rate_hz, seed=seed)
    return ScenarioSpec(
        name=f"driving-open-loop-{rate_hz:g}hz",
        platform=(
            DRIVING_PLATFORMS[platform_kind]
            if platform_kind is not None
            else None
        ),
        frames=frames,
        policy=policy,
        framework_overhead_s=framework_overhead_s,
        qos=qos,
        streams=(
            StreamSpec(
                name="det",
                model="driving_det",
                priority=3.0,
                deadline_s=deadline_s,
                arrivals=arrivals,
            ),
            StreamSpec(
                name="tra",
                model="goturn",
                priority=2.0,
                deadline_s=deadline_s,
                arrivals=arrivals,
            ),
            StreamSpec(
                name="loc",
                model="orb_slam",
                priority=1.0,
                deadline_s=deadline_s,
                arrivals=arrivals,
            ),
        ),
    )


def preemption_driving_scenario(
    platform_kind: str = "sma",
    *,
    policy: str = "exclusive_preempt",
    frames: int = 8,
    loc_rate_hz: float = 10.0,
    det_rate_hz: float = 40.0,
    framework_overhead_s: float = 50e-6,
) -> ScenarioSpec:
    """The Fig 9 pipeline staged to exhibit the exclusive-policy inversion.

    The latency view of the driving stack: the safety-critical LOC pose
    fix (priority 3) arrives on the camera's fixed clock, while the
    heavyweight DET backbone re-detects continuously (priority 1) and
    keeps the substrate saturated with hundreds of sub-millisecond
    kernels — so every LOC arrival lands mid-kernel of the backbone.
    Under ``fifo`` the LOC frame waits out the whole detection backlog;
    under ``exclusive_preempt`` it starts at the next kernel boundary
    and each forced yield is recorded.
    """
    if platform_kind not in DRIVING_PLATFORMS:
        raise SchedulingError(
            f"unknown platform {platform_kind!r}; one of"
            f" {sorted(DRIVING_PLATFORMS)}"
        )
    return ScenarioSpec(
        name=f"driving-preemption-{policy}",
        platform=DRIVING_PLATFORMS[platform_kind],
        frames=frames,
        policy=policy,
        framework_overhead_s=framework_overhead_s,
        streams=(
            StreamSpec(
                name="loc",
                model="orb_slam",
                priority=3.0,
                arrivals=ArrivalSpec(kind="fixed", rate_hz=loc_rate_hz),
            ),
            StreamSpec(
                name="tra",
                model="goturn",
                priority=2.0,
                arrivals=ArrivalSpec(kind="fixed", rate_hz=loc_rate_hz),
            ),
            StreamSpec(
                name="det",
                model="driving_det",
                priority=1.0,
                arrivals=ArrivalSpec(kind="fixed", rate_hz=det_rate_hz),
            ),
        ),
    )


@dataclass(frozen=True)
class FrameLatency:
    """Average frame latency of one platform at one skip interval."""

    platform: str
    skip_interval: int
    latency_s: float
    detection_s: float
    tracking_s: float
    localization_s: float

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def meets_target(self) -> bool:
        return self.latency_s <= LATENCY_TARGET_S


class DrivingPipeline:
    """Evaluates the DET/TRA/LOC pipeline on gpu / tc / sma platforms."""

    def __init__(
        self,
        framework_overhead_s: float = 50e-6,
        session: Session | None = None,
    ) -> None:
        self.framework_overhead_s = framework_overhead_s
        self.session = session or Session()
        self._reports: dict[tuple[str, int], ScheduleReport] = {}

    def schedule(
        self, platform_kind: str, skip_interval: int = 1
    ) -> ScheduleReport:
        """The scheduled window (memoized per platform and interval)."""
        key = (platform_kind, skip_interval)
        report = self._reports.get(key)
        if report is None:
            spec = driving_scenario(
                platform_kind,
                skip_interval,
                framework_overhead_s=self.framework_overhead_s,
            )
            report = self.session.run_scenario(spec)
            self._reports[key] = report
        return report

    def corun_contention(self, platform_kind: str) -> float:
        """Contention the LOC stream experiences at N=1 (derived)."""
        return self.schedule(platform_kind, 1).stream("loc").stretch

    def frame_latency(
        self, platform_kind: str, skip_interval: int = 1
    ) -> FrameLatency:
        """Average frame latency with detection every ``skip_interval``."""
        report = self.schedule(platform_kind, skip_interval)
        per_frame = float(report.frames)
        return FrameLatency(
            platform=platform_kind,
            skip_interval=skip_interval,
            latency_s=report.avg_frame_latency_s,
            detection_s=report.stream("det").busy_s,
            tracking_s=report.stream("tra").busy_s / per_frame,
            localization_s=report.stream("loc").busy_s / per_frame,
        )

    def sweep_skip(
        self, platform_kinds: tuple[str, ...] = ("tc", "sma"),
        intervals: tuple[int, ...] = tuple(range(2, 10)),
    ) -> list[FrameLatency]:
        """Fig 9 (right): frame latency vs number of skipped frames."""
        results = []
        for interval in intervals:
            for kind in platform_kinds:
                results.append(self.frame_latency(kind, interval))
        return results
