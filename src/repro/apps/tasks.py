"""The three driving-pipeline tasks (paper SS V-C, after Lin et al.).

* **DET** — detection: DeepLab on driving frames (CNN, GEMM-heavy);
* **TRA** — tracking: GOTURN (CNN, lighter);
* **LOC** — localization: ORB-SLAM's feature frontend + pose optimization,
  massively parallel but not a CNN: it runs in SIMD mode everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn.graph import LayerGraph
from repro.dnn.ops import OpCategory, Operator
from repro.dnn.tensor import TensorShape
from repro.dnn.zoo.deeplab import build_deeplab
from repro.dnn.zoo.goturn import build_goturn

#: Detection input resolution for driving frames.
DETECTION_INPUT_SIZE = 641


@dataclass(frozen=True)
class OrbSlamFrontend(Operator):
    """ORB-SLAM per-frame work: FAST corners, ORB descriptors, matching,
    and the (serial) pose optimization — a non-CNN parallel workload."""

    num_features: int = 2000

    @classmethod
    def build(
        cls, name: str = "orb_slam", image_h: int = 480, image_w: int = 640,
        num_features: int = 2000,
    ) -> "OrbSlamFrontend":
        return cls(
            name=name,
            input_shape=TensorShape((1, 1, image_h, image_w)),
            output_shape=TensorShape((num_features, 32)),
            category=OpCategory.IRREGULAR,
            num_features=num_features,
        )

    @property
    def flops(self) -> float:
        pixels = self.input_shape.dims[2] * self.input_shape.dims[3]
        # 8-level pyramid FAST + orientation (per pixel), brute-force
        # descriptor matching against the local map, and the motion-only
        # bundle-adjustment solve (calibrated to ~30 ms on the V100,
        # consistent with published GPU ORB-SLAM frontends).
        return (
            pixels * 8.0 * 250.0
            + self.num_features * 256.0 * 2500.0
            + self.num_features ** 2 * 80.0
        )

    @property
    def simd_efficiency(self) -> float:
        # Branchy image processing: a few permille of GPU peak.
        return 0.005

    @property
    def kernel_launches(self) -> int:
        return 40

    @property
    def host_serial_fraction(self) -> float:
        return 0.35


@dataclass(frozen=True)
class DrivingWorkloads:
    """The three task graphs of the driving pipeline."""

    detection: LayerGraph
    tracking: LayerGraph
    localization: LayerGraph


def build_detection_graph(
    input_size: int = DETECTION_INPUT_SIZE,
) -> LayerGraph:
    """DET: DeepLab on driving frames (no CRF on the car)."""
    return build_deeplab(with_crf=False, input_size=input_size)


def build_localization_graph(
    image_h: int = 480, image_w: int = 640, num_features: int = 2000
) -> LayerGraph:
    """LOC: the ORB-SLAM frontend as a one-op graph."""
    localization = LayerGraph("ORB-SLAM")
    localization.add(
        OrbSlamFrontend.build(
            image_h=image_h, image_w=image_w, num_features=num_features
        )
    )
    localization.validate()
    return localization


def build_driving_workloads(
    detection_input: int = DETECTION_INPUT_SIZE,
) -> DrivingWorkloads:
    """DET = DeepLab (no CRF on the car), TRA = GOTURN, LOC = ORB-SLAM."""
    return DrivingWorkloads(
        detection=build_detection_graph(detection_input),
        tracking=build_goturn(),
        localization=build_localization_graph(),
    )
