"""End-to-end applications: the Fig 9 autonomous-driving pipeline."""

from repro.apps.driving import (
    DrivingPipeline,
    FrameLatency,
    open_loop_driving_scenario,
)
from repro.apps.tasks import (
    DrivingWorkloads,
    OrbSlamFrontend,
    build_driving_workloads,
)

__all__ = [
    "DrivingPipeline",
    "DrivingWorkloads",
    "FrameLatency",
    "OrbSlamFrontend",
    "build_driving_workloads",
    "open_loop_driving_scenario",
]
