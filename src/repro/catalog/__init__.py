"""repro.catalog: named real-hardware device specs as data.

The catalog turns the hand-coded Volta/SMA/TPU configurations into
*named, swappable device specs* (``v100``, ``a100``, ``h100``, ``orin``,
``tpu-v1``..``tpu-v3``): frozen dataclasses with JSON round-trip, each
carrying a measured :class:`InterferenceMatrix` and fleet metadata (die
area, TDP). Registered devices resolve everywhere a platform spec is
accepted — ``"a100"``, ``"sma@a100:3"``, ``"tpu@v3"`` — and expand as a
sweep axis via ``"v100..h100"`` range patterns.

This module is import-light by design: the data layer (specs +
interference) loads eagerly; the loader — which wires devices into the
platform registry — resolves lazily via module ``__getattr__`` so that
``repro.api.registry`` can import it at lookup time without a cycle.
"""

from repro.catalog.interference import InterferenceMatrix
from repro.catalog.specs import DEFAULT_DEVICES, DeviceSpec

_LOADER_SYMBOLS = (
    "catalog_fingerprint",
    "device_for_platform",
    "device_metadata",
    "device_names",
    "expand_device_range",
    "get_device",
    "install_default_catalog",
    "load_catalog",
    "register_device",
    "unregister_device",
)


def __getattr__(name: str):
    if name in _LOADER_SYMBOLS:
        from repro.catalog import loader

        return getattr(loader, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DEFAULT_DEVICES",
    "DeviceSpec",
    "InterferenceMatrix",
    *_LOADER_SYMBOLS,
]
