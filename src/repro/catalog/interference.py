"""Per-device measured interference matrices for co-run contention.

The timeline engine's fluid-sharing model historically derived spatial
co-run pressure *per kernel*: a TensorCore GEMM task carried a fractional
SIMD claim measured from that kernel's simulated register-file port
counters. That couples scheduling to a kernel-level simulation artifact
and cannot describe devices the kernel simulator does not model. The
catalog replaces it with a *per-device* pairwise matrix: for each
``(source, victim)`` resource pair, the measured fraction of the victim
resource a task running on the source keeps busy.

Semantics (consulted by
:class:`~repro.schedule.timeline.TimelineScheduler` when a platform
carries a matrix):

* pressure is **directional** — a matrix entry ``tc -> simd: 0.62``
  stretches a co-running SIMD kernel by 62% of the TC task's weight, but
  leaves the TC task itself unperturbed (the paper's co-run observation:
  the TC GEMM nearly saturates the RF ports and is barely affected,
  while the SIMD kernel pays the contention);
* a task exerts pressure only on resources it does *not* primarily
  claim — pressure onto a fully-claimed resource would double-count the
  task against itself;
* when several running tasks pressure the same victim their
  contributions sum (weight-scaled), exactly like explicit claims;
* when a matrix is active, per-kernel *fractional* claims are superseded
  and ignored — primary (full) claims keep their temporal-multiplexing
  semantics unchanged.

Factors are plain measured data (JSON round-trippable), so one simulator
core can score many physical parts without re-simulating their kernels.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.schedule.resources import ResourceKind


def _coerce_kind(value: "ResourceKind | str", label: str) -> ResourceKind:
    if isinstance(value, ResourceKind):
        return value
    try:
        return ResourceKind(str(value).strip().lower())
    except ValueError:
        names = tuple(kind.value for kind in ResourceKind)
        raise ConfigError(
            f"{label}: unknown resource kind {value!r}; one of {names}"
        ) from None


@dataclass(frozen=True)
class InterferenceMatrix:
    """Measured pairwise resource-contention factors of one device.

    ``entries`` is a canonically-ordered tuple of
    ``(source_kind, victim_kind, factor)`` triples, where ``factor`` is
    the fraction of the victim resource one weight-1.0 task running on
    the source keeps busy. The dataclass is frozen and hashable so it can
    ride inside a frozen :class:`~repro.catalog.specs.DeviceSpec`.
    """

    entries: tuple[tuple[str, str, float], ...] = ()

    def __post_init__(self) -> None:
        canonical = []
        seen: set[tuple[str, str]] = set()
        for entry in self.entries:
            try:
                source, victim, factor = entry
            except (TypeError, ValueError):
                raise ConfigError(
                    f"interference entry must be (source, victim, factor),"
                    f" got {entry!r}"
                ) from None
            source = _coerce_kind(source, "interference source").value
            victim = _coerce_kind(victim, "interference victim").value
            if source == victim:
                raise ConfigError(
                    f"interference entry {source!r} -> {victim!r} is a"
                    " self-pair; a task's own resource is a primary claim,"
                    " not interference"
                )
            factor = float(factor)
            if not 0.0 <= factor <= 1.0:
                raise ConfigError(
                    f"interference factor {source} -> {victim} must be in"
                    f" [0, 1], got {factor}"
                )
            if (source, victim) in seen:
                raise ConfigError(
                    f"duplicate interference entry {source!r} -> {victim!r}"
                )
            seen.add((source, victim))
            canonical.append((source, victim, factor))
        object.__setattr__(self, "entries", tuple(sorted(canonical)))

    def __bool__(self) -> bool:
        return bool(self.entries)

    def factor(
        self, source: "ResourceKind | str", victim: "ResourceKind | str"
    ) -> float:
        """The measured pressure of ``source`` onto ``victim`` (0 if none)."""
        source = _coerce_kind(source, "interference source").value
        victim = _coerce_kind(victim, "interference victim").value
        for entry_source, entry_victim, factor in self.entries:
            if entry_source == source and entry_victim == victim:
                return factor
        return 0.0

    def pressure(self, primaries) -> dict[ResourceKind, float]:
        """Cross-resource pressure of a task with the given primary claims.

        ``primaries`` is an iterable of :class:`ResourceKind` the task
        fully claims. Returns ``{victim: factor}`` for every victim the
        task pressures but does not itself primarily claim; with several
        source resources the strongest factor per victim wins (the task
        is one kernel, not one per source).
        """
        owned = {_coerce_kind(kind, "primary claim") for kind in primaries}
        pressures: dict[ResourceKind, float] = {}
        for source, victim, factor in self.entries:
            if ResourceKind(source) not in owned:
                continue
            victim_kind = ResourceKind(victim)
            if victim_kind in owned or factor <= 0.0:
                continue
            pressures[victim_kind] = max(
                pressures.get(victim_kind, 0.0), factor
            )
        return pressures

    # -- JSON round-trip ---------------------------------------------------------------
    def to_dict(self) -> dict:
        """``{"source->victim": factor}`` in canonical order."""
        return {
            f"{source}->{victim}": factor
            for source, victim, factor in self.entries
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InterferenceMatrix":
        entries = []
        for key, factor in (data or {}).items():
            source, sep, victim = str(key).partition("->")
            if not sep or not source or not victim:
                raise ConfigError(
                    f"interference key {key!r} must look like"
                    " 'source->victim'"
                )
            entries.append((source.strip(), victim.strip(), factor))
        return cls(entries=tuple(entries))

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "InterferenceMatrix":
        return cls.from_dict(json.loads(text))


__all__ = ["InterferenceMatrix"]
