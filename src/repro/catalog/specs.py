"""Named real-hardware device specs: frozen data, JSON round-trip.

A :class:`DeviceSpec` is everything the simulator needs to instantiate a
platform for one physical part: the microarchitectural config
(:class:`~repro.config.GpuConfig` or :class:`~repro.config.TpuConfig`),
the device's measured :class:`~repro.catalog.interference.InterferenceMatrix`,
and fleet-level metadata (die area, TDP) that reports rank against.
Specs are pure data — platform *behavior* stays in the platform classes;
the catalog only parameterizes them — so adding a device is a JSON file,
not a code change.

The default entries pin two invariants the golden tests enforce:

* ``v100``'s GPU config is exactly :class:`~repro.config.GpuConfig`'s
  defaults (the paper's Volta baseline), and ``tpu-v2``'s TPU config is
  exactly :class:`~repro.config.TpuConfig`'s defaults — so catalog-built
  platforms reproduce the hand-coded ones bit-for-bit;
* every spec's :meth:`DeviceSpec.fingerprint` is a content hash of its
  canonical JSON, which rides inside
  :class:`~repro.api.results.SimRequest` so stores and cluster dispatch
  can detect catalog divergence.

Non-default numbers (A100/H100/Orin, TPU v1/v3) come from vendor
datasheets and the TPU ISCA'17 paper; die area and TDP are board-level
figures where die-level ones are not public.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

from repro.catalog.interference import InterferenceMatrix
from repro.config import GpuConfig, TpuConfig
from repro.errors import ConfigError

_FAMILIES = ("gpu", "tpu")


def _config_dict(config) -> dict:
    return dataclasses.asdict(config)


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """One named physical part the simulator can instantiate platforms for.

    ``family`` selects the platform side (``"gpu"`` specs carry a
    :class:`GpuConfig` and register TC/SIMD/SMA platforms; ``"tpu"`` specs
    carry a :class:`TpuConfig`). ``area_mm2``/``tdp_w`` are report
    metadata, not simulation inputs. ``aliases`` are extra registry names
    (``"volta"`` for ``v100``).
    """

    name: str
    family: str
    description: str = ""
    vendor: str = ""
    year: int = 0
    area_mm2: float = 0.0
    tdp_w: float = 0.0
    gpu: GpuConfig | None = None
    tpu: TpuConfig | None = None
    interference: InterferenceMatrix = InterferenceMatrix()
    aliases: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or self.name != self.name.lower().strip():
            raise ConfigError(
                f"device name must be non-empty lowercase, got {self.name!r}"
            )
        if self.family not in _FAMILIES:
            raise ConfigError(
                f"device family must be one of {_FAMILIES}, got"
                f" {self.family!r}"
            )
        if self.family == "gpu" and (self.gpu is None or self.tpu is not None):
            raise ConfigError(
                f"gpu-family device {self.name!r} needs a GpuConfig and no"
                " TpuConfig"
            )
        if self.family == "tpu" and (self.tpu is None or self.gpu is not None):
            raise ConfigError(
                f"tpu-family device {self.name!r} needs a TpuConfig and no"
                " GpuConfig"
            )
        if not isinstance(self.interference, InterferenceMatrix):
            raise ConfigError(
                f"device {self.name!r} interference must be an"
                f" InterferenceMatrix, got {self.interference!r}"
            )
        if self.area_mm2 < 0 or self.tdp_w < 0:
            raise ConfigError(
                f"device {self.name!r} area/TDP must be non-negative"
            )
        object.__setattr__(
            self, "aliases", tuple(alias.lower() for alias in self.aliases)
        )

    # -- JSON round-trip ---------------------------------------------------------------
    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "family": self.family,
            "description": self.description,
            "vendor": self.vendor,
            "year": self.year,
            "area_mm2": self.area_mm2,
            "tdp_w": self.tdp_w,
            "interference": self.interference.to_dict(),
            "aliases": list(self.aliases),
        }
        if self.gpu is not None:
            payload["gpu"] = _config_dict(self.gpu)
        if self.tpu is not None:
            payload["tpu"] = _config_dict(self.tpu)
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "DeviceSpec":
        if not isinstance(data, dict):
            raise ConfigError(f"device spec must be a dict, got {data!r}")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"device spec {data.get('name', '?')!r} has unknown keys"
                f" {sorted(unknown)}"
            )
        kwargs = dict(data)
        try:
            if kwargs.get("gpu") is not None:
                kwargs["gpu"] = GpuConfig(**kwargs["gpu"])
            if kwargs.get("tpu") is not None:
                kwargs["tpu"] = TpuConfig(**kwargs["tpu"])
        except TypeError as error:
            raise ConfigError(
                f"device spec {data.get('name', '?')!r} has a malformed"
                f" config block: {error}"
            ) from None
        kwargs["interference"] = InterferenceMatrix.from_dict(
            kwargs.get("interference") or {}
        )
        kwargs["aliases"] = tuple(kwargs.get("aliases") or ())
        return cls(**kwargs)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DeviceSpec":
        return cls.from_dict(json.loads(text))

    def fingerprint(self) -> str:
        """Short content hash of the spec's canonical JSON.

        Identical specs fingerprint identically on every host, so the
        cluster protocol can reject shards when client and server
        catalogs diverge without shipping whole specs over the wire.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# -- Default catalog entries ---------------------------------------------------------
#
# The tc->simd factors are the measured co-run stretch the paper's fig.
# reports for a TensorCore GEMM saturating the register-file ports while
# a SIMD kernel runs alongside; the transfer->host factors model DMA
# engines stealing host-CPU cycles during staging.

V100 = DeviceSpec(
    name="v100",
    family="gpu",
    description="NVIDIA Tesla V100 (Volta, SXM2) — the paper's baseline",
    vendor="nvidia",
    year=2017,
    area_mm2=815.0,
    tdp_w=300.0,
    # Exactly GpuConfig() — the golden tests pin catalog-built platforms
    # to the hand-coded Volta ones bit-for-bit.
    gpu=GpuConfig(),
    interference=InterferenceMatrix(
        entries=(
            ("tc", "simd", 0.62),
            ("transfer", "host", 0.08),
            # Reverse direction of the SM-partition pair, plus copy-engine
            # pressure on the SIMD lanes (measured co-run slowdowns).
            ("simd", "tc", 0.07),
            ("transfer", "simd", 0.11),
        )
    ),
    aliases=("volta", "tesla-v100"),
)

A100 = DeviceSpec(
    name="a100",
    family="gpu",
    description="NVIDIA A100 (Ampere, SXM4 80GB)",
    vendor="nvidia",
    year=2020,
    area_mm2=826.0,
    tdp_w=400.0,
    gpu=GpuConfig(
        name="ampere-a100",
        num_sms=108,
        clock_ghz=1.41,
        cuda_cores_per_sm=64,
        tensor_cores_per_sm=4,
        fp16_units_per_tensor_core=256,
        shared_memory_kb=164,
        l1_cache_kb=192,
        l2_cache_mb=40,
        dram_bandwidth_gbps=2039.0,
        dram_latency_cycles=466,
        l2_latency_cycles=200,
        l1_latency_cycles=33,
    ),
    interference=InterferenceMatrix(
        entries=(
            ("tc", "simd", 0.48),
            ("transfer", "host", 0.06),
            ("simd", "tc", 0.05),
            ("transfer", "simd", 0.09),
        )
    ),
    aliases=("ampere",),
)

H100 = DeviceSpec(
    name="h100",
    family="gpu",
    description="NVIDIA H100 (Hopper, SXM5)",
    vendor="nvidia",
    year=2022,
    area_mm2=814.0,
    tdp_w=700.0,
    gpu=GpuConfig(
        name="hopper-h100",
        num_sms=132,
        clock_ghz=1.83,
        cuda_cores_per_sm=128,
        tensor_cores_per_sm=4,
        fp16_units_per_tensor_core=512,
        shared_memory_kb=228,
        l1_cache_kb=256,
        l2_cache_mb=50,
        dram_bandwidth_gbps=3350.0,
        dram_latency_cycles=500,
        l2_latency_cycles=210,
        l1_latency_cycles=33,
    ),
    interference=InterferenceMatrix(
        entries=(
            ("tc", "simd", 0.35),
            ("transfer", "host", 0.05),
            ("simd", "tc", 0.04),
            ("transfer", "simd", 0.07),
        )
    ),
    aliases=("hopper",),
)

ORIN = DeviceSpec(
    name="orin",
    family="gpu",
    description="NVIDIA Jetson AGX Orin (Ampere iGPU, edge part)",
    vendor="nvidia",
    year=2022,
    area_mm2=455.0,
    tdp_w=60.0,
    gpu=GpuConfig(
        name="jetson-orin",
        num_sms=16,
        clock_ghz=1.3,
        cuda_cores_per_sm=128,
        tensor_cores_per_sm=4,
        fp16_units_per_tensor_core=256,
        shared_memory_kb=164,
        l1_cache_kb=192,
        l2_cache_mb=4,
        dram_bandwidth_gbps=204.8,
        dram_latency_cycles=350,
        l2_latency_cycles=180,
        l1_latency_cycles=33,
    ),
    interference=InterferenceMatrix(
        # The shared LPDDR bus makes edge co-run contention far harsher.
        entries=(
            ("tc", "simd", 0.74),
            ("transfer", "host", 0.15),
            ("simd", "tc", 0.12),
            ("transfer", "simd", 0.20),
        )
    ),
    aliases=("jetson-orin", "agx-orin"),
)

TPU_V1 = DeviceSpec(
    name="tpu-v1",
    family="tpu",
    description="Google TPU v1 (inference, 256x256 MXU, ISCA'17)",
    vendor="google",
    year=2015,
    area_mm2=331.0,
    tdp_w=75.0,
    tpu=TpuConfig(
        name="tpu-v1",
        array_rows=256,
        array_cols=256,
        clock_ghz=0.7,
        on_chip_buffer_mb=28,
        weight_fifo_depth=4,
        host_transfer_gbps=8.0,
        dram_bandwidth_gbps=34.0,
    ),
    interference=InterferenceMatrix(
        # PCIe feed-and-drain contends both ways on the v1's narrow link.
        entries=(("transfer", "host", 0.22), ("host", "transfer", 0.09))
    ),
    aliases=("v1",),
)

TPU_V2 = DeviceSpec(
    name="tpu-v2",
    family="tpu",
    description="Google TPU v2 core (128x128 MXU) — the paper's TPU",
    vendor="google",
    year=2017,
    area_mm2=611.0,
    tdp_w=280.0,
    # Exactly TpuConfig() — golden-pinned to the hand-coded paper TPU.
    tpu=TpuConfig(),
    interference=InterferenceMatrix(
        entries=(("transfer", "host", 0.12), ("host", "transfer", 0.05))
    ),
    aliases=("v2",),
)

TPU_V3 = DeviceSpec(
    name="tpu-v3",
    family="tpu",
    description="Google TPU v3 core (128x128 MXU, HBM)",
    vendor="google",
    year=2018,
    area_mm2=648.0,
    tdp_w=450.0,
    tpu=TpuConfig(
        name="tpu-v3-core",
        array_rows=128,
        array_cols=128,
        clock_ghz=0.94,
        on_chip_buffer_mb=32,
        weight_fifo_depth=4,
        host_transfer_gbps=16.0,
        dram_bandwidth_gbps=900.0,
    ),
    interference=InterferenceMatrix(
        entries=(("transfer", "host", 0.10), ("host", "transfer", 0.04))
    ),
    aliases=("v3",),
)

#: Generation order — device ranges (``v100..h100``) expand along this.
DEFAULT_DEVICES = (V100, A100, H100, ORIN, TPU_V1, TPU_V2, TPU_V3)


__all__ = [
    "A100",
    "DEFAULT_DEVICES",
    "DeviceSpec",
    "H100",
    "ORIN",
    "TPU_V1",
    "TPU_V2",
    "TPU_V3",
    "V100",
]
