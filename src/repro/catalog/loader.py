"""The device catalog: registration, platform wiring, and fingerprints.

Registering a :class:`~repro.catalog.specs.DeviceSpec` wires it into
:mod:`repro.api.registry` so catalog devices resolve everywhere a
platform spec string is accepted. A GPU-family device ``D`` registers
three platform flavors::

    D            TensorCore platform  (aliases: tc@D, the spec's aliases)
    simd@D       CUDA-core-only platform
    sma@D        SMA platform, sma@D[:UNITS[,DTYPE]] like the built-in sma

A TPU-family device registers its name (``tpu-v2``) plus ``tpu@ALIAS``
forms (``tpu@v2``). All flavors carry the device's interference matrix
and GEMM ``(system, backend)`` wiring, so catalog specs work for model
runs, raw GEMM benches, scenarios, sweeps, serving, and the cluster.

The default catalog installs lazily: :func:`install_default_catalog` is
idempotent and is invoked by the registry itself on the first lookup
miss, so importing :mod:`repro.api` stays cheap and cycle-free.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.api import registry
from repro.catalog.specs import DEFAULT_DEVICES, DeviceSpec
from repro.config import DataType, SmaConfig, SystemConfig
from repro.errors import ConfigError

#: Registered devices in registration (generation) order.
_DEVICES: dict[str, DeviceSpec] = {}
#: Device alias -> canonical device name.
_ALIASES: dict[str, str] = {}
#: Registered *platform* name or alias -> canonical device name.
_PLATFORM_DEVICES: dict[str, str] = {}

_installed = False

#: Platform-flavor prefixes a device range may carry (``sma@v100..h100``).
_RANGE_PREFIXES = ("", "tc", "simd", "sma", "tpu")


def get_device(name: str) -> DeviceSpec:
    """Look up a registered device by name or alias."""
    install_default_catalog()
    key = str(name).strip().lower()
    key = _ALIASES.get(key, key)
    spec = _DEVICES.get(key)
    if spec is None:
        raise ConfigError(
            f"unknown device {name!r}; available: {sorted(_DEVICES)}"
        )
    return spec


def device_names(family: str | None = None) -> tuple[str, ...]:
    """Registered device names in generation order, optionally by family."""
    install_default_catalog()
    return tuple(
        name
        for name, spec in _DEVICES.items()
        if family is None or spec.family == family
    )


def device_for_platform(platform_spec: str) -> DeviceSpec | None:
    """The device behind a platform spec, or ``None`` for non-catalog specs.

    ``"a100"``, ``"sma@a100:3"``, and ``"tpu@v3"`` all resolve;
    hand-coded platforms (``"gpu-tc"``, ``"sma:3"``, ``"tpu"``) and
    unknown or malformed specs return ``None``.
    """
    install_default_catalog()
    try:
        name, _args = registry.parse_spec(platform_spec)
    except ConfigError:
        return None
    device = _PLATFORM_DEVICES.get(name)
    if device is None:
        return None
    return _DEVICES[device]


def catalog_fingerprint(platform_spec: str) -> str | None:
    """The content fingerprint of the device behind a platform spec.

    This is what :class:`~repro.api.results.SimRequest` carries so
    catalog-backed runs are content-addressed against the spec *data*:
    two hosts whose catalogs diverge fingerprint differently and the
    cluster protocol rejects the shard. ``None`` for non-catalog specs.
    """
    spec = device_for_platform(platform_spec)
    return spec.fingerprint() if spec is not None else None


def device_metadata(platform_spec: str) -> dict | None:
    """Fleet metadata (area, TDP) for reports, or ``None`` if non-catalog."""
    spec = device_for_platform(platform_spec)
    if spec is None:
        return None
    return {
        "device": spec.name,
        "area_mm2": spec.area_mm2,
        "tdp_w": spec.tdp_w,
    }


# -- platform wiring ---------------------------------------------------------------


def _gpu_system(spec: DeviceSpec, suffix: str) -> SystemConfig:
    return SystemConfig(name=f"{spec.name}-{suffix}", gpu=spec.gpu)


def _sma_system(
    spec: DeviceSpec, units: int, dtype: DataType
) -> SystemConfig:
    return SystemConfig(
        name=f"{spec.name}-{units}sma",
        gpu=spec.gpu,
        sma=SmaConfig(units_per_sm=units, dtype=dtype),
    )


def _register_gpu_platforms(spec: DeviceSpec) -> None:
    # Imported here: the platform classes pull in the scheduler stack,
    # which the catalog's data layer must stay independent of.
    from repro.platforms.gpu_simd import GpuSimdPlatform
    from repro.platforms.gpu_sma import GpuSmaPlatform
    from repro.platforms.gpu_tc import GpuTcPlatform

    tc_aliases = (f"tc@{spec.name}",) + spec.aliases

    def _tc_gemm(*args: str) -> tuple[SystemConfig, str]:
        registry._no_args(spec.name, args)
        return _gpu_system(spec, "4tc"), "tc"

    @registry.register_platform(
        spec.name,
        description=f"{spec.description} (TensorCore flavor)",
        aliases=tc_aliases,
        gemm=_tc_gemm,
    )
    def _build_tc(*args, cache=None, **kwargs):
        registry._no_args(spec.name, args)
        return GpuTcPlatform(
            system=_gpu_system(spec, "4tc"),
            cache=cache,
            interference=spec.interference,
            **kwargs,
        )

    simd_name = f"simd@{spec.name}"

    def _simd_gemm(*args: str) -> tuple[SystemConfig, str]:
        registry._no_args(simd_name, args)
        return _gpu_system(spec, "simd"), "simd"

    @registry.register_platform(
        simd_name,
        description=f"{spec.description} (CUDA-core-only flavor)",
        gemm=_simd_gemm,
    )
    def _build_simd(*args, cache=None, **kwargs):
        registry._no_args(simd_name, args)
        return GpuSimdPlatform(
            system=_gpu_system(spec, "simd"),
            cache=cache,
            interference=spec.interference,
            **kwargs,
        )

    sma_name = f"sma@{spec.name}"

    def _sma_gemm(*args: str) -> tuple[SystemConfig, str]:
        units, dtype = registry._sma_parts(args)
        return _sma_system(spec, units, dtype), "sma"

    @registry.register_platform(
        sma_name,
        description=(
            f"{spec.description} (SMA flavor, {sma_name}[:UNITS[,DTYPE]])"
        ),
        gemm=_sma_gemm,
    )
    def _build_sma(*args, cache=None, **kwargs):
        units, dtype = registry._sma_parts(args)
        return GpuSmaPlatform(
            units,
            system=_sma_system(spec, units, dtype),
            cache=cache,
            interference=spec.interference,
            **kwargs,
        )

    for key in (spec.name, *tc_aliases, simd_name, sma_name):
        _PLATFORM_DEVICES[key] = spec.name


def _register_tpu_platforms(spec: DeviceSpec) -> None:
    from repro.platforms.tpu_platform import TpuPlatform

    aliases = tuple(f"tpu@{alias}" for alias in spec.aliases)

    @registry.register_platform(
        spec.name,
        description=spec.description,
        aliases=aliases,
    )
    def _build_tpu(*args, cache=None, **kwargs):
        registry._no_args(spec.name, args)
        del cache  # the TPU array model has no GEMM-timing cache to share
        return TpuPlatform(
            config=spec.tpu, interference=spec.interference, **kwargs
        )

    for key in (spec.name, *aliases):
        _PLATFORM_DEVICES[key] = spec.name


def register_device(spec: DeviceSpec) -> DeviceSpec:
    """Register a device and its platform flavors (idempotent per name).

    Raises :class:`~repro.errors.ConfigError` if the name or an alias is
    already taken by a *different* spec; re-registering an identical spec
    is a no-op so JSON catalogs can be loaded repeatedly.
    """
    if not isinstance(spec, DeviceSpec):
        raise ConfigError(f"expected a DeviceSpec, got {spec!r}")
    existing = _DEVICES.get(spec.name)
    if existing is not None:
        if existing == spec:
            return spec
        raise ConfigError(
            f"device {spec.name!r} already registered with a different spec"
        )
    for alias in spec.aliases:
        if alias in _DEVICES or alias in _ALIASES:
            raise ConfigError(
                f"device alias {alias!r} (of {spec.name!r}) already taken"
            )
    if spec.family == "gpu":
        _register_gpu_platforms(spec)
    else:
        _register_tpu_platforms(spec)
    _DEVICES[spec.name] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = spec.name
    return spec


def unregister_device(name: str) -> None:
    """Remove a device and its platform registrations (primarily tests)."""
    spec = _DEVICES.pop(name, None)
    if spec is None:
        return
    for alias in spec.aliases:
        _ALIASES.pop(alias, None)
    platform_names = [spec.name]
    if spec.family == "gpu":
        platform_names += [f"simd@{spec.name}", f"sma@{spec.name}"]
    for platform_name in platform_names:
        registry.unregister_platform(platform_name)
    for key in [
        key
        for key, device in _PLATFORM_DEVICES.items()
        if device == spec.name
    ]:
        _PLATFORM_DEVICES.pop(key, None)


def install_default_catalog() -> None:
    """Register the built-in devices once (lazy, idempotent)."""
    global _installed
    if _installed:
        return
    _installed = True
    for spec in DEFAULT_DEVICES:
        register_device(spec)


def load_catalog(source) -> tuple[DeviceSpec, ...]:
    """Load and register devices from a JSON catalog.

    ``source`` may be a path to a JSON file, a JSON string, or an
    already-decoded list/dict. The document is either a list of device
    spec objects or ``{"devices": [...]}``. Returns the registered specs.
    """
    install_default_catalog()
    data = source
    if isinstance(source, (str, Path)):
        path = Path(source)
        if path.exists():
            data = json.loads(path.read_text(encoding="utf-8"))
        elif isinstance(source, str) and source.lstrip().startswith(("{", "[")):
            data = json.loads(source)
        else:
            raise ConfigError(f"catalog file not found: {source!r}")
    if isinstance(data, dict):
        data = data.get("devices")
    if not isinstance(data, list):
        raise ConfigError(
            "catalog document must be a list of device specs or"
            " {'devices': [...]}"
        )
    return tuple(
        register_device(DeviceSpec.from_dict(item)) for item in data
    )


# -- sweep axis --------------------------------------------------------------------


def expand_device_range(name: str) -> tuple[str, ...]:
    """Expand a ``lo..hi`` device range into platform spec names.

    ``"v100..h100"`` walks the catalog in generation order and yields the
    devices of the endpoints' (shared) family in between — here
    ``("v100", "a100", "h100")``. An optional flavor prefix rides along:
    ``"sma@v100..h100"`` -> ``("sma@v100", "sma@a100", "sma@h100")``;
    ``"tpu@v1..v3"`` walks the TPU generations. Endpoints may be device
    names or aliases.
    """
    install_default_catalog()
    prefix, sep, rng = name.partition("@")
    if not sep:
        prefix, rng = "", name
    prefix = prefix.strip().lower()
    if prefix not in _RANGE_PREFIXES:
        raise ConfigError(
            f"device range {name!r} has unknown flavor prefix {prefix!r};"
            f" one of {[p for p in _RANGE_PREFIXES if p]}"
        )
    lo_name, sep, hi_name = rng.partition("..")
    if not sep or not lo_name or not hi_name:
        raise ConfigError(
            f"device range {name!r} must look like 'LO..HI'"
        )
    lo = get_device(lo_name)
    hi = get_device(hi_name)
    if lo.family != hi.family:
        raise ConfigError(
            f"device range {name!r} mixes families"
            f" ({lo.name}: {lo.family}, {hi.name}: {hi.family})"
        )
    if prefix in ("tc", "simd", "sma") and lo.family != "gpu":
        raise ConfigError(
            f"device range {name!r}: flavor {prefix!r} needs GPU devices"
        )
    if prefix == "tpu" and lo.family != "tpu":
        raise ConfigError(
            f"device range {name!r}: flavor 'tpu' needs TPU devices"
        )
    order = [n for n in _DEVICES if _DEVICES[n].family == lo.family]
    lo_pos, hi_pos = order.index(lo.name), order.index(hi.name)
    if lo_pos > hi_pos:
        raise ConfigError(
            f"device range {name!r} is empty ({lo.name} comes after"
            f" {hi.name} in the catalog)"
        )
    selected = order[lo_pos : hi_pos + 1]
    if prefix in ("simd", "sma"):
        return tuple(f"{prefix}@{device}" for device in selected)
    # "", "tc", and "tpu" all resolve through the device's primary name.
    return tuple(selected)


__all__ = [
    "catalog_fingerprint",
    "device_for_platform",
    "device_metadata",
    "device_names",
    "expand_device_range",
    "get_device",
    "install_default_catalog",
    "load_catalog",
    "register_device",
    "unregister_device",
]
