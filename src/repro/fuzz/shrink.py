"""Greedy delta-debugging: minimize a failing case, keep it failing.

The shrinker repeatedly proposes structurally smaller variants of a
failing :class:`~repro.fuzz.cases.FuzzCase` and keeps a variant whenever
it still violates (one of) the *same* oracles — classic ddmin specialized
to the scenario structure. Reduction passes, in order of how much they
remove:

1. drop whole streams (one at a time, keeping >= 1);
2. cut the frame budget (try the smallest counts first);
3. replace arrival processes with "everything releases at t=0";
4. drop the QoS spec, per-stream deadlines, and frame skipping;
5. truncate task templates to their first op, drop ancillary claims,
   zero mode-switch costs, and drop the interference matrix.

Passes run to a fixpoint (no pass finds a smaller failing variant), so
the result is 1-minimal with respect to these operations. Candidates
that fail to *construct* (a spec validation rejects the smaller form)
are simply skipped.

Oracle-set semantics: a candidate is accepted when its failing-oracle
set intersects the target set (by default, the oracles the original
case failed). Intersection — not equality — because removing structure
legitimately removes *secondary* symptoms while preserving the bug being
chased.

The shrunk case ships as a :class:`Reproducer`: a self-contained JSON
document (kind ``fuzz_reproducer``) embedding the full case plus the
expected violations, replayable anywhere via ``repro fuzz replay``.

Cost note: intermediate candidates are judged with the cheap oracle pack
(``deep=False``) unless the chased oracle itself needs re-runs
(determinism / trace replay / merge); the final verdict recorded in the
reproducer always uses the full pack.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

from repro.errors import ConfigError
from repro.fuzz.cases import FuzzCase
from repro.fuzz.oracles import CaseOutcome, Violation, evaluate_case

#: Oracles whose detection requires the extra engine runs of the deep
#: pack; chasing one of these disables the cheap-mode shortcut.
_DEEP_ORACLES = frozenset(
    {"determinism", "trace_roundtrip", "trace_transparency", "merge"}
)


@dataclass(frozen=True)
class Reproducer:
    """A minimized failing case plus the violations it must reproduce.

    ``engine`` names the timeline core the final verdict ran on, so a
    differential or crash finding replays verbatim: run the replay with
    ``REPRO_ENGINE=<engine>`` and the same core re-executes the case.
    """

    case: FuzzCase
    oracles: tuple[str, ...]
    violations: tuple[Violation, ...]
    campaign_seed: int | None = None
    index: int | None = None
    engine: str | None = None

    def to_dict(self) -> dict:
        payload: dict = {
            "kind": "fuzz_reproducer",
            "case": self.case.to_dict(),
            "oracles": list(self.oracles),
            "violations": [
                violation.to_dict() for violation in self.violations
            ],
        }
        if self.campaign_seed is not None:
            payload["campaign_seed"] = self.campaign_seed
        if self.index is not None:
            payload["index"] = self.index
        if self.engine is not None:
            payload["engine"] = self.engine
        return payload

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "Reproducer":
        if not isinstance(data, dict):
            raise ConfigError(f"reproducer must be an object, got {data!r}")
        kind = data.get("kind", "fuzz_reproducer")
        if kind != "fuzz_reproducer":
            raise ConfigError(
                f"Reproducer.from_dict got kind={kind!r}, expected"
                " 'fuzz_reproducer'"
            )
        if "case" not in data:
            raise ConfigError("reproducer is missing its embedded case")
        return cls(
            case=FuzzCase.from_dict(data["case"]),
            oracles=tuple(data.get("oracles", ())),
            violations=tuple(
                Violation.from_dict(violation)
                for violation in data.get("violations", ())
            ),
            campaign_seed=data.get("campaign_seed"),
            index=data.get("index"),
            engine=data.get("engine"),
        )

    @classmethod
    def from_json(cls, text: str) -> "Reproducer":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigError(f"invalid reproducer JSON: {error}") from None
        return cls.from_dict(data)

    def save(self, path: "str | Path") -> None:
        Path(path).write_text(self.to_json(indent=2), encoding="utf-8")

    @classmethod
    def load(cls, path: "str | Path") -> "Reproducer":
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            raise ConfigError(
                f"cannot read reproducer {str(path)!r}: {error}"
            ) from None
        return cls.from_json(text)


def _still_fails(
    case: FuzzCase, target: frozenset, deep: bool, differential: bool
) -> bool:
    """Whether ``case`` constructs, runs, and hits a chased oracle."""
    try:
        outcome = evaluate_case(case, deep=deep, differential=differential)
    except ConfigError:
        return False
    return bool(target & set(outcome.failing_oracles))


def _with_scenario(case: FuzzCase, scenario) -> FuzzCase:
    return replace(case, scenario=scenario)


def _stream_drop_candidates(case: FuzzCase):
    spec = case.scenario
    if len(spec.streams) < 2:
        return
    for victim in spec.streams:
        kept = tuple(
            stream for stream in spec.streams if stream.name != victim.name
        )
        templates = {
            name: chain
            for name, chain in case.templates.items()
            if name != victim.name
        }
        yield replace(
            case, scenario=replace(spec, streams=kept), templates=templates
        )


def _frame_cut_candidates(case: FuzzCase):
    frames = case.scenario.frames
    tried = sorted(
        {1, 2, 3, frames // 2, frames - 1} - {0, frames}
    )
    for count in tried:
        if 1 <= count < frames:
            yield replace(
                case, scenario=replace(case.scenario, frames=count)
            )


def _per_stream_candidates(case: FuzzCase):
    spec = case.scenario
    for index, stream in enumerate(spec.streams):
        edits = []
        if stream.arrivals is not None or stream.period_s is not None:
            edits.append(replace(stream, arrivals=None, period_s=None))
        if stream.deadline_s is not None:
            edits.append(replace(stream, deadline_s=None))
        if stream.skip_interval != 1:
            edits.append(replace(stream, skip_interval=1))
        for edited in edits:
            streams = (
                spec.streams[:index] + (edited,) + spec.streams[index + 1:]
            )
            yield _with_scenario(case, replace(spec, streams=streams))


def _scenario_knob_candidates(case: FuzzCase):
    if case.scenario.qos is not None:
        yield _with_scenario(case, replace(case.scenario, qos=None))
    if case.interference is not None:
        yield replace(case, interference=None)


def _template_candidates(case: FuzzCase):
    for name, chain in case.templates.items():
        simplified = []
        if len(chain) > 1:
            simplified.append(chain[:1])
        slimmed = tuple(
            replace(
                shape,
                claims=(
                    tuple(
                        claim for claim in shape.claims if claim[1] >= 1.0
                    )
                    or shape.claims
                ),
                cross_switch_s=0.0,
            )
            for shape in chain
        )
        if slimmed != chain:
            simplified.append(slimmed)
        for variant in simplified:
            yield replace(case, templates={**case.templates, name: variant})


_PASSES = (
    _stream_drop_candidates,
    _frame_cut_candidates,
    _per_stream_candidates,
    _scenario_knob_candidates,
    _template_candidates,
)


def shrink_case(
    case: FuzzCase,
    target_oracles=None,
    *,
    max_rounds: int = 16,
    campaign_seed: int | None = None,
    index: int | None = None,
) -> Reproducer:
    """Minimize ``case`` while it keeps violating the chased oracles.

    ``target_oracles`` defaults to whatever the case fails right now; a
    case that passes the full pack cannot be shrunk and raises
    :class:`~repro.errors.ConfigError`. Returns the reproducer for the
    1-minimal variant, with the final violations re-verified by the full
    (deep, differential) oracle pack.
    """
    baseline = evaluate_case(case, deep=True, differential=True)
    if target_oracles is None:
        target_oracles = baseline.failing_oracles
    target = frozenset(target_oracles)
    if not target or not (target & set(baseline.failing_oracles)):
        raise ConfigError(
            f"case {case.case_id!r} does not violate"
            f" {sorted(target) or 'any oracle'}: nothing to shrink"
        )
    deep = bool(target & _DEEP_ORACLES)
    differential = "engine_divergence" in target
    current = case
    for _ in range(max_rounds):
        improved = False
        for candidates_of in _PASSES:
            # Re-propose from the current smallest form until this pass
            # is exhausted: dropping stream A can make stream B droppable.
            progressing = True
            while progressing:
                progressing = False
                for candidate in candidates_of(current):
                    if _still_fails(candidate, target, deep, differential):
                        current = candidate
                        improved = True
                        progressing = True
                        break
        if not improved:
            break
    final = evaluate_case(current, deep=True, differential=differential)
    kept = tuple(
        violation
        for violation in final.violations
        if violation.oracle in target
    )
    return Reproducer(
        case=current,
        oracles=tuple(
            sorted({violation.oracle for violation in kept})
        ),
        violations=kept,
        campaign_seed=campaign_seed,
        index=index,
        engine=final.engine,
    )


def replay_reproducer(source: "Reproducer | FuzzCase") -> CaseOutcome:
    """Re-run a reproducer (or bare case) through the full oracle pack.

    Replay always includes the differential engine oracle: a reproducer
    recording an ``engine_divergence`` must re-fail on replay, and the
    extra engine run is one-off noise for everything else.
    """
    case = source.case if isinstance(source, Reproducer) else source
    return evaluate_case(case, deep=True, differential=True)


__all__ = ["Reproducer", "replay_reproducer", "shrink_case"]
