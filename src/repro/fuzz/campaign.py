"""Campaign runner: seeded batches, a persistent corpus, fleet fan-out.

A campaign is identified by ``(campaign_seed, index range)`` — case
``index`` is always ``generate_case(campaign_seed, index)``, so any
subset of indices can be (re)executed anywhere and the results are the
same. That identity is what makes the three execution modes equivalent:

* **local** — :func:`run_indices` evaluates indices in-process;
* **resumed** — a :class:`CorpusStore` (sqlite) persists every executed
  case record keyed ``(campaign_seed, index)``; re-running a campaign
  against the same store executes only the missing indices;
* **remote** — :func:`run_campaign` deals index shards over
  ``repro.cluster`` warm servers (capacity-weighted, with dead-server
  re-dispatch, exactly like sweep dispatch) and the servers run the same
  :func:`run_indices`.

Failures are shrunk (:func:`repro.fuzz.shrink.shrink_case`) into
self-contained reproducers at detection time, so a nightly campaign's
artifact is immediately actionable.

The :class:`FuzzReport` deliberately carries no timestamps or host
information: two runs of the same campaign serialize byte-identically,
which CI checks on every PR.
"""

from __future__ import annotations

import json
import sqlite3
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path

from repro.errors import ConfigError
from repro.fuzz.cases import FuzzCase
from repro.fuzz.generators import generate_case
from repro.fuzz.oracles import evaluate_case
from repro.fuzz.shrink import Reproducer, shrink_case

#: Case verdicts a record can carry.
STATUSES = ("ok", "violation")


@dataclass(frozen=True)
class CaseRecord:
    """One executed campaign case: verdict, the case, and its reproducer."""

    index: int
    case_id: str
    family: str
    status: str
    oracles: tuple[str, ...] = ()
    case: FuzzCase | None = None
    reproducer: Reproducer | None = None

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ConfigError(
                f"case record status must be one of {STATUSES}, got"
                f" {self.status!r}"
            )
        object.__setattr__(self, "oracles", tuple(self.oracles))

    @property
    def failed(self) -> bool:
        return self.status == "violation"

    def to_dict(self) -> dict:
        payload: dict = {
            "index": self.index,
            "case_id": self.case_id,
            "family": self.family,
            "status": self.status,
            "oracles": list(self.oracles),
        }
        if self.case is not None:
            payload["case"] = self.case.to_dict()
        if self.reproducer is not None:
            payload["reproducer"] = self.reproducer.to_dict()
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "CaseRecord":
        if not isinstance(data, dict):
            raise ConfigError(f"case record must be an object, got {data!r}")
        case = data.get("case")
        reproducer = data.get("reproducer")
        return cls(
            index=data.get("index", 0),
            case_id=data.get("case_id", "case"),
            family=data.get("family", "unknown"),
            status=data.get("status", "ok"),
            oracles=tuple(data.get("oracles", ())),
            case=FuzzCase.from_dict(case) if case is not None else None,
            reproducer=(
                Reproducer.from_dict(reproducer)
                if reproducer is not None
                else None
            ),
        )


def run_indices(
    campaign_seed: int,
    indices,
    *,
    shrink: bool = True,
    inject: str | None = None,
    differential: bool = False,
) -> list[CaseRecord]:
    """Evaluate the given campaign indices, in the order given.

    This is the shared execution unit: the local runner, the resumed
    runner, and the cluster server's ``fuzz`` verb all funnel through it,
    which is what makes their results interchangeable.

    ``inject`` plants the named fault into every case whose scenario the
    fault applies to (``invert_priority`` needs an ``exclusive``
    dispatcher, so only those cases are affected). ``differential``
    additionally runs every case through *both* timeline engines and
    records any report difference as an ``engine_divergence`` violation.
    """
    records = []
    for index in indices:
        case = generate_case(campaign_seed, index)
        if inject is not None and case.scenario.policy == "exclusive":
            case = replace(case, inject=inject)
        outcome = evaluate_case(case, deep=True, differential=differential)
        if outcome.ok:
            records.append(
                CaseRecord(
                    index=index,
                    case_id=case.case_id,
                    family=case.family,
                    status="ok",
                    case=case,
                )
            )
            continue
        reproducer = None
        if shrink:
            reproducer = shrink_case(
                case,
                outcome.failing_oracles,
                campaign_seed=campaign_seed,
                index=index,
            )
        records.append(
            CaseRecord(
                index=index,
                case_id=case.case_id,
                family=case.family,
                status="violation",
                oracles=outcome.failing_oracles,
                case=case,
                reproducer=reproducer,
            )
        )
    return records


# -- corpus persistence ----------------------------------------------------------------
_SCHEMA = """
CREATE TABLE IF NOT EXISTS fuzz_cases (
    campaign_seed   INTEGER NOT NULL,
    idx             INTEGER NOT NULL,
    case_id         TEXT NOT NULL,
    family          TEXT NOT NULL,
    status          TEXT NOT NULL,
    oracles         TEXT NOT NULL,
    case_json       TEXT NOT NULL,
    reproducer_json TEXT,
    PRIMARY KEY (campaign_seed, idx)
);
"""


class CorpusStore:
    """Sqlite persistence for executed campaign cases.

    Keys are ``(campaign_seed, index)`` — the campaign's content address —
    so resuming a campaign against the same store skips everything
    already executed, and the failure corpus accumulates across runs.
    Rows are deliberately timestamp-free (see the module docstring's
    determinism contract). ``path`` may be ``":memory:"``.
    """

    def __init__(self, path: "str | Path" = ":memory:") -> None:
        self.path = str(path)
        try:
            self._conn = sqlite3.connect(self.path)
            self._conn.executescript(_SCHEMA)
            self._conn.commit()
        except sqlite3.Error as error:
            raise ConfigError(
                f"cannot open fuzz corpus {self.path!r}: {error}"
            ) from None

    def put(self, campaign_seed: int, record: CaseRecord) -> None:
        """Store (or overwrite) one executed case record."""
        if record.case is None:
            raise ConfigError(
                f"corpus records need the full case (index {record.index})"
            )
        self._conn.execute(
            "INSERT OR REPLACE INTO fuzz_cases"
            " (campaign_seed, idx, case_id, family, status, oracles,"
            "  case_json, reproducer_json)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                campaign_seed,
                record.index,
                record.case_id,
                record.family,
                record.status,
                json.dumps(list(record.oracles)),
                record.case.to_json(),
                (
                    record.reproducer.to_json()
                    if record.reproducer is not None
                    else None
                ),
            ),
        )
        self._conn.commit()

    def get(self, campaign_seed: int, index: int) -> CaseRecord | None:
        """The stored record of one campaign index, or ``None``."""
        row = self._conn.execute(
            "SELECT case_id, family, status, oracles, case_json,"
            " reproducer_json FROM fuzz_cases"
            " WHERE campaign_seed = ? AND idx = ?",
            (campaign_seed, index),
        ).fetchone()
        if row is None:
            return None
        case_id, family, status, oracles, case_json, reproducer_json = row
        return CaseRecord(
            index=index,
            case_id=case_id,
            family=family,
            status=status,
            oracles=tuple(json.loads(oracles)),
            case=FuzzCase.from_json(case_json),
            reproducer=(
                Reproducer.from_json(reproducer_json)
                if reproducer_json is not None
                else None
            ),
        )

    def indices(self, campaign_seed: int) -> set[int]:
        """Every executed index of one campaign."""
        rows = self._conn.execute(
            "SELECT idx FROM fuzz_cases WHERE campaign_seed = ?",
            (campaign_seed,),
        ).fetchall()
        return {index for (index,) in rows}

    def failures(self, campaign_seed: int) -> list[CaseRecord]:
        """Every stored violation of one campaign, in index order."""
        rows = self._conn.execute(
            "SELECT idx FROM fuzz_cases"
            " WHERE campaign_seed = ? AND status = 'violation'"
            " ORDER BY idx",
            (campaign_seed,),
        ).fetchall()
        return [self.get(campaign_seed, index) for (index,) in rows]

    def __len__(self) -> int:
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM fuzz_cases"
        ).fetchone()
        return int(count)

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "CorpusStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"CorpusStore(path={self.path!r}, cases={len(self)})"


def open_corpus(path: "str | Path | None") -> CorpusStore | None:
    """``CorpusStore`` at ``path``, or ``None`` when no path is given."""
    return CorpusStore(path) if path is not None else None


# -- the campaign report ---------------------------------------------------------------
@dataclass(frozen=True)
class FuzzReport:
    """One campaign batch's outcome (deterministic: no timestamps).

    ``executed`` counts indices evaluated this run; ``loaded`` counts
    indices resumed from the corpus store. ``records`` always covers the
    full index range in order, whichever path produced each entry.
    """

    campaign_seed: int
    batch: int
    start: int = 0
    executed: int = 0
    loaded: int = 0
    records: tuple[CaseRecord, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "records", tuple(self.records))

    @property
    def failures(self) -> tuple[CaseRecord, ...]:
        return tuple(record for record in self.records if record.failed)

    @property
    def ok(self) -> bool:
        return not self.failures

    def families(self) -> dict[str, int]:
        """How many cases each family contributed."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.family] = counts.get(record.family, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict:
        return {
            "kind": "fuzz",
            "campaign_seed": self.campaign_seed,
            "batch": self.batch,
            "start": self.start,
            "executed": self.executed,
            "loaded": self.loaded,
            "failure_count": len(self.failures),
            "families": self.families(),
            "records": [record.to_dict() for record in self.records],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzReport":
        if not isinstance(data, dict):
            raise ConfigError(f"fuzz report must be an object, got {data!r}")
        kind = data.get("kind", "fuzz")
        if kind != "fuzz":
            raise ConfigError(
                f"FuzzReport.from_dict got kind={kind!r}, expected 'fuzz'"
            )
        return cls(
            campaign_seed=data.get("campaign_seed", 0),
            batch=data.get("batch", 0),
            start=data.get("start", 0),
            executed=data.get("executed", 0),
            loaded=data.get("loaded", 0),
            records=tuple(
                CaseRecord.from_dict(record)
                for record in data.get("records", ())
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "FuzzReport":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigError(f"invalid fuzz report JSON: {error}") from None
        return cls.from_dict(data)


def _run_remote(
    campaign_seed: int,
    pending: list[int],
    *,
    servers,
    shrink: bool,
    inject: str | None,
    differential: bool,
    timeout_s: float,
) -> list[CaseRecord]:
    """Deal pending indices over warm cluster servers.

    Mirrors sweep dispatch: shards are capacity-weighted, and a shard
    whose server dies mid-campaign is re-submitted to the next live
    server. Raises when a shard exhausts every server.
    """
    # Deferred import: local campaigns must not require the cluster
    # package's socket machinery.
    from repro.cluster.client import ClusterClient
    from repro.cluster.dispatch import (
        _REDISPATCH_ERRORS,
        normalize_servers,
        server_capacities,
        weighted_assignments,
    )

    servers = normalize_servers(servers)
    capacities = server_capacities(servers, timeout_s=timeout_s)
    assignments = weighted_assignments(pending, servers, capacities)
    dead: set[str] = set()

    def submit(assigned: str, shard) -> list[CaseRecord]:
        order = [assigned] + [
            server for server in servers if server != assigned
        ]
        last_error: Exception | None = None
        for address in order:
            if address in dead:
                continue
            client = ClusterClient(address, timeout_s=timeout_s)
            try:
                return client.submit_fuzz(
                    campaign_seed,
                    shard,
                    shrink=shrink,
                    inject=inject,
                    differential=differential,
                )
            except _REDISPATCH_ERRORS as error:
                dead.add(address)
                last_error = error
        raise ConfigError(
            f"fuzz shard {list(shard)!r} failed on every server:"
            f" {last_error}"
        )

    records: list[CaseRecord] = []
    with ThreadPoolExecutor(max_workers=max(1, len(assignments))) as pool:
        futures = [
            pool.submit(submit, address, shard)
            for address, shard in assignments
        ]
        for future in futures:
            records.extend(future.result())
    return records


def run_campaign(
    campaign_seed: int,
    batch: int,
    *,
    start: int = 0,
    store: CorpusStore | None = None,
    resume: bool = False,
    shrink: bool = True,
    inject: str | None = None,
    differential: bool = False,
    servers=None,
    timeout_s: float = 600.0,
) -> FuzzReport:
    """Run (or resume) one campaign batch and return its report.

    With ``store`` + ``resume``, indices already in the corpus are loaded
    instead of re-executed; everything executed this run is persisted
    back. With ``servers``, pending indices fan out across warm cluster
    servers — the records are identical to a local run by construction.
    ``differential`` turns on the both-engines oracle for every case (see
    :func:`run_indices`).
    """
    if batch < 0:
        raise ConfigError(f"campaign batch must be >= 0, got {batch}")
    if start < 0:
        raise ConfigError(f"campaign start must be >= 0, got {start}")
    wanted = list(range(start, start + batch))
    loaded: dict[int, CaseRecord] = {}
    if store is not None and resume:
        for index in wanted:
            record = store.get(campaign_seed, index)
            if record is not None:
                loaded[index] = record
    pending = [index for index in wanted if index not in loaded]
    if servers is not None and pending:
        executed = _run_remote(
            campaign_seed,
            pending,
            servers=servers,
            shrink=shrink,
            inject=inject,
            differential=differential,
            timeout_s=timeout_s,
        )
    else:
        executed = run_indices(
            campaign_seed,
            pending,
            shrink=shrink,
            inject=inject,
            differential=differential,
        )
    by_index = dict(loaded)
    for record in executed:
        by_index[record.index] = record
        if store is not None:
            store.put(campaign_seed, record)
    return FuzzReport(
        campaign_seed=campaign_seed,
        batch=batch,
        start=start,
        executed=len(executed),
        loaded=len(loaded),
        records=tuple(by_index[index] for index in wanted),
    )


__all__ = [
    "STATUSES",
    "CaseRecord",
    "CorpusStore",
    "FuzzReport",
    "open_corpus",
    "run_campaign",
    "run_indices",
]
