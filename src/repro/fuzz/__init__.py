"""repro.fuzz — seeded adversarial scenario fuzzing with invariant oracles.

The subsystem that turns the invariant suite into a continuous campaign:

* :mod:`repro.fuzz.generators` — deterministic adversarial scenario
  families, a pure function of ``(campaign_seed, index)``;
* :mod:`repro.fuzz.cases` — the self-contained, JSON-portable case
  format and its executor;
* :mod:`repro.fuzz.oracles` — the invariant-oracle pack (shared with
  the hypothesis suite in ``tests/schedule/test_invariants.py``);
* :mod:`repro.fuzz.shrink` — greedy delta-debugging to minimal
  reproducers;
* :mod:`repro.fuzz.campaign` — batch/resume/fleet campaign running and
  the sqlite failure corpus.
"""

from repro.fuzz.campaign import (
    CaseRecord,
    CorpusStore,
    FuzzReport,
    open_corpus,
    run_campaign,
    run_indices,
)
from repro.fuzz.cases import (
    FUZZ_PLATFORM,
    INJECTIONS,
    CaseResult,
    FuzzCase,
    TaskShape,
    run_case,
)
from repro.fuzz.generators import FAMILIES, generate_batch, generate_case
from repro.fuzz.oracles import (
    ORACLE_NAMES,
    CaseOutcome,
    Violation,
    evaluate_case,
)
from repro.fuzz.shrink import Reproducer, replay_reproducer, shrink_case

__all__ = [
    "FAMILIES",
    "FUZZ_PLATFORM",
    "INJECTIONS",
    "ORACLE_NAMES",
    "CaseOutcome",
    "CaseRecord",
    "CaseResult",
    "CorpusStore",
    "FuzzCase",
    "FuzzReport",
    "Reproducer",
    "TaskShape",
    "Violation",
    "evaluate_case",
    "generate_batch",
    "generate_case",
    "open_corpus",
    "replay_reproducer",
    "run_campaign",
    "run_case",
    "run_indices",
    "shrink_case",
]
