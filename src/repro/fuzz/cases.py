"""Self-contained fuzz cases: a scenario plus the task chains it runs.

A :class:`FuzzCase` packages everything needed to execute one adversarial
scenario through the timeline engine — the
:class:`~repro.schedule.streams.ScenarioSpec` (streams, arrivals, policy,
QoS), a *synthetic* per-stream task template
(:class:`TaskShape` chains, standing in for platform-lowered models so no
model registry or platform binding is needed), an optional measured
:class:`~repro.catalog.interference.InterferenceMatrix`, and an optional
planted fault (``inject``). Cases round-trip losslessly through JSON,
which is what makes a shrunk reproducer replayable on any machine: the
file *is* the failing input, not a pointer to one.

``inject`` names a deliberate engine-level fault from
:data:`INJECTIONS` — today ``"invert_priority"``, which replaces the
dispatch order of an ``exclusive`` policy with lowest-priority-first.
Injections exist to prove the oracle/shrink/replay pipeline end to end
(a campaign with a planted inversion must detect it, shrink it, and
re-fail on replay); they ride the case JSON so a reproducer keeps
failing wherever it is replayed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.api.results import ScheduleReport, ServingReport
from repro.catalog.interference import InterferenceMatrix
from repro.errors import ConfigError
from repro.schedule.policies import SchedulingPolicy, make_policy
from repro.schedule.resources import ResourceClaim, ResourceKind
from repro.schedule.streams import FramePlan, ScenarioSpec, instantiate_frames
from repro.schedule.timeline import OpTask, Timeline, TimelineScheduler
from repro.serving.qos import make_qos

#: The platform label fuzz reports carry (cases are platform-free).
FUZZ_PLATFORM = "fuzz:synthetic"


@dataclass(frozen=True)
class TaskShape:
    """One op of a synthetic stream template.

    ``claims`` are ``(resource kind, fraction)`` pairs — the primitive
    form of :class:`~repro.schedule.resources.ResourceClaim` so shapes
    stay JSON-portable. ``seconds`` may be 0.0 (zero-length ops are a
    fuzzed edge case, not an error).
    """

    name: str
    seconds: float
    claims: tuple[tuple[str, float], ...]
    mode: str = "simd"
    cross_switch_s: float = 0.0

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ConfigError(
                f"task shape {self.name!r} has negative duration"
                f" {self.seconds}"
            )
        if not self.claims:
            raise ConfigError(f"task shape {self.name!r} claims no resources")
        canonical = []
        for entry in self.claims:
            try:
                kind, fraction = entry
            except (TypeError, ValueError):
                raise ConfigError(
                    f"task shape claim must be (kind, fraction), got"
                    f" {entry!r}"
                ) from None
            canonical.append((ResourceKind(str(kind)).value, float(fraction)))
        object.__setattr__(self, "claims", tuple(canonical))

    def to_op(self, uid: int) -> OpTask:
        """The template :class:`OpTask` (rebased by ``instantiate_frames``)."""
        return OpTask(
            uid=uid,
            name=self.name,
            seconds=self.seconds,
            claims=tuple(
                ResourceClaim(ResourceKind(kind), fraction=fraction)
                for kind, fraction in self.claims
            ),
            mode=self.mode,
            cross_switch_s=self.cross_switch_s,
        )

    def to_dict(self) -> dict:
        payload: dict = {
            "name": self.name,
            "seconds": self.seconds,
            "claims": [list(claim) for claim in self.claims],
        }
        if self.mode != "simd":
            payload["mode"] = self.mode
        if self.cross_switch_s:
            payload["cross_switch_s"] = self.cross_switch_s
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "TaskShape":
        if not isinstance(data, dict):
            raise ConfigError(f"task shape must be an object, got {data!r}")
        return cls(
            name=data.get("name", "op"),
            seconds=data.get("seconds", 0.0),
            claims=tuple(tuple(claim) for claim in data.get("claims", ())),
            mode=data.get("mode", "simd"),
            cross_switch_s=data.get("cross_switch_s", 0.0),
        )


@dataclass(frozen=True)
class FuzzCase:
    """One generated adversarial scenario, replayable from JSON alone."""

    case_id: str
    family: str
    seed: int
    scenario: ScenarioSpec
    templates: dict[str, tuple[TaskShape, ...]]
    interference: InterferenceMatrix | None = None
    inject: str | None = None

    def __post_init__(self) -> None:
        templates = {
            name: tuple(
                shape
                if isinstance(shape, TaskShape)
                else TaskShape.from_dict(shape)
                for shape in chain
            )
            for name, chain in self.templates.items()
        }
        object.__setattr__(self, "templates", templates)
        for stream in self.scenario.streams:
            if stream.name not in templates:
                raise ConfigError(
                    f"case {self.case_id!r}: stream {stream.name!r} has no"
                    " task template"
                )
            if not templates[stream.name]:
                raise ConfigError(
                    f"case {self.case_id!r}: stream {stream.name!r} has an"
                    " empty task template"
                )
        if self.inject is not None and self.inject not in INJECTIONS:
            raise ConfigError(
                f"case {self.case_id!r}: unknown injection {self.inject!r};"
                f" one of {tuple(INJECTIONS)}"
            )

    @property
    def n_streams(self) -> int:
        return len(self.scenario.streams)

    @property
    def n_frames(self) -> int:
        return self.scenario.frames

    def to_dict(self) -> dict:
        payload: dict = {
            "kind": "fuzz_case",
            "case_id": self.case_id,
            "family": self.family,
            "seed": self.seed,
            "scenario": self.scenario.to_dict(),
            "templates": {
                name: [shape.to_dict() for shape in chain]
                for name, chain in self.templates.items()
            },
        }
        if self.interference is not None and self.interference:
            payload["interference"] = self.interference.to_dict()
        if self.inject is not None:
            payload["inject"] = self.inject
        return payload

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzCase":
        if not isinstance(data, dict):
            raise ConfigError(f"fuzz case must be an object, got {data!r}")
        kind = data.get("kind", "fuzz_case")
        if kind != "fuzz_case":
            raise ConfigError(
                f"FuzzCase.from_dict got kind={kind!r}, expected 'fuzz_case'"
            )
        interference = data.get("interference")
        return cls(
            case_id=data.get("case_id", "case"),
            family=data.get("family", "unknown"),
            seed=data.get("seed", 0),
            scenario=ScenarioSpec.from_dict(data["scenario"]),
            templates={
                name: tuple(TaskShape.from_dict(shape) for shape in chain)
                for name, chain in data.get("templates", {}).items()
            },
            interference=(
                InterferenceMatrix.from_dict(interference)
                if interference is not None
                else None
            ),
            inject=data.get("inject"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FuzzCase":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigError(f"invalid fuzz case JSON: {error}") from None
        return cls.from_dict(data)

    def save(self, path: "str | Path") -> None:
        Path(path).write_text(self.to_json(indent=2), encoding="utf-8")

    @classmethod
    def load(cls, path: "str | Path") -> "FuzzCase":
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            raise ConfigError(
                f"cannot read fuzz case {str(path)!r}: {error}"
            ) from None
        return cls.from_json(text)


# -- fault injection -------------------------------------------------------------------
class _InvertPriorityPolicy(SchedulingPolicy):
    """Planted bug: exclusive dispatch picks the *lowest*-priority task.

    With two ready tasks of different weights this violates the
    priority-order oracle at the first dispatch instant — the minimal
    deliberate fault for proving the detect/shrink/replay pipeline.
    """

    def __init__(self, inner: SchedulingPolicy) -> None:
        self.inner = inner
        self.name = inner.name

    def dispatch(self, ready: list, running: list) -> list:
        if running or not ready:
            return []
        worst = min(
            ready, key=lambda task: (task.weight, task.release_s, task.uid)
        )
        return [worst]

    def weight(self, task) -> float:
        return self.inner.weight(task)


#: Named engine-level faults a case may plant (see module docstring).
INJECTIONS = {
    "invert_priority": _InvertPriorityPolicy,
}


@dataclass(frozen=True)
class CaseResult:
    """One executed case: the instantiated plan, timeline, and reports."""

    case: FuzzCase
    plan: FramePlan
    timeline: Timeline
    schedule: ScheduleReport
    serving: ServingReport

    @property
    def tasks(self) -> tuple[OpTask, ...]:
        return self.plan.tasks


def run_case(
    case: FuzzCase, engine: str | None = None, tracer=None
) -> CaseResult:
    """Execute one case through the timeline engine and assemble reports.

    ``engine`` picks the timeline execution core (``"scalar"`` /
    ``"vectorized"``); ``None`` defers to the process default. The
    differential oracle re-runs a case on the other engine and treats any
    report difference as a violation — the two cores are pinned
    bit-identical. ``tracer`` attaches an observation-only
    :class:`~repro.obs.trace.Tracer` — the trace-transparency oracle
    asserts it changes nothing.

    Raises :class:`~repro.errors.SchedulingError` if the engine itself
    fails — the caller (see :func:`repro.fuzz.oracles.evaluate_case`)
    records that as a ``crash`` oracle violation rather than letting the
    campaign die.
    """
    spec = case.scenario
    templates = {
        name: [shape.to_op(uid) for uid, shape in enumerate(chain)]
        for name, chain in case.templates.items()
    }
    plan = instantiate_frames(spec, templates)
    policy = make_policy(spec.policy)
    if case.inject is not None:
        policy = INJECTIONS[case.inject](policy)
    scheduler = TimelineScheduler(
        policy,
        qos=make_qos(spec.qos),
        interference=(
            case.interference
            if case.interference is not None and case.interference
            else None
        ),
        engine=engine,
        tracer=tracer,
    )
    timeline = scheduler.run(list(plan.tasks))
    return CaseResult(
        case=case,
        plan=plan,
        timeline=timeline,
        schedule=ScheduleReport.from_timeline(
            spec, FUZZ_PLATFORM, timeline, plan
        ),
        serving=ServingReport.from_timeline(
            spec, FUZZ_PLATFORM, timeline, plan
        ),
    )


__all__ = [
    "FUZZ_PLATFORM",
    "INJECTIONS",
    "CaseResult",
    "FuzzCase",
    "TaskShape",
    "run_case",
]
