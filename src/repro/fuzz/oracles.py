"""Invariant oracles: properties every scheduled scenario must satisfy.

Each ``check_*`` function examines an executed timeline (or the reports
derived from one) and returns a list of human-readable violation
messages — empty means the invariant holds. The pack generalizes the
assertions that grew up inside the hypothesis suite
(``tests/schedule/test_invariants.py``); that suite now calls the
``assert_*`` wrappers here, so the property tests and the fuzzer check
the *same* predicates and cannot drift.

The oracles, and what each one guards:

* **capacity** — no resource delivers more than one resource-second per
  second: per resource, summed ``fraction x seconds`` over executed
  tasks is bounded by the makespan. Skipped when an interference matrix
  is active (the engine then derives slowdown from measured directional
  pressure, not fractional claims, so the claim-sum bound is not the
  governing model).
* **conservation** — work is neither lost nor duplicated: every
  non-cancelled task appears in exactly one segment whose duration
  equals the task's full-speed seconds, and no dropped or in-flight
  aborted task appears at all.
* **monotone_events** — time only moves forward: completion-ordered
  segments have nondecreasing ends, nothing starts before its static
  release or ends before it starts, nothing finishes faster than
  full speed, drops and preemption events never predate their frame's
  release, and the makespan covers the last event.
* **frame_atomicity** — frames have exactly one of three outcomes:
  every task completed, every task was dropped, or (preemptive QoS
  only) a prefix of the chain completed and the rest was aborted
  in-flight — never a mix of drops and aborts, never a task left
  unresolved.
* **priority_order** — under ``exclusive`` and ``exclusive_preempt``,
  dispatch never inverts priority: whenever a task starts while a
  strictly higher-priority task is released, dependency-satisfied, and
  still waiting, that is a violation. (This is an *order-of-dispatch*
  property; blocking by the kernel already in flight is what
  **preemption_bound** constrains.)
* **preemption_bound** — under ``exclusive_preempt``, priority
  inversion is bounded to the one kernel already on the machine: no
  strictly-lower-weight kernel *starts* strictly inside the window
  between a task becoming ready and that task starting.
* **serving_consistency** — a :class:`ServingReport`'s per-stream
  statistics agree with its own per-frame records: counts partition,
  and mean/max/percentile latencies recompute to the stored values.
  (Aggregate ``goodput_fps`` is excluded by design: merged fleet
  reports keep per-partition goodput, which is documented behavior.)
* **reports_agree** — the schedule-view and serving-view reports of one
  timeline tell the same story (makespan, per-stream completion, drop,
  and miss counts).

:func:`evaluate_case` runs a :class:`~repro.fuzz.cases.FuzzCase`
through the engine and the full pack, adding case-level oracles that
need a re-run: **determinism** (same case twice → byte-identical report
JSON), **report_roundtrip** (``to_json``/``from_dict`` is lossless),
**trace_roundtrip** (materializing the arrival trace and replaying it
reproduces the run bit-for-bit), **merge** (splitting the replayed
scenario into partitions and merging the per-partition serving reports
is self-consistent), **trace_transparency** (attaching a
:class:`~repro.obs.trace.Tracer` changes no report byte — observation
must not perturb the simulation), and **crash** (the engine raised
instead of scheduling). With ``differential=True`` it additionally
re-runs the case on the *other* timeline engine (scalar vs vectorized)
and flags **engine_divergence** when the reports are not byte-identical
— the two cores are pinned to the same arithmetic, so any difference is
a bug in one of them — and extends **trace_transparency** to demand the
two engines emit the identical trace event sequence.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

from repro.common.stats import percentile
from repro.errors import ConfigError, SchedulingError
from repro.fuzz.cases import CaseResult, FuzzCase, run_case
from repro.schedule.timeline import OpTask, Timeline, default_engine

#: Tolerances. Exact-derivation checks (recomputing a value the same way
#: the reporting code did) compare to _EXACT; inequality checks on
#: accumulated event times allow relative float dust, mirroring the
#: engine's own epsilon regime.
_EXACT = 1e-12
_REL = 1e-9

#: Every oracle name that can appear in a violation (sorted).
ORACLE_NAMES = (
    "capacity",
    "conservation",
    "crash",
    "determinism",
    "engine_divergence",
    "frame_atomicity",
    "merge",
    "monotone_events",
    "preemption_bound",
    "priority_order",
    "report_roundtrip",
    "reports_agree",
    "serving_consistency",
    "trace_roundtrip",
    "trace_transparency",
)


@dataclass(frozen=True)
class Violation:
    """One oracle failure: which invariant broke and how."""

    oracle: str
    message: str

    def to_dict(self) -> dict:
        return {"oracle": self.oracle, "message": self.message}

    @classmethod
    def from_dict(cls, data: dict) -> "Violation":
        if not isinstance(data, dict):
            raise ConfigError(f"violation must be an object, got {data!r}")
        return cls(
            oracle=data.get("oracle", "unknown"),
            message=data.get("message", ""),
        )


# -- timeline-level oracles ------------------------------------------------------------
def _aborted_uids(timeline: Timeline) -> set[int]:
    """Tasks cancelled in-flight by a preemptive QoS policy."""
    return {
        record.uid
        for record in timeline.preemptions
        if record.action == "abort"
    }


def check_capacity(
    tasks, timeline: Timeline, interference=None
) -> list[str]:
    """Per resource, executed work is bounded by the makespan."""
    if interference is not None and interference:
        # Pressure-model runs don't obey the fractional-claim bound; the
        # conservation and monotonicity oracles still apply to them.
        return []
    dropped = {record.uid for record in timeline.drops} | _aborted_uids(
        timeline
    )
    demand: dict[str, float] = {}
    for task in tasks:
        if task.uid in dropped:
            continue
        for claim in task.claims:
            key = claim.kind.value
            demand[key] = demand.get(key, 0.0) + claim.fraction * task.seconds
    bound = timeline.makespan_s * (1.0 + _REL) + _EXACT
    return [
        f"resource {key!r} delivered {total:.9g} resource-seconds in a"
        f" {timeline.makespan_s:.9g}s makespan"
        for key, total in sorted(demand.items())
        if total > bound
    ]


def check_conservation(tasks, timeline: Timeline) -> list[str]:
    """Every executed task ran exactly once, at its full-speed duration."""
    problems: list[str] = []
    # In-flight aborts cancel a task outright, exactly like an admission
    # drop for conservation purposes: no segment may exist for it.
    dropped = {record.uid for record in timeline.drops} | _aborted_uids(
        timeline
    )
    segments: dict[int, list] = {}
    for segment in timeline.segments:
        segments.setdefault(segment.uid, []).append(segment)
    for task in tasks:
        runs = segments.get(task.uid, [])
        if task.uid in dropped:
            if runs:
                problems.append(
                    f"dropped task {task.uid} ({task.stream}/f{task.frame})"
                    f" still has {len(runs)} segment(s)"
                )
            continue
        if len(runs) != 1:
            problems.append(
                f"task {task.uid} ({task.stream}/f{task.frame}) has"
                f" {len(runs)} segments, expected exactly 1"
            )
            continue
        if abs(runs[0].seconds - task.seconds) > _EXACT:
            problems.append(
                f"task {task.uid} ran {runs[0].seconds:.9g}s of work,"
                f" expected {task.seconds:.9g}s"
            )
    known = {task.uid for task in tasks}
    for uid in sorted(set(segments) - known):
        problems.append(f"segment for unknown task uid {uid}")
    # busy_s is per-resource wall time with nonzero load: bounded by the
    # makespan, and never below the clipped load integral.
    bound = timeline.makespan_s * (1.0 + _REL) + _EXACT
    for kind, busy in sorted(timeline.busy_s.items(), key=lambda kv: kv[0].value):
        if busy < -_EXACT or busy > bound:
            problems.append(
                f"resource {kind.value!r} busy {busy:.9g}s outside"
                f" [0, makespan {timeline.makespan_s:.9g}s]"
            )
        integral = timeline.load_integral_s.get(kind, 0.0)
        if integral > busy * (1.0 + _REL) + _EXACT:
            problems.append(
                f"resource {kind.value!r} load integral {integral:.9g}s"
                f" exceeds busy time {busy:.9g}s"
            )
    return problems


def check_monotone_events(tasks, timeline: Timeline) -> list[str]:
    """Event times only move forward, at no more than full speed."""
    problems: list[str] = []
    by_uid = {task.uid: task for task in tasks}
    previous_end = 0.0
    last_event = 0.0
    for segment in timeline.segments:
        if segment.end_s < previous_end - _EXACT:
            problems.append(
                f"segment uid {segment.uid} ends at {segment.end_s:.9g},"
                f" before prior completion {previous_end:.9g}"
            )
        previous_end = max(previous_end, segment.end_s)
        last_event = max(last_event, segment.end_s)
        if segment.start_s > segment.end_s + _EXACT:
            problems.append(
                f"segment uid {segment.uid} starts after it ends"
                f" ({segment.start_s:.9g} > {segment.end_s:.9g})"
            )
        task = by_uid.get(segment.uid)
        if task is None:
            continue
        # Static release is a lower bound: closed-loop pacing only ever
        # pushes a release later.
        if segment.start_s < task.release_s - _EXACT:
            problems.append(
                f"task {segment.uid} started at {segment.start_s:.9g},"
                f" before its release {task.release_s:.9g}"
            )
        elapsed = segment.end_s - segment.start_s
        floor = task.seconds * (1.0 - _REL) - _EXACT
        if elapsed < floor:
            problems.append(
                f"task {segment.uid} finished {task.seconds:.9g}s of work"
                f" in {elapsed:.9g}s (faster than full speed)"
            )
    for record in timeline.drops:
        last_event = max(last_event, record.time_s)
        task = by_uid.get(record.uid)
        if task is not None and record.time_s < task.release_s - _EXACT:
            problems.append(
                f"task {record.uid} dropped at {record.time_s:.9g}, before"
                f" its release {task.release_s:.9g}"
            )
    for record in timeline.preemptions:
        last_event = max(last_event, record.time_s)
        task = by_uid.get(record.uid)
        if task is not None and record.time_s < task.release_s - _EXACT:
            problems.append(
                f"task {record.uid} preempted ({record.action}) at"
                f" {record.time_s:.9g}, before its release"
                f" {task.release_s:.9g}"
            )
    if timeline.makespan_s < last_event - _EXACT:
        problems.append(
            f"makespan {timeline.makespan_s:.9g} precedes the last event"
            f" at {last_event:.9g}"
        )
    return problems


def check_frame_atomicity(tasks, timeline: Timeline) -> list[str]:
    """Tasks partition into completed/dropped/aborted; frames resolve
    whole: all-completed, all-dropped, or a completed chain prefix with
    the remainder aborted in-flight."""
    problems: list[str] = []
    completed = {segment.uid for segment in timeline.segments}
    dropped = {record.uid for record in timeline.drops}
    aborted = _aborted_uids(timeline)
    for uid in sorted(completed & dropped):
        problems.append(f"task {uid} both completed and dropped")
    for uid in sorted(completed & aborted):
        problems.append(f"task {uid} both completed and aborted")
    for uid in sorted(dropped & aborted):
        problems.append(f"task {uid} both dropped and aborted")
    every = {task.uid for task in tasks}
    for uid in sorted(every - completed - dropped - aborted):
        problems.append(f"task {uid} neither completed, dropped, nor aborted")
    frames: dict[tuple[str, int], list[OpTask]] = {}
    for task in tasks:
        frames.setdefault((task.stream, task.frame), []).append(task)
    for (stream, frame), members in sorted(frames.items()):
        hit = [task.uid for task in members if task.uid in dropped]
        cut = [task.uid for task in members if task.uid in aborted]
        if hit and cut:
            problems.append(
                f"frame {stream}/f{frame} mixes admission drops and"
                f" in-flight aborts"
            )
            continue
        if hit and len(hit) != len(members):
            problems.append(
                f"frame {stream}/f{frame} dropped {len(hit)} of"
                f" {len(members)} tasks — drops must take whole frames"
            )
        if cut:
            # The abort cancels the frame's *unstarted* remainder: the
            # chain runs in uid order, so the completed part must be a
            # strict uid-prefix of the aborted part.
            boundary = min(cut)
            stragglers = [
                task.uid
                for task in members
                if task.uid in completed and task.uid > boundary
            ]
            if stragglers:
                problems.append(
                    f"frame {stream}/f{frame} completed tasks {stragglers}"
                    f" after aborted task {boundary} — aborts must cancel"
                    f" the chain's whole remainder"
                )
    return problems


def _resolve_times(timeline: Timeline) -> dict[int, float]:
    """When each task stopped mattering: completion, drop, or abort time.

    Deschedule records are *not* resolutions — a descheduled task still
    runs later and resolves through its segment.
    """
    resolved = {
        segment.uid: segment.end_s for segment in timeline.segments
    }
    for record in timeline.drops:
        resolved.setdefault(record.uid, record.time_s)
    for record in timeline.preemptions:
        if record.action == "abort":
            resolved.setdefault(record.uid, record.time_s)
    return resolved


def _ready_time(task: OpTask, resolved: dict[int, float]) -> float | None:
    """When ``task`` became dispatchable, mirroring the engine's rules.

    ``None`` when a dependency never resolved (the task can never run).
    Closed-loop frame heads re-release ``think_s`` after their pacing
    dependency resolves — the same ``max`` the engine applies.
    """
    ready = task.release_s
    for dep in task.deps:
        when = resolved.get(dep)
        if when is None:
            return None
        if task.think_s is not None:
            when = when + task.think_s
        ready = max(ready, when)
    return ready


def check_priority_order(tasks, timeline: Timeline, policy: str) -> list[str]:
    """Under ``exclusive``/``exclusive_preempt``, no dispatch passes over
    a waiting higher priority task (see the module docstring for what
    this deliberately does *not* claim about blocking)."""
    if policy not in ("exclusive", "exclusive_preempt"):
        return []
    problems: list[str] = []
    by_uid = {task.uid: task for task in tasks}
    starts = {segment.uid: segment.start_s for segment in timeline.segments}
    drop_times = {record.uid: record.time_s for record in timeline.drops}
    for record in timeline.preemptions:
        # An aborted task was waiting until its abort, exactly like a
        # dropped one.
        if record.action == "abort":
            drop_times.setdefault(record.uid, record.time_s)
    resolved = _resolve_times(timeline)
    for segment in timeline.segments:
        chosen = by_uid.get(segment.uid)
        if chosen is None:
            continue
        now = segment.start_s
        for task in tasks:
            if task.uid == segment.uid or task.weight <= chosen.weight:
                continue
            started = starts.get(task.uid)
            if started is not None:
                waiting = started > now + _EXACT
            else:
                dropped_at = drop_times.get(task.uid)
                waiting = dropped_at is not None and dropped_at > now + _EXACT
            if not waiting:
                continue
            ready = _ready_time(task, resolved)
            # Exact comparison on purpose: the engine's event queue keys
            # on exact floats, so a task released any amount after ``now``
            # (even denormal dust) really is not dispatchable yet.
            if ready is not None and ready <= now:
                problems.append(
                    f"at t={now:.9g} task {segment.uid}"
                    f" (w={chosen.weight:g}) was dispatched while task"
                    f" {task.uid} (w={task.weight:g}) was ready and waiting"
                )
    return problems


def check_preemption_bound(
    tasks, timeline: Timeline, policy: str
) -> list[str]:
    """Under ``exclusive_preempt``, inversion is bounded to one kernel.

    Once a task is ready (released, dependencies resolved), the only
    thing allowed to delay it is the kernel already on the machine: no
    strictly-lower-weight kernel may *start* strictly inside the open
    window between the task's ready time and its own start.
    """
    if policy != "exclusive_preempt":
        return []
    problems: list[str] = []
    by_uid = {task.uid: task for task in tasks}
    resolved = _resolve_times(timeline)
    starts = [
        (segment.start_s, segment.uid) for segment in timeline.segments
    ]
    for segment in timeline.segments:
        waiter = by_uid.get(segment.uid)
        if waiter is None:
            continue
        ready = _ready_time(waiter, resolved)
        if ready is None or segment.start_s <= ready + _EXACT:
            continue
        for start, uid in starts:
            if uid == segment.uid:
                continue
            other = by_uid.get(uid)
            if other is None or other.weight >= waiter.weight:
                continue
            if ready + _EXACT < start < segment.start_s - _EXACT:
                problems.append(
                    f"task {uid} (w={other.weight:g}) started at"
                    f" {start:.9g} while task {segment.uid}"
                    f" (w={waiter.weight:g}) had been ready since"
                    f" {ready:.9g} and only started at"
                    f" {segment.start_s:.9g} — inversion beyond the"
                    f" in-flight kernel"
                )
    return problems


# -- report-level oracles --------------------------------------------------------------
def check_serving_consistency(report) -> list[str]:
    """A serving report's statistics agree with its own frame records."""
    problems: list[str] = []
    for stream in report.streams:
        frames = stream.frames
        done = [frame for frame in frames if not frame.dropped]
        latencies = [frame.latency_s for frame in done]
        expected = {
            "offered": len(frames),
            "completed": len(done),
            "dropped": len(frames) - len(done),
            "missed": sum(1 for frame in done if frame.missed),
        }
        for name, want in expected.items():
            got = getattr(stream, name)
            if got != want:
                problems.append(
                    f"stream {stream.name!r}: {name}={got} but frame"
                    f" records say {want}"
                )
        recomputed = {
            "mean_latency_s": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "max_latency_s": max(latencies) if latencies else 0.0,
            "p50_s": percentile(latencies, 50),
            "p95_s": percentile(latencies, 95),
            "p99_s": percentile(latencies, 99),
        }
        for name, want in recomputed.items():
            got = getattr(stream, name)
            if abs(got - want) > _EXACT:
                problems.append(
                    f"stream {stream.name!r}: {name}={got:.9g} but frame"
                    f" records recompute to {want:.9g}"
                )
    return problems


def check_reports_agree(schedule, serving) -> list[str]:
    """Schedule-view and serving-view of one timeline tell one story."""
    problems: list[str] = []
    if schedule.makespan_s != serving.makespan_s:
        problems.append(
            f"makespan disagrees: schedule {schedule.makespan_s:.9g} vs"
            f" serving {serving.makespan_s:.9g}"
        )
    serving_streams = {stream.name: stream for stream in serving.streams}
    for stream in schedule.streams:
        other = serving_streams.get(stream.name)
        if other is None:
            problems.append(
                f"stream {stream.name!r} missing from the serving report"
            )
            continue
        for schedule_name, serving_name in (
            ("frames_run", "completed"),
            ("frames_dropped", "dropped"),
            ("deadline_misses", "missed"),
        ):
            mine = getattr(stream, schedule_name)
            theirs = getattr(other, serving_name)
            if mine != theirs:
                problems.append(
                    f"stream {stream.name!r}: schedule {schedule_name}="
                    f"{mine} vs serving {serving_name}={theirs}"
                )
    return problems


# -- assertion wrappers (the hypothesis suite's entry points) --------------------------
def _require(problems: list[str], oracle: str) -> None:
    if problems:
        raise AssertionError(
            f"{oracle} oracle violated:\n" + "\n".join(problems)
        )


def assert_capacity(tasks, timeline, interference=None) -> None:
    _require(check_capacity(tasks, timeline, interference), "capacity")


def assert_conservation(tasks, timeline) -> None:
    _require(check_conservation(tasks, timeline), "conservation")


def assert_monotone_events(tasks, timeline) -> None:
    _require(check_monotone_events(tasks, timeline), "monotone_events")


def assert_frame_atomicity(tasks, timeline) -> None:
    _require(check_frame_atomicity(tasks, timeline), "frame_atomicity")


def assert_priority_order(tasks, timeline, policy) -> None:
    _require(check_priority_order(tasks, timeline, policy), "priority_order")


def assert_preemption_bound(tasks, timeline, policy) -> None:
    _require(
        check_preemption_bound(tasks, timeline, policy), "preemption_bound"
    )


def assert_serving_consistency(report) -> None:
    _require(check_serving_consistency(report), "serving_consistency")


def assert_reports_agree(schedule, serving) -> None:
    _require(check_reports_agree(schedule, serving), "reports_agree")


# -- whole-case evaluation -------------------------------------------------------------
@dataclass(frozen=True)
class CaseOutcome:
    """One case's verdict: the case and every oracle violation found.

    ``engine`` records which timeline core produced this verdict (the
    resolved ``REPRO_ENGINE`` default at evaluation time), so a crash or
    differential failure is replayable verbatim — run the reproducer
    with ``REPRO_ENGINE=<engine>`` and the same core re-executes it.
    """

    case: FuzzCase
    violations: tuple[Violation, ...]
    result: CaseResult | None = None
    engine: str | None = None

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def failing_oracles(self) -> tuple[str, ...]:
        return tuple(
            sorted({violation.oracle for violation in self.violations})
        )


def _roundtrip_violations(result: CaseResult) -> list[Violation]:
    # Deferred import: results.report_from_dict is the public dispatcher
    # and this module is imported by it transitively via the fuzz package.
    from repro.api.results import report_from_dict

    problems: list[Violation] = []
    for label, report in (
        ("schedule", result.schedule),
        ("serving", result.serving),
    ):
        try:
            back = report_from_dict(json.loads(report.to_json()))
        except Exception as error:  # noqa: BLE001 - any failure is the finding
            problems.append(
                Violation(
                    "report_roundtrip",
                    f"{label} report failed to round-trip: {error}",
                )
            )
            continue
        if back != report:
            problems.append(
                Violation(
                    "report_roundtrip",
                    f"{label} report changed across to_json/from_dict",
                )
            )
    return problems


def _determinism_violations(
    case: FuzzCase, result: CaseResult
) -> list[Violation]:
    rerun = run_case(case)
    problems = []
    for label, first, second in (
        ("schedule", result.schedule, rerun.schedule),
        ("serving", result.serving, rerun.serving),
    ):
        if first.to_json() != second.to_json():
            problems.append(
                Violation(
                    "determinism",
                    f"{label} report differs between two runs of case"
                    f" {case.case_id!r}",
                )
            )
    return problems


def _engine_divergence_violations(
    case: FuzzCase, result: CaseResult
) -> list[Violation]:
    """Differential oracle: the other engine must tell the same story."""
    from repro.schedule.timeline import ENGINE_NAMES, default_engine

    ran = default_engine()
    other = next(name for name in ENGINE_NAMES if name != ran)
    try:
        rerun = run_case(case, engine=other)
    except Exception as error:  # noqa: BLE001 - any failure is the finding
        return [
            Violation(
                "engine_divergence",
                f"the {other} engine raised where {ran} scheduled case"
                f" {case.case_id!r}: {error}",
            )
        ]
    problems = []
    for label, first, second in (
        ("schedule", result.schedule, rerun.schedule),
        ("serving", result.serving, rerun.serving),
    ):
        if first.to_json() != second.to_json():
            problems.append(
                Violation(
                    "engine_divergence",
                    f"{label} report differs between the {ran} and {other}"
                    f" engines for case {case.case_id!r}",
                )
            )
    return problems


def _trace_roundtrip_violations(
    case: FuzzCase, result: CaseResult
) -> list[Violation]:
    # Deferred import: slo pulls serving machinery the oracle pack must
    # not require at import time.
    from repro.serving.slo import apply_trace, trace_scenario

    spec = case.scenario
    if any(stream.closed_loop for stream in spec.streams):
        return []
    try:
        replayed = apply_trace(spec, trace_scenario(spec))
        rerun = run_case(replace(case, scenario=replayed))
    except Exception as error:  # noqa: BLE001 - any failure is the finding
        return [
            Violation(
                "trace_roundtrip",
                f"replaying the materialized trace failed: {error}",
            )
        ]
    if rerun.serving.to_json() != result.serving.to_json():
        return [
            Violation(
                "trace_roundtrip",
                "replaying the materialized arrival trace did not reproduce"
                f" the serving report of case {case.case_id!r}",
            )
        ]
    return []


def _trace_transparency_violations(
    case: FuzzCase, result: CaseResult, differential: bool = False
) -> list[Violation]:
    """Observation must not perturb: a tracer changes no report byte.

    Under ``differential`` the recorded event sequence is additionally
    compared across the two engines — the trace-parity contract both
    cores are pinned to.
    """
    # Deferred import: the oracle pack must not require repro.obs at
    # import time.
    from repro.obs.trace import Tracer
    from repro.schedule.timeline import ENGINE_NAMES

    tracer = Tracer()
    try:
        rerun = run_case(case, tracer=tracer)
    except Exception as error:  # noqa: BLE001 - any failure is the finding
        return [
            Violation(
                "trace_transparency",
                f"the engine raised with a tracer attached: {error}",
            )
        ]
    problems = []
    for label, first, second in (
        ("schedule", result.schedule, rerun.schedule),
        ("serving", result.serving, rerun.serving),
    ):
        if first.to_json() != second.to_json():
            problems.append(
                Violation(
                    "trace_transparency",
                    f"{label} report changed when a tracer was attached to"
                    f" case {case.case_id!r}",
                )
            )
    if differential:
        ran = default_engine()
        other = next(name for name in ENGINE_NAMES if name != ran)
        other_tracer = Tracer()
        try:
            run_case(case, engine=other, tracer=other_tracer)
        except Exception as error:  # noqa: BLE001 - any failure is the finding
            problems.append(
                Violation(
                    "trace_transparency",
                    f"the {other} engine raised with a tracer attached:"
                    f" {error}",
                )
            )
            return problems
        if tracer.records != other_tracer.records:
            problems.append(
                Violation(
                    "trace_transparency",
                    f"the {ran} and {other} engines emitted different trace"
                    f" event sequences for case {case.case_id!r}",
                )
            )
    return problems


def _merge_violations(case: FuzzCase, partitions: int = 2) -> list[Violation]:
    # Deferred import: pulling the cluster package here would make the
    # oracle pack depend on socket machinery it never uses.
    from repro.cluster.dispatch import merge_serving_reports
    from repro.serving.slo import apply_trace, trace_scenario

    spec = case.scenario
    if len(spec.streams) < partitions or any(
        stream.closed_loop for stream in spec.streams
    ):
        return []
    try:
        replayed = apply_trace(spec, trace_scenario(spec))
        parts = []
        for index in range(partitions):
            sub = replace(
                replayed, streams=replayed.streams[index::partitions]
            )
            parts.append(run_case(replace(case, scenario=sub)).serving)
        order = [stream.name for stream in spec.streams]
        merged = merge_serving_reports(
            parts, scenario=spec.name, stream_order=order
        )
    except Exception as error:  # noqa: BLE001 - any failure is the finding
        return [
            Violation("merge", f"partition/merge machinery failed: {error}")
        ]
    problems: list[Violation] = []
    if [stream.name for stream in merged.streams] != order:
        problems.append(
            Violation(
                "merge",
                "merged report lost or reordered streams:"
                f" {[stream.name for stream in merged.streams]} != {order}",
            )
        )
    want = {
        name: sum(getattr(stream, name) for part in parts for stream in part.streams)
        for name in ("offered", "completed", "dropped")
    }
    for name, total in want.items():
        if getattr(merged, name) != total:
            problems.append(
                Violation(
                    "merge",
                    f"merged {name}={getattr(merged, name)} != sum of"
                    f" partitions {total}",
                )
            )
    if merged.makespan_s != max(part.makespan_s for part in parts):
        problems.append(
            Violation(
                "merge",
                f"merged makespan {merged.makespan_s:.9g} != max partition"
                f" makespan",
            )
        )
    problems.extend(
        Violation("merge", f"merged report: {message}")
        for message in check_serving_consistency(merged)
    )
    return problems


def evaluate_case(
    case: FuzzCase, *, deep: bool = True, differential: bool = False
) -> CaseOutcome:
    """Run ``case`` and every applicable oracle against the outcome.

    ``deep=False`` skips the oracles that need extra engine runs
    (determinism, trace replay, partition merge) — the cheap mode the
    shrinker uses between candidate steps; the final verdict on a shrunk
    reproducer always uses the full pack. ``differential=True`` adds the
    ``engine_divergence`` oracle (one extra run on the other timeline
    engine), independent of ``deep`` so the shrinker can chase a
    divergence without paying for the rest of the deep pack.

    :class:`~repro.errors.SchedulingError` from the engine is itself a
    ``crash`` violation; :class:`~repro.errors.ConfigError` propagates —
    an invalid case is a generator bug, not an engine finding.
    """
    engine = default_engine()
    try:
        result = run_case(case)
    except SchedulingError as error:
        return CaseOutcome(
            case=case,
            violations=(Violation("crash", f"engine raised: {error}"),),
            engine=engine,
        )
    violations: list[Violation] = []
    tasks = result.tasks
    timeline = result.timeline
    violations.extend(
        Violation("capacity", message)
        for message in check_capacity(tasks, timeline, case.interference)
    )
    violations.extend(
        Violation("conservation", message)
        for message in check_conservation(tasks, timeline)
    )
    violations.extend(
        Violation("monotone_events", message)
        for message in check_monotone_events(tasks, timeline)
    )
    violations.extend(
        Violation("frame_atomicity", message)
        for message in check_frame_atomicity(tasks, timeline)
    )
    violations.extend(
        Violation("priority_order", message)
        for message in check_priority_order(
            tasks, timeline, case.scenario.policy
        )
    )
    violations.extend(
        Violation("preemption_bound", message)
        for message in check_preemption_bound(
            tasks, timeline, case.scenario.policy
        )
    )
    violations.extend(
        Violation("serving_consistency", message)
        for message in check_serving_consistency(result.serving)
    )
    violations.extend(
        Violation("reports_agree", message)
        for message in check_reports_agree(result.schedule, result.serving)
    )
    violations.extend(_roundtrip_violations(result))
    if differential:
        violations.extend(_engine_divergence_violations(case, result))
    if deep:
        violations.extend(_determinism_violations(case, result))
        violations.extend(_trace_roundtrip_violations(case, result))
        violations.extend(_merge_violations(case))
        violations.extend(
            _trace_transparency_violations(
                case, result, differential=differential
            )
        )
    return CaseOutcome(
        case=case,
        violations=tuple(violations),
        result=result,
        engine=engine,
    )


__all__ = [
    "ORACLE_NAMES",
    "CaseOutcome",
    "Violation",
    "assert_capacity",
    "assert_conservation",
    "assert_frame_atomicity",
    "assert_monotone_events",
    "assert_preemption_bound",
    "assert_priority_order",
    "assert_reports_agree",
    "assert_serving_consistency",
    "check_capacity",
    "check_conservation",
    "check_frame_atomicity",
    "check_monotone_events",
    "check_preemption_bound",
    "check_priority_order",
    "check_reports_agree",
    "check_serving_consistency",
    "evaluate_case",
]
