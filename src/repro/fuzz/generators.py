"""Seeded adversarial scenario generators: the fuzzer's case families.

Each family targets a stress axis of the timeline/serving/QoS stack that
hand-written scenarios under-exercise:

* ``burst_storm`` — MMPP arrival storms against drop-late / queue-cap
  admission control;
* ``flash_crowd`` — a background of steady tenants plus one stream whose
  burst state runs an order of magnitude hot, under ``shed``;
* ``priority_ladder`` — distinct-priority streams on an ``exclusive``
  machine with colliding fixed cadences (the priority-order oracle's
  hunting ground);
* ``deadline_exact`` — durations, periods, and deadlines all exact
  binary fractions (multiples of 1/64), so QoS expiries land *exactly*
  on completion events and boundary comparisons have no float slack to
  hide behind;
* ``zero_length`` — zero-second ops, zero periods, and single-frame
  streams: the degenerate sizes that break naive strict-inequality
  bookkeeping;
* ``replay_edge`` — replay arrival traces with duplicate timestamps,
  long silences, and traces shorter than the frame budget (including
  empty — a stream that never arrives);
* ``model_mix`` — heterogeneous claim shapes across SIMD / array / TC /
  transfer / host with mode switches and a measured interference matrix
  drawn from a catalog device;
* ``closed_loop_mix`` — closed-loop think-time tenants sharing the
  machine with open-loop arrivals, under drop-late QoS, so drops and
  pacing releases interleave;
* ``preemption_storm`` — distinct-priority multi-kernel frames on an
  ``exclusive_preempt`` machine with colliding cadences and tight
  deadlines, optionally under abort-late QoS, so kernel-boundary
  deschedules and in-flight aborts fire constantly (the
  preemption-bound oracle's hunting ground).

Determinism contract: a case is a pure function of
``(campaign_seed, index)``. The per-case seed is
``derive_seed(campaign_seed, "case", index)`` (see
:mod:`repro.common.seeding` for the scheme registry), every random
draw flows through that one ``random.Random``, and arrival processes
re-salt by stream name inside the traces module. No global RNG state
anywhere.
"""

from __future__ import annotations

import random

from repro.common.seeding import derive_seed
from repro.errors import ConfigError
from repro.fuzz.cases import FuzzCase, TaskShape
from repro.schedule.streams import ScenarioSpec, StreamSpec
from repro.serving.qos import QosSpec
from repro.serving.traces import ArrivalSpec

#: Case families, in the round-robin order indices map onto.
FAMILIES = (
    "burst_storm",
    "flash_crowd",
    "priority_ladder",
    "deadline_exact",
    "zero_length",
    "replay_edge",
    "model_mix",
    "closed_loop_mix",
    # Appended after the original eight so the round-robin family of
    # every pre-existing (seed, index) pair below 8 is unchanged only in
    # full batches of the new length — reproducer case ids stay stable
    # because they encode the index, not the rotation.
    "preemption_storm",
)

#: Claim shapes echoing the hypothesis suite's choices: pure SIMD, the
#: temporal array, a TC kernel with its measured ancillary SIMD pressure,
#: and the staging resources.
_CLAIM_SHAPES = (
    (("simd", 1.0),),
    (("array", 1.0),),
    (("tc", 1.0), ("simd", 0.4)),
    (("transfer", 1.0),),
    (("host", 1.0),),
)


def _exact(rng: random.Random, low: int = 1, high: int = 16) -> float:
    """A binary-exact duration: ``k/64`` for ``k`` in ``[low, high]``.

    Multiples of 1/64 add and compare exactly in binary floating point,
    which is what lets the ``deadline_exact`` family place QoS expiries
    precisely on event boundaries.
    """
    return rng.randint(low, high) / 64.0


def _template(
    rng: random.Random,
    *,
    ops: int | None = None,
    allow_zero: bool = False,
    switchy: bool = False,
) -> tuple[TaskShape, ...]:
    """A short synthetic task chain (1-3 ops)."""
    count = ops if ops is not None else rng.randint(1, 3)
    shapes = []
    for position in range(count):
        seconds = _exact(rng)
        if allow_zero and rng.random() < 0.4:
            seconds = 0.0
        shapes.append(
            TaskShape(
                name=f"op{position}",
                seconds=seconds,
                claims=rng.choice(_CLAIM_SHAPES),
                mode=(
                    rng.choice(("simd", "systolic")) if switchy else "simd"
                ),
                cross_switch_s=(_exact(rng, 1, 4) if switchy else 0.0),
            )
        )
    return tuple(shapes)


def _burst_storm(rng: random.Random, name: str) -> ScenarioSpec:
    streams = []
    for index in range(rng.randint(2, 3)):
        rate = float(rng.randint(8, 32))
        streams.append(
            StreamSpec(
                name=f"s{index}",
                model=f"fuzz/{name}",
                priority=float(rng.randint(1, 4)),
                deadline_s=_exact(rng, 2, 12),
                arrivals=ArrivalSpec(
                    kind="mmpp",
                    rate_hz=rate,
                    seed=rng.randrange(2**31),
                    burst_rate_hz=rate * rng.randint(3, 8),
                    burst_fraction=rng.choice((0.2, 0.3, 0.4)),
                    dwell=rng.randint(2, 6),
                ),
            )
        )
    qos = rng.choice(
        (
            None,
            QosSpec(kind="drop_late", slack_s=rng.choice((0.0, 1 / 64))),
            QosSpec(kind="queue_cap", cap=rng.randint(1, 3)),
        )
    )
    return ScenarioSpec(
        name=name,
        streams=tuple(streams),
        frames=rng.randint(10, 20),
        policy=rng.choice(("fifo", "priority")),
        qos=qos,
    )


def _flash_crowd(rng: random.Random, name: str) -> ScenarioSpec:
    crowd_rate = float(rng.randint(4, 10))
    streams = [
        StreamSpec(
            name="crowd",
            model=f"fuzz/{name}",
            priority=1.0,
            arrivals=ArrivalSpec(
                kind="mmpp",
                rate_hz=crowd_rate,
                seed=rng.randrange(2**31),
                burst_rate_hz=crowd_rate * 20.0,
                burst_fraction=rng.choice((0.5, 0.6, 0.7)),
                dwell=rng.randint(6, 12),
            ),
        )
    ]
    for index in range(rng.randint(1, 2)):
        streams.append(
            StreamSpec(
                name=f"steady{index}",
                model=f"fuzz/{name}",
                priority=float(rng.randint(2, 5)),
                deadline_s=_exact(rng, 4, 16),
                arrivals=ArrivalSpec(
                    kind="poisson",
                    rate_hz=float(rng.randint(2, 8)),
                    seed=rng.randrange(2**31),
                ),
            )
        )
    return ScenarioSpec(
        name=name,
        streams=tuple(streams),
        frames=rng.randint(12, 24),
        policy="priority",
        qos=QosSpec(
            kind="shed",
            cap=rng.randint(2, 4),
            min_priority=rng.choice((None, 2.0)),
        ),
    )


def _priority_ladder(rng: random.Random, name: str) -> ScenarioSpec:
    rungs = rng.randint(3, 4)
    priorities = [float(rung + 1) for rung in range(rungs)]
    rng.shuffle(priorities)
    streams = []
    for index, priority in enumerate(priorities):
        # Colliding exact cadences (including period 0 — everything at
        # t=0) force the dispatcher to order ready sets by priority.
        period = rng.choice((0.0, 1 / 32, 1 / 16, 3 / 32))
        streams.append(
            StreamSpec(
                name=f"rung{index}",
                model=f"fuzz/{name}",
                priority=priority,
                deadline_s=rng.choice((None, _exact(rng, 4, 16))),
                arrivals=ArrivalSpec(kind="fixed", period_s=period),
            )
        )
    return ScenarioSpec(
        name=name,
        streams=tuple(streams),
        frames=rng.randint(6, 12),
        policy="exclusive",
        qos=rng.choice((None, QosSpec(kind="queue_cap", cap=2))),
    )


def _deadline_exact(rng: random.Random, name: str) -> ScenarioSpec:
    streams = []
    for index in range(rng.randint(2, 3)):
        # Period == duration == deadline (all 1/64 multiples): a backlog
        # forms at full utilization and every expiry coincides with a
        # completion event.
        quantum = _exact(rng, 4, 12)
        streams.append(
            StreamSpec(
                name=f"edge{index}",
                model=f"fuzz/{name}",
                priority=float(index + 1),
                deadline_s=quantum,
                arrivals=ArrivalSpec(kind="fixed", period_s=quantum),
            )
        )
    return ScenarioSpec(
        name=name,
        streams=tuple(streams),
        frames=rng.randint(8, 16),
        policy="fifo",
        qos=QosSpec(kind="drop_late"),
    )


def _zero_length(rng: random.Random, name: str) -> ScenarioSpec:
    streams = [
        StreamSpec(
            name="zero",
            model=f"fuzz/{name}",
            arrivals=ArrivalSpec(kind="fixed", period_s=0.0),
        ),
        StreamSpec(
            name="tiny",
            model=f"fuzz/{name}",
            priority=float(rng.randint(1, 3)),
            deadline_s=_exact(rng, 1, 4),
            arrivals=ArrivalSpec(
                kind="poisson",
                rate_hz=float(rng.randint(16, 64)),
                seed=rng.randrange(2**31),
            ),
        ),
    ]
    return ScenarioSpec(
        name=name,
        streams=tuple(streams),
        frames=rng.choice((1, 2, rng.randint(4, 8))),
        policy=rng.choice(("fifo", "priority")),
        qos=rng.choice((None, QosSpec(kind="queue_cap", cap=1))),
    )


def _replay_edge(rng: random.Random, name: str) -> ScenarioSpec:
    frames = rng.randint(6, 12)
    instant = _exact(rng, 1, 8)
    # Duplicate timestamps, a long silence, then a pile-up.
    pileup = tuple(
        sorted(
            [0.0, 0.0, instant, instant]
            + [instant + 1.0 + _exact(rng) for _ in range(frames - 4)]
        )
    )
    short_len = rng.randint(0, frames - 1)
    short = tuple(sorted(_exact(rng, 1, 32) for _ in range(short_len)))
    streams = [
        StreamSpec(
            name="pileup",
            model=f"fuzz/{name}",
            deadline_s=rng.choice((None, _exact(rng, 2, 8))),
            arrivals=ArrivalSpec(kind="replay", times_s=pileup),
        ),
        # A trace shorter than the frame budget — possibly empty, a
        # stream that never arrives at all.
        StreamSpec(
            name="short",
            model=f"fuzz/{name}",
            priority=2.0,
            arrivals=ArrivalSpec(kind="replay", times_s=short),
        ),
    ]
    return ScenarioSpec(
        name=name,
        streams=tuple(streams),
        frames=frames,
        policy=rng.choice(("fifo", "priority")),
        qos=rng.choice((None, QosSpec(kind="drop_late", slack_s=0.0))),
    )


def _model_mix(rng: random.Random, name: str) -> ScenarioSpec:
    streams = []
    for index in range(rng.randint(2, 4)):
        streams.append(
            StreamSpec(
                name=f"mix{index}",
                model=f"fuzz/{name}",
                priority=float(rng.randint(1, 4)),
                skip_interval=rng.choice((1, 1, 2)),
                arrivals=ArrivalSpec(
                    kind=rng.choice(("poisson", "fixed")),
                    rate_hz=float(rng.randint(4, 16)),
                    seed=rng.randrange(2**31),
                ),
            )
        )
    return ScenarioSpec(
        name=name,
        streams=tuple(streams),
        frames=rng.randint(8, 16),
        policy="priority",
    )


def _closed_loop_mix(rng: random.Random, name: str) -> ScenarioSpec:
    streams = [
        StreamSpec(
            name="loop",
            model=f"fuzz/{name}",
            priority=float(rng.randint(1, 3)),
            arrivals=ArrivalSpec(
                kind="closed_loop",
                think_s=rng.choice((0.0, 1 / 64, 1 / 16)),
            ),
        ),
        StreamSpec(
            name="open",
            model=f"fuzz/{name}",
            priority=float(rng.randint(1, 3)),
            deadline_s=_exact(rng, 2, 8),
            arrivals=ArrivalSpec(
                kind="poisson",
                rate_hz=float(rng.randint(8, 24)),
                seed=rng.randrange(2**31),
            ),
        ),
    ]
    return ScenarioSpec(
        name=name,
        streams=tuple(streams),
        frames=rng.randint(6, 12),
        policy=rng.choice(("fifo", "priority")),
        qos=QosSpec(kind="drop_late", slack_s=rng.choice((0.0, 1 / 64))),
    )


def _preemption_storm(rng: random.Random, name: str) -> ScenarioSpec:
    rungs = rng.randint(3, 4)
    priorities = [float(rung + 1) for rung in range(rungs)]
    rng.shuffle(priorities)
    streams = []
    for index, priority in enumerate(priorities):
        # Lower-priority streams pile up early (dense cadences) while the
        # top-priority stream keeps arriving on a sparse cadence long
        # after the machine is busy with the backlog — so high-priority
        # frames keep landing while a lower-priority multi-kernel frame
        # is mid-flight, and every kernel boundary is a potential
        # deschedule (and every tight deadline a potential abort).
        if priority == max(priorities):
            period = rng.choice((1 / 8, 1 / 4, 3 / 8))
        else:
            period = rng.choice((0.0, 1 / 32, 1 / 16, 3 / 32))
        streams.append(
            StreamSpec(
                name=f"storm{index}",
                model=f"fuzz/{name}",
                priority=priority,
                deadline_s=_exact(rng, 2, 8),
                arrivals=ArrivalSpec(kind="fixed", period_s=period),
            )
        )
    qos = rng.choice(
        (
            None,
            QosSpec(kind="abort_late", slack_s=rng.choice((0.0, 1 / 64))),
            QosSpec(kind="abort_late", slack_s=rng.choice((0.0, 1 / 64))),
            QosSpec(kind="queue_cap", cap=rng.randint(1, 2)),
        )
    )
    return ScenarioSpec(
        name=name,
        streams=tuple(streams),
        frames=rng.randint(6, 12),
        policy="exclusive_preempt",
        qos=qos,
    )


_BUILDERS = {
    "burst_storm": _burst_storm,
    "flash_crowd": _flash_crowd,
    "priority_ladder": _priority_ladder,
    "deadline_exact": _deadline_exact,
    "zero_length": _zero_length,
    "replay_edge": _replay_edge,
    "model_mix": _model_mix,
    "closed_loop_mix": _closed_loop_mix,
    "preemption_storm": _preemption_storm,
}


def _interference_for(rng: random.Random):
    """A measured matrix from a catalog device (``model_mix`` only)."""
    # Deferred import: the generator pack must not drag the catalog in
    # for the seven families that never touch it.
    from repro.catalog.specs import DEFAULT_DEVICES

    device = rng.choice(DEFAULT_DEVICES)
    return device.interference if device.interference else None


def generate_case(
    campaign_seed: int, index: int, family: str | None = None
) -> FuzzCase:
    """The ``index``-th case of a campaign — a pure function of its args.

    ``family`` pins a specific family (used by targeted tests); by
    default families rotate round-robin over the index so every batch of
    ``len(FAMILIES)`` consecutive indices covers all of them.
    """
    if index < 0:
        raise ConfigError(f"case index must be >= 0, got {index}")
    if family is None:
        family = FAMILIES[index % len(FAMILIES)]
    if family not in _BUILDERS:
        raise ConfigError(
            f"unknown fuzz family {family!r}; one of {FAMILIES}"
        )
    seed = derive_seed(campaign_seed, "case", index)
    rng = random.Random(seed)
    case_id = f"c{index:06d}-{family}"
    scenario = _BUILDERS[family](rng, case_id)
    templates = {
        stream.name: _template(
            rng,
            allow_zero=family == "zero_length",
            ops=(
                1
                if family in ("deadline_exact", "zero_length")
                # Preemption needs kernel boundaries *inside* a frame.
                else rng.randint(2, 3)
                if family == "preemption_storm"
                else None
            ),
            switchy=family == "model_mix",
        )
        for stream in scenario.streams
    }
    return FuzzCase(
        case_id=case_id,
        family=family,
        seed=seed,
        scenario=scenario,
        templates=templates,
        interference=(
            _interference_for(rng) if family == "model_mix" else None
        ),
    )


def generate_batch(
    campaign_seed: int, count: int, start: int = 0
) -> list[FuzzCase]:
    """Cases ``start .. start+count`` of a campaign, in index order."""
    if count < 0:
        raise ConfigError(f"batch count must be >= 0, got {count}")
    return [
        generate_case(campaign_seed, index)
        for index in range(start, start + count)
    ]


__all__ = ["FAMILIES", "generate_batch", "generate_case"]
