"""Cycle-by-cycle functional simulation of a systolic array.

Every dataflow is simulated at register-transfer granularity (what value sits
in which PE at which cycle) using vectorised numpy state. The result matrix
is bit-identical to ``A @ B`` in float64, which the property-based tests
assert; the cycle counts are the fill/stream/drain times that the SMA
controller and TPU timing models build on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.systolic.dataflow import Dataflow


@dataclass(frozen=True)
class GemmRunResult:
    """Functional + timing outcome of one tile GEMM on the array."""

    c: np.ndarray
    cycles: int
    weight_load_cycles: int
    streaming_cycles: int
    drain_cycles: int
    macs: int
    a_reads: int
    c_writes: int

    @property
    def utilization(self) -> float:
        """MACs issued / (cycles x array MAC capacity) — needs array size."""
        return self.macs / max(1, self.cycles)


class SystolicArray:
    """An R x C grid of MAC units running one of the supported dataflows.

    For ``SEMI_BROADCAST_WS`` the array is interpreted as N x K (outputs by
    reduction depth); for ``WEIGHT_STATIONARY`` as K x N; for
    ``OUTPUT_STATIONARY`` as M x N. ``run_gemm`` accepts operand tiles whose
    shapes match the interpretation and streams them through cycle by cycle.
    """

    def __init__(self, rows: int, cols: int, dataflow: Dataflow) -> None:
        if rows <= 0 or cols <= 0:
            raise SimulationError("array dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.dataflow = dataflow

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    # -- public API ---------------------------------------------------------------
    def run_gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        overlap_weight_load: bool = False,
    ) -> GemmRunResult:
        """Compute ``C = A @ B`` for one tile resident in the array.

        ``a`` is (M, K) and ``b`` is (K, N); K and N must match the array's
        interpretation for the configured dataflow. Returns the C matrix and
        the cycle budget. ``overlap_weight_load`` models double-buffered
        weights (load hidden behind the previous tile's streaming).
        """
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise SimulationError(
                f"incompatible GEMM operands {a.shape} x {b.shape}"
            )
        if self.dataflow is Dataflow.SEMI_BROADCAST_WS:
            return self._run_semi_broadcast(a, b, overlap_weight_load)
        if self.dataflow is Dataflow.WEIGHT_STATIONARY:
            return self._run_weight_stationary(a, b, overlap_weight_load)
        if self.dataflow is Dataflow.OUTPUT_STATIONARY:
            return self._run_output_stationary(a, b)
        raise SimulationError(f"unsupported dataflow {self.dataflow}")

    # -- semi-broadcast weight stationary (paper Fig 4 right) ----------------------
    def _run_semi_broadcast(
        self, a: np.ndarray, b: np.ndarray, overlap: bool
    ) -> GemmRunResult:
        m_extent, k_extent = a.shape
        _, n_extent = b.shape
        if n_extent != self.rows or k_extent != self.cols:
            raise SimulationError(
                f"semi-broadcast array is N x K = {self.rows} x {self.cols}; "
                f"got operands K={k_extent}, N={n_extent}"
            )
        weights = b.T.copy()                       # (N, K): PE[j][k] = B[k][j]
        psum = np.zeros((n_extent, k_extent))
        c = np.zeros((m_extent, n_extent))
        streaming = m_extent + k_extent - 1
        for cycle in range(streaming):
            a_in = np.zeros(k_extent)
            for k in range(k_extent):
                m = cycle - k
                if 0 <= m < m_extent:
                    a_in[k] = a[m, k]
            shifted = np.empty_like(psum)
            shifted[:, 0] = a_in[0] * weights[:, 0]
            shifted[:, 1:] = psum[:, :-1] + a_in[1:] * weights[:, 1:]
            psum = shifted
            m_out = cycle - (k_extent - 1)
            if 0 <= m_out < m_extent:
                c[m_out, :] = psum[:, k_extent - 1]
        load = 0 if overlap else k_extent
        cycles = load + streaming
        return GemmRunResult(
            c=c,
            cycles=cycles,
            weight_load_cycles=load,
            streaming_cycles=streaming,
            drain_cycles=0,
            macs=m_extent * k_extent * n_extent,
            a_reads=m_extent * k_extent,
            c_writes=m_extent * n_extent,
        )

    # -- TPU weight stationary (paper Fig 4 left) ----------------------------------
    def _run_weight_stationary(
        self, a: np.ndarray, b: np.ndarray, overlap: bool
    ) -> GemmRunResult:
        m_extent, k_extent = a.shape
        _, n_extent = b.shape
        if k_extent != self.rows or n_extent != self.cols:
            raise SimulationError(
                f"weight-stationary array is K x N = {self.rows} x {self.cols}; "
                f"got operands K={k_extent}, N={n_extent}"
            )
        weights = b.copy()                        # (K, N): PE[k][n] = B[k][n]
        a_reg = np.zeros((k_extent, n_extent))    # A values flowing east
        psum = np.zeros((k_extent, n_extent))     # partial sums flowing south
        c = np.zeros((m_extent, n_extent))
        streaming = m_extent + k_extent + n_extent - 2
        for cycle in range(streaming):
            feed = np.zeros(k_extent)
            for k in range(k_extent):
                m = cycle - k
                if 0 <= m < m_extent:
                    feed[k] = a[m, k]
            a_new = np.empty_like(a_reg)
            a_new[:, 0] = feed
            a_new[:, 1:] = a_reg[:, :-1]
            shifted = np.empty_like(psum)
            shifted[0, :] = a_new[0, :] * weights[0, :]
            shifted[1:, :] = psum[:-1, :] + a_new[1:, :] * weights[1:, :]
            a_reg = a_new
            psum = shifted
            for n in range(n_extent):
                m_out = cycle - (k_extent - 1) - n
                if 0 <= m_out < m_extent:
                    c[m_out, n] = psum[k_extent - 1, n]
        load = 0 if overlap else k_extent
        cycles = load + streaming
        return GemmRunResult(
            c=c,
            cycles=cycles,
            weight_load_cycles=load,
            streaming_cycles=streaming,
            drain_cycles=0,
            macs=m_extent * k_extent * n_extent,
            a_reads=m_extent * k_extent,
            c_writes=m_extent * n_extent,
        )

    # -- output stationary (ablation) ----------------------------------------------
    def _run_output_stationary(
        self, a: np.ndarray, b: np.ndarray
    ) -> GemmRunResult:
        m_extent, k_extent = a.shape
        _, n_extent = b.shape
        if m_extent != self.rows or n_extent != self.cols:
            raise SimulationError(
                f"output-stationary array is M x N = {self.rows} x {self.cols}; "
                f"got operands M={m_extent}, N={n_extent}"
            )
        a_reg = np.zeros((m_extent, n_extent))   # A flowing east
        b_reg = np.zeros((m_extent, n_extent))   # B flowing south
        acc = np.zeros((m_extent, n_extent))
        streaming = k_extent + m_extent + n_extent - 2
        for cycle in range(streaming):
            a_feed = np.zeros(m_extent)
            for m in range(m_extent):
                k = cycle - m
                if 0 <= k < k_extent:
                    a_feed[m] = a[m, k]
            b_feed = np.zeros(n_extent)
            for n in range(n_extent):
                k = cycle - n
                if 0 <= k < k_extent:
                    b_feed[n] = b[k, n]
            a_new = np.empty_like(a_reg)
            a_new[:, 0] = a_feed
            a_new[:, 1:] = a_reg[:, :-1]
            b_new = np.empty_like(b_reg)
            b_new[0, :] = b_feed
            b_new[1:, :] = b_reg[:-1, :]
            acc += a_new * b_new
            a_reg = a_new
            b_reg = b_new
        drain = (m_extent * n_extent + n_extent - 1) // n_extent
        cycles = streaming + drain
        return GemmRunResult(
            c=acc.copy(),
            cycles=cycles,
            weight_load_cycles=0,
            streaming_cycles=streaming,
            drain_cycles=drain,
            macs=m_extent * k_extent * n_extent,
            a_reads=m_extent * k_extent,
            c_writes=m_extent * n_extent,
        )
