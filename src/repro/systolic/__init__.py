"""Cycle-level systolic-array substrate (functional + timing + access traces)."""

from repro.systolic.array import GemmRunResult, SystolicArray
from repro.systolic.dataflow import (
    Dataflow,
    DataflowCost,
    DataflowTraits,
    analyze_dataflow_cost,
    traits_of,
)
from repro.systolic.feeders import (
    diagonal_a_coords,
    output_coords_semi_broadcast,
    output_coords_weight_stationary,
)
from repro.systolic.pe import ProcessingElement

__all__ = [
    "Dataflow",
    "DataflowCost",
    "DataflowTraits",
    "GemmRunResult",
    "ProcessingElement",
    "SystolicArray",
    "analyze_dataflow_cost",
    "diagonal_a_coords",
    "output_coords_semi_broadcast",
    "output_coords_weight_stationary",
    "traits_of",
]
