"""Dataflow definitions and first-principles cost analysis (paper SS III-B).

Three dataflows are modelled:

* ``WEIGHT_STATIONARY`` — the TPU's: B resident in a K x N array, A streams
  west->east, partial sums flow north->south, C drains on the south edge as
  a *diagonal* (one element per column, each from a different C row).
* ``SEMI_BROADCAST_WS`` — the paper's SIMD-friendly choice: B^T resident in
  an N x K array, each A element broadcast down a column, partial sums flow
  west->east, C drains on the east edge as *full rows* (coalesced).
* ``OUTPUT_STATIONARY`` — ablation reference: C accumulates in place, both
  A and B stream, C drains in a final pass.

The cost analysis quantifies why the semi-broadcast dataflow wins on a GPU
substrate: a diagonal C drain cannot coalesce into warp-wide register-file
writes, so it must stage through shared memory, whose banks it then shares
with the double-buffer store traffic. The resulting contention factor is
computed from the actual per-cycle word demand against the bank capacity —
no fitted constants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.gpu.shared_memory import SharedMemoryModel
from repro.systolic.feeders import (
    diagonal_a_coords,
    output_coords_semi_broadcast,
    output_coords_weight_stationary,
)


class Dataflow(enum.Enum):
    WEIGHT_STATIONARY = "ws"
    SEMI_BROADCAST_WS = "sbws"
    OUTPUT_STATIONARY = "os"


@dataclass(frozen=True)
class DataflowTraits:
    """Qualitative access properties (paper Fig 4 discussion)."""

    name: str
    a_access: str            # "diagonal" or "row"
    c_drain: str             # "row" (coalesced) or "diagonal" (scattered)
    a_reuse: int             # times each A element is used per N-wide array
    c_to_register_file: bool  # can C writes coalesce into RF transactions?
    description: str


def traits_of(dataflow: Dataflow, array_n: int) -> DataflowTraits:
    """Traits of ``dataflow`` for an array with N = ``array_n`` outputs."""
    if dataflow is Dataflow.SEMI_BROADCAST_WS:
        return DataflowTraits(
            name="semi-broadcast weight stationary",
            a_access="diagonal",
            c_drain="row",
            a_reuse=array_n,
            c_to_register_file=True,
            description=(
                "A broadcast per column (N-way reuse); C exits as full rows"
                " -> one coalesced RF write per cycle"
            ),
        )
    if dataflow is Dataflow.WEIGHT_STATIONARY:
        return DataflowTraits(
            name="weight stationary (TPU)",
            a_access="diagonal",
            c_drain="diagonal",
            a_reuse=array_n,
            c_to_register_file=False,
            description=(
                "A propagates west->east; C exits the south edge as a"
                " diagonal -> must stage through shared memory"
            ),
        )
    if dataflow is Dataflow.OUTPUT_STATIONARY:
        return DataflowTraits(
            name="output stationary",
            a_access="diagonal",
            c_drain="burst",
            a_reuse=array_n,
            c_to_register_file=True,
            description=(
                "C accumulates in place; A and B both stream; C drains in a"
                " separate burst phase that idles the MACs"
            ),
        )
    raise SimulationError(f"unknown dataflow {dataflow}")


@dataclass(frozen=True)
class DataflowCost:
    """Streaming cost of pushing an (M x K) A tile through the array."""

    dataflow: Dataflow
    ideal_streaming_cycles: int
    effective_streaming_cycles: float
    contention_factor: float          # >= 1.0; smem bank pressure
    a_conflict_degree: float          # avg bank serialization of the A feed
    smem_words_per_cycle: float       # total smem demand during streaming
    drain_cycles: int                 # extra cycles after the last A row

    @property
    def total_cycles(self) -> float:
        return self.effective_streaming_cycles + self.drain_cycles


def analyze_dataflow_cost(
    dataflow: Dataflow,
    m_extent: int,
    k_extent: int,
    n_extent: int,
    a_banks: int = 8,
    a_stride_words: int | None = None,
    total_banks: int = 32,
    background_sts_words_per_cycle: float = 16.0,
) -> DataflowCost:
    """Cost one A-tile pass (M rows x K) through a K x N (or N x K) array.

    ``a_banks`` are the shared-memory banks reserved for the A feed
    (paper: 8 per SMA unit); ``background_sts_words_per_cycle`` is the
    double-buffer store traffic sharing the general bank pool — the default
    corresponds to streaming the next 128x8 A and B tiles while computing.
    """
    if m_extent <= 0 or k_extent <= 0 or n_extent <= 0:
        raise SimulationError("tile extents must be positive")
    if a_stride_words is None:
        a_stride_words = k_extent

    a_model = SharedMemoryModel(num_banks=a_banks)

    # Average A-feed conflict degree over one skew period.
    degrees = []
    for cycle in range(k_extent, min(m_extent, 4 * k_extent) + k_extent):
        coords = diagonal_a_coords(cycle, m_extent, k_extent)
        if not coords:
            continue
        addresses = tuple(4 * (m * a_stride_words + k) for m, k in coords)
        degrees.append(a_model.cost_addresses(addresses).cycles)
    a_conflict = sum(degrees) / len(degrees) if degrees else 1.0

    if dataflow is Dataflow.SEMI_BROADCAST_WS:
        ideal = m_extent + k_extent - 1
        drain = 0
        # A feed only: C rows go straight to the register-file bank.
        smem_demand = k_extent * 1.0
        writes_staged = 0.0
    elif dataflow is Dataflow.WEIGHT_STATIONARY:
        ideal = m_extent + k_extent + n_extent - 2
        drain = 0
        # Diagonal C cannot coalesce into RF writes: stage through shared
        # memory (one write at drain, one read at writeback).
        writes_staged = 2.0 * n_extent
        smem_demand = k_extent * 1.0 + writes_staged
    elif dataflow is Dataflow.OUTPUT_STATIONARY:
        ideal = m_extent + k_extent + n_extent - 2
        # C drains in a dedicated burst that idles the MAC array.
        drain = (m_extent * n_extent) // total_banks
        smem_demand = 2.0 * k_extent  # both A and B stream every cycle
        writes_staged = 0.0
    else:
        raise SimulationError(f"unknown dataflow {dataflow}")

    demand = smem_demand * a_conflict + background_sts_words_per_cycle
    contention = max(1.0, demand / total_banks)
    effective = ideal * contention
    return DataflowCost(
        dataflow=dataflow,
        ideal_streaming_cycles=ideal,
        effective_streaming_cycles=effective,
        contention_factor=contention,
        a_conflict_degree=a_conflict,
        smem_words_per_cycle=smem_demand,
        drain_cycles=drain,
    )


def output_coords(
    dataflow: Dataflow, cycle: int, m_extent: int, k_extent: int, n_extent: int
) -> list[tuple[int, int]]:
    """C coordinates emitted at ``cycle`` for the streaming dataflows."""
    if dataflow is Dataflow.SEMI_BROADCAST_WS:
        return output_coords_semi_broadcast(cycle, m_extent, k_extent, n_extent)
    if dataflow is Dataflow.WEIGHT_STATIONARY:
        return output_coords_weight_stationary(cycle, m_extent, k_extent, n_extent)
    raise SimulationError(f"{dataflow} has no streaming output schedule")
