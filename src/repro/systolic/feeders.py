"""Per-cycle operand feed / drain schedules for each dataflow.

These schedules are what the shared-memory bank analysis consumes: they say
*which matrix coordinates* are touched in each cycle, and the layout maps
coordinates to bank addresses. The key asymmetry (paper SS III-B):

* both dataflows read an anti-diagonal of A every cycle (uncoalesced);
* the TPU weight-stationary dataflow also *writes a diagonal of C* every
  cycle, while the semi-broadcast dataflow writes one full row of C, which
  coalesces into a single register-file transaction.
"""

from __future__ import annotations

from typing import Iterator


def diagonal_a_coords(
    cycle: int, m_extent: int, k_extent: int
) -> list[tuple[int, int]]:
    """A-matrix coordinates ``(m, k)`` read at ``cycle`` (both dataflows).

    Column ``k`` of the array consumes ``A[cycle - k, k]``; coordinates
    outside the matrix (fill/drain cycles) are omitted.
    """
    coords = []
    for k in range(k_extent):
        m = cycle - k
        if 0 <= m < m_extent:
            coords.append((m, k))
    return coords


def output_coords_semi_broadcast(
    cycle: int, m_extent: int, k_extent: int, n_extent: int
) -> list[tuple[int, int]]:
    """C coordinates ``(m, n)`` emitted at ``cycle`` — one full row.

    The east edge of the N x K array completes row ``m = cycle - (K - 1)``
    for all N columns simultaneously (coalesced write).
    """
    m = cycle - (k_extent - 1)
    if 0 <= m < m_extent:
        return [(m, n) for n in range(n_extent)]
    return []


def output_coords_weight_stationary(
    cycle: int, m_extent: int, k_extent: int, n_extent: int
) -> list[tuple[int, int]]:
    """C coordinates ``(m, n)`` emitted at ``cycle`` — a diagonal.

    The south edge of the K x N array emits ``C[cycle - (K-1) - n, n]``:
    one element per column, each from a *different* row of C.
    """
    coords = []
    for n in range(n_extent):
        m = cycle - (k_extent - 1) - n
        if 0 <= m < m_extent:
            coords.append((m, n))
    return coords


def streaming_cycle_range(
    m_extent: int, k_extent: int, n_extent: int, diagonal_output: bool
) -> Iterator[int]:
    """Cycles during which the array is streaming or draining."""
    if diagonal_output:
        total = m_extent + k_extent + n_extent - 1
    else:
        total = m_extent + k_extent - 1
    return iter(range(total))
