"""A single processing element of a systolic array.

The array simulator in :mod:`repro.systolic.array` uses vectorised numpy for
speed; this scalar PE exists as the reference semantics (paper Fig 5C: one
FP32 MAC with a stationary operand latch) and is exercised directly by unit
tests and the worked example in ``examples/dataflow_exploration.py``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ProcessingElement:
    """One MAC unit with a stationary weight and a partial-sum register."""

    weight: float = 0.0
    psum: float = 0.0
    mac_count: int = 0

    def load_weight(self, weight: float) -> None:
        """Latch the stationary operand (repurposed operand collector)."""
        self.weight = weight

    def step(self, a_in: float, psum_in: float) -> float:
        """One cycle: absorb ``psum_in``, add ``a_in * weight``, emit result."""
        self.psum = psum_in + a_in * self.weight
        self.mac_count += 1
        return self.psum

    def reset(self) -> None:
        self.psum = 0.0
        self.mac_count = 0
