"""DNN operator IR, layer graphs, conv->GEMM lowering, and the model zoo."""

from repro.dnn.graph import LayerGraph, LayerNode
from repro.dnn.ops import (
    ArgMax,
    BatchNorm,
    Concat,
    Conv2d,
    Crf,
    Dense,
    Eltwise,
    Interp,
    OpCategory,
    Operator,
    Pool,
    RegionProposal,
    Relu,
    RoIAlign,
    Softmax,
    TpuSupport,
)
from repro.dnn.tensor import TensorShape

__all__ = [
    "ArgMax",
    "BatchNorm",
    "Concat",
    "Conv2d",
    "Crf",
    "Dense",
    "Eltwise",
    "Interp",
    "LayerGraph",
    "LayerNode",
    "OpCategory",
    "Operator",
    "Pool",
    "RegionProposal",
    "Relu",
    "RoIAlign",
    "Softmax",
    "TensorShape",
    "TpuSupport",
]
