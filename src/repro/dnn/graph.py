"""Layer graphs: DAG of operators with topological execution order."""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field

from repro.dnn.ops import OpCategory, Operator
from repro.errors import GraphError


@dataclass(frozen=True)
class LayerNode:
    """One operator instance in the graph."""

    node_id: int
    op: Operator
    inputs: tuple[int, ...]


@dataclass
class LayerGraph:
    """A DAG of operators; ``add`` returns node ids used as inputs later."""

    name: str
    nodes: list[LayerNode] = field(default_factory=list)

    def add(self, op: Operator, inputs: tuple[int, ...] | list[int] = ()) -> int:
        """Append an operator; ``inputs`` are producer node ids."""
        node_id = len(self.nodes)
        inputs = tuple(inputs)
        for producer in inputs:
            if not (0 <= producer < node_id):
                raise GraphError(
                    f"node {node_id} ({op.name}) references unknown producer"
                    f" {producer}"
                )
        self.nodes.append(LayerNode(node_id=node_id, op=op, inputs=inputs))
        return node_id

    # -- structure -------------------------------------------------------------------
    def validate(self) -> None:
        """Check the graph is a DAG with valid references (adds are append-
        only so acyclicity holds by construction; this re-verifies)."""
        indegree = [0] * len(self.nodes)
        consumers: dict[int, list[int]] = {}
        for node in self.nodes:
            for producer in node.inputs:
                if producer >= node.node_id:
                    raise GraphError(
                        f"forward reference {producer} -> {node.node_id}"
                    )
                indegree[node.node_id] += 1
                consumers.setdefault(producer, []).append(node.node_id)
        ready = deque(i for i, deg in enumerate(indegree) if deg == 0)
        seen = 0
        while ready:
            current = ready.popleft()
            seen += 1
            for consumer in consumers.get(current, []):
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if seen != len(self.nodes):
            raise GraphError(f"graph {self.name!r} contains a cycle")

    def topological_order(self) -> list[LayerNode]:
        """Execution order (construction order is already topological)."""
        self.validate()
        return list(self.nodes)

    # -- statistics --------------------------------------------------------------------
    def operators(self) -> list[Operator]:
        return [node.op for node in self.nodes]

    def count_category(self, category: OpCategory) -> int:
        return sum(1 for node in self.nodes if node.op.category is category)

    @property
    def conv_layer_count(self) -> int:
        """Convolution layers, the paper's Table II metric."""
        return self.count_category(OpCategory.CONV)

    @property
    def total_flops(self) -> float:
        return sum(node.op.flops for node in self.nodes)

    @property
    def gemm_compatible_flops(self) -> float:
        return sum(
            node.op.flops for node in self.nodes if node.op.is_gemm_compatible
        )

    @property
    def irregular_ops(self) -> list[Operator]:
        return [
            node.op
            for node in self.nodes
            if node.op.category is OpCategory.IRREGULAR
        ]

    def category_histogram(self) -> dict[str, int]:
        counts = Counter(node.op.category.value for node in self.nodes)
        return dict(counts)

    def __len__(self) -> int:
        return len(self.nodes)
