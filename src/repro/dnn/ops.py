"""Operator IR with per-operator cost models.

Each operator resolves its own shapes at construction (the zoo builders
chain output shapes into the next layer) and exposes:

* ``gemm_dims()`` — the im2col GEMM for GEMM-compatible operators, which
  the GPU/TPU platforms feed to their GEMM engines;
* ``flops`` / ``input_bytes`` / ``output_bytes`` — roofline inputs for the
  operators that execute in SIMD mode;
* ``simd_efficiency`` — the fraction of SIMD peak the operator sustains on
  a GPU. For the irregular operators these values are calibrated against
  the paper's measured Fig 3 platform breakdown (RoIAlign's reshape storm,
  NMS's control flow, CRF's scatter-gather) and documented in DESIGN.md;
* ``tpu_support`` — native / lowered (compiler converts it to dense ops) /
  host (shipped to the CPU), reproducing the TPU behaviour of SS II-B.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.dnn.tensor import TensorShape, nchw
from repro.errors import GraphError
from repro.gemm.reference import conv_output_shape, conv_to_gemm


class OpCategory(enum.Enum):
    CONV = "conv"
    DENSE = "dense"
    POOL = "pool"
    ACTIVATION = "activation"
    NORMALIZATION = "normalization"
    ELTWISE = "eltwise"
    SOFTMAX = "softmax"
    DATA = "data"
    IRREGULAR = "irregular"


class TpuSupport(enum.Enum):
    NATIVE = "native"      # runs on the array / pooling units directly
    LOWERED = "lowered"    # compiler converts to dense array ops
    HOST = "host"          # shipped to the host CPU


@dataclass(frozen=True)
class Operator:
    """Base operator: shape-resolved, with default dense-friendly costs."""

    name: str
    input_shape: TensorShape
    output_shape: TensorShape
    category: OpCategory = field(default=OpCategory.DATA)
    tpu_support: TpuSupport = field(default=TpuSupport.NATIVE)

    # -- cost interface -----------------------------------------------------------
    @property
    def flops(self) -> float:
        """Arithmetic work (multiply-add counted as 2)."""
        return float(self.output_shape.elements)

    @property
    def input_bytes(self) -> float:
        return float(self.input_shape.bytes)

    @property
    def output_bytes(self) -> float:
        return float(self.output_shape.bytes)

    @property
    def weight_bytes(self) -> float:
        return 0.0

    @property
    def simd_efficiency(self) -> float:
        """Fraction of SIMD peak sustained on a GPU (regular ops: high)."""
        return 0.5

    def gemm_dims(self) -> tuple[int, int, int] | None:
        """The (M, N, K) GEMM this op lowers to, if GEMM-compatible."""
        return None

    @property
    def is_gemm_compatible(self) -> bool:
        return self.gemm_dims() is not None

    @property
    def kernel_launches(self) -> int:
        """Kernels the framework dispatches for this operator.

        Regular operators are one fused kernel; the control-flow-heavy
        irregular operators dissolve into storms of micro-kernels (the
        dominant cost on real platforms, paper Fig 3), each paying the
        framework dispatch overhead.
        """
        return 1


# ---------------------------------------------------------------------------
# GEMM-compatible operators
# ---------------------------------------------------------------------------

def _make_conv_shapes(
    batch: int,
    in_channels: int,
    out_channels: int,
    height: int,
    width: int,
    kernel: int,
    stride: int,
    padding: int,
    dilation: int,
) -> tuple[TensorShape, TensorShape]:
    out_h, out_w = conv_output_shape(height, width, kernel, stride, padding, dilation)
    return (
        nchw(batch, in_channels, height, width),
        nchw(batch, out_channels, out_h, out_w),
    )


@dataclass(frozen=True)
class Conv2d(Operator):
    """2-D convolution, lowered to GEMM via im2col (paper SS V-A)."""

    in_channels: int = 1
    out_channels: int = 1
    kernel: int = 1
    stride: int = 1
    padding: int = 0
    dilation: int = 1

    @classmethod
    def build(
        cls,
        name: str,
        in_channels: int,
        out_channels: int,
        height: int,
        width: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        dilation: int = 1,
        batch: int = 1,
    ) -> "Conv2d":
        input_shape, output_shape = _make_conv_shapes(
            batch, in_channels, out_channels, height, width,
            kernel, stride, padding, dilation,
        )
        return cls(
            name=name,
            input_shape=input_shape,
            output_shape=output_shape,
            category=OpCategory.CONV,
            tpu_support=TpuSupport.NATIVE,
            in_channels=in_channels,
            out_channels=out_channels,
            kernel=kernel,
            stride=stride,
            padding=padding,
            dilation=dilation,
        )

    def gemm_dims(self) -> tuple[int, int, int]:
        batch, _c, height, width = self.input_shape.dims
        return conv_to_gemm(
            self.in_channels,
            self.out_channels,
            height,
            width,
            self.kernel,
            self.stride,
            self.padding,
            self.dilation,
            batch,
        )

    @property
    def flops(self) -> float:
        m, n, k = self.gemm_dims()
        return 2.0 * m * n * k

    @property
    def weight_bytes(self) -> float:
        return float(
            self.out_channels * self.in_channels * self.kernel * self.kernel
            * self.input_shape.dtype.bytes
        )

    @property
    def simd_efficiency(self) -> float:
        return 0.6


@dataclass(frozen=True)
class Dense(Operator):
    """Fully connected layer: a (batch, out, in) GEMM."""

    in_features: int = 1
    out_features: int = 1

    @classmethod
    def build(
        cls, name: str, in_features: int, out_features: int, batch: int = 1
    ) -> "Dense":
        return cls(
            name=name,
            input_shape=TensorShape((batch, in_features)),
            output_shape=TensorShape((batch, out_features)),
            category=OpCategory.DENSE,
            tpu_support=TpuSupport.NATIVE,
            in_features=in_features,
            out_features=out_features,
        )

    def gemm_dims(self) -> tuple[int, int, int]:
        batch = self.input_shape.dims[0]
        return batch, self.out_features, self.in_features

    @property
    def flops(self) -> float:
        m, n, k = self.gemm_dims()
        return 2.0 * m * n * k

    @property
    def weight_bytes(self) -> float:
        return float(
            self.in_features * self.out_features * self.input_shape.dtype.bytes
        )


# ---------------------------------------------------------------------------
# Regular non-GEMM operators (SIMD-friendly)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Pool(Operator):
    """Max/average pooling (TPU has native pooling hardware)."""

    kind: str = "max"
    kernel: int = 2
    stride: int = 2
    padding: int = 0

    @classmethod
    def build(
        cls,
        name: str,
        channels: int,
        height: int,
        width: int,
        kernel: int,
        stride: int | None = None,
        padding: int = 0,
        kind: str = "max",
        batch: int = 1,
    ) -> "Pool":
        if kind not in ("max", "avg", "global_avg"):
            raise GraphError(f"unknown pooling kind {kind!r}")
        if kind == "global_avg":
            out_h = out_w = 1
            kernel = height
            stride = 1
        else:
            stride = stride or kernel
            out_h, out_w = conv_output_shape(height, width, kernel, stride, padding)
        return cls(
            name=name,
            input_shape=nchw(batch, channels, height, width),
            output_shape=nchw(batch, channels, out_h, out_w),
            category=OpCategory.POOL,
            tpu_support=TpuSupport.NATIVE,
            kind=kind,
            kernel=kernel,
            stride=stride if stride else kernel,
            padding=padding,
        )

    @property
    def flops(self) -> float:
        return float(self.output_shape.elements * self.kernel * self.kernel)

    @property
    def simd_efficiency(self) -> float:
        return 0.35


@dataclass(frozen=True)
class Relu(Operator):
    @classmethod
    def build(cls, name: str, shape: TensorShape) -> "Relu":
        return cls(
            name=name,
            input_shape=shape,
            output_shape=shape,
            category=OpCategory.ACTIVATION,
            tpu_support=TpuSupport.NATIVE,
        )

    @property
    def simd_efficiency(self) -> float:
        return 0.4


@dataclass(frozen=True)
class BatchNorm(Operator):
    @classmethod
    def build(cls, name: str, shape: TensorShape) -> "BatchNorm":
        return cls(
            name=name,
            input_shape=shape,
            output_shape=shape,
            category=OpCategory.NORMALIZATION,
            tpu_support=TpuSupport.NATIVE,
        )

    @property
    def flops(self) -> float:
        return 2.0 * self.output_shape.elements

    @property
    def simd_efficiency(self) -> float:
        return 0.4


@dataclass(frozen=True)
class Eltwise(Operator):
    """Elementwise add/mul (residual connections)."""

    @classmethod
    def build(cls, name: str, shape: TensorShape) -> "Eltwise":
        return cls(
            name=name,
            input_shape=shape,
            output_shape=shape,
            category=OpCategory.ELTWISE,
            tpu_support=TpuSupport.NATIVE,
        )

    @property
    def simd_efficiency(self) -> float:
        return 0.4


@dataclass(frozen=True)
class Concat(Operator):
    @classmethod
    def build(cls, name: str, shapes: list[TensorShape]) -> "Concat":
        if not shapes:
            raise GraphError("concat needs at least one input")
        base = shapes[0].dims
        channels = sum(s.dims[1] for s in shapes)
        out = TensorShape((base[0], channels) + base[2:])
        return cls(
            name=name,
            input_shape=shapes[0],
            output_shape=out,
            category=OpCategory.DATA,
            tpu_support=TpuSupport.NATIVE,
        )

    @property
    def flops(self) -> float:
        return 0.0

    @property
    def simd_efficiency(self) -> float:
        return 0.5


@dataclass(frozen=True)
class Softmax(Operator):
    @classmethod
    def build(cls, name: str, shape: TensorShape) -> "Softmax":
        return cls(
            name=name,
            input_shape=shape,
            output_shape=shape,
            category=OpCategory.SOFTMAX,
            tpu_support=TpuSupport.NATIVE,
        )

    @property
    def flops(self) -> float:
        return 5.0 * self.output_shape.elements

    @property
    def simd_efficiency(self) -> float:
        return 0.25


@dataclass(frozen=True)
class Interp(Operator):
    """Bilinear up/down-sampling (DeepLab decoder, FPN)."""

    @classmethod
    def build(
        cls, name: str, shape: TensorShape, out_h: int, out_w: int
    ) -> "Interp":
        batch, channels = shape.dims[0], shape.dims[1]
        return cls(
            name=name,
            input_shape=shape,
            output_shape=nchw(batch, channels, out_h, out_w),
            category=OpCategory.ACTIVATION,
            tpu_support=TpuSupport.NATIVE,
        )

    @property
    def flops(self) -> float:
        return 8.0 * self.output_shape.elements

    @property
    def simd_efficiency(self) -> float:
        return 0.3


# ---------------------------------------------------------------------------
# GEMM-incompatible (irregular) operators — paper Fig 2
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RoIAlign(Operator):
    """Bilinear RoI pooling: "requires many reshape operations" (SS II-B)."""

    num_rois: int = 1000
    pooled: int = 14
    channels: int = 256
    sampling_points: int = 4

    @classmethod
    def build(
        cls,
        name: str,
        feature_shape: TensorShape,
        num_rois: int = 1000,
        pooled: int = 14,
        sampling_points: int = 4,
    ) -> "RoIAlign":
        channels = feature_shape.dims[1]
        out = TensorShape((num_rois, channels, pooled, pooled))
        return cls(
            name=name,
            input_shape=feature_shape,
            output_shape=out,
            category=OpCategory.IRREGULAR,
            tpu_support=TpuSupport.LOWERED,
            num_rois=num_rois,
            pooled=pooled,
            channels=channels,
            sampling_points=sampling_points,
        )

    @property
    def flops(self) -> float:
        # 4 bilinear taps x ~10 ops per pooled output element.
        return float(
            self.num_rois * self.pooled ** 2 * self.channels
            * self.sampling_points * 10
        )

    @property
    def simd_efficiency(self) -> float:
        # Gather/reshape bound: ~1% of peak for the kernels themselves.
        return 0.01

    @property
    def kernel_launches(self) -> int:
        # "a bi-linear interpolation that requires many reshape operations"
        # (SS II-B): one crop/resize/pool micro-kernel chain per RoI batch.
        return 150


@dataclass(frozen=True)
class RegionProposal(Operator):
    """RPN proposal generation with non-max suppression (control flow)."""

    num_boxes: int = 6000
    post_nms: int = 1000

    @classmethod
    def build(
        cls,
        name: str,
        feature_shape: TensorShape,
        num_boxes: int = 6000,
        post_nms: int = 1000,
    ) -> "RegionProposal":
        return cls(
            name=name,
            input_shape=feature_shape,
            output_shape=TensorShape((post_nms, 4)),
            category=OpCategory.IRREGULAR,
            tpu_support=TpuSupport.LOWERED,
            num_boxes=num_boxes,
            post_nms=post_nms,
        )

    @property
    def flops(self) -> float:
        # Pairwise IoU of surviving candidates plus per-box bookkeeping.
        return float(self.num_boxes * self.num_boxes * 0.1 * 12)

    @property
    def simd_efficiency(self) -> float:
        # Data-dependent suppression loop: well below peak even per kernel.
        return 0.005

    @property
    def kernel_launches(self) -> int:
        # Control-flow intensive NMS: sort + iterative suppression rounds,
        # each its own launch (calibrated to the Fig 3 GPU breakdown).
        return 350


@dataclass(frozen=True)
class ArgMax(Operator):
    """Per-pixel class argmax (DeepLab head)."""

    num_classes: int = 21

    @classmethod
    def build(cls, name: str, logits_shape: TensorShape) -> "ArgMax":
        batch, classes, height, width = logits_shape.dims
        return cls(
            name=name,
            input_shape=logits_shape,
            output_shape=nchw(batch, 1, height, width),
            category=OpCategory.IRREGULAR,
            tpu_support=TpuSupport.LOWERED,
            num_classes=classes,
        )

    @property
    def flops(self) -> float:
        return float(self.input_shape.elements)

    @property
    def simd_efficiency(self) -> float:
        return 0.05


@dataclass(frozen=True)
class Crf(Operator):
    """Fully connected CRF post-processing (DeepLab, SS II-B).

    Modelled at the operator level: ``iterations`` of message passing over
    a permutohedral-lattice approximation. Scatter-gather bound on every
    platform; the TPU cannot run it at all and ships it to the host.
    """

    iterations: int = 10

    @classmethod
    def build(cls, name: str, logits_shape: TensorShape, iterations: int = 10) -> "Crf":
        return cls(
            name=name,
            input_shape=logits_shape,
            output_shape=logits_shape,
            category=OpCategory.IRREGULAR,
            tpu_support=TpuSupport.HOST,
            iterations=iterations,
        )

    @property
    def flops(self) -> float:
        _b, classes, height, width = self.input_shape.dims
        pixels = height * width
        # Per iteration: bilateral + spatial filtering (lattice splat/
        # blur/slice ~ 25 ops/pixel/class) plus compatibility transform.
        per_iter = pixels * classes * 25.0 + pixels * classes * classes
        return self.iterations * per_iter

    @property
    def simd_efficiency(self) -> float:
        # Lattice scatter/gather: ~0.4% of peak on a GPU (calibrated to
        # the paper's measured 52 ms on V100).
        return 0.004

    @property
    def kernel_launches(self) -> int:
        # splat / blur / slice / compatibility per iteration.
        return self.iterations * 8

    @property
    def host_serial_fraction(self) -> float:
        """Fraction of the host-side run that is irreducibly sequential."""
        return 0.3
