"""Shape-level tensor descriptors (no data, just geometry and dtype)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.mathutil import prod
from repro.config import DataType
from repro.errors import GraphError


@dataclass(frozen=True)
class TensorShape:
    """An N-dimensional tensor shape with element type."""

    dims: tuple[int, ...]
    dtype: DataType = DataType.FP32

    def __post_init__(self) -> None:
        if not self.dims:
            raise GraphError("a tensor needs at least one dimension")
        for extent in self.dims:
            if extent <= 0:
                raise GraphError(f"non-positive dimension in {self.dims}")

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def elements(self) -> int:
        return prod(self.dims)

    @property
    def bytes(self) -> int:
        return self.elements * self.dtype.bytes

    def with_dims(self, dims: tuple[int, ...]) -> "TensorShape":
        return TensorShape(dims=dims, dtype=self.dtype)

    def __str__(self) -> str:
        inner = "x".join(str(d) for d in self.dims)
        return f"{inner}:{self.dtype.value}"


def nchw(batch: int, channels: int, height: int, width: int) -> TensorShape:
    """Convenience constructor for activation tensors."""
    return TensorShape((batch, channels, height, width))
