"""Mask R-CNN (He et al., 2017) with a ResNet-101 FPN backbone.

Conv layer budget matching the paper's Table II count of 132:

* ResNet-101 trunk ........ 104 (1 stem + 33 bottlenecks x 3 + 4 shortcuts)
* FPN ..................... 8   (4 lateral 1x1 + 4 output 3x3)
* RPN ..................... 15  (3x3 + objectness 1x1 + regression 1x1,
                                 per FPN level P2..P6, unshared)
* Mask head ............... 5   (4 x 3x3 + 1x1 predictor)

Plus the GEMM-incompatible operators the paper highlights in Fig 2:
``RegionProposal`` (control-flow NMS) and ``RoIAlign`` (bilinear gather),
and the box head's FC layers.
"""

from __future__ import annotations

from repro.dnn.graph import LayerGraph
from repro.dnn.ops import Conv2d, Dense, RegionProposal, Relu, RoIAlign
from repro.dnn.zoo.backbones import resnet101_backbone

#: Standard COCO inference resolution (shorter side 800).
INPUT_HEIGHT = 800
INPUT_WIDTH = 1056

FPN_CHANNELS = 256
NUM_FPN_LEVELS = 4  # P2..P5 from C2..C5 (P6 is a stride-2 pool of P5)
RPN_LEVELS = 5      # P2..P6


def build_mask_rcnn(batch: int = 1) -> LayerGraph:
    """Shape-faithful Mask R-CNN graph (132 conv layers)."""
    graph = LayerGraph("Mask R-CNN")
    _final, stage_ends = resnet101_backbone(
        graph, INPUT_HEIGHT, INPUT_WIDTH, batch=batch
    )

    # --- FPN: lateral 1x1 on each C-level + 3x3 smoothing on each P-level.
    p_levels = []
    for index, stage in enumerate(stage_ends):
        lateral = Conv2d.build(
            f"fpn/lateral_c{index + 2}", stage.channels, FPN_CHANNELS,
            stage.height, stage.width, kernel=1, batch=batch,
        )
        lat_node = graph.add(lateral, (stage.node,))
        smooth = Conv2d.build(
            f"fpn/output_p{index + 2}", FPN_CHANNELS, FPN_CHANNELS,
            stage.height, stage.width, kernel=3, padding=1, batch=batch,
        )
        p_node = graph.add(smooth, (lat_node,))
        p_levels.append((p_node, smooth.output_shape))

    # --- RPN per level: 3x3 conv + objectness 1x1 + box regression 1x1.
    rpn_outputs = []
    level_shapes = [shape for _node, shape in p_levels]
    # P6: stride-2 subsample of P5 for RPN only.
    p5_shape = level_shapes[-1]
    p6_dims = (
        p5_shape.dims[0], p5_shape.dims[1],
        max(1, p5_shape.dims[2] // 2), max(1, p5_shape.dims[3] // 2),
    )
    level_shapes.append(p5_shape.with_dims(p6_dims))
    level_nodes = [node for node, _shape in p_levels] + [p_levels[-1][0]]
    for level, (node, shape) in enumerate(zip(level_nodes, level_shapes)):
        _b, channels, h, w = shape.dims
        rpn_conv = Conv2d.build(
            f"rpn/conv_p{level + 2}", channels, FPN_CHANNELS, h, w,
            kernel=3, padding=1, batch=batch,
        )
        rpn_node = graph.add(rpn_conv, (node,))
        rpn_node = graph.add(
            Relu.build(f"rpn/relu_p{level + 2}", rpn_conv.output_shape),
            (rpn_node,),
        )
        cls = Conv2d.build(
            f"rpn/cls_p{level + 2}", FPN_CHANNELS, 3, h, w, kernel=1, batch=batch
        )
        reg = Conv2d.build(
            f"rpn/reg_p{level + 2}", FPN_CHANNELS, 12, h, w, kernel=1, batch=batch
        )
        cls_node = graph.add(cls, (rpn_node,))
        reg_node = graph.add(reg, (rpn_node,))
        rpn_outputs.extend([cls_node, reg_node])

    # --- RegionProposal: decode + NMS over all levels (GEMM-incompatible).
    proposal = RegionProposal.build(
        "region_proposal", level_shapes[0], num_boxes=6000, post_nms=1000
    )
    proposal_node = graph.add(proposal, tuple(rpn_outputs))

    # --- RoIAlign for the box head (7x7) and mask head (14x14).
    box_align = RoIAlign.build(
        "roi_align_box", level_shapes[0], num_rois=1000, pooled=7
    )
    box_align_node = graph.add(box_align, (proposal_node, p_levels[0][0]))
    mask_align = RoIAlign.build(
        "roi_align_mask", level_shapes[0], num_rois=100, pooled=14
    )
    mask_align_node = graph.add(mask_align, (proposal_node, p_levels[0][0]))

    # --- Box head: 2 FC layers + predictors.
    box_fc1 = Dense.build("box_head/fc1", FPN_CHANNELS * 7 * 7, 1024, batch=1000)
    n = graph.add(box_fc1, (box_align_node,))
    box_fc2 = Dense.build("box_head/fc2", 1024, 1024, batch=1000)
    n = graph.add(box_fc2, (n,))
    graph.add(Dense.build("box_head/cls", 1024, 81, batch=1000), (n,))
    graph.add(Dense.build("box_head/reg", 1024, 320, batch=1000), (n,))

    # --- Mask head: 4 x 3x3 convs + 1x1 predictor on 100 RoIs of 14x14.
    n = mask_align_node
    channels = FPN_CHANNELS
    for index in range(4):
        conv = Conv2d.build(
            f"mask_head/conv{index + 1}", channels, 256, 14, 14,
            kernel=3, padding=1, batch=100,
        )
        n = graph.add(conv, (n,))
        n = graph.add(
            Relu.build(f"mask_head/relu{index + 1}", conv.output_shape), (n,)
        )
        channels = 256
    predictor = Conv2d.build(
        "mask_head/predictor", 256, 81, 14, 14, kernel=1, batch=100
    )
    graph.add(predictor, (n,))

    graph.validate()
    return graph
