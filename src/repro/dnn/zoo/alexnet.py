"""AlexNet (Krizhevsky et al., 2012): 5 conv + 3 FC layers."""

from __future__ import annotations

from repro.dnn.graph import LayerGraph
from repro.dnn.ops import Conv2d, Dense, Pool, Relu


def build_alexnet(batch: int = 1) -> LayerGraph:
    """The single-tower AlexNet used for ImageNet classification."""
    graph = LayerGraph("AlexNet")
    h = w = 227

    conv1 = Conv2d.build("conv1", 3, 96, h, w, kernel=11, stride=4, batch=batch)
    n = graph.add(conv1)
    n = graph.add(Relu.build("relu1", conv1.output_shape), (n,))
    _b, c, h, w = conv1.output_shape.dims
    pool1 = Pool.build("pool1", c, h, w, kernel=3, stride=2, batch=batch)
    n = graph.add(pool1, (n,))
    _b, c, h, w = pool1.output_shape.dims

    conv2 = Conv2d.build("conv2", c, 256, h, w, kernel=5, padding=2, batch=batch)
    n = graph.add(conv2, (n,))
    n = graph.add(Relu.build("relu2", conv2.output_shape), (n,))
    _b, c, h, w = conv2.output_shape.dims
    pool2 = Pool.build("pool2", c, h, w, kernel=3, stride=2, batch=batch)
    n = graph.add(pool2, (n,))
    _b, c, h, w = pool2.output_shape.dims

    conv3 = Conv2d.build("conv3", c, 384, h, w, kernel=3, padding=1, batch=batch)
    n = graph.add(conv3, (n,))
    n = graph.add(Relu.build("relu3", conv3.output_shape), (n,))
    _b, c, h, w = conv3.output_shape.dims

    conv4 = Conv2d.build("conv4", c, 384, h, w, kernel=3, padding=1, batch=batch)
    n = graph.add(conv4, (n,))
    n = graph.add(Relu.build("relu4", conv4.output_shape), (n,))
    _b, c, h, w = conv4.output_shape.dims

    conv5 = Conv2d.build("conv5", c, 256, h, w, kernel=3, padding=1, batch=batch)
    n = graph.add(conv5, (n,))
    n = graph.add(Relu.build("relu5", conv5.output_shape), (n,))
    _b, c, h, w = conv5.output_shape.dims
    pool5 = Pool.build("pool5", c, h, w, kernel=3, stride=2, batch=batch)
    n = graph.add(pool5, (n,))
    _b, c, h, w = pool5.output_shape.dims

    fc6 = Dense.build("fc6", c * h * w, 4096, batch=batch)
    n = graph.add(fc6, (n,))
    n = graph.add(Relu.build("relu6", fc6.output_shape), (n,))
    fc7 = Dense.build("fc7", 4096, 4096, batch=batch)
    n = graph.add(fc7, (n,))
    n = graph.add(Relu.build("relu7", fc7.output_shape), (n,))
    fc8 = Dense.build("fc8", 4096, 1000, batch=batch)
    graph.add(fc8, (n,))

    graph.validate()
    return graph
