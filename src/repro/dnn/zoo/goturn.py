"""GOTURN tracker (Held et al., 2016): twin CaffeNet towers + 3 FC layers.

Used as the tracking (TRA) workload of the Fig 9 autonomous-driving
pipeline: two AlexNet-style convolution towers (current + previous crop)
whose features concatenate into a regression MLP.
"""

from __future__ import annotations

from repro.dnn.graph import LayerGraph
from repro.dnn.ops import Concat, Conv2d, Dense, Pool, Relu


def _tower(graph: LayerGraph, prefix: str, batch: int) -> tuple[int, int]:
    """One CaffeNet conv tower on a 227x227 crop; returns (node, features)."""
    h = w = 227
    conv1 = Conv2d.build(f"{prefix}/conv1", 3, 96, h, w, kernel=11, stride=4, batch=batch)
    n = graph.add(conv1)
    n = graph.add(Relu.build(f"{prefix}/relu1", conv1.output_shape), (n,))
    _b, c, h, w = conv1.output_shape.dims
    pool1 = Pool.build(f"{prefix}/pool1", c, h, w, kernel=3, stride=2, batch=batch)
    n = graph.add(pool1, (n,))
    _b, c, h, w = pool1.output_shape.dims

    conv2 = Conv2d.build(f"{prefix}/conv2", c, 256, h, w, kernel=5, padding=2, batch=batch)
    n = graph.add(conv2, (n,))
    _b, c, h, w = conv2.output_shape.dims
    pool2 = Pool.build(f"{prefix}/pool2", c, h, w, kernel=3, stride=2, batch=batch)
    n = graph.add(pool2, (n,))
    _b, c, h, w = pool2.output_shape.dims

    conv3 = Conv2d.build(f"{prefix}/conv3", c, 384, h, w, kernel=3, padding=1, batch=batch)
    n = graph.add(conv3, (n,))
    conv4 = Conv2d.build(f"{prefix}/conv4", 384, 384, h, w, kernel=3, padding=1, batch=batch)
    n = graph.add(conv4, (n,))
    conv5 = Conv2d.build(f"{prefix}/conv5", 384, 256, h, w, kernel=3, padding=1, batch=batch)
    n = graph.add(conv5, (n,))
    _b, c, h, w = conv5.output_shape.dims
    pool5 = Pool.build(f"{prefix}/pool5", c, h, w, kernel=3, stride=2, batch=batch)
    n = graph.add(pool5, (n,))
    _b, c, h, w = pool5.output_shape.dims
    return n, c * h * w


def build_goturn(batch: int = 1) -> LayerGraph:
    """GOTURN: 10 convolutions (two towers) + 3 regression FC layers."""
    graph = LayerGraph("GOTURN")
    current_node, current_feats = _tower(graph, "current", batch)
    previous_node, previous_feats = _tower(graph, "previous", batch)

    concat = Concat.build(
        "concat",
        [graph.nodes[current_node].op.output_shape,
         graph.nodes[previous_node].op.output_shape],
    )
    n = graph.add(concat, (current_node, previous_node))

    fc6 = Dense.build("fc6", current_feats + previous_feats, 4096, batch=batch)
    n = graph.add(fc6, (n,))
    n = graph.add(Relu.build("relu6", fc6.output_shape), (n,))
    fc7 = Dense.build("fc7", 4096, 4096, batch=batch)
    n = graph.add(fc7, (n,))
    n = graph.add(Relu.build("relu7", fc7.output_shape), (n,))
    graph.add(Dense.build("fc8_bbox", 4096, 4, batch=batch), (n,))

    graph.validate()
    return graph
