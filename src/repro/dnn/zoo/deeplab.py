"""DeepLab (Chen et al.) semantic segmentation with ResNet-101 + ASPP.

Conv budget matching Table II's 108: the dilated ResNet-101 trunk (104)
plus the four parallel atrous-spatial-pyramid-pooling branches (rates 6,
12, 18, 24) that directly emit per-class logits. The GEMM-incompatible
tail — bilinear upsampling to input resolution, per-pixel ArgMax, and the
fully connected CRF — is what breaks the TPU in the paper's Fig 3.
"""

from __future__ import annotations

from repro.dnn.graph import LayerGraph
from repro.dnn.ops import ArgMax, Conv2d, Crf, Eltwise, Interp
from repro.dnn.zoo.backbones import resnet101_backbone

INPUT_HEIGHT = 513
INPUT_WIDTH = 513
NUM_CLASSES = 21
ASPP_RATES = (6, 12, 18, 24)


def build_deeplab(
    batch: int = 1, with_crf: bool = True, input_size: int = INPUT_HEIGHT
) -> LayerGraph:
    """Shape-faithful DeepLab graph (108 conv layers).

    ``input_size`` scales the square input (the driving pipeline of Fig 9
    runs detection on larger frames than the 513x513 PASCAL crops).
    """
    graph = LayerGraph("DeepLab")
    final, _stages = resnet101_backbone(
        graph, input_size, input_size, batch=batch, dilate_last_stage=True
    )

    # --- ASPP: four parallel dilated 3x3 convs producing logits, summed.
    branch_nodes = []
    logits_shape = None
    for rate in ASPP_RATES:
        conv = Conv2d.build(
            f"aspp/rate{rate}", final.channels, NUM_CLASSES,
            final.height, final.width, kernel=3, padding=rate, dilation=rate,
            batch=batch,
        )
        branch_nodes.append(graph.add(conv, (final.node,)))
        logits_shape = conv.output_shape
    fuse = Eltwise.build("aspp/sum", logits_shape)
    n = graph.add(fuse, tuple(branch_nodes))

    # --- Decoder tail: upsample, argmax, CRF (irregular).
    up = Interp.build("upsample", logits_shape, input_size, input_size)
    n = graph.add(up, (n,))
    if with_crf:
        crf = Crf.build("crf", up.output_shape)
        n = graph.add(crf, (n,))
    argmax = ArgMax.build("argmax", up.output_shape)
    graph.add(argmax, (n,))

    graph.validate()
    return graph
