"""VGG-A (VGG-11, Simonyan & Zisserman 2014): 8 conv + 3 FC layers."""

from __future__ import annotations

from repro.dnn.graph import LayerGraph
from repro.dnn.ops import Conv2d, Dense, Pool, Relu

#: (out_channels, pool_after) per conv layer of configuration A.
_VGG_A_LAYERS = [
    (64, True),
    (128, True),
    (256, False),
    (256, True),
    (512, False),
    (512, True),
    (512, False),
    (512, True),
]


def build_vgg_a(batch: int = 1) -> LayerGraph:
    """VGG configuration A: 8 convolutions, 5 max-pools, 3 FC layers."""
    graph = LayerGraph("VGG-A")
    h = w = 224
    channels = 3
    n = None
    for index, (out_channels, pool_after) in enumerate(_VGG_A_LAYERS, start=1):
        conv = Conv2d.build(
            f"conv{index}", channels, out_channels, h, w,
            kernel=3, padding=1, batch=batch,
        )
        n = graph.add(conv, () if n is None else (n,))
        n = graph.add(Relu.build(f"relu{index}", conv.output_shape), (n,))
        _b, channels, h, w = conv.output_shape.dims
        if pool_after:
            pool = Pool.build(
                f"pool{index}", channels, h, w, kernel=2, stride=2, batch=batch
            )
            n = graph.add(pool, (n,))
            _b, channels, h, w = pool.output_shape.dims

    fc6 = Dense.build("fc6", channels * h * w, 4096, batch=batch)
    n = graph.add(fc6, (n,))
    n = graph.add(Relu.build("relu_fc6", fc6.output_shape), (n,))
    fc7 = Dense.build("fc7", 4096, 4096, batch=batch)
    n = graph.add(fc7, (n,))
    n = graph.add(Relu.build("relu_fc7", fc7.output_shape), (n,))
    graph.add(Dense.build("fc8", 4096, 1000, batch=batch), (n,))

    graph.validate()
    return graph
