"""GoogLeNet / Inception-v1 (Szegedy et al., 2015): 57 conv layers.

3 stem convolutions plus 9 inception modules of 6 convolutions each
(1x1, 3x3-reduce, 3x3, 5x5-reduce, 5x5, pool-projection) = 57, matching
the paper's Table II.
"""

from __future__ import annotations

from repro.dnn.graph import LayerGraph
from repro.dnn.ops import Concat, Conv2d, Dense, Pool, Relu

#: Inception module channel specs: (1x1, 3x3red, 3x3, 5x5red, 5x5, poolproj)
_INCEPTION_SPECS = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}

#: Max-pool after these modules.
_POOL_AFTER = {"3b", "4e"}


def _inception(
    graph: LayerGraph,
    name: str,
    input_node: int,
    channels: int,
    h: int,
    w: int,
    spec: tuple[int, int, int, int, int, int],
    batch: int,
) -> tuple[int, int]:
    """One inception module; returns (output node, output channels)."""
    c1, c3r, c3, c5r, c5, cp = spec

    b1 = Conv2d.build(f"{name}/1x1", channels, c1, h, w, kernel=1, batch=batch)
    n1 = graph.add(b1, (input_node,))

    b2r = Conv2d.build(f"{name}/3x3_reduce", channels, c3r, h, w, kernel=1, batch=batch)
    n2 = graph.add(b2r, (input_node,))
    b2 = Conv2d.build(f"{name}/3x3", c3r, c3, h, w, kernel=3, padding=1, batch=batch)
    n2 = graph.add(b2, (n2,))

    b3r = Conv2d.build(f"{name}/5x5_reduce", channels, c5r, h, w, kernel=1, batch=batch)
    n3 = graph.add(b3r, (input_node,))
    b3 = Conv2d.build(f"{name}/5x5", c5r, c5, h, w, kernel=5, padding=2, batch=batch)
    n3 = graph.add(b3, (n3,))

    pool = Pool.build(f"{name}/pool", channels, h, w, kernel=3, stride=1, padding=1, batch=batch)
    n4 = graph.add(pool, (input_node,))
    b4 = Conv2d.build(f"{name}/pool_proj", channels, cp, h, w, kernel=1, batch=batch)
    n4 = graph.add(b4, (n4,))

    concat = Concat.build(
        f"{name}/concat",
        [b1.output_shape, b2.output_shape, b3.output_shape, b4.output_shape],
    )
    out = graph.add(concat, (n1, n2, n3, n4))
    return out, c1 + c3 + c5 + cp


def build_googlenet(batch: int = 1) -> LayerGraph:
    """Inception-v1 for 224x224 ImageNet classification."""
    graph = LayerGraph("GoogLeNet")
    h = w = 224

    conv1 = Conv2d.build("conv1/7x7", 3, 64, h, w, kernel=7, stride=2, padding=3, batch=batch)
    n = graph.add(conv1)
    n = graph.add(Relu.build("relu1", conv1.output_shape), (n,))
    _b, c, h, w = conv1.output_shape.dims
    pool1 = Pool.build("pool1", c, h, w, kernel=3, stride=2, padding=1, batch=batch)
    n = graph.add(pool1, (n,))
    _b, c, h, w = pool1.output_shape.dims

    conv2r = Conv2d.build("conv2/3x3_reduce", c, 64, h, w, kernel=1, batch=batch)
    n = graph.add(conv2r, (n,))
    conv2 = Conv2d.build("conv2/3x3", 64, 192, h, w, kernel=3, padding=1, batch=batch)
    n = graph.add(conv2, (n,))
    _b, c, h, w = conv2.output_shape.dims
    pool2 = Pool.build("pool2", c, h, w, kernel=3, stride=2, padding=1, batch=batch)
    n = graph.add(pool2, (n,))
    _b, c, h, w = pool2.output_shape.dims

    for name, spec in _INCEPTION_SPECS.items():
        n, c = _inception(graph, f"inception_{name}", n, c, h, w, spec, batch)
        if name in _POOL_AFTER:
            pool = Pool.build(f"pool_{name}", c, h, w, kernel=3, stride=2, padding=1, batch=batch)
            n = graph.add(pool, (n,))
            _b, c, h, w = pool.output_shape.dims

    gap = Pool.build("global_pool", c, h, w, kernel=h, kind="global_avg", batch=batch)
    n = graph.add(gap, (n,))
    graph.add(Dense.build("fc", c, 1000, batch=batch), (n,))

    graph.validate()
    return graph
