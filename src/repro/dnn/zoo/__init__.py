"""Model zoo: the CNNs of the paper's Table II plus GOTURN (Fig 9).

All graphs are shape-faithful reconstructions: layer counts match Table II
exactly (asserted by tests) and per-layer GEMM dimensions follow the
published architectures; weights are not represented (timing and energy
depend only on shapes).
"""

from repro.dnn.zoo.alexnet import build_alexnet
from repro.dnn.zoo.deeplab import build_deeplab
from repro.dnn.zoo.googlenet import build_googlenet
from repro.dnn.zoo.goturn import build_goturn
from repro.dnn.zoo.mask_rcnn import build_mask_rcnn
from repro.dnn.zoo.vgg import build_vgg_a

#: Paper Table II: conv layer counts.
TABLE_II_CONV_LAYERS = {
    "AlexNet": 5,
    "VGG-A": 8,
    "GoogLeNet": 57,
    "Mask R-CNN": 132,
    "DeepLab": 108,
}

MODEL_BUILDERS = {
    "AlexNet": build_alexnet,
    "VGG-A": build_vgg_a,
    "GoogLeNet": build_googlenet,
    "Mask R-CNN": build_mask_rcnn,
    "DeepLab": build_deeplab,
}

__all__ = [
    "MODEL_BUILDERS",
    "TABLE_II_CONV_LAYERS",
    "build_alexnet",
    "build_deeplab",
    "build_googlenet",
    "build_goturn",
    "build_mask_rcnn",
    "build_vgg_a",
]
