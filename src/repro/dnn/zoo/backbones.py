"""Shared ResNet bottleneck backbone used by Mask R-CNN and DeepLab."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn.graph import LayerGraph
from repro.dnn.ops import BatchNorm, Conv2d, Eltwise, Pool, Relu


@dataclass
class BackboneState:
    """Cursor through the graph while building a backbone."""

    node: int
    channels: int
    height: int
    width: int
    conv_count: int = 0


def _conv_bn(
    graph: LayerGraph,
    state_node: int | None,
    name: str,
    in_channels: int,
    out_channels: int,
    h: int,
    w: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
    batch: int = 1,
    relu: bool = True,
) -> tuple[int, Conv2d]:
    conv = Conv2d.build(
        name, in_channels, out_channels, h, w,
        kernel=kernel, stride=stride, padding=padding, dilation=dilation,
        batch=batch,
    )
    node = graph.add(conv, () if state_node is None else (state_node,))
    node = graph.add(BatchNorm.build(f"{name}/bn", conv.output_shape), (node,))
    if relu:
        node = graph.add(Relu.build(f"{name}/relu", conv.output_shape), (node,))
    return node, conv


def bottleneck(
    graph: LayerGraph,
    state: BackboneState,
    name: str,
    mid_channels: int,
    out_channels: int,
    stride: int = 1,
    dilation: int = 1,
    batch: int = 1,
) -> BackboneState:
    """One ResNet bottleneck: 1x1 -> 3x3 -> 1x1 (+ projection shortcut)."""
    identity = state.node
    node, conv1 = _conv_bn(
        graph, state.node, f"{name}/conv1", state.channels, mid_channels,
        state.height, state.width, kernel=1, batch=batch,
    )
    node, conv2 = _conv_bn(
        graph, node, f"{name}/conv2", mid_channels, mid_channels,
        state.height, state.width, kernel=3, stride=stride,
        padding=dilation, dilation=dilation, batch=batch,
    )
    _b, _c, out_h, out_w = conv2.output_shape.dims
    node, conv3 = _conv_bn(
        graph, node, f"{name}/conv3", mid_channels, out_channels,
        out_h, out_w, kernel=1, batch=batch, relu=False,
    )
    convs = 3
    if stride != 1 or state.channels != out_channels:
        shortcut_node, _conv = _conv_bn(
            graph, identity, f"{name}/shortcut", state.channels, out_channels,
            state.height, state.width, kernel=1, stride=stride,
            batch=batch, relu=False,
        )
        convs += 1
        identity = shortcut_node
    add = Eltwise.build(f"{name}/add", conv3.output_shape)
    node = graph.add(add, (node, identity))
    node = graph.add(Relu.build(f"{name}/out_relu", conv3.output_shape), (node,))
    return BackboneState(
        node=node,
        channels=out_channels,
        height=out_h,
        width=out_w,
        conv_count=state.conv_count + convs,
    )


def resnet101_backbone(
    graph: LayerGraph,
    height: int,
    width: int,
    batch: int = 1,
    dilate_last_stage: bool = False,
) -> tuple[BackboneState, list[BackboneState]]:
    """ResNet-101 trunk: 104 convolutions (1 stem + 99 block + 4 shortcut).

    Returns the final state and the per-stage end states (C2..C5) for FPN
    lateral connections. ``dilate_last_stage`` keeps stage-5 resolution for
    DeepLab's dilated convolutions.
    """
    node, conv1 = _conv_bn(
        graph, None,
        "conv1", 3, 64, height, width, kernel=7, stride=2, padding=3,
        batch=batch,
    )
    _b, _c, h, w = conv1.output_shape.dims
    pool = Pool.build("pool1", 64, h, w, kernel=3, stride=2, padding=1, batch=batch)
    node = graph.add(pool, (node,))
    _b, c, h, w = pool.output_shape.dims
    state = BackboneState(node=node, channels=c, height=h, width=w, conv_count=1)

    stage_specs = [
        ("res2", 3, 64, 256, 1, 1),
        ("res3", 4, 128, 512, 2, 1),
        ("res4", 23, 256, 1024, 2, 1),
        ("res5", 3, 512, 2048, 1 if dilate_last_stage else 2,
         2 if dilate_last_stage else 1),
    ]
    stage_ends = []
    for stage_name, blocks, mid, out, first_stride, dilation in stage_specs:
        for block in range(blocks):
            stride = first_stride if block == 0 else 1
            state = bottleneck(
                graph, state, f"{stage_name}/block{block}", mid, out,
                stride=stride, dilation=dilation, batch=batch,
            )
        stage_ends.append(state)
    return state, stage_ends
