"""The event-driven timeline: weighted processor sharing over typed resources.

Execution is modelled as a fluid schedule. Every released task whose
dependencies are met is (policy permitting) *running*; at any instant each
resource's load is the weight-scaled sum of the running tasks' claims, and
a task progresses at ``1 / slowdown`` where its slowdown is the highest
relative load among the resources it claims::

    slowdown(i) = max(1, max_r sum_j(claim_j(r) * w_j) / w_i)

Two full claimants of one resource therefore time-multiplex it (each at
half speed — the paper's temporal integration), while a fractional
ancillary claim (a TensorCore GEMM's measured SIMD-side register-port
pressure) stretches a co-running SIMD kernel by exactly that fraction —
the spatial co-run contention, *derived* from the claims instead of
hard-coded.

The degenerate case — one stream, tasks chained by dependencies — runs
each task alone at slowdown 1.0 and accumulates completion times as the
plain left-to-right sum of durations, which is what keeps single-model
runs bit-for-bit identical to the historical sequential ``run_model``
loop.
"""

from __future__ import annotations

import os

from dataclasses import dataclass, field, replace

from repro.errors import SchedulingError
from repro.schedule.policies import SchedulingPolicy, make_policy
from repro.schedule.resources import ResourceClaim, ResourceKind

#: Modes that live on the (temporally shared) MAC substrate; dispatching a
#: task whose mode differs from the substrate's current one is a mode
#: switch (drain/fill + warp-set resync) when it crosses streams.
_MAC_MODES = ("simd", "systolic")

#: The claim kinds that place a task on the MAC substrate when held as a
#: *primary* (full) claim.
_SUBSTRATE_KINDS = (ResourceKind.SIMD, ResourceKind.ARRAY)


def _touches_substrate(task) -> bool:
    """Whether dispatching ``task`` occupies the MAC substrate.

    Only tasks with a primary (full) SIMD or ARRAY claim run on the
    temporally-switched substrate and participate in cross-stream
    mode-switch tracking. A TensorCore task's fractional SIMD claim is
    ancillary co-run pressure, and TRANSFER/HOST tasks never touch the
    MACs even though ``OpTask.mode`` defaults to ``"simd"``.
    """
    return any(
        claim.fraction >= 1.0 and claim.kind in _SUBSTRATE_KINDS
        for claim in task.claims
    )

#: The timeline engines a scheduler can run on. ``scalar`` is the
#: original per-event reference loop; ``vectorized`` is the optimized
#: engine in :mod:`repro.schedule.vectorized`, pinned bit-identical to
#: it by the golden suite and the differential fuzz mode.
ENGINE_NAMES = ("scalar", "vectorized")

#: Environment variable selecting the default engine for schedulers
#: constructed without an explicit ``engine=`` (workers and cluster
#: servers inherit it, which is how one setting flips a whole fleet).
ENGINE_ENV = "REPRO_ENGINE"


def default_engine() -> str:
    """The engine used when none is requested (``REPRO_ENGINE`` or scalar)."""
    name = os.environ.get(ENGINE_ENV, "").strip()
    if not name:
        return "scalar"
    if name not in ENGINE_NAMES:
        raise SchedulingError(
            f"unknown timeline engine {name!r} in ${ENGINE_ENV};"
            f" one of {ENGINE_NAMES}"
        )
    return name


@dataclass(frozen=True)
class OpTask:
    """One schedulable unit of work with typed resource claims.

    ``seconds`` is the task's duration when it runs alone at full speed
    (contention stretches it). ``deps`` are uids of tasks that must finish
    first; ``release_s`` is the earliest start time (frame arrival).
    ``cross_switch_s`` is the extra reconfiguration cost charged if this
    task flips the MAC substrate's mode relative to a *different* stream's
    preceding task (intra-stream switches are already priced into
    ``seconds`` by the platform's lowering pass). ``deadline_s`` and
    ``frame_head`` carry the owning frame's QoS anchors: an admission
    policy sees queued frame-head tasks and may drop the whole frame
    before it starts. ``payload`` is opaque to the engine (platforms
    carry their per-op stats there).

    ``think_s`` makes the release *schedule-dependent* (closed-loop
    clients): a task with ``think_s`` set (``None`` means unpaced) is
    released ``think_s`` after its last dependency resolves (completes
    or is dropped), never before ``release_s`` — and does not count as
    arrived/queued until then. Such a task must have dependencies; with
    none there is no completion to wait on.
    """

    uid: int
    name: str
    seconds: float
    claims: tuple[ResourceClaim, ...]
    mode: str = "simd"
    stream: str = "main"
    frame: int = 0
    deps: tuple[int, ...] = ()
    release_s: float = 0.0
    weight: float = 1.0
    cross_switch_s: float = 0.0
    deadline_s: float | None = None
    frame_head: bool = False
    think_s: float | None = None
    payload: object = None

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise SchedulingError(
                f"task {self.name!r} has negative duration {self.seconds}"
            )
        if self.weight <= 0:
            raise SchedulingError(
                f"task {self.name!r} has non-positive weight {self.weight}"
            )
        if not self.claims:
            raise SchedulingError(f"task {self.name!r} claims no resources")
        if self.think_s is not None:
            if self.think_s < 0:
                raise SchedulingError(
                    f"task {self.name!r} has negative think time"
                    f" {self.think_s}"
                )
            if not self.deps:
                raise SchedulingError(
                    f"task {self.name!r} has think time but no dependencies"
                    " to pace it"
                )


@dataclass(frozen=True)
class TimelineSegment:
    """One task's placement on the timeline (completion-ordered)."""

    uid: int
    name: str
    stream: str
    frame: int
    mode: str
    start_s: float
    end_s: float
    seconds: float  # full-speed duration; end - start - seconds = stretch

    @property
    def elapsed_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def stretch(self) -> float:
        """Contention stretch factor (1.0 = ran unimpeded)."""
        if self.seconds <= 0:
            return 1.0
        return self.elapsed_s / self.seconds


@dataclass(frozen=True)
class DropRecord:
    """One task cancelled by admission control before it started."""

    uid: int
    name: str
    stream: str
    frame: int
    time_s: float
    reason: str


@dataclass(frozen=True)
class PreemptRecord:
    """One kernel-boundary preemption event.

    ``action`` is ``"deschedule"`` when a preemptive dispatch policy
    passed over a frame's next kernel in favor of a higher-priority
    frame (the kernel still runs later), or ``"abort"`` when a
    preemptive QoS policy cancelled a not-yet-started kernel outright
    (it never runs; the kernel already on the machine finishes).
    """

    uid: int
    name: str
    stream: str
    frame: int
    time_s: float
    reason: str
    action: str = "abort"


@dataclass(frozen=True)
class Timeline:
    """The scheduled execution: segments plus resource accounting.

    ``drops`` lists the tasks an admission policy cancelled (whole frames
    at a time); dropped tasks never appear in ``segments``.
    ``preemptions`` lists kernel-boundary preemption events (empty unless
    a preemptive policy or QoS action ran): ``"abort"`` records cancel
    tasks — like drops, they never appear in ``segments`` — while
    ``"deschedule"`` records mark yields whose tasks run later.
    """

    segments: tuple[TimelineSegment, ...]
    makespan_s: float
    busy_s: dict[ResourceKind, float] = field(default_factory=dict)
    load_integral_s: dict[ResourceKind, float] = field(default_factory=dict)
    mode_switches: int = 0
    switch_overhead_s: float = 0.0
    drops: tuple[DropRecord, ...] = ()
    preemptions: tuple[PreemptRecord, ...] = ()

    def occupancy(self) -> dict[str, float]:
        """Fraction of the makespan each resource had work (by kind name)."""
        if self.makespan_s <= 0:
            return {kind.value: 0.0 for kind in self.busy_s}
        return {
            kind.value: busy / self.makespan_s
            for kind, busy in self.busy_s.items()
        }

    def by_stream(self) -> dict[str, list[TimelineSegment]]:
        streams: dict[str, list[TimelineSegment]] = {}
        for segment in self.segments:
            streams.setdefault(segment.stream, []).append(segment)
        return streams


class TimelineScheduler:
    """Runs a task set to completion under a scheduling policy.

    ``qos`` is an optional admission policy (see
    :mod:`repro.serving.qos`): any object with ``review(now, queued)``
    returning ``(frame_head_task, reason)`` pairs to drop, and
    ``next_event(now, queued)`` returning the next time its decision
    could change. Dropped frames are cancelled whole — the head and its
    same-frame dependents never run — while cross-frame dependents (the
    stream's next frame) are released as if the frame had completed.

    ``interference`` is an optional per-device measured contention model
    (any object with ``pressure(primary_kinds) -> {kind: factor}``, see
    :class:`~repro.catalog.interference.InterferenceMatrix`). When set it
    *supersedes* per-kernel fractional claims: ancillary (fractional)
    claims are ignored and each running task instead exerts the matrix's
    directional pressure on resources outside its primary set — victims
    stretch, the source task is unaffected. Primary (full) claims keep
    their temporal-multiplexing semantics unchanged, so single-stream
    schedules are bit-identical with or without a matrix.

    ``engine`` selects the execution core: ``"scalar"`` (this module's
    reference loop) or ``"vectorized"``
    (:mod:`repro.schedule.vectorized` — heap-based event queues, an
    incremental queued-frame index, memoized share recomputation, and an
    analytic solo-chain fast path). Both produce bit-identical timelines;
    ``None`` defers to :func:`default_engine` (the ``REPRO_ENGINE``
    environment variable, scalar otherwise).

    ``tracer`` is an optional :class:`~repro.obs.trace.Tracer`. Tracing
    is observation-only — every site is guarded by ``is not None`` and
    only appends to the tracer's log, so a traced run's Timeline (and
    every report built from it) is bit-identical to an untraced one, and
    both engines emit identical event sequences (the ``tests/obs``
    parity gate).
    """

    def __init__(
        self,
        policy: SchedulingPolicy | str = "fifo",
        max_events: int = 10_000_000,
        qos=None,
        interference=None,
        engine: str | None = None,
        tracer=None,
    ) -> None:
        self.policy = make_policy(policy)
        self.max_events = max_events
        self.qos = qos
        self.interference = interference
        self.tracer = tracer
        if engine is None:
            engine = default_engine()
        if engine not in ENGINE_NAMES:
            raise SchedulingError(
                f"unknown timeline engine {engine!r}; one of {ENGINE_NAMES}"
            )
        self.engine = engine

    def run(self, tasks) -> Timeline:
        if self.engine == "vectorized":
            # Deferred import: vectorized builds on this module's types.
            from repro.schedule.vectorized import run_vectorized

            return run_vectorized(self, tasks)
        return self._run_scalar(tasks)

    def _run_scalar(self, tasks) -> Timeline:
        tasks = list(tasks)
        if not tasks:
            return Timeline(segments=(), makespan_s=0.0)
        by_uid = {task.uid: task for task in tasks}
        if len(by_uid) != len(tasks):
            raise SchedulingError("duplicate task uids in schedule")
        unmet = {}
        for task in tasks:
            for dep in task.deps:
                if dep not in by_uid:
                    raise SchedulingError(
                        f"task {task.name!r} depends on unknown uid {dep}"
                    )
            unmet[task.uid] = len(task.deps)
        dependents: dict[int, list[int]] = {}
        for task in tasks:
            for dep in task.deps:
                dependents.setdefault(dep, []).append(task.uid)

        # Tasks whose deps are met, ordered by release time (then uid).
        pending = sorted(
            (task for task in tasks if unmet[task.uid] == 0),
            key=lambda task: (task.release_s, task.uid),
        )
        ready: list[OpTask] = []
        running: list[OpTask] = []
        remaining = {task.uid: task.seconds for task in tasks}
        # Total work charged per task (base seconds plus any cross-stream
        # switch surcharge); the completion epsilon scales with this, not
        # the base seconds, so a zero-length kernel carrying a large
        # switch charge still completes on an appropriately-scaled test.
        charged = {task.uid: task.seconds for task in tasks}
        start: dict[int, float] = {}
        end: dict[int, float] = {}
        busy: dict[ResourceKind, float] = {}
        load_integral: dict[ResourceKind, float] = {}
        completion_order: list[int] = []
        substrate_mode: str | None = None
        substrate_stream: str | None = None
        mode_switches = 0
        switch_overhead = 0.0
        dropped: set[int] = set()
        drop_records: list[DropRecord] = []
        heads = sorted(
            (task for task in tasks if task.frame_head),
            key=lambda task: (task.release_s, task.uid),
        )

        # Preemption state. Both flags default false, in which case none
        # of the bookkeeping below runs and the event sequence (and every
        # float op) is identical to the non-preemptive engine.
        preempt_records: list[PreemptRecord] = []
        policy_preemptive = getattr(self.policy, "preemptive", False)
        qos_preemptive = self.qos is not None and getattr(
            self.qos, "preemptive", False
        )
        # The uid a preemptive policy would resume with (the just-finished
        # task's same-frame successor); dispatching past it is a yield.
        resume_uid: int | None = None
        frame_uids: dict[tuple[str, int], list[int]] = {}
        frame_left: dict[tuple[str, int], int] = {}
        aborted: set[tuple[str, int]] = set()
        if qos_preemptive:
            for task in sorted(tasks, key=lambda task: task.uid):
                key = (task.stream, task.frame)
                frame_uids.setdefault(key, []).append(task.uid)
                frame_left[key] = frame_left.get(key, 0) + 1

        now = 0.0
        events = 0
        done = 0
        tracer = self.tracer

        def admit_to_pending(follower: OpTask) -> None:
            position = 0
            key = (follower.release_s, follower.uid)
            while position < len(pending) and (
                pending[position].release_s,
                pending[position].uid,
            ) <= key:
                position += 1
            pending.insert(position, follower)

        def satisfy_dep(successor_uid: int) -> None:
            unmet[successor_uid] -= 1
            if unmet[successor_uid] == 0 and successor_uid not in dropped:
                successor = by_uid[successor_uid]
                if successor.think_s is not None:
                    # Closed-loop pacing: the release is only known now —
                    # rewrite it so everything downstream (pending order,
                    # queued-frame QoS review, deadline anchoring) sees
                    # the dynamic release time.
                    successor = replace(
                        successor,
                        release_s=max(
                            successor.release_s, now + successor.think_s
                        ),
                    )
                    by_uid[successor_uid] = successor
                admit_to_pending(successor)

        def drop_frame(head: OpTask, reason: str) -> None:
            """Cancel ``head`` and its same-frame dependents at ``now``."""
            nonlocal done
            stack = [head]
            while stack:
                task = stack.pop()
                if task.uid in dropped or task.uid in end:
                    continue
                dropped.add(task.uid)
                if qos_preemptive:
                    frame_left[(task.stream, task.frame)] -= 1
                record = DropRecord(
                    uid=task.uid,
                    name=task.name,
                    stream=task.stream,
                    frame=task.frame,
                    time_s=now,
                    reason=reason,
                )
                drop_records.append(record)
                if tracer is not None:
                    tracer.instant("drop", record)
                done += 1
                if task in ready:
                    ready.remove(task)
                elif task in pending:
                    pending.remove(task)
                for successor_uid in dependents.get(task.uid, ()):
                    successor = by_uid[successor_uid]
                    if (
                        successor.stream == task.stream
                        and successor.frame == task.frame
                    ):
                        stack.append(successor)
                    else:
                        satisfy_dep(successor_uid)

        def queued_frames() -> dict[str, list[OpTask]]:
            """Arrived-but-unstarted frame heads per stream, arrival order.

            Ordered by *effective* release: closed-loop heads get their
            release rewritten when their pacing dependency resolves, so
            static declaration order can disagree with arrival order —
            and ``queue_cap``'s newest-first drop must see true arrival
            order to target the right frame.
            """
            entries = []
            for head in heads:
                # Closed-loop heads are rewritten with their dynamic
                # release when their pacing dependency resolves; until
                # then they have not "arrived" and cannot be queued.
                current = by_uid[head.uid]
                if current.think_s is not None and unmet[head.uid] > 0:
                    continue
                if (
                    current.release_s <= now
                    and head.uid not in start
                    and head.uid not in dropped
                ):
                    entries.append((current.release_s, head.uid, current))
            entries.sort(key=lambda entry: (entry[0], entry[1]))
            queued: dict[str, list[OpTask]] = {}
            for _release, _uid, current in entries:
                queued.setdefault(current.stream, []).append(current)
            return queued

        def inflight_frames() -> dict[str, list[OpTask]]:
            """Started-but-unfinished, non-aborted frame heads per stream.

            Ordered by effective release then uid, matching the
            vectorized engine's sorted in-flight index so abort records
            land in identical order.
            """
            entries = []
            for head in heads:
                key = (head.stream, head.frame)
                if (
                    head.uid in start
                    and key not in aborted
                    and frame_left.get(key, 0) > 0
                ):
                    current = by_uid[head.uid]
                    entries.append((current.release_s, head.uid, current))
            entries.sort(key=lambda entry: (entry[0], entry[1]))
            inflight: dict[str, list[OpTask]] = {}
            for _release, _uid, current in entries:
                inflight.setdefault(current.stream, []).append(current)
            return inflight

        def abort_frame(head: OpTask, reason: str) -> None:
            """Cancel the unstarted remainder of a started frame at ``now``.

            Kernel-granularity: anything already on the machine (or
            finished) stays; every other task of the frame is cancelled
            with a :class:`PreemptRecord`, and cross-frame dependents are
            released exactly as a drop cascade would release them. The
            frame is marked aborted even when nothing was left to cancel,
            so the QoS review cannot re-select it forever.
            """
            nonlocal done, resume_uid
            key = (head.stream, head.frame)
            aborted.add(key)
            for uid in frame_uids[key]:
                if uid in start or uid in dropped:
                    continue
                task = by_uid[uid]
                dropped.add(uid)
                frame_left[key] -= 1
                record = PreemptRecord(
                    uid=uid,
                    name=task.name,
                    stream=task.stream,
                    frame=task.frame,
                    time_s=now,
                    reason=reason,
                    action="abort",
                )
                preempt_records.append(record)
                if tracer is not None:
                    tracer.instant("abort", record)
                done += 1
                if resume_uid == uid:
                    resume_uid = None
                if task in ready:
                    ready.remove(task)
                elif task in pending:
                    pending.remove(task)
                for successor_uid in dependents.get(uid, ()):
                    successor = by_uid[successor_uid]
                    if (successor.stream, successor.frame) != key:
                        satisfy_dep(successor_uid)

        while done < len(tasks):
            events += 1
            if events > self.max_events:
                raise SchedulingError(
                    f"schedule exceeded {self.max_events} events"
                    " (policy starvation or zero-length livelock)"
                )
            # Release pending tasks that have arrived.
            while pending and pending[0].release_s <= now:
                ready.append(pending.pop(0))

            # Admission control sheds queued frames before dispatch.
            if self.qos is not None:
                for head, reason in self.qos.review(now, queued_frames()):
                    drop_frame(head, reason)
                if done >= len(tasks):
                    break
                # A drop cascade can resolve a cross-frame dependency at
                # this very instant, admitting the stream's next frame to
                # ``pending``; re-drain so dispatch sees it (otherwise an
                # ``exclusive`` gate can start a lighter task ahead of a
                # heavier one released by the drop).
                while pending and pending[0].release_s <= now:
                    ready.append(pending.pop(0))
                # Preemptive QoS additionally reviews in-flight frames,
                # aborting the unstarted remainder of any whose deadline
                # slipped; the cascade can release cross-frame deps too.
                if qos_preemptive:
                    for head, reason in self.qos.review_inflight(
                        now, inflight_frames()
                    ):
                        abort_frame(head, reason)
                    if done >= len(tasks):
                        break
                    while pending and pending[0].release_s <= now:
                        ready.append(pending.pop(0))

            # Policy decides which ready tasks start now.
            dispatched = self.policy.dispatch(ready, running)
            if policy_preemptive and dispatched:
                # Dispatching past the finished kernel's same-frame
                # successor is a kernel-boundary yield: the interrupted
                # frame's remainder stays queued while a higher-priority
                # frame takes the machine. Record it exactly once.
                if resume_uid is not None and all(
                    task.uid != resume_uid for task in dispatched
                ):
                    passed = by_uid[resume_uid]
                    record = PreemptRecord(
                        uid=passed.uid,
                        name=passed.name,
                        stream=passed.stream,
                        frame=passed.frame,
                        time_s=now,
                        reason="priority",
                        action="deschedule",
                    )
                    preempt_records.append(record)
                    if tracer is not None:
                        tracer.instant("deschedule", record)
                resume_uid = None
            for task in dispatched:
                ready.remove(task)
                start[task.uid] = now
                if tracer is not None:
                    tracer.begin(now, task)
                if _touches_substrate(task):
                    if (
                        task.cross_switch_s > 0.0
                        and substrate_mode is not None
                        and substrate_mode != task.mode
                        and substrate_stream != task.stream
                    ):
                        remaining[task.uid] += task.cross_switch_s
                        charged[task.uid] += task.cross_switch_s
                        mode_switches += 1
                        switch_overhead += task.cross_switch_s
                        if tracer is not None:
                            tracer.switch(now, task, task.cross_switch_s)
                    substrate_mode = task.mode
                    substrate_stream = task.stream
                running.append(task)

            if not running:
                if pending:
                    now = max(now, pending[0].release_s)
                    continue
                raise SchedulingError(
                    f"policy {self.policy.name!r} dispatched nothing with"
                    f" {len(ready)} ready tasks and nothing running"
                )

            # Weight-scaled loads and per-task slowdowns. With a measured
            # interference matrix, fractional (ancillary) claims are
            # superseded: each task's primary claims contribute load as
            # usual, plus the matrix's directional cross-resource
            # pressure; only primary claims feel the resulting load.
            matrix = self.interference
            load: dict[ResourceKind, float] = {}
            for task in running:
                weight = self.policy.weight(task)
                for claim in task.claims:
                    if matrix is not None and claim.fraction < 1.0:
                        continue
                    load[claim.kind] = (
                        load.get(claim.kind, 0.0) + claim.fraction * weight
                    )
                if matrix is not None:
                    primaries = frozenset(
                        claim.kind
                        for claim in task.claims
                        if claim.fraction >= 1.0
                    )
                    for victim, factor in matrix.pressure(primaries).items():
                        load[victim] = (
                            load.get(victim, 0.0) + factor * weight
                        )
            slowdown: dict[int, float] = {}
            for task in running:
                weight = self.policy.weight(task)
                worst = 1.0
                for claim in task.claims:
                    if matrix is not None and claim.fraction < 1.0:
                        continue
                    worst = max(worst, load[claim.kind] / weight)
                slowdown[task.uid] = worst

            # Advance to the next completion, release, or QoS expiry.
            dt = min(
                remaining[task.uid] * slowdown[task.uid] for task in running
            )
            if pending:
                dt = min(dt, pending[0].release_s - now)
            if self.qos is not None:
                horizon = self.qos.next_event(now, queued_frames())
                if horizon is not None:
                    dt = min(dt, horizon - now)
                if qos_preemptive:
                    ihorizon = self.qos.next_inflight_event(
                        now, inflight_frames()
                    )
                    if ihorizon is not None:
                        dt = min(dt, ihorizon - now)
            dt = max(dt, 0.0)

            if dt > 0.0:
                for kind, amount in load.items():
                    busy[kind] = busy.get(kind, 0.0) + dt
                    load_integral[kind] = (
                        load_integral.get(kind, 0.0) + min(amount, 1.0) * dt
                    )
                for task in running:
                    remaining[task.uid] -= dt / slowdown[task.uid]
                now += dt

            # Complete finished tasks (FP dust below a relative epsilon
            # scaled to the total charged work, switch surcharge included).
            finished = [
                task
                for task in running
                if remaining[task.uid] <= 1e-12 * charged[task.uid] + 1e-18
            ]
            for task in finished:
                running.remove(task)
                end[task.uid] = now
                if tracer is not None:
                    tracer.end(now, task)
                completion_order.append(task.uid)
                done += 1
                if qos_preemptive:
                    frame_left[(task.stream, task.frame)] -= 1
                for successor in dependents.get(task.uid, ()):
                    satisfy_dep(successor)
                if policy_preemptive:
                    # The natural continuation at this kernel boundary is
                    # the finished kernel's same-frame successor, if it
                    # is now dispatchable; remember it so the next
                    # dispatch can tell a yield from a resume.
                    resume_uid = None
                    for successor_uid in dependents.get(task.uid, ()):
                        successor = by_uid[successor_uid]
                        if (
                            successor.stream == task.stream
                            and successor.frame == task.frame
                            and unmet[successor_uid] == 0
                            and successor_uid not in dropped
                            and successor.think_s is None
                            and successor.release_s <= now
                        ):
                            resume_uid = successor_uid
                            break

        segments = tuple(
            TimelineSegment(
                uid=uid,
                name=by_uid[uid].name,
                stream=by_uid[uid].stream,
                frame=by_uid[uid].frame,
                mode=by_uid[uid].mode,
                start_s=start[uid],
                end_s=end[uid],
                seconds=by_uid[uid].seconds,
            )
            for uid in completion_order
        )
        return Timeline(
            segments=segments,
            makespan_s=now,
            busy_s=busy,
            load_integral_s=load_integral,
            mode_switches=mode_switches,
            switch_overhead_s=switch_overhead,
            drops=tuple(drop_records),
            preemptions=tuple(preempt_records),
        )


__all__ = [
    "ENGINE_ENV",
    "ENGINE_NAMES",
    "DropRecord",
    "OpTask",
    "PreemptRecord",
    "Timeline",
    "TimelineScheduler",
    "TimelineSegment",
    "default_engine",
]
