"""Typed execution resources an :class:`~repro.schedule.timeline.OpTask` claims.

The paper's platforms differ in *where* an operator's work lands: SIMD
issue slots, the temporally-reconfigured systolic/LSMA array (which on SMA
is the *same* MAC substrate as the SIMD lanes), the spatially-integrated
TensorCores, the host link, or the host CPU. The scheduler reasons about
contention purely through these typed claims:

* a claim with ``fraction == 1.0`` is a *primary* claim — the task wants
  the whole resource and time-shares it with other full claimants
  (temporal integration: two systolic streams, or a systolic and a SIMD
  kernel, multiplex the MACs);
* a fractional claim is *ancillary* pressure — e.g. a TensorCore GEMM
  kernel also occupies a measured fraction of the SIMD-side register-file
  ports and issue slots (spatial integration's co-run cost), which is what
  slows a concurrently-running SIMD kernel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SchedulingError


class ResourceKind(enum.Enum):
    """The execution resources a task can claim."""

    SIMD = "simd"          # SIMD issue slots / CUDA-core pipelines
    ARRAY = "array"        # systolic / LSMA array (temporal mode of the MACs)
    TC = "tc"              # spatially-integrated TensorCores
    TRANSFER = "transfer"  # PCIe / host link
    HOST = "host"          # host CPU


#: Canonical reporting order for occupancy tables.
RESOURCE_ORDER = (
    ResourceKind.SIMD,
    ResourceKind.ARRAY,
    ResourceKind.TC,
    ResourceKind.TRANSFER,
    ResourceKind.HOST,
)


@dataclass(frozen=True)
class ResourceClaim:
    """One task's demand on one resource.

    ``fraction`` is the share of the resource the task occupies while
    running at full speed; 1.0 claims the whole resource.
    """

    kind: ResourceKind
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.kind, ResourceKind):
            raise SchedulingError(f"not a resource kind: {self.kind!r}")
        if not 0.0 < self.fraction <= 1.0:
            raise SchedulingError(
                f"claim fraction must be in (0, 1], got {self.fraction}"
            )


#: Default full claim per canonical substrate-mode label (the output of
#: :func:`repro.platforms.base.substrate_mode`, which is the single place
#: raw per-op mode strings are normalized).
_MODE_CLAIMS = {
    "simd": ResourceKind.SIMD,
    "systolic": ResourceKind.ARRAY,
    "tc": ResourceKind.TC,
    "array": ResourceKind.ARRAY,
    "transfer": ResourceKind.TRANSFER,
    "host": ResourceKind.HOST,
}


def claims_for_mode(mode: str) -> tuple[ResourceClaim, ...]:
    """Default resource claims for a canonical substrate-mode label.

    Platforms with richer knowledge (measured ancillary fractions, the
    SMA's MAC aliasing) override per-op; this mapping is the fallback that
    makes any :class:`~repro.platforms.base.Platform` subclass — including
    user-registered ones — schedulable out of the box. Unrecognized labels
    fall back to the SIMD pipelines.
    """
    return (ResourceClaim(_MODE_CLAIMS.get(mode, ResourceKind.SIMD)),)


__all__ = [
    "RESOURCE_ORDER",
    "ResourceClaim",
    "ResourceKind",
    "claims_for_mode",
]
