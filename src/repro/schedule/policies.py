"""Scheduling policies: who runs, and with what share of the machine.

A policy answers two questions for the timeline engine:

* :meth:`~SchedulingPolicy.dispatch` — which ready tasks start now;
* :meth:`~SchedulingPolicy.weight` — each running task's share weight in
  the processor-sharing slowdown formula.

``fifo`` runs everything that is ready with equal shares (fair temporal
multiplexing — the default, and the degenerate single-stream case).
``priority`` also runs everything, but shares contended resources in
proportion to stream priority, so a latency-critical stream is stretched
less by co-runners. ``exclusive`` serializes the whole machine, picking
the highest-priority ready task — the strictest isolation, equivalent to
the historical one-model-at-a-time execution even for multi-stream
scenarios. ``exclusive_preempt`` keeps the same dispatch order but marks
itself preemptive: the engine deschedules a frame's not-yet-started
remainder at each kernel boundary whenever a higher-priority frame is
ready (recording the yield as a :class:`PreemptRecord`), bounding
priority inversion to the single kernel already in flight.
"""

from __future__ import annotations

from repro.errors import SchedulingError

POLICY_NAMES = ("fifo", "priority", "exclusive", "exclusive_preempt")


class SchedulingPolicy:
    """Base policy: dispatch every ready task, equal weights."""

    name = "fifo"
    #: Preemptive policies let the engine swap a frame's unstarted
    #: remainder off the machine at kernel boundaries; the engine records
    #: each switch-away so reports and oracles can account for it.
    preemptive = False

    def dispatch(self, ready: list, running: list) -> list:
        """The ready tasks to start now (engine preserves this order)."""
        return sorted(ready, key=lambda task: (task.release_s, task.uid))

    def weight(self, task) -> float:
        """The task's share weight on contended resources."""
        return 1.0


class FifoPolicy(SchedulingPolicy):
    """Run everything that is ready; equal shares (fair multiplexing)."""

    name = "fifo"


class PriorityPolicy(SchedulingPolicy):
    """Run everything that is ready; shares proportional to priority."""

    name = "priority"

    def dispatch(self, ready: list, running: list) -> list:
        return sorted(
            ready, key=lambda task: (-task.weight, task.release_s, task.uid)
        )

    def weight(self, task) -> float:
        return task.weight


class ExclusivePolicy(SchedulingPolicy):
    """One task on the machine at a time, highest priority first."""

    name = "exclusive"

    def dispatch(self, ready: list, running: list) -> list:
        if running or not ready:
            return []
        best = min(ready, key=lambda task: (-task.weight, task.release_s, task.uid))
        return [best]


class ExclusivePreemptPolicy(ExclusivePolicy):
    """Exclusive dispatch with kernel-granularity preemption.

    Dispatch order is identical to ``exclusive`` (highest-priority ready
    task wins each kernel boundary); the ``preemptive`` flag additionally
    makes the engine deschedule the interrupted frame's next kernel and
    record the yield, so a newly-arrived high-priority frame is blocked
    by at most the kernel already on the machine.
    """

    name = "exclusive_preempt"
    preemptive = True


_POLICIES = {
    "fifo": FifoPolicy,
    "priority": PriorityPolicy,
    "exclusive": ExclusivePolicy,
    "exclusive_preempt": ExclusivePreemptPolicy,
}


def make_policy(policy: "SchedulingPolicy | str") -> SchedulingPolicy:
    """Resolve a policy instance from its name (or pass one through)."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    factory = _POLICIES.get(policy)
    if factory is None:
        raise SchedulingError(
            f"unknown scheduling policy {policy!r}; one of {POLICY_NAMES}"
        )
    return factory()


__all__ = [
    "POLICY_NAMES",
    "ExclusivePolicy",
    "ExclusivePreemptPolicy",
    "FifoPolicy",
    "PriorityPolicy",
    "SchedulingPolicy",
    "make_policy",
]
