"""Multi-stream scenarios: concurrent model streams over one timeline.

A :class:`ScenarioSpec` declares N concurrent model streams — each a
registry model spec with a priority, an optional frame period/deadline,
and a skip interval (run the model every Nth frame only, the paper's
detection frame-skipping) — plus how many frames to simulate and the
scheduling policy. :func:`instantiate_frames` turns per-stream lowered
task templates into one flat task set for the
:class:`~repro.schedule.timeline.TimelineScheduler`: per-frame task
chains, serialized within a stream, released at the frame's arrival time,
weighted by stream priority.

Specs are frozen primitives with lossless JSON round-trip, so scenarios
ride :class:`~repro.api.results.SimRequest` through the sweep engine and
the result store exactly like model and GEMM workloads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

from repro.errors import ConfigError, SchedulingError
from repro.schedule.policies import POLICY_NAMES
from repro.schedule.timeline import OpTask, Timeline


@dataclass(frozen=True)
class StreamSpec:
    """One concurrent model stream inside a scenario.

    ``priority`` is the stream's share weight under the ``priority``
    policy (higher = larger share of contended resources).
    ``skip_interval`` runs the model only on every Nth frame;
    ``period_s`` releases frame k at ``k * period_s`` (``None`` releases
    every frame at t=0 — back-to-back throughput mode); ``deadline_s``
    marks a frame late when its completion trails its release by more.
    """

    name: str
    model: str
    priority: float = 1.0
    skip_interval: int = 1
    period_s: float | None = None
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("stream needs a non-empty name")
        if not self.model:
            raise ConfigError(f"stream {self.name!r} needs a model spec")
        if self.priority <= 0:
            raise ConfigError(
                f"stream {self.name!r}: priority must be > 0, got"
                f" {self.priority}"
            )
        if self.skip_interval < 1:
            raise ConfigError(
                f"stream {self.name!r}: skip interval must be >= 1, got"
                f" {self.skip_interval}"
            )
        if self.period_s is not None and self.period_s < 0:
            raise ConfigError(f"stream {self.name!r}: period must be >= 0")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError(f"stream {self.name!r}: deadline must be > 0")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "model": self.model,
            "priority": self.priority,
            "skip_interval": self.skip_interval,
            "period_s": self.period_s,
            "deadline_s": self.deadline_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StreamSpec":
        if not isinstance(data, dict):
            raise ConfigError(f"stream spec must be an object, got {data!r}")
        for key in ("name", "model"):
            if key not in data:
                raise ConfigError(f"stream spec is missing {key!r}: {data!r}")
        return cls(
            name=data["name"],
            model=data["model"],
            priority=data.get("priority", 1.0),
            skip_interval=data.get("skip_interval", 1),
            period_s=data.get("period_s"),
            deadline_s=data.get("deadline_s"),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """N concurrent streams, a frame count, and a scheduling policy.

    ``platform`` may be left ``None`` when the scenario is swept across a
    platform axis (the sweep binds each grid point's platform);
    ``framework_overhead_s`` overrides the per-kernel-launch overhead used
    when lowering every stream's model.
    """

    name: str
    streams: tuple[StreamSpec, ...]
    platform: str | None = None
    frames: int = 1
    policy: str = "fifo"
    framework_overhead_s: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("scenario needs a non-empty name")
        streams = tuple(self.streams)
        object.__setattr__(self, "streams", streams)
        if not streams:
            raise ConfigError(f"scenario {self.name!r} needs >= 1 stream")
        names = [stream.name for stream in streams]
        if len(set(names)) != len(names):
            raise ConfigError(
                f"scenario {self.name!r} has duplicate stream names: {names}"
            )
        if self.frames < 1:
            raise ConfigError(
                f"scenario {self.name!r}: frames must be >= 1, got"
                f" {self.frames}"
            )
        if self.policy not in POLICY_NAMES:
            raise ConfigError(
                f"scenario {self.name!r}: unknown policy {self.policy!r};"
                f" one of {POLICY_NAMES}"
            )

    def stream(self, name: str) -> StreamSpec:
        for stream in self.streams:
            if stream.name == name:
                return stream
        raise ConfigError(f"scenario {self.name!r} has no stream {name!r}")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "platform": self.platform,
            "frames": self.frames,
            "policy": self.policy,
            "framework_overhead_s": self.framework_overhead_s,
            "streams": [stream.to_dict() for stream in self.streams],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        if not isinstance(data, dict):
            raise ConfigError(
                f"scenario spec must be an object, got {data!r}"
            )
        if "name" not in data:
            raise ConfigError(f"scenario spec is missing 'name': {data!r}")
        return cls(
            name=data["name"],
            platform=data.get("platform"),
            frames=data.get("frames", 1),
            policy=data.get("policy", "fifo"),
            framework_overhead_s=data.get("framework_overhead_s"),
            streams=tuple(
                StreamSpec.from_dict(item) for item in data.get("streams", ())
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigError(f"invalid scenario JSON: {error}") from None
        return cls.from_dict(data)


@dataclass(frozen=True)
class FrameRun:
    """One executed frame of one stream: its tasks and timing anchors."""

    stream: str
    frame: int
    release_s: float
    deadline_s: float | None
    uids: tuple[int, ...]


@dataclass(frozen=True)
class FramePlan:
    """Instantiated tasks plus the per-frame bookkeeping for reporting."""

    tasks: tuple[OpTask, ...]
    runs: tuple[FrameRun, ...]
    skipped: dict[str, int]

    def frame_latencies(self, timeline: Timeline) -> dict[str, list[tuple]]:
        """Per stream: ``(frame, release, completion, latency, missed)``."""
        ends = {segment.uid: segment.end_s for segment in timeline.segments}
        latencies: dict[str, list[tuple]] = {}
        for run in self.runs:
            completion = max(ends[uid] for uid in run.uids)
            latency = completion - run.release_s
            missed = run.deadline_s is not None and latency > run.deadline_s
            latencies.setdefault(run.stream, []).append(
                (run.frame, run.release_s, completion, latency, missed)
            )
        return latencies


def instantiate_frames(
    spec: ScenarioSpec, templates: dict[str, list[OpTask]]
) -> FramePlan:
    """Expand per-stream task templates into the scenario's frame tasks.

    ``templates`` maps stream names to the platform-lowered single-run
    task chain of that stream's model (uids and deps are re-based here).
    """
    for stream in spec.streams:
        if stream.name not in templates:
            raise SchedulingError(
                f"no lowered tasks for stream {stream.name!r}"
            )
        if not templates[stream.name]:
            raise SchedulingError(
                f"stream {stream.name!r} lowered to an empty task list"
            )
    tasks: list[OpTask] = []
    runs: list[FrameRun] = []
    skipped: dict[str, int] = {}
    uid = 0
    for stream in spec.streams:
        template = templates[stream.name]
        previous_last: int | None = None
        skipped[stream.name] = 0
        for frame in range(spec.frames):
            if frame % stream.skip_interval != 0:
                skipped[stream.name] += 1
                continue
            release = (
                frame * stream.period_s if stream.period_s is not None else 0.0
            )
            uids = []
            for position, task in enumerate(template):
                if position == 0:
                    deps = () if previous_last is None else (previous_last,)
                else:
                    deps = (uid - 1,)
                tasks.append(
                    replace(
                        task,
                        uid=uid,
                        stream=stream.name,
                        frame=frame,
                        deps=deps,
                        release_s=release,
                        weight=stream.priority,
                    )
                )
                uids.append(uid)
                uid += 1
            previous_last = uids[-1]
            runs.append(
                FrameRun(
                    stream=stream.name,
                    frame=frame,
                    release_s=release,
                    deadline_s=stream.deadline_s,
                    uids=tuple(uids),
                )
            )
    return FramePlan(tasks=tuple(tasks), runs=tuple(runs), skipped=skipped)


__all__ = [
    "FramePlan",
    "FrameRun",
    "ScenarioSpec",
    "StreamSpec",
    "instantiate_frames",
]
