"""Multi-stream scenarios: concurrent model streams over one timeline.

A :class:`ScenarioSpec` declares N concurrent model streams — each a
registry model spec with a priority, an optional frame period/deadline,
and a skip interval (run the model every Nth frame only, the paper's
detection frame-skipping) — plus how many frames to simulate and the
scheduling policy. :func:`instantiate_frames` turns per-stream lowered
task templates into one flat task set for the
:class:`~repro.schedule.timeline.TimelineScheduler`: per-frame task
chains, serialized within a stream, released at the frame's arrival time,
weighted by stream priority.

Specs are frozen primitives with lossless JSON round-trip, so scenarios
ride :class:`~repro.api.results.SimRequest` through the sweep engine and
the result store exactly like model and GEMM workloads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

from repro.errors import ConfigError, SchedulingError
from repro.schedule.policies import POLICY_NAMES
from repro.schedule.timeline import OpTask, Timeline
from repro.serving.qos import QosSpec
from repro.serving.traces import ArrivalSpec, generate_arrivals, iter_arrivals


@dataclass(frozen=True)
class StreamSpec:
    """One concurrent model stream inside a scenario.

    ``priority`` is the stream's share weight under the ``priority``
    policy (higher = larger share of contended resources).
    ``skip_interval`` runs the model only on every Nth frame;
    ``period_s`` releases frame k at ``k * period_s`` (``None`` releases
    every frame at t=0 — back-to-back throughput mode); ``deadline_s``
    marks a frame late when its completion trails its release by more.

    ``arrivals`` switches the stream to *open-loop* release: frame k is
    released at the arrival process's k-th arrival time instead of the
    periodic cadence (the two are exclusive — a periodic release *is* the
    degenerate ``fixed`` arrival trace).
    """

    name: str
    model: str
    priority: float = 1.0
    skip_interval: int = 1
    period_s: float | None = None
    deadline_s: float | None = None
    arrivals: ArrivalSpec | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("stream needs a non-empty name")
        if not self.model:
            raise ConfigError(f"stream {self.name!r} needs a model spec")
        if self.priority <= 0:
            raise ConfigError(
                f"stream {self.name!r}: priority must be > 0, got"
                f" {self.priority}"
            )
        if self.skip_interval < 1:
            raise ConfigError(
                f"stream {self.name!r}: skip interval must be >= 1, got"
                f" {self.skip_interval}"
            )
        if self.period_s is not None and self.period_s < 0:
            raise ConfigError(f"stream {self.name!r}: period must be >= 0")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError(f"stream {self.name!r}: deadline must be > 0")
        if isinstance(self.arrivals, dict):
            object.__setattr__(
                self, "arrivals", ArrivalSpec.from_dict(self.arrivals)
            )
        if self.arrivals is not None:
            if not isinstance(self.arrivals, ArrivalSpec):
                raise ConfigError(
                    f"stream {self.name!r}: arrivals must be an ArrivalSpec,"
                    f" got {self.arrivals!r}"
                )
            if self.period_s is not None:
                raise ConfigError(
                    f"stream {self.name!r}: period_s and arrivals are"
                    " exclusive (a period is a fixed arrival trace)"
                )

    def release_times(self, frames: int) -> tuple[float, ...]:
        """Release time per frame slot (may be shorter for replay traces).

        Closed-loop streams release frame k at ``k * period_s`` (or all
        at t=0 without a period); open-loop streams release at the
        arrival process's times, salted by the stream name so sibling
        streams draw independent deterministic arrivals.
        """
        if self.arrivals is None:
            if self.period_s is None:
                return tuple(0.0 for _ in range(frames))
            return tuple(frame * self.period_s for frame in range(frames))
        if self.arrivals.kind == "closed_loop":
            raise ConfigError(
                f"stream {self.name!r}: closed_loop arrivals have no static"
                " release schedule (releases are paced by completions)"
            )
        return generate_arrivals(self.arrivals, frames, salt=self.name)

    @property
    def closed_loop(self) -> bool:
        """Whether this stream's releases are paced by its completions."""
        return (
            self.arrivals is not None and self.arrivals.kind == "closed_loop"
        )

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "model": self.model,
            "priority": self.priority,
            "skip_interval": self.skip_interval,
            "period_s": self.period_s,
            "deadline_s": self.deadline_s,
        }
        # Emitted only when set so closed-loop specs (and the sweep
        # fingerprints derived from them) are byte-identical to the
        # pre-serving format.
        if self.arrivals is not None:
            payload["arrivals"] = self.arrivals.to_dict()
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "StreamSpec":
        if not isinstance(data, dict):
            raise ConfigError(f"stream spec must be an object, got {data!r}")
        for key in ("name", "model"):
            if key not in data:
                raise ConfigError(f"stream spec is missing {key!r}: {data!r}")
        arrivals = data.get("arrivals")
        return cls(
            name=data["name"],
            model=data["model"],
            priority=data.get("priority", 1.0),
            skip_interval=data.get("skip_interval", 1),
            period_s=data.get("period_s"),
            deadline_s=data.get("deadline_s"),
            arrivals=(
                ArrivalSpec.from_dict(arrivals)
                if arrivals is not None
                else None
            ),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """N concurrent streams, a frame count, and a scheduling policy.

    ``platform`` may be left ``None`` when the scenario is swept across a
    platform axis (the sweep binds each grid point's platform);
    ``framework_overhead_s`` overrides the per-kernel-launch overhead used
    when lowering every stream's model.
    """

    name: str
    streams: tuple[StreamSpec, ...]
    platform: str | None = None
    frames: int = 1
    policy: str = "fifo"
    framework_overhead_s: float | None = None
    qos: QosSpec | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("scenario needs a non-empty name")
        streams = tuple(self.streams)
        object.__setattr__(self, "streams", streams)
        if not streams:
            raise ConfigError(f"scenario {self.name!r} needs >= 1 stream")
        names = [stream.name for stream in streams]
        if len(set(names)) != len(names):
            raise ConfigError(
                f"scenario {self.name!r} has duplicate stream names: {names}"
            )
        if self.frames < 1:
            raise ConfigError(
                f"scenario {self.name!r}: frames must be >= 1, got"
                f" {self.frames}"
            )
        if self.policy not in POLICY_NAMES:
            raise ConfigError(
                f"scenario {self.name!r}: unknown policy {self.policy!r};"
                f" one of {POLICY_NAMES}"
            )
        if isinstance(self.qos, dict):
            object.__setattr__(self, "qos", QosSpec.from_dict(self.qos))
        if self.qos is not None and not isinstance(self.qos, QosSpec):
            raise ConfigError(
                f"scenario {self.name!r}: qos must be a QosSpec, got"
                f" {self.qos!r}"
            )

    def stream(self, name: str) -> StreamSpec:
        for stream in self.streams:
            if stream.name == name:
                return stream
        raise ConfigError(f"scenario {self.name!r} has no stream {name!r}")

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "platform": self.platform,
            "frames": self.frames,
            "policy": self.policy,
            "framework_overhead_s": self.framework_overhead_s,
            "streams": [stream.to_dict() for stream in self.streams],
        }
        # Conditional for the same fingerprint-stability reason as
        # StreamSpec.arrivals.
        if self.qos is not None:
            payload["qos"] = self.qos.to_dict()
        return payload

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        if not isinstance(data, dict):
            raise ConfigError(
                f"scenario spec must be an object, got {data!r}"
            )
        if "name" not in data:
            raise ConfigError(f"scenario spec is missing 'name': {data!r}")
        qos = data.get("qos")
        return cls(
            name=data["name"],
            platform=data.get("platform"),
            frames=data.get("frames", 1),
            policy=data.get("policy", "fifo"),
            framework_overhead_s=data.get("framework_overhead_s"),
            qos=QosSpec.from_dict(qos) if qos is not None else None,
            streams=tuple(
                StreamSpec.from_dict(item) for item in data.get("streams", ())
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigError(f"invalid scenario JSON: {error}") from None
        return cls.from_dict(data)


@dataclass(frozen=True)
class FrameRun:
    """One executed frame of one stream: its tasks and timing anchors.

    ``release_dep`` and ``think_s`` are set only for closed-loop frames:
    the frame's actual release is its pacing dependency's resolution
    time plus the think time, recovered from the executed timeline when
    records are assembled (it cannot be known statically).
    """

    stream: str
    frame: int
    release_s: float
    deadline_s: float | None
    uids: tuple[int, ...]
    release_dep: int | None = None
    think_s: float = 0.0


@dataclass(frozen=True)
class FrameRecord:
    """One frame's outcome after scheduling (completed or dropped)."""

    stream: str
    frame: int
    release_s: float
    deadline_s: float | None
    completion_s: float | None
    latency_s: float | None
    missed: bool
    dropped: bool
    drop_reason: str | None = None


@dataclass(frozen=True)
class FramePlan:
    """Instantiated tasks plus the per-frame bookkeeping for reporting."""

    tasks: tuple[OpTask, ...]
    runs: tuple[FrameRun, ...]
    skipped: dict[str, int]

    def frame_records(self, timeline: Timeline) -> dict[str, list[FrameRecord]]:
        """Per stream: every instantiated frame's outcome, in frame order.

        Frames cancelled by admission control come back with
        ``dropped=True`` and no completion/latency; frames whose tail was
        aborted in-flight by a preemptive QoS policy report the same way
        (their abort reason as the drop reason — any kernels that ran
        before the abort do not make the frame an on-time completion).
        """
        ends = {segment.uid: segment.end_s for segment in timeline.segments}
        drops = {record.uid: record for record in timeline.drops}
        aborts: dict[int, object] = {}
        for record in timeline.preemptions:
            if record.action == "abort":
                aborts.setdefault(record.uid, record)
        records: dict[str, list[FrameRecord]] = {}
        for run in self.runs:
            release = run.release_s
            if run.release_dep is not None:
                # Closed-loop: the frame was released when its pacing
                # dependency resolved (completed, dropped, or aborted)
                # plus think time — mirror the engine's dynamic release.
                resolved = ends.get(run.release_dep)
                if resolved is None and run.release_dep in drops:
                    resolved = drops[run.release_dep].time_s
                if resolved is None and run.release_dep in aborts:
                    resolved = aborts[run.release_dep].time_s
                if resolved is not None:
                    release = max(run.release_s, resolved + run.think_s)
            drop = next(
                (drops[uid] for uid in run.uids if uid in drops), None
            )
            if drop is None:
                drop = next(
                    (aborts[uid] for uid in run.uids if uid in aborts), None
                )
            if drop is not None:
                record = FrameRecord(
                    stream=run.stream,
                    frame=run.frame,
                    release_s=release,
                    deadline_s=run.deadline_s,
                    completion_s=None,
                    latency_s=None,
                    missed=False,
                    dropped=True,
                    drop_reason=drop.reason,
                )
            else:
                completion = max(ends[uid] for uid in run.uids)
                latency = completion - release
                record = FrameRecord(
                    stream=run.stream,
                    frame=run.frame,
                    release_s=release,
                    deadline_s=run.deadline_s,
                    completion_s=completion,
                    latency_s=latency,
                    missed=(
                        run.deadline_s is not None and latency > run.deadline_s
                    ),
                    dropped=False,
                )
            records.setdefault(run.stream, []).append(record)
        return records

    def frame_latencies(self, timeline: Timeline) -> dict[str, list[tuple]]:
        """Per stream: ``(frame, release, completion, latency, missed)``
        for every *completed* frame (dropped frames are omitted)."""
        latencies: dict[str, list[tuple]] = {}
        for stream, records in self.frame_records(timeline).items():
            latencies[stream] = [
                (
                    record.frame,
                    record.release_s,
                    record.completion_s,
                    record.latency_s,
                    record.missed,
                )
                for record in records
                if not record.dropped
            ]
        return latencies


def instantiate_frames(
    spec: ScenarioSpec, templates: dict[str, list[OpTask]]
) -> FramePlan:
    """Expand per-stream task templates into the scenario's frame tasks.

    ``templates`` maps stream names to the platform-lowered single-run
    task chain of that stream's model (uids and deps are re-based here).
    Frame k of a stream is released at the stream's k-th release time —
    periodic for closed-loop streams, the arrival process's times for
    open-loop ones (a replay trace shorter than ``spec.frames`` simply
    yields fewer frames).
    """
    for stream in spec.streams:
        if stream.name not in templates:
            raise SchedulingError(
                f"no lowered tasks for stream {stream.name!r}"
            )
        if not templates[stream.name]:
            raise SchedulingError(
                f"stream {stream.name!r} lowered to an empty task list"
            )
    tasks: list[OpTask] = []
    runs: list[FrameRun] = []
    skipped: dict[str, int] = {}
    uid = 0
    for stream in spec.streams:
        template = templates[stream.name]
        previous_last: int | None = None
        skipped[stream.name] = 0
        closed = stream.closed_loop
        think = stream.arrivals.think_s if closed else 0.0
        releases = (
            tuple(0.0 for _ in range(spec.frames))
            if closed
            else stream.release_times(spec.frames)
        )
        for frame, release in enumerate(releases):
            if frame % stream.skip_interval != 0:
                skipped[stream.name] += 1
                continue
            # A closed-loop frame (after the first) is paced by the
            # previous executed frame: released think_s after it resolves.
            pacing = closed and previous_last is not None
            uids = []
            for position, task in enumerate(template):
                if position == 0:
                    deps = () if previous_last is None else (previous_last,)
                else:
                    deps = (uid - 1,)
                tasks.append(
                    replace(
                        task,
                        uid=uid,
                        stream=stream.name,
                        frame=frame,
                        deps=deps,
                        release_s=release,
                        weight=stream.priority,
                        deadline_s=stream.deadline_s,
                        frame_head=position == 0,
                        think_s=think if pacing and position == 0 else None,
                    )
                )
                uids.append(uid)
                uid += 1
            runs.append(
                FrameRun(
                    stream=stream.name,
                    frame=frame,
                    release_s=release,
                    deadline_s=stream.deadline_s,
                    uids=tuple(uids),
                    release_dep=previous_last if pacing else None,
                    think_s=think if pacing else 0.0,
                )
            )
            previous_last = uids[-1]
    return FramePlan(tasks=tuple(tasks), runs=tuple(runs), skipped=skipped)


class FrameSource:
    """One open-loop stream's frames, produced lazily one at a time.

    Emits exactly the :class:`FrameRun`/task batches
    :func:`instantiate_frames` would build for this stream — same uids
    (``uid_base`` pre-computed from the scenario's stream order), same
    deps, same releases — without materializing the trace, so a
    million-frame stream costs one frame of memory at a time. Closed-loop
    streams have no static schedule and are rejected by
    :func:`frame_sources`.
    """

    def __init__(
        self, stream: StreamSpec, template: "list[OpTask]",
        frames: int, uid_base: int,
    ) -> None:
        self.stream = stream
        self.template = template
        self.frames = frames
        self.uid = uid_base
        self.skipped = 0
        self._slot = 0
        self._previous_last: int | None = None
        if stream.arrivals is None:
            if stream.period_s is None:
                self._releases = iter(0.0 for _ in range(frames))
            else:
                period = stream.period_s
                self._releases = iter(
                    frame * period for frame in range(frames)
                )
        else:
            self._releases = iter_arrivals(
                stream.arrivals, frames, salt=stream.name
            )

    def next_frame(self) -> "tuple[FrameRun, list[OpTask]] | None":
        """The stream's next executed frame, or ``None`` when exhausted."""
        stream = self.stream
        while True:
            if self._slot >= self.frames:
                return None
            release = next(self._releases, None)
            if release is None:
                return None
            frame = self._slot
            self._slot += 1
            if frame % stream.skip_interval != 0:
                self.skipped += 1
                continue
            tasks = []
            uids = []
            for position, task in enumerate(self.template):
                if position == 0:
                    deps = (
                        ()
                        if self._previous_last is None
                        else (self._previous_last,)
                    )
                else:
                    deps = (self.uid - 1,)
                # Direct construction instead of dataclasses.replace():
                # replace() re-introspects fields per call, and this is
                # the streaming driver's per-frame hot path.
                tasks.append(
                    OpTask(
                        uid=self.uid,
                        name=task.name,
                        seconds=task.seconds,
                        claims=task.claims,
                        mode=task.mode,
                        stream=stream.name,
                        frame=frame,
                        deps=deps,
                        release_s=release,
                        weight=stream.priority,
                        cross_switch_s=task.cross_switch_s,
                        deadline_s=stream.deadline_s,
                        frame_head=position == 0,
                        think_s=None,
                        payload=task.payload,
                    )
                )
                uids.append(self.uid)
                self.uid += 1
            run = FrameRun(
                stream=stream.name,
                frame=frame,
                release_s=release,
                deadline_s=stream.deadline_s,
                uids=tuple(uids),
                release_dep=None,
                think_s=0.0,
            )
            self._previous_last = uids[-1]
            return run, tasks


def frame_sources(
    spec: ScenarioSpec, templates: "dict[str, list[OpTask]]"
) -> "list[FrameSource]":
    """Per-stream lazy frame sources with :func:`instantiate_frames` uids.

    The materialized expander allocates uids stream-major (every frame of
    stream 0, then stream 1, ...); each source's base is the number of
    tasks the streams before it will ever emit, computable without
    generating a single arrival: ``ceil(slots / skip) * len(template)``,
    where ``slots`` is ``spec.frames`` capped by a replay trace's length.
    """
    for stream in spec.streams:
        if stream.name not in templates:
            raise SchedulingError(
                f"no lowered tasks for stream {stream.name!r}"
            )
        if not templates[stream.name]:
            raise SchedulingError(
                f"stream {stream.name!r} lowered to an empty task list"
            )
        if stream.closed_loop:
            raise ConfigError(
                f"stream {stream.name!r}: closed_loop arrivals are paced"
                " by completions and cannot stream; use"
                " instantiate_frames"
            )
    sources = []
    uid = 0
    for stream in spec.streams:
        template = templates[stream.name]
        slots = spec.frames
        if stream.arrivals is not None and stream.arrivals.kind == "replay":
            slots = min(slots, len(stream.arrivals.times_s))
        emitted = (slots + stream.skip_interval - 1) // stream.skip_interval
        sources.append(FrameSource(stream, template, spec.frames, uid))
        uid += emitted * len(template)
    return sources


__all__ = [
    "FramePlan",
    "FrameRecord",
    "FrameRun",
    "FrameSource",
    "ScenarioSpec",
    "StreamSpec",
    "frame_sources",
    "instantiate_frames",
]
