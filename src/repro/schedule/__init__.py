"""``repro.schedule`` — the temporal timeline scheduler.

The paper's flagship end-to-end result is a *scheduling* result: one GPU
substrate time-multiplexes SIMD and systolic modes at layer granularity
while streams of work (detection, tracking, localization) share the chip.
This package models that directly:

* :mod:`~repro.schedule.resources` — typed execution resources (SIMD
  issue slots, the temporally-reconfigured array, TensorCores, the host
  link, the host CPU) and per-task claims;
* :mod:`~repro.schedule.timeline` — an event-driven weighted
  processor-sharing engine over those claims, with cross-stream
  mode-switch accounting;
* :mod:`~repro.schedule.policies` — fifo / priority / exclusive
  dispatch-and-share policies;
* :mod:`~repro.schedule.streams` — multi-stream :class:`ScenarioSpec`
  declarations (priorities, frame deadlines, frame skipping) expanded
  into frame task sets.

Platforms lower layer graphs into :class:`OpTask` chains
(:meth:`repro.platforms.base.Platform.lower_model`); single-model runs
are the degenerate one-stream case and reproduce the historical
sequential ``run_model`` numbers bit-for-bit.
"""

from repro.schedule.policies import (
    POLICY_NAMES,
    ExclusivePolicy,
    ExclusivePreemptPolicy,
    FifoPolicy,
    PriorityPolicy,
    SchedulingPolicy,
    make_policy,
)
from repro.schedule.resources import (
    RESOURCE_ORDER,
    ResourceClaim,
    ResourceKind,
    claims_for_mode,
)
from repro.schedule.streams import (
    FramePlan,
    FrameRecord,
    FrameRun,
    FrameSource,
    ScenarioSpec,
    StreamSpec,
    frame_sources,
    instantiate_frames,
)
from repro.schedule.timeline import (
    ENGINE_ENV,
    ENGINE_NAMES,
    DropRecord,
    OpTask,
    PreemptRecord,
    Timeline,
    TimelineScheduler,
    TimelineSegment,
    default_engine,
)

__all__ = [
    "ENGINE_ENV",
    "ENGINE_NAMES",
    "POLICY_NAMES",
    "RESOURCE_ORDER",
    "DropRecord",
    "ExclusivePolicy",
    "ExclusivePreemptPolicy",
    "FifoPolicy",
    "FramePlan",
    "FrameRecord",
    "FrameRun",
    "FrameSource",
    "OpTask",
    "PreemptRecord",
    "PriorityPolicy",
    "ResourceClaim",
    "ResourceKind",
    "ScenarioSpec",
    "SchedulingPolicy",
    "StreamSpec",
    "Timeline",
    "TimelineScheduler",
    "TimelineSegment",
    "claims_for_mode",
    "default_engine",
    "frame_sources",
    "instantiate_frames",
    "make_policy",
]
