"""The vectorized timeline engine: the scalar loop's hot path, restructured.

:class:`~repro.schedule.timeline.TimelineScheduler` with
``engine="vectorized"`` runs task sets through this module instead of the
scalar reference loop. The semantics — and the produced
:class:`~repro.schedule.timeline.Timeline`, bit for bit — are identical;
what changes is the cost model per event:

* **heap event queues** — ``pending`` is a binary heap keyed
  ``(release_s, uid)`` instead of a sorted list with O(n) head pops and
  O(n) sorted inserts;
* **incremental queued-frame index** — the scalar engine rescans *every*
  frame head twice per event to build the QoS review dict (quadratic in
  trace length); here heads enter a sorted arrival index once, when their
  release passes, and leave it on start/drop, so each review costs only
  the frames actually queued;
* **memoized share recomputation** — weight-scaled resource loads and
  per-task slowdowns are recomputed only when the running set changes
  (dispatch or completion), not every event;
* **analytic solo-chain fast path** — when exactly one task runs, its
  slowdown is exactly 1.0, so a dependency chain's completions are the
  plain left-to-right sum of durations. The fast path advances whole
  chain segments in a tight loop — skipping release scans, QoS review,
  and policy dispatch per step — whenever it can prove those would be
  no-ops: no other ready task, the next pending release and the QoS
  horizon strictly after the chain step's completion, and (under QoS) the
  successor is not a frame head. Every float operation it performs is
  the same operation, in the same order, as the scalar loop's.

Bit-identity is pinned three ways: the golden suite
(``tests/schedule/test_vectorized.py``), every existing scenario/serving
golden re-run under ``REPRO_ENGINE=vectorized``, and the differential
fuzz campaign mode (``repro fuzz run --differential``) which treats any
report divergence as an invariant violation.

The core additionally supports *incremental* task injection and state
pruning (:meth:`VectorCore.inject` / :meth:`VectorCore.prune`), which is
what the bounded-memory streaming serving driver
(:mod:`repro.serving.streaming`) builds on: million-frame traces run
through the same engine without ever materializing the full task set.
"""

from __future__ import annotations

import heapq

from bisect import bisect_left, insort
from dataclasses import replace

from repro.errors import SchedulingError
from repro.schedule.policies import (
    ExclusivePolicy,
    ExclusivePreemptPolicy,
    FifoPolicy,
    PriorityPolicy,
    SchedulingPolicy,
)
from repro.schedule.timeline import (
    _touches_substrate,
    DropRecord,
    OpTask,
    PreemptRecord,
    Timeline,
    TimelineSegment,
)
from repro.schedule.resources import ResourceKind
from repro.serving.qos import (
    AbortLatePolicy,
    AdmissionPolicy,
    DropLatePolicy,
    QueueCapPolicy,
    ShedPolicy,
)

#: Task lifecycle states (internal).
_BLOCKED, _PENDING, _READY, _RUNNING, _DONE, _DROPPED = range(6)

#: Policies whose dispatch of a single ready task with nothing running is
#: provably that task — the precondition for the solo-chain fast path to
#: condense a dispatch without consulting the policy. Custom subclasses
#: fall back to the generic loop (correct, just slower).
#: ``exclusive_preempt`` qualifies: it dispatches exactly like
#: ``exclusive``, and a condensed step always dispatches the finished
#: kernel's sole successor (nothing else is ready), which is precisely
#: the resume case — no deschedule record could be emitted.
_FAST_POLICIES = (
    SchedulingPolicy,
    FifoPolicy,
    PriorityPolicy,
    ExclusivePolicy,
    ExclusivePreemptPolicy,
)

#: Admission policies known to honor the ``next_event`` contract (their
#: review decision cannot change before the returned horizon). The fast
#: path relies on that contract to skip reviews; unknown QoS classes
#: disable it. ``abort_late`` additionally honors ``next_inflight_event``
#: — the fast path breaks at that horizon too (in-flight expiries are
#: fixed once a head starts, and no head starts inside a condensation).
_FAST_QOS = (
    AdmissionPolicy,
    DropLatePolicy,
    QueueCapPolicy,
    ShedPolicy,
    AbortLatePolicy,
)


class VectorCore:
    """The engine state machine; one instance runs one schedule.

    ``collect`` keeps segments/drop tuples for a full
    :class:`~repro.schedule.timeline.Timeline` (materialized runs);
    streaming drivers turn it off and consume ``on_resolve`` callbacks
    instead, pruning per-task state as frames retire.

    ``on_resolve(task, end_s, drop_record)`` fires once per task, at
    completion (``end_s`` set) or drop (``drop_record`` set). The
    callback may :meth:`inject` new tasks (streaming arrival feed) but
    must not mutate engine state otherwise.

    ``tracer`` is an optional :class:`~repro.obs.trace.Tracer`; every
    emission site mirrors the scalar engine's so the two cores produce
    identical event sequences (the ``tests/obs`` parity gate), and the
    tracer never touches engine floats (transparency gate).
    """

    def __init__(
        self,
        policy,
        qos=None,
        interference=None,
        max_events: int = 10_000_000,
        collect: bool = True,
        on_resolve=None,
        tracer=None,
    ) -> None:
        self.policy = policy
        self.qos = qos
        self.matrix = interference
        self.max_events = max_events
        self.collect = collect
        self.on_resolve = on_resolve
        self.tracer = tracer

        self.by_uid: dict[int, OpTask] = {}
        self.unmet: dict[int, int] = {}
        self.dependents: dict[int, list[int]] = {}
        self.remaining: dict[int, float] = {}
        # Total charged work per task (base seconds + switch surcharge);
        # the completion epsilon scales with this (scalar parity).
        self.charged: dict[int, float] = {}
        self.status: dict[int, int] = {}
        self.pending: list[tuple[float, int]] = []
        self.ready: list[OpTask] = []
        self.running: list[OpTask] = []
        self.start: dict[int, float] = {}
        self.end: dict[int, float] = {}
        self.busy: dict[ResourceKind, float] = {}
        self.load_integral: dict[ResourceKind, float] = {}
        self.completion_order: list[int] = []
        self.drop_records: list[DropRecord] = []
        self.substrate_mode: str | None = None
        self.substrate_stream: str | None = None
        self.mode_switches = 0
        self.switch_overhead = 0.0

        # Queued-frame index (maintained only under QoS): heads sit in
        # ``arrival_heap`` until their release passes, then in the
        # ``queued_keys`` sorted list — keyed by their *static* (build
        # time) release so review dicts iterate in exactly the scalar
        # engine's head order.
        self.head_key: dict[int, tuple[float, int]] = {}
        self.arrival_heap: list[tuple[float, int]] = []
        self.queued_keys: list[tuple[float, int]] = []

        # Preemption state (bookkeeping only runs when a preemptive
        # policy/QoS is installed — non-preemptive runs take none of the
        # new branches, keeping them bit-identical to the seed engine).
        self.policy_preemptive = getattr(policy, "preemptive", False)
        self.qos_preemptive = qos is not None and getattr(
            qos, "preemptive", False
        )
        self.preempt_records: list[PreemptRecord] = []
        self.resume_uid: int | None = None
        self.frame_uids: dict[tuple[str, int], list[int]] = {}
        self.frame_left: dict[tuple[str, int], int] = {}
        self.frame_head_uid: dict[tuple[str, int], int] = {}
        self.aborted: set[tuple[str, int]] = set()
        # Started-but-unfinished frame heads, sorted by effective
        # (release, uid) — the in-flight mirror of ``queued_keys``.
        self.inflight_keys: list[tuple[float, int]] = []

        self.now = 0.0
        self.events = 0
        self.done = 0
        self.total = 0
        self.live = 0
        self.peak_live = 0

        self._shares_dirty = True
        self._load: dict[ResourceKind, float] = {}
        self._slowdown: dict[int, float] = {}
        self._solo_cache: dict = {}
        # Per-(id(claims), weight, mode) memo for the solo chain:
        # accrual pairs with ``min(amount, 1.0)`` pre-applied, plus
        # whether the task touches the shared substrate at all. Keyed by
        # claim-tuple identity (tuples are shared across frames and
        # outlive the scheduler via ``by_uid``) so lookups avoid
        # hashing dataclass contents on every condensed step.
        self._chain_cache: dict = {}
        self._fast_ok = type(policy) in _FAST_POLICIES and (
            qos is None or type(qos) in _FAST_QOS
        )

    # -- task intake / retirement ------------------------------------------------------
    def inject(self, tasks, presatisfied=frozenset()) -> None:
        """Register tasks (validating uids/deps exactly like the scalar
        engine). ``presatisfied`` uids count as already-resolved
        dependencies — the streaming driver's bridge to pruned frames."""
        by_uid = self.by_uid
        for task in tasks:
            if task.uid in by_uid:
                raise SchedulingError("duplicate task uids in schedule")
            by_uid[task.uid] = task
        qos = self.qos
        status = self.status
        status_get = status.get
        dependents = self.dependents
        unmet_map = self.unmet
        remaining = self.remaining
        pending = self.pending
        heappush = heapq.heappush
        for task in tasks:
            uid = task.uid
            unmet = 0
            for dep in task.deps:
                if dep in by_uid:
                    if status_get(dep, _BLOCKED) in (_DONE, _DROPPED):
                        continue
                    dependents.setdefault(dep, []).append(uid)
                    unmet += 1
                elif dep not in presatisfied:
                    raise SchedulingError(
                        f"task {task.name!r} depends on unknown uid {dep}"
                    )
            unmet_map[uid] = unmet
            remaining[uid] = task.seconds
            self.charged[uid] = task.seconds
            if unmet == 0 and task.think_s is None:
                status[uid] = _PENDING
                heappush(pending, (task.release_s, uid))
            else:
                status[uid] = _BLOCKED
            if qos is not None and task.frame_head:
                self.head_key[uid] = (task.release_s, uid)
                if task.think_s is None:
                    heappush(self.arrival_heap, (task.release_s, uid))
            if self.qos_preemptive:
                key = (task.stream, task.frame)
                self.frame_uids.setdefault(key, []).append(uid)
                self.frame_left[key] = self.frame_left.get(key, 0) + 1
                if task.frame_head:
                    self.frame_head_uid[key] = uid
        self.total += len(tasks)
        self.live += len(tasks)
        if self.live > self.peak_live:
            self.peak_live = self.live

    def prune(self, uids) -> None:
        """Forget per-task state for resolved tasks (streaming retirement)."""
        for uid in uids:
            task = self.by_uid[uid]
            # Drop incoming edges from still-live predecessors (a dropped
            # frame can retire while the previous frame's tasks run) so
            # no resolution ever follows an edge to pruned state.
            for dep in task.deps:
                edges = self.dependents.get(dep)
                if edges is not None:
                    try:
                        edges.remove(uid)
                    except ValueError:
                        pass
            del self.by_uid[uid]
            self.status.pop(uid, None)
            self.unmet.pop(uid, None)
            self.remaining.pop(uid, None)
            self.charged.pop(uid, None)
            self.start.pop(uid, None)
            self.end.pop(uid, None)
            self.dependents.pop(uid, None)
            self.head_key.pop(uid, None)
            if self.qos_preemptive:
                key = (task.stream, task.frame)
                self.frame_uids.pop(key, None)
                self.frame_left.pop(key, None)
                self.frame_head_uid.pop(key, None)
                self.aborted.discard(key)
        self.live -= len(uids)

    # -- queued-frame index ------------------------------------------------------------
    def _drain_arrivals(self) -> None:
        heap = self.arrival_heap
        now = self.now
        while heap and heap[0][0] <= now:
            _, uid = heapq.heappop(heap)
            if self.status.get(uid) in (_DONE, _DROPPED) or uid in self.start:
                continue
            insort(self.queued_keys, self.head_key[uid])

    def _queued_discard(self, uid: int) -> None:
        key = self.head_key.get(uid)
        if key is None:
            return
        keys = self.queued_keys
        index = bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            del keys[index]

    def _queued_frames(self) -> dict[str, list[OpTask]]:
        queued: dict[str, list[OpTask]] = {}
        by_uid = self.by_uid
        for _, uid in self.queued_keys:
            task = by_uid[uid]
            queued.setdefault(task.stream, []).append(task)
        return queued

    # -- in-flight frame index (preemptive QoS only) -------------------------------------
    def _inflight_discard(self, uid: int) -> None:
        key = self.head_key.get(uid)
        if key is None:
            return
        keys = self.inflight_keys
        index = bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            del keys[index]

    def _inflight_frames(self) -> dict[str, list[OpTask]]:
        inflight: dict[str, list[OpTask]] = {}
        by_uid = self.by_uid
        for _, uid in self.inflight_keys:
            task = by_uid[uid]
            inflight.setdefault(task.stream, []).append(task)
        return inflight

    def _frame_resolved(self, task: OpTask) -> None:
        """Account one resolved (completed/dropped/aborted) frame member;
        a fully-resolved frame leaves the in-flight index."""
        key = (task.stream, task.frame)
        left = self.frame_left.get(key)
        if left is None:
            return
        left -= 1
        self.frame_left[key] = left
        if left <= 0:
            head_uid = self.frame_head_uid.get(key)
            if head_uid is not None:
                self._inflight_discard(head_uid)
            self.aborted.discard(key)

    # -- event queue helpers -----------------------------------------------------------
    def _pending_release(self) -> float | None:
        heap = self.pending
        status = self.status
        while heap and status.get(heap[0][1]) != _PENDING:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def _drain_releases(self) -> None:
        release = self._pending_release()
        while release is not None and release <= self.now:
            _, uid = heapq.heappop(self.pending)
            task = self.by_uid[uid]
            self.status[uid] = _READY
            self.ready.append(task)
            release = self._pending_release()

    # -- dependency resolution ---------------------------------------------------------
    def _satisfy_dep(self, successor_uid: int) -> None:
        self.unmet[successor_uid] -= 1
        if (
            self.unmet[successor_uid] == 0
            and self.status[successor_uid] != _DROPPED
        ):
            successor = self.by_uid[successor_uid]
            if successor.think_s is not None:
                # Closed-loop pacing: rewrite the release now that it is
                # known (mirrors the scalar engine exactly).
                successor = replace(
                    successor,
                    release_s=max(
                        successor.release_s, self.now + successor.think_s
                    ),
                )
                self.by_uid[successor_uid] = successor
                if self.qos is not None and successor.frame_head:
                    # Re-key the head by its *effective* release before
                    # it enters the arrival/queued indexes, so queue
                    # review sees true arrival order (a closed-loop head
                    # can arrive after later-declared open-loop ones).
                    self.head_key[successor_uid] = (
                        successor.release_s,
                        successor_uid,
                    )
                    heapq.heappush(
                        self.arrival_heap,
                        (successor.release_s, successor_uid),
                    )
            self.status[successor_uid] = _PENDING
            heapq.heappush(
                self.pending, (successor.release_s, successor_uid)
            )

    def _drop_frame(self, head: OpTask, reason: str) -> None:
        stack = [head]
        while stack:
            task = stack.pop()
            uid = task.uid
            if self.status.get(uid) == _DROPPED or uid in self.end:
                continue
            state = self.status.get(uid)
            self.status[uid] = _DROPPED
            record = DropRecord(
                uid=uid,
                name=task.name,
                stream=task.stream,
                frame=task.frame,
                time_s=self.now,
                reason=reason,
            )
            if self.collect:
                self.drop_records.append(record)
            if self.tracer is not None:
                self.tracer.instant("drop", record)
            self.done += 1
            if self.qos_preemptive:
                self._frame_resolved(task)
            if state == _READY:
                self.ready.remove(task)
            if self.qos is not None and task.frame_head:
                self._queued_discard(uid)
            for successor_uid in self.dependents.get(uid, ()):
                successor = self.by_uid[successor_uid]
                if (
                    successor.stream == task.stream
                    and successor.frame == task.frame
                ):
                    stack.append(successor)
                else:
                    self._satisfy_dep(successor_uid)
            if self.on_resolve is not None:
                self.on_resolve(task, None, record)

    def _complete(self, task: OpTask) -> None:
        uid = task.uid
        self.status[uid] = _DONE
        self.end[uid] = self.now
        if self.tracer is not None:
            self.tracer.end(self.now, task)
        if self.collect:
            self.completion_order.append(uid)
        self.done += 1
        if self.qos_preemptive:
            self._frame_resolved(task)
        for successor_uid in self.dependents.get(uid, ()):
            self._satisfy_dep(successor_uid)
        if self.policy_preemptive:
            # Remember the kernel boundary's natural continuation (the
            # finished kernel's dispatchable same-frame successor) so
            # the next dispatch can tell a yield from a resume.
            self.resume_uid = None
            for successor_uid in self.dependents.get(uid, ()):
                successor = self.by_uid[successor_uid]
                if (
                    successor.stream == task.stream
                    and successor.frame == task.frame
                    and self.unmet[successor_uid] == 0
                    and self.status[successor_uid] != _DROPPED
                    and successor.think_s is None
                    and successor.release_s <= self.now
                ):
                    self.resume_uid = successor_uid
                    break
        if self.on_resolve is not None:
            self.on_resolve(task, self.now, None)

    def _abort_frame(self, head: OpTask, reason: str) -> None:
        """Cancel the unstarted remainder of a started frame (mirrors the
        scalar ``abort_frame`` exactly, including record order)."""
        key = (head.stream, head.frame)
        self.aborted.add(key)
        self._inflight_discard(head.uid)
        for uid in sorted(self.frame_uids.get(key, ())):
            if uid in self.start or self.status.get(uid) == _DROPPED:
                continue
            task = self.by_uid[uid]
            state = self.status.get(uid)
            self.status[uid] = _DROPPED
            self.frame_left[key] -= 1
            record = PreemptRecord(
                uid=uid,
                name=task.name,
                stream=task.stream,
                frame=task.frame,
                time_s=self.now,
                reason=reason,
                action="abort",
            )
            if self.collect:
                self.preempt_records.append(record)
            if self.tracer is not None:
                self.tracer.instant("abort", record)
            self.done += 1
            if self.resume_uid == uid:
                self.resume_uid = None
            if state == _READY:
                self.ready.remove(task)
            for successor_uid in self.dependents.get(uid, ()):
                successor = self.by_uid[successor_uid]
                if (successor.stream, successor.frame) != key:
                    self._satisfy_dep(successor_uid)
            if self.on_resolve is not None:
                self.on_resolve(task, None, record)

    # -- shares ------------------------------------------------------------------------
    def _compute_shares(self) -> None:
        """Recompute loads/slowdowns — same arithmetic, same order as the
        scalar loop, so memoized values are bit-identical to a rescan."""
        matrix = self.matrix
        policy = self.policy
        load: dict[ResourceKind, float] = {}
        for task in self.running:
            weight = policy.weight(task)
            for claim in task.claims:
                if matrix is not None and claim.fraction < 1.0:
                    continue
                load[claim.kind] = (
                    load.get(claim.kind, 0.0) + claim.fraction * weight
                )
            if matrix is not None:
                primaries = frozenset(
                    claim.kind
                    for claim in task.claims
                    if claim.fraction >= 1.0
                )
                for victim, factor in matrix.pressure(primaries).items():
                    load[victim] = load.get(victim, 0.0) + factor * weight
        slowdown: dict[int, float] = {}
        for task in self.running:
            weight = policy.weight(task)
            worst = 1.0
            for claim in task.claims:
                if matrix is not None and claim.fraction < 1.0:
                    continue
                worst = max(worst, load[claim.kind] / weight)
            slowdown[task.uid] = worst
        self._load = load
        self._slowdown = slowdown
        self._shares_dirty = False

    def _solo_load(self, task: OpTask) -> dict[ResourceKind, float]:
        """A single running task's load dict (memoized by claims/weight —
        frame templates share claim tuples, so chains hit the cache)."""
        weight = self.policy.weight(task)
        key = (task.claims, weight)
        load = self._solo_cache.get(key)
        if load is None:
            matrix = self.matrix
            load = {}
            for claim in task.claims:
                if matrix is not None and claim.fraction < 1.0:
                    continue
                load[claim.kind] = (
                    load.get(claim.kind, 0.0) + claim.fraction * weight
                )
            if matrix is not None:
                primaries = frozenset(
                    claim.kind
                    for claim in task.claims
                    if claim.fraction >= 1.0
                )
                for victim, factor in matrix.pressure(primaries).items():
                    load[victim] = load.get(victim, 0.0) + factor * weight
            self._solo_cache[key] = load
        return load

    def _charge_substrate(self, task: OpTask) -> None:
        """Mode-switch accounting at dispatch (scalar semantics)."""
        if _touches_substrate(task):
            if (
                task.cross_switch_s > 0.0
                and self.substrate_mode is not None
                and self.substrate_mode != task.mode
                and self.substrate_stream != task.stream
            ):
                self.remaining[task.uid] += task.cross_switch_s
                self.charged[task.uid] += task.cross_switch_s
                self.mode_switches += 1
                self.switch_overhead += task.cross_switch_s
                if self.tracer is not None:
                    self.tracer.switch(self.now, task, task.cross_switch_s)
            self.substrate_mode = task.mode
            self.substrate_stream = task.stream

    # -- the solo-chain fast path ------------------------------------------------------
    def _fast_chain(self) -> bool:
        """Advance a solo dependency chain completion-by-completion
        without the generic loop's per-event scans.

        Every condensed step is provably identical to one full scalar
        iteration: nothing else is ready, the next pending release and
        the QoS horizon land strictly after the step's completion (so the
        release drain and review would be no-ops — admission policies
        guarantee their decision is constant before ``next_event``), and
        the completed task's single successor is dispatchable alone.
        Returns True when at least one step was condensed.
        """
        if not self._fast_ok:
            return False
        qos = self.qos
        horizon = None
        ihorizon = None
        if qos is not None:
            horizon = qos.next_event(self.now, self._queued_frames())
            if self.qos_preemptive:
                # In-flight abort expiries are fixed once a head starts,
                # and no head starts inside a condensation, so the entry
                # horizon bounds the whole chain segment.
                ihorizon = qos.next_inflight_event(
                    self.now, self._inflight_frames()
                )
        # Hot loop: hoist every attribute the per-step body touches.
        # Nothing below changes a single float operation relative to the
        # generic loop — the wins are lookup elimination and skipping
        # the pending-heap round-trip for a successor we dispatch on the
        # spot.
        busy_get = self.busy.get
        busy_set = self.busy.__setitem__
        li_get = self.load_integral.get
        li_set = self.load_integral.__setitem__
        running = self.running
        ready = self.ready
        remaining = self.remaining
        status = self.status
        end = self.end
        start = self.start
        unmet = self.unmet
        by_uid = self.by_uid
        dependents = self.dependents
        pending = self.pending
        chain_cache = self._chain_cache
        collect = self.collect
        completion_order = self.completion_order
        on_resolve = self.on_resolve
        weight_of = self.policy.weight
        tracer = self.tracer
        substrate_mode = self.substrate_mode
        substrate_stream = self.substrate_stream
        now = self.now
        events = self.events
        done = self.done
        stepped = False
        while len(running) == 1 and not ready:
            task = running[0]
            uid = task.uid
            rem = remaining[uid]
            # Alone on the machine the slowdown is exactly 1.0 (a full
            # claim's load equals the task's own weight), so the scalar
            # loop's dt is exactly ``rem``.
            completion = now + rem
            while pending and status.get(pending[0][1]) != _PENDING:
                heapq.heappop(pending)
            if pending and pending[0][0] <= completion:
                break
            if horizon is not None and horizon <= completion:
                break
            if ihorizon is not None and ihorizon <= completion:
                break
            successors = dependents.get(uid, ())
            if len(successors) != 1:
                break
            succ_uid = successors[0]
            if unmet[succ_uid] != 1 or status[succ_uid] == _DROPPED:
                break
            successor = by_uid[succ_uid]
            if successor.think_s is not None:
                break
            if successor.release_s > completion:
                break
            if qos is not None and successor.frame_head:
                break
            # Commit: complete ``task`` at ``completion``, start its
            # successor there — one scalar iteration, condensed.
            events += 1
            if rem > 0.0:
                key = (id(task.claims), weight_of(task), task.mode)
                memo = chain_cache.get(key)
                if memo is None:
                    memo = self._chain_memo(task, key)
                for kind, amount in memo[0]:
                    busy_set(kind, busy_get(kind, 0.0) + rem)
                    li_set(kind, li_get(kind, 0.0) + amount * rem)
                now += rem
            remaining[uid] = 0.0
            running.clear()
            # Inlined ``_complete``: the sole successor's dependency
            # resolves here, and since we dispatch it immediately the
            # scalar PENDING push/pop pair is unobservable — skip it.
            status[uid] = _DONE
            end[uid] = now
            if tracer is not None:
                tracer.end(now, task)
            if collect:
                completion_order.append(uid)
            done += 1
            if self.qos_preemptive:
                self._frame_resolved(task)
            unmet[succ_uid] = 0
            if on_resolve is not None:
                # Publish counters the hook may observe (it can inject
                # tasks or drop frames), then re-read afterwards.
                self.now = now
                self.events = events
                self.done = done
                on_resolve(task, now, None)
                events = self.events
                done = self.done
                if unmet[succ_uid] != 0 or status[succ_uid] == _DROPPED:
                    break  # a resolve hook intervened (defensive)
            # The successor is not closed-loop and its release has
            # passed, so the scalar loop would admit, release, and
            # dispatch exactly it. Condense those three steps.
            status[succ_uid] = _RUNNING
            start[succ_uid] = now
            if tracer is not None:
                tracer.begin(now, successor)
            succ_key = (
                id(successor.claims), weight_of(successor), successor.mode
            )
            succ_memo = chain_cache.get(succ_key)
            if succ_memo is None:
                succ_memo = self._chain_memo(successor, succ_key)
            if succ_memo[1]:
                # Inlined ``_charge_substrate`` (relevance memoized).
                if (
                    successor.cross_switch_s > 0.0
                    and substrate_mode is not None
                    and substrate_mode != successor.mode
                    and substrate_stream != successor.stream
                ):
                    remaining[succ_uid] += successor.cross_switch_s
                    self.charged[succ_uid] += successor.cross_switch_s
                    self.mode_switches += 1
                    self.switch_overhead += successor.cross_switch_s
                    if tracer is not None:
                        tracer.switch(now, successor, successor.cross_switch_s)
                substrate_mode = successor.mode
                substrate_stream = successor.stream
            running.append(successor)
            stepped = True
        self.now = now
        self.events = events
        self.done = done
        self.substrate_mode = substrate_mode
        self.substrate_stream = substrate_stream
        if stepped:
            self._shares_dirty = True
        return stepped

    def _chain_memo(self, task: OpTask, key) -> tuple:
        """Build the chain cache entry for ``key``: busy/load accrual
        pairs (``min(amount, 1.0)`` folded in — same float value the
        generic loop computes per step) and whether the task can charge
        the shared substrate."""
        pairs = tuple(
            (kind, min(amount, 1.0))
            for kind, amount in self._solo_load(task).items()
        )
        memo = (pairs, _touches_substrate(task))
        self._chain_cache[key] = memo
        return memo

    # -- the generic event loop --------------------------------------------------------
    def run_loop(self, feeder=None) -> None:
        """Run until every registered (and fed) task resolves.

        ``feeder(now)`` — optional — is called at each event top and may
        :meth:`inject` newly due work (the streaming arrival bridge).
        """
        qos = self.qos
        policy = self.policy
        while True:
            if feeder is not None:
                feeder(self.now)
            if self.done >= self.total:
                break
            self.events += 1
            if self.events > self.max_events:
                raise SchedulingError(
                    f"schedule exceeded {self.max_events} events"
                    " (policy starvation or zero-length livelock)"
                )
            self._drain_releases()

            if qos is not None:
                self._drain_arrivals()
                for head, reason in qos.review(
                    self.now, self._queued_frames()
                ):
                    self._drop_frame(head, reason)
                if self.done >= self.total:
                    break
                # Drop cascades can admit a stream's next frame at this
                # instant — re-drain before dispatch (scalar parity).
                self._drain_releases()
                # Preemptive QoS reviews in-flight frames too, aborting
                # the unstarted remainder of any whose deadline slipped.
                if self.qos_preemptive:
                    for head, reason in qos.review_inflight(
                        self.now, self._inflight_frames()
                    ):
                        self._abort_frame(head, reason)
                    if self.done >= self.total:
                        break
                    self._drain_releases()

            dispatched = policy.dispatch(self.ready, self.running)
            if self.policy_preemptive and dispatched:
                resume = self.resume_uid
                if resume is not None and all(
                    task.uid != resume for task in dispatched
                ):
                    passed = self.by_uid[resume]
                    record = PreemptRecord(
                        uid=passed.uid,
                        name=passed.name,
                        stream=passed.stream,
                        frame=passed.frame,
                        time_s=self.now,
                        reason="priority",
                        action="deschedule",
                    )
                    if self.collect:
                        self.preempt_records.append(record)
                    if self.tracer is not None:
                        self.tracer.instant("deschedule", record)
                self.resume_uid = None
            if dispatched:
                if len(dispatched) == len(self.ready):
                    self.ready.clear()
                else:
                    for task in dispatched:
                        self.ready.remove(task)
                for task in dispatched:
                    self.start[task.uid] = self.now
                    self.status[task.uid] = _RUNNING
                    if self.tracer is not None:
                        self.tracer.begin(self.now, task)
                    self._charge_substrate(task)
                    if qos is not None and task.frame_head:
                        self._queued_discard(task.uid)
                        if self.qos_preemptive:
                            insort(
                                self.inflight_keys,
                                self.head_key[task.uid],
                            )
                    self.running.append(task)
                self._shares_dirty = True

            if not self.running:
                release = self._pending_release()
                if release is not None:
                    if release > self.now:
                        self.now = release
                    continue
                if feeder is not None and self.done >= self.total:
                    break
                raise SchedulingError(
                    f"policy {policy.name!r} dispatched nothing with"
                    f" {len(self.ready)} ready tasks and nothing running"
                )

            if self._fast_chain():
                continue

            if self._shares_dirty:
                self._compute_shares()
            load = self._load
            slowdown = self._slowdown
            remaining = self.remaining

            dt = min(
                remaining[task.uid] * slowdown[task.uid]
                for task in self.running
            )
            release = self._pending_release()
            if release is not None:
                dt = min(dt, release - self.now)
            if qos is not None:
                horizon = qos.next_event(self.now, self._queued_frames())
                if horizon is not None:
                    dt = min(dt, horizon - self.now)
                if self.qos_preemptive:
                    ihorizon = qos.next_inflight_event(
                        self.now, self._inflight_frames()
                    )
                    if ihorizon is not None:
                        dt = min(dt, ihorizon - self.now)
            dt = max(dt, 0.0)

            if dt > 0.0:
                busy = self.busy
                load_integral = self.load_integral
                for kind, amount in load.items():
                    busy[kind] = busy.get(kind, 0.0) + dt
                    load_integral[kind] = (
                        load_integral.get(kind, 0.0) + min(amount, 1.0) * dt
                    )
                for task in self.running:
                    remaining[task.uid] -= dt / slowdown[task.uid]
                self.now += dt

            charged = self.charged
            finished = [
                task
                for task in self.running
                if remaining[task.uid] <= 1e-12 * charged[task.uid] + 1e-18
            ]
            if finished:
                for task in finished:
                    self.running.remove(task)
                    self._complete(task)
                self._shares_dirty = True

    # -- materialized-run assembly -----------------------------------------------------
    def build_timeline(self) -> Timeline:
        by_uid = self.by_uid
        start = self.start
        end = self.end
        segments = tuple(
            TimelineSegment(
                uid=uid,
                name=task.name,
                stream=task.stream,
                frame=task.frame,
                mode=task.mode,
                start_s=start[uid],
                end_s=end[uid],
                seconds=task.seconds,
            )
            for uid in self.completion_order
            if (task := by_uid[uid]) is not None
        )
        return Timeline(
            segments=segments,
            makespan_s=self.now,
            busy_s=self.busy,
            load_integral_s=self.load_integral,
            mode_switches=self.mode_switches,
            switch_overhead_s=self.switch_overhead,
            drops=tuple(self.drop_records),
            preemptions=tuple(self.preempt_records),
        )


def run_vectorized(scheduler, tasks) -> Timeline:
    """Run ``tasks`` to completion with the vectorized core; the entry
    point :meth:`TimelineScheduler.run` dispatches to."""
    tasks = list(tasks)
    if not tasks:
        return Timeline(segments=(), makespan_s=0.0)
    core = VectorCore(
        policy=scheduler.policy,
        qos=scheduler.qos,
        interference=scheduler.interference,
        max_events=scheduler.max_events,
        collect=True,
        tracer=scheduler.tracer,
    )
    core.inject(tasks)
    core.run_loop()
    return core.build_timeline()


__all__ = ["VectorCore", "run_vectorized"]
