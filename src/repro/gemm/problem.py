"""GEMM problem descriptors: C = alpha * A @ B + beta * C."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DataType
from repro.errors import MappingError


@dataclass(frozen=True)
class GemmProblem:
    """One (M, N, K) GEMM with operand precision and epilogue scalars."""

    m: int
    n: int
    k: int
    dtype: DataType = DataType.FP16
    alpha: float = 1.0
    beta: float = 0.0

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0 or self.k <= 0:
            raise MappingError(
                f"GEMM dims must be positive, got ({self.m}, {self.n}, {self.k})"
            )

    @property
    def macs(self) -> int:
        return self.m * self.n * self.k

    @property
    def flops(self) -> int:
        """FMA counted as two FLOPs."""
        return 2 * self.macs

    @property
    def a_bytes(self) -> int:
        return self.m * self.k * self.dtype.bytes

    @property
    def b_bytes(self) -> int:
        return self.k * self.n * self.dtype.bytes

    @property
    def c_bytes(self) -> int:
        """C traffic: always written; also read when beta != 0."""
        element_bytes = 4  # FP32 accumulate/output
        bytes_written = self.m * self.n * element_bytes
        if self.beta != 0.0:
            return 2 * bytes_written
        return bytes_written

    @property
    def min_dram_bytes(self) -> int:
        """Compulsory traffic assuming perfect on-chip reuse."""
        return self.a_bytes + self.b_bytes + self.c_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per compulsory DRAM byte."""
        return self.flops / max(1, self.min_dram_bytes)

    def square(self) -> bool:
        return self.m == self.n == self.k

    def __str__(self) -> str:
        return (
            f"GEMM[{self.m}x{self.n}x{self.k} {self.dtype.value}"
            f" alpha={self.alpha} beta={self.beta}]"
        )
