"""The paper's GEMM partition and tiling (Fig 6).

The output C is partitioned over a 2D grid of thread blocks, each owning a
128 x 128 ``Csub`` held in the register file. Per K-iteration a thread
block stages ``Atile`` (128 x 8) and ``Btile`` (8 x 128) in shared memory
(double buffered), and the Btile is cut into 8 x <unit-width> ``Bsubtile``
pieces that become resident weights of the systolic units. The same plan
object also serves the SIMD and TC kernels (with their own K-slices), so
every backend sees identical partitioning arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.common.mathutil import ceil_div
from repro.errors import MappingError
from repro.gemm.problem import GemmProblem

#: Fig 6 constants.
TB_TILE_M = 128
TB_TILE_N = 128
SMA_K_SLICE = 8
WARPS_PER_SMA_TB = 64


@dataclass(frozen=True)
class ThreadBlockTile:
    """One thread block's output region."""

    grid_m: int
    grid_n: int
    row: int
    col: int
    rows: int
    cols: int


@dataclass(frozen=True)
class TilingPlan:
    """Static partitioning of one GEMM over the thread-block grid."""

    problem: GemmProblem
    tile_m: int
    tile_n: int
    k_slice: int

    def __post_init__(self) -> None:
        if self.tile_m <= 0 or self.tile_n <= 0 or self.k_slice <= 0:
            raise MappingError("tile dims must be positive")

    @property
    def tiles_m(self) -> int:
        return ceil_div(self.problem.m, self.tile_m)

    @property
    def tiles_n(self) -> int:
        return ceil_div(self.problem.n, self.tile_n)

    @property
    def num_thread_blocks(self) -> int:
        return self.tiles_m * self.tiles_n

    @property
    def k_iterations(self) -> int:
        return ceil_div(self.problem.k, self.k_slice)

    @property
    def tile_utilization(self) -> float:
        """Useful fraction of the padded (tile x tile x k-slice) volume."""
        padded = (
            self.tiles_m * self.tile_m
            * self.tiles_n * self.tile_n
            * self.k_iterations * self.k_slice
        )
        return self.problem.macs / padded

    def thread_blocks(self) -> Iterator[ThreadBlockTile]:
        """Iterate every thread block's output region (edge tiles clipped)."""
        for tm in range(self.tiles_m):
            row = tm * self.tile_m
            rows = min(self.tile_m, self.problem.m - row)
            for tn in range(self.tiles_n):
                col = tn * self.tile_n
                cols = min(self.tile_n, self.problem.n - col)
                yield ThreadBlockTile(
                    grid_m=tm, grid_n=tn, row=row, col=col, rows=rows, cols=cols
                )

    # -- per-iteration staging traffic (bytes) ------------------------------------
    def a_tile_bytes(self) -> int:
        return self.tile_m * self.k_slice * self.problem.dtype.bytes

    def b_tile_bytes(self) -> int:
        return self.k_slice * self.tile_n * self.problem.dtype.bytes

    def c_tile_bytes(self) -> int:
        return self.tile_m * self.tile_n * 4  # FP32 accumulators

    def subtiles_per_iteration(self, unit_width: int) -> int:
        """How many B sub-tiles one K-iteration feeds to the systolic units."""
        if unit_width <= 0:
            raise MappingError("unit width must be positive")
        return ceil_div(self.tile_n, unit_width)


def plan_gemm(
    problem: GemmProblem,
    tile_m: int = TB_TILE_M,
    tile_n: int = TB_TILE_N,
    k_slice: int = SMA_K_SLICE,
) -> TilingPlan:
    """Build the Fig 6 tiling plan (defaults: 128x128 tiles, K-slice 8)."""
    return TilingPlan(problem=problem, tile_m=tile_m, tile_n=tile_n, k_slice=k_slice)
