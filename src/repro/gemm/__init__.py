"""GEMM problems, Fig-6 tiling, numpy reference, kernel traces, executor."""

from repro.gemm.cache import CacheStats, TimingCache, process_cache
from repro.gemm.functional import TiledGemmResult, tiled_systolic_gemm
from repro.gemm.problem import GemmProblem
from repro.gemm.reference import conv_output_shape, conv_to_gemm, im2col, reference_gemm
from repro.gemm.tiling import ThreadBlockTile, TilingPlan, plan_gemm

__all__ = [
    "CacheStats",
    "GemmProblem",
    "TimingCache",
    "ThreadBlockTile",
    "TiledGemmResult",
    "TilingPlan",
    "conv_output_shape",
    "conv_to_gemm",
    "im2col",
    "plan_gemm",
    "process_cache",
    "reference_gemm",
    "tiled_systolic_gemm",
]
