"""Functional references: numpy GEMM, im2col, and conv->GEMM shape algebra.

The convolution layers of every CNN in the evaluation are lowered to GEMM
"through the img2col" (paper SS V-A); this module holds both the shape
arithmetic used by the timing models and a real im2col for functional
validation on small tensors.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError


def reference_gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> np.ndarray:
    """C = alpha * A @ B + beta * C in float64."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise MappingError(f"incompatible GEMM operands {a.shape} x {b.shape}")
    result = alpha * (a @ b)
    if beta != 0.0:
        if c is None:
            raise MappingError("beta != 0 requires an input C")
        result = result + beta * np.asarray(c, dtype=np.float64)
    return result


def conv_output_shape(
    height: int,
    width: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> tuple[int, int]:
    """Spatial output extent of a convolution."""
    if height <= 0 or width <= 0 or kernel <= 0 or stride <= 0:
        raise MappingError("conv geometry must be positive")
    effective = dilation * (kernel - 1) + 1
    out_h = (height + 2 * padding - effective) // stride + 1
    out_w = (width + 2 * padding - effective) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise MappingError(
            f"convolution produces empty output for input {height}x{width},"
            f" kernel {kernel}, stride {stride}, padding {padding}"
        )
    return out_h, out_w


def conv_to_gemm(
    in_channels: int,
    out_channels: int,
    height: int,
    width: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
    batch: int = 1,
) -> tuple[int, int, int]:
    """im2col GEMM dims (M, N, K) of a convolution layer.

    M = batch * out_h * out_w (one row per output pixel),
    N = out_channels, K = in_channels * kernel^2.
    """
    out_h, out_w = conv_output_shape(height, width, kernel, stride, padding, dilation)
    m = batch * out_h * out_w
    n = out_channels
    k = in_channels * kernel * kernel
    return m, n, k


def im2col(
    image: np.ndarray,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Unfold a (C, H, W) image into the im2col matrix (outH*outW, C*k*k)."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 3:
        raise MappingError(f"im2col expects (C, H, W), got shape {image.shape}")
    channels, height, width = image.shape
    out_h, out_w = conv_output_shape(height, width, kernel, stride, padding)
    padded = np.pad(
        image, ((0, 0), (padding, padding), (padding, padding)), mode="constant"
    )
    columns = np.empty((out_h * out_w, channels * kernel * kernel))
    row = 0
    for oy in range(out_h):
        for ox in range(out_w):
            y0 = oy * stride
            x0 = ox * stride
            patch = padded[:, y0 : y0 + kernel, x0 : x0 + kernel]
            columns[row, :] = patch.reshape(-1)
            row += 1
    return columns


def conv2d_reference(
    image: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Direct convolution via im2col GEMM: (C_out, outH, outW)."""
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 4:
        raise MappingError("weights must be (C_out, C_in, k, k)")
    c_out, c_in, kernel, kernel2 = weights.shape
    if kernel != kernel2:
        raise MappingError("only square kernels supported")
    if image.shape[0] != c_in:
        raise MappingError(
            f"channel mismatch: image {image.shape[0]} vs weights {c_in}"
        )
    columns = im2col(image, kernel, stride, padding)
    out_h, out_w = conv_output_shape(image.shape[1], image.shape[2], kernel, stride, padding)
    flat = columns @ weights.reshape(c_out, -1).T
    return flat.T.reshape(c_out, out_h, out_w)
