"""SIMD and TensorCore GEMM kernel traces for the SM pipeline.

Both kernels implement the same 128x128 thread-block tile as the SMA
mapping (Fig 6) so the three backends differ only in how the inner product
is executed:

* **SIMD** — CUTLASS-style FP32 SGEMM: 16 warps, each thread owning a 4x8
  accumulator tile; per K-step the warp loads A/B fragments from shared
  memory and issues one FFMA per accumulator element.
* **TensorCore** — 16 warps, each owning a 32x32 warp tile computed as
  WMMA fragments; per 16-deep K-slice the warp loads fragments and issues
  64 HMMA steps whose 8-operand reads hammer the register file.

Tile staging (global->shared, double buffered) and the per-slice barrier
are identical across backends.
"""

from __future__ import annotations

from repro.common.mathutil import ceil_div
from repro.errors import MappingError
from repro.gemm.tiling import TilingPlan
from repro.gpu.sm import KernelSpec
from repro.isa.instructions import MemAccess, MemSpace, coalesced_access
from repro.isa.program import ProgramBuilder, WarpProgram

WARP_ACCESS_BYTES = 128
#: CUTLASS SGEMM: 256 threads per 128x128 tile, 8x8 accumulators each —
#: the register budget (~100 regs/thread) caps occupancy at 8 warps, which
#: is the latency-hiding deficit the paper attributes to the SIMD baseline.
SIMD_WARPS = 8
TC_WARPS = 16
SIMD_K_SLICE = 8
TC_K_SLICE = 16

# Register-id blocks (per warp, disjoint by convention).
_ACC_BASE = 100
_AFRAG_BASE = 300
_BFRAG_BASE = 340
_ADDR = 1


def _vector_lds(base: int) -> MemAccess:
    """A 16-byte-per-lane shared load (ld.shared.v4): 4 bank rounds."""
    addresses = tuple(base + lane * 16 for lane in range(32))
    return MemAccess(MemSpace.SHARED, addresses, width_bytes=16)


def _emit_stage_loads(
    builder: ProgramBuilder,
    warp_id: int,
    buffer_index: int,
    ldg_ops: int,
    addr_reg: int,
) -> list[int]:
    """Issue the global loads of the next tile; returns the data registers.

    Loads go out at the top of the iteration so their DRAM latency overlaps
    the compute body (CUTLASS software pipelining); the matching stores are
    emitted by :func:`_emit_stage_stores` just before the barrier.
    """
    global_base = buffer_index * 65536 + warp_id * 256
    data_regs = []
    for op in range(ldg_ops):
        data = builder.fresh()
        builder.imad(addr_reg, addr_reg, 0, 0, tag="addr")
        builder.ldg(
            data,
            coalesced_access(MemSpace.GLOBAL, global_base + op * 4096),
            addr_reg,
            tag="stage_ldg",
        )
        data_regs.append(data)
    return data_regs


def _emit_stage_stores(
    builder: ProgramBuilder,
    warp_id: int,
    buffer_index: int,
    data_regs: list[int],
    addr_reg: int,
) -> None:
    """Store the staged tile into the shared-memory double buffer."""
    smem_base = (buffer_index % 2) * 8192 + warp_id * 256
    for op, data in enumerate(data_regs):
        builder.sts(
            coalesced_access(MemSpace.SHARED, smem_base + op * 4096, is_store=True),
            data,
            addr_reg,
            tag="stage_sts",
        )


def _emit_stage(
    builder: ProgramBuilder,
    warp_id: int,
    buffer_index: int,
    ldg_ops: int,
    addr_reg: int,
) -> None:
    """Load + store back to back (prologue staging, nothing to overlap)."""
    data_regs = _emit_stage_loads(builder, warp_id, buffer_index, ldg_ops, addr_reg)
    _emit_stage_stores(builder, warp_id, buffer_index, data_regs, addr_reg)


def _emit_writeback(
    builder: ProgramBuilder, warp_id: int, ops: int, addr_reg: int
) -> None:
    base = warp_id * 2048
    for op in range(ops):
        builder.stg(
            coalesced_access(
                MemSpace.GLOBAL, base + op * WARP_ACCESS_BYTES, is_store=True
            ),
            addr_reg,
            addr_reg,
            tag="writeback",
        )


def _stage_ops_per_warp(plan: TilingPlan, k_slice: int, num_warps: int) -> int:
    staged_bytes = (
        plan.tile_m * k_slice + k_slice * plan.tile_n
    ) * plan.problem.dtype.bytes
    return ceil_div(ceil_div(staged_bytes, WARP_ACCESS_BYTES), num_warps)


def _writeback_ops_per_warp(plan: TilingPlan, num_warps: int) -> int:
    writeback_bytes = plan.tile_m * plan.tile_n * 4
    return ceil_div(ceil_div(writeback_bytes, WARP_ACCESS_BYTES), num_warps)


# ---------------------------------------------------------------------------
# SIMD FP32 kernel
# ---------------------------------------------------------------------------

def build_simd_gemm_kernel(
    plan: TilingPlan, iterations: int, scheduler: str = "gto"
) -> KernelSpec:
    """CUTLASS-style SGEMM sample window over ``iterations`` K-slices."""
    if plan.k_slice != SIMD_K_SLICE:
        raise MappingError(f"SIMD kernel expects K-slice {SIMD_K_SLICE}")
    if iterations <= 0:
        raise MappingError("need at least one iteration")
    ldg_ops = _stage_ops_per_warp(plan, plan.k_slice, SIMD_WARPS)
    stg_ops = _writeback_ops_per_warp(plan, SIMD_WARPS)

    programs: list[WarpProgram] = []
    for warp_id in range(SIMD_WARPS):
        builder = ProgramBuilder(f"simd_gemm_w{warp_id}")
        builder.mov(_ADDR, 0, tag="init")
        _emit_stage(builder, warp_id, 0, ldg_ops, _ADDR)
        builder.bar(tag="prologue")
        def emit_frag_loads(iteration: int, k: int) -> None:
            """Software-pipelined fragment prefetch for K-step ``k``.

            8 A words + 8 B words per thread: two vector loads each.
            """
            smem_base = (iteration % 2) * 8192 + warp_id * 512
            a_frag = _AFRAG_BASE + (k % 2) * 8
            b_frag = _BFRAG_BASE + (k % 2) * 8
            builder.lds(a_frag, _vector_lds(smem_base + k * 512), _ADDR, tag="a_frag")
            builder.lds(
                a_frag + 1,
                _vector_lds(smem_base + k * 512 + 2048),
                _ADDR,
                tag="a_frag",
            )
            builder.lds(
                b_frag, _vector_lds(smem_base + 4096 + k * 512), _ADDR, tag="b_frag"
            )
            builder.lds(
                b_frag + 1,
                _vector_lds(smem_base + 4096 + k * 512 + 2048),
                _ADDR,
                tag="b_frag",
            )

        for iteration in range(iterations):
            staged = _emit_stage_loads(builder, warp_id, iteration + 1, ldg_ops, _ADDR)
            emit_frag_loads(iteration, 0)
            for k in range(plan.k_slice):
                # Prefetch the next K-step's fragments before consuming this
                # step's, hiding the shared-memory latency (CUTLASS-style
                # register double buffering).
                if k + 1 < plan.k_slice:
                    emit_frag_loads(iteration, k + 1)
                a_frag = _AFRAG_BASE + (k % 2) * 8
                b_frag = _BFRAG_BASE + (k % 2) * 8
                # 8x8 accumulator tile per thread: 64 FFMA per K-step.
                for i in range(8):
                    for j in range(8):
                        acc = _ACC_BASE + i * 8 + j
                        builder.ffma(
                            acc,
                            a_frag + (i % 2),
                            b_frag + (j % 2),
                            acc,
                            tag="mac",
                        )
            _emit_stage_stores(builder, warp_id, iteration + 1, staged, _ADDR)
            builder.bar(tag=f"iter{iteration}")
        _emit_writeback(builder, warp_id, stg_ops, _ADDR)
        builder.exit()
        programs.append(builder.build())
    return KernelSpec(
        name=f"simd_gemm[{plan.problem}]x{iterations}",
        programs=programs,
        scheduler=scheduler,
    )


# ---------------------------------------------------------------------------
# TensorCore kernel
# ---------------------------------------------------------------------------

def build_tc_gemm_kernel(
    plan: TilingPlan, iterations: int, scheduler: str = "gto"
) -> KernelSpec:
    """Decoupled WMMA kernel sample window over ``iterations`` K-slices.

    Per warp and K-slice: 4 fragment loads, then 4 independent WMMAs of 16
    HMMA steps each (4 sets of 4 chained accumulator steps), then the
    block-wide barrier that the strictly synchronous TC semantics require.
    """
    if plan.k_slice != TC_K_SLICE:
        raise MappingError(f"TC kernel expects K-slice {TC_K_SLICE}")
    if iterations <= 0:
        raise MappingError("need at least one iteration")
    ldg_ops = _stage_ops_per_warp(plan, plan.k_slice, TC_WARPS)
    stg_ops = _writeback_ops_per_warp(plan, TC_WARPS)

    programs: list[WarpProgram] = []
    for warp_id in range(TC_WARPS):
        builder = ProgramBuilder(f"tc_gemm_w{warp_id}")
        builder.mov(_ADDR, 0, tag="init")
        _emit_stage(builder, warp_id, 0, ldg_ops, _ADDR)
        builder.bar(tag="prologue")
        for iteration in range(iterations):
            staged = _emit_stage_loads(builder, warp_id, iteration + 1, ldg_ops, _ADDR)
            smem_base = (iteration % 2) * 8192 + warp_id * 512
            # Fragment loads: 2 A fragments + 2 B fragments (16x16 FP16),
            # double buffered by iteration parity.
            frag_regs = []
            for frag in range(4):
                reg = _AFRAG_BASE + (iteration % 2) * 4 + frag
                builder.lds(
                    reg,
                    _vector_lds(smem_base + frag * 512),
                    _ADDR,
                    tag="fragment",
                )
                frag_regs.append(reg)
            # 4 WMMAs (warp tile 32x32, K=16): 16 HMMA steps each, emitted
            # step-major so the 16 accumulator chains interleave — dependent
            # steps sit 16 instructions apart (compiler-scheduled ILP).
            for _step in range(4):
                for wmma in range(4):
                    a_reg = frag_regs[wmma % 2]
                    b_reg = frag_regs[2 + wmma // 2]
                    for step_set in range(4):
                        acc = _ACC_BASE + wmma * 4 + step_set
                        builder.hmma(acc, a_reg, b_reg, acc, tag="wmma")
            _emit_stage_stores(builder, warp_id, iteration + 1, staged, _ADDR)
            builder.bar(tag=f"iter{iteration}")
        _emit_writeback(builder, warp_id, stg_ops, _ADDR)
        builder.exit()
        programs.append(builder.build())
    return KernelSpec(
        name=f"tc_gemm[{plan.problem}]x{iterations}",
        programs=programs,
        scheduler=scheduler,
    )
