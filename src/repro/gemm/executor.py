"""GEMM executor: dispatch a problem to a backend and time it end to end.

Pipeline per problem: Fig-6 tiling plan -> per-backend kernel trace for a
small sample window -> cycle-level SM simulation -> linear extrapolation to
the full K loop (sampling methodology, DESIGN.md SS2) -> whole-GPU launch
composition with wave quantization and the DRAM bandwidth bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.stats import CounterBag
from repro.config import DataType, SystemConfig
from repro.errors import MappingError
from repro.gemm.cache import TimingCache
from repro.gemm.problem import GemmProblem
from repro.gemm.tiling import TilingPlan, plan_gemm
from repro.gemm.traces import (
    SIMD_K_SLICE,
    TC_K_SLICE,
    build_simd_gemm_kernel,
    build_tc_gemm_kernel,
)
from repro.gpu.dram import DramTraffic
from repro.gpu.gpu import GpuTimingModel, KernelLaunch, LaunchResult
from repro.gpu.sm import SmResult, StreamingMultiprocessor
from repro.sma.mapping import SmaGemmMapper
from repro.systolic.dataflow import Dataflow

BACKENDS = ("simd", "tc", "sma")


@dataclass(frozen=True)
class GemmTiming:
    """Full timing result of one GEMM on one backend."""

    problem: GemmProblem
    backend: str
    tb_cycles: float
    cycles: float
    seconds: float
    efficiency: float          # useful FLOPs / (cycles * whole-GPU peak)
    sm_efficiency: float       # per-SM steady-state FLOP efficiency
    counters: CounterBag
    launch: LaunchResult

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3

    @property
    def tflops(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.problem.flops / self.seconds / 1e12


def _extrapolate(
    lo: SmResult, lo_n: int, hi: SmResult, hi_n: int, iterations: int
) -> tuple[float, CounterBag]:
    """Linear model cycles(n) = base + n * slope, evaluated at ``iterations``."""
    delta = hi_n - lo_n
    if delta <= 0:
        raise MappingError("sample windows must grow")
    slope = (hi.cycles - lo.cycles) / delta
    base = lo.cycles - lo_n * slope
    cycles = max(0.0, base + iterations * slope)

    counters = CounterBag()
    keys = set(lo.counters.names()) | set(hi.counters.names())
    for key in keys:
        k_slope = (hi.counters.get(key) - lo.counters.get(key)) / delta
        k_base = lo.counters.get(key) - lo_n * k_slope
        counters.add(key, max(0.0, k_base + iterations * k_slope))
    return cycles, counters


class GemmExecutor:
    """Times GEMMs on one backend of one system configuration."""

    def __init__(
        self,
        system: SystemConfig,
        backend: str,
        dataflow: Dataflow = Dataflow.SEMI_BROADCAST_WS,
        scheduler: str | None = None,
        sample_window: tuple[int, int] = (2, 4),
        collector_efficiency: float = 0.95,
        cache: TimingCache | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise MappingError(f"unknown backend {backend!r}; one of {BACKENDS}")
        if system.gpu is None:
            raise MappingError("GEMM executor needs a GPU-bearing system")
        if backend == "sma" and system.sma is None:
            raise MappingError(f"system {system.name!r} has no SMA units")
        self.system = system
        self.backend = backend
        self.dataflow = dataflow
        self.scheduler = scheduler or ("sma_rr" if backend == "sma" else "gto")
        self.sample_window = sample_window
        self.collector_efficiency = collector_efficiency
        self.sm = StreamingMultiprocessor(
            system.gpu, collector_efficiency=collector_efficiency
        )
        self.timing_model = GpuTimingModel(system.gpu)
        # Timings and window traces live in a TimingCache so they can be
        # shared across executors/platforms (repro.api.Session passes one
        # cache to everything it builds); a private cache is the fallback.
        self.cache = cache if cache is not None else TimingCache()

    # -- peak throughput of this backend ------------------------------------------
    def peak_flops_per_cycle_per_sm(self) -> float:
        gpu = self.system.gpu
        if self.backend == "simd":
            return float(gpu.simd_flops_per_cycle_per_sm)
        if self.backend == "tc":
            return float(gpu.tc_flops_per_cycle_per_sm)
        return float(self.system.sma.flops_per_cycle_per_sm)

    def k_slice(self) -> int:
        if self.backend == "tc":
            return TC_K_SLICE
        if self.backend == "sma":
            return self.system.sma.array_rows
        return SIMD_K_SLICE

    def default_dtype(self) -> DataType:
        if self.backend == "simd":
            return DataType.FP32
        if self.backend == "sma":
            return self.system.sma.dtype
        return DataType.FP16

    # -- kernel construction ---------------------------------------------------------
    def _build_kernel(self, plan: TilingPlan, iterations: int):
        if self.backend == "simd":
            return build_simd_gemm_kernel(plan, iterations, self.scheduler)
        if self.backend == "tc":
            return build_tc_gemm_kernel(plan, iterations, self.scheduler)
        mapper = SmaGemmMapper(
            self.system.gpu,
            self.system.sma,
            dataflow=self.dataflow,
            scheduler=self.scheduler,
        )
        return mapper.build_kernel(plan, iterations)

    # -- DRAM traffic with inter-TB L2 reuse -----------------------------------------
    def _dram_traffic(self, plan: TilingPlan) -> DramTraffic:
        """L2-reuse-filtered DRAM traffic of the whole launch.

        Thread blocks of one wave execute their K-loops loosely in lockstep,
        so within a wave each A tile-row band and each B k-slice band is
        fetched from DRAM once and reused through L2 (the per-iteration
        working set is tens of KB against a 6 MB L2). Bands are re-fetched
        for every wave that touches them.
        """
        problem = plan.problem
        gpu = self.system.gpu
        element = problem.dtype.bytes
        tiles_m, tiles_n = plan.tiles_m, plan.tiles_n
        waves = max(1, -(-plan.num_thread_blocks // gpu.num_sms))
        rows_per_wave = min(tiles_m, max(1, -(-gpu.num_sms // tiles_n)))
        cols_per_wave = min(tiles_n, gpu.num_sms)
        per_wave_iter_bytes = (
            rows_per_wave * plan.tile_m + cols_per_wave * plan.tile_n
        ) * plan.k_slice * element
        read_bytes = float(waves * plan.k_iterations * per_wave_iter_bytes)
        write_bytes = float(problem.m * problem.n * 4)
        if problem.beta != 0.0:
            read_bytes += write_bytes
        return DramTraffic(read_bytes=read_bytes, write_bytes=write_bytes)

    def _window(self, plan: TilingPlan, iterations: int) -> SmResult:
        """Run (or fetch) the shape-independent sample-window simulation.

        Window traces depend only on (dtype, iterations) for a given
        executor configuration — the Fig-6 tile shape is fixed — so one
        simulation serves every layer shape.
        """
        key = TimingCache.window_key(
            self.system, self.backend, self.scheduler, self.dataflow,
            plan.problem.dtype, iterations, self.collector_efficiency,
        )
        result = self.cache.get_window(key)
        if result is None:
            result = self.sm.run(self._build_kernel(plan, iterations))
            self.cache.put_window(key, result)
        return result

    # -- public API --------------------------------------------------------------------
    def plan(self, problem: GemmProblem) -> TilingPlan:
        return plan_gemm(problem, k_slice=self.k_slice())

    def cache_key(self, problem: GemmProblem) -> tuple:
        """The shared-cache key this executor uses for ``problem``."""
        return TimingCache.timing_key(
            self.system, self.backend, self.scheduler, self.dataflow,
            problem, self.sample_window, self.collector_efficiency,
        )

    def time_gemm(self, problem: GemmProblem) -> GemmTiming:
        """Time one GEMM; results are cached in the (shareable) cache.

        The key embeds the whole frozen problem, so two problems that
        differ only in ``alpha``/``beta`` get distinct entries (``beta !=
        0`` adds C read traffic in :meth:`_dram_traffic`).
        """
        key = self.cache_key(problem)
        cached = self.cache.get_timing(key)
        if cached is not None:
            return cached

        plan = self.plan(problem)
        iterations = plan.k_iterations
        lo_n, hi_n = self.sample_window
        if iterations <= hi_n:
            result = self._window(plan, iterations)
            tb_cycles, tb_counters = result.cycles, result.counters
        else:
            lo = self._window(plan, lo_n)
            hi = self._window(plan, hi_n)
            tb_cycles, tb_counters = _extrapolate(lo, lo_n, hi, hi_n, iterations)

        launch = self.timing_model.launch(
            KernelLaunch(
                name=f"{self.backend}_gemm",
                tb_cycles=tb_cycles,
                num_thread_blocks=plan.num_thread_blocks,
                tb_counters=tb_counters,
                extra_traffic=self._dram_traffic(plan),
                use_counter_traffic=False,
            )
        )
        gpu = self.system.gpu
        seconds = launch.cycles / (gpu.clock_ghz * 1e9)
        peak_per_sm = self.peak_flops_per_cycle_per_sm()
        whole_gpu_peak = peak_per_sm * gpu.num_sms
        efficiency = problem.flops / (launch.cycles * whole_gpu_peak)

        macs_per_tb = (
            tb_counters.get("fp32_macs")
            + tb_counters.get("fp16_macs")
            + tb_counters.get("sma_macs")
        )
        sm_efficiency = (
            2.0 * macs_per_tb / (tb_cycles * peak_per_sm) if tb_cycles > 0 else 0.0
        )
        timing = GemmTiming(
            problem=problem,
            backend=self.backend,
            tb_cycles=tb_cycles,
            cycles=launch.cycles,
            seconds=seconds,
            efficiency=min(1.0, efficiency),
            sm_efficiency=min(1.0, sm_efficiency),
            counters=launch.counters,
            launch=launch,
        )
        self.cache.put_timing(key, timing)
        return timing
