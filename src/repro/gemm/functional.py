"""Functional tiled GEMM on the systolic arrays (bit-exact execution).

This is the *functional* counterpart of the timing executor: it runs a
whole GEMM through the Fig 6 tiling — thread-block tiles, K-slices, and
per-unit B sub-tiles — executing every sub-tile with the LSMA semantics on
the cycle-level array simulator. Useful for validating mappings and for
downstream users who want the numerical behaviour of the dataflow (e.g.
FP16 accumulation studies) rather than cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SmaConfig
from repro.errors import MappingError
from repro.gemm.problem import GemmProblem
from repro.gemm.tiling import TilingPlan, plan_gemm
from repro.sma.lsma import execute_lsma
from repro.systolic.dataflow import Dataflow


@dataclass(frozen=True)
class TiledGemmResult:
    """Output of a functional tiled run."""

    c: np.ndarray
    lsma_count: int
    thread_blocks: int
    k_iterations: int


def tiled_systolic_gemm(
    a: np.ndarray,
    b: np.ndarray,
    sma: SmaConfig | None = None,
    plan: TilingPlan | None = None,
    dataflow: Dataflow = Dataflow.SEMI_BROADCAST_WS,
    alpha: float = 1.0,
    beta: float = 0.0,
    c_in: np.ndarray | None = None,
) -> TiledGemmResult:
    """Compute ``alpha * A @ B + beta * C`` entirely via LSMA operations.

    Every (thread block, K-slice, sub-tile) triple of the Fig 6 mapping
    becomes one LSMA executed on the array simulator; padding introduced
    by edge tiles is zero-filled and clipped, so the result equals the
    dense reference for arbitrary shapes.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise MappingError(f"incompatible GEMM operands {a.shape} x {b.shape}")
    m, k = a.shape
    _, n = b.shape
    sma = sma or SmaConfig()
    if plan is None:
        plan = plan_gemm(GemmProblem(m, n, k), k_slice=sma.array_rows)
    if plan.k_slice != sma.array_rows:
        raise MappingError(
            f"plan K-slice {plan.k_slice} != array depth {sma.array_rows}"
        )
    if beta != 0.0 and c_in is None:
        raise MappingError("beta != 0 requires an input C")
    unit_width = sma.effective_cols

    c = np.zeros((m, n))
    lsma_count = 0
    for tile in plan.thread_blocks():
        c_sub = np.zeros((tile.rows, tile.cols))
        for k0 in range(0, k, plan.k_slice):
            k_extent = min(plan.k_slice, k - k0)
            a_tile = np.zeros((tile.rows, plan.k_slice))
            a_tile[:, :k_extent] = a[
                tile.row : tile.row + tile.rows, k0 : k0 + k_extent
            ]
            for n0 in range(0, tile.cols, unit_width):
                width = min(unit_width, tile.cols - n0)
                b_sub = np.zeros((plan.k_slice, unit_width))
                b_sub[:k_extent, :width] = b[
                    k0 : k0 + k_extent,
                    tile.col + n0 : tile.col + n0 + width,
                ]
                c_sub[:, n0 : n0 + width] += execute_lsma(
                    a_tile, b_sub, dataflow=dataflow
                )[:, :width]
                lsma_count += 1
        c[tile.row : tile.row + tile.rows,
          tile.col : tile.col + tile.cols] = c_sub

    c = alpha * c
    if beta != 0.0:
        c = c + beta * np.asarray(c_in, dtype=np.float64)
    return TiledGemmResult(
        c=c,
        lsma_count=lsma_count,
        thread_blocks=plan.num_thread_blocks,
        k_iterations=plan.k_iterations,
    )
