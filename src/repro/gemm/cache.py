"""Shared GEMM-timing cache: one store serving every executor.

Historically each :class:`~repro.gemm.executor.GemmExecutor` hoarded a
private ``_cache``/``_window_cache`` dict, so identical GEMM shapes were
re-simulated by every platform object (examples, experiments, CLI, and
benchmarks each built their own executors). :class:`TimingCache` lifts both
layers into one shareable, thread-safe object keyed by the full frozen
configuration — ``(system, backend, scheduler, dataflow, problem)`` — so
any number of executors, platforms, and sessions can pool results.

Keys embed the frozen :class:`~repro.config.SystemConfig` and
:class:`~repro.gemm.problem.GemmProblem` values themselves (both hashable),
so two configurations share an entry exactly when every timing-relevant
field matches — including the ``alpha``/``beta`` epilogue scalars, which
change DRAM traffic and therefore must never collide.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from repro.config import DataType, SystemConfig

if TYPE_CHECKING:  # imported only for annotations; avoids import cycles
    from repro.gemm.executor import GemmTiming
    from repro.gemm.problem import GemmProblem
    from repro.gpu.sm import SmResult
    from repro.systolic.dataflow import Dataflow

#: Cache key of one fully-specified GEMM timing.
TimingKey = tuple[Hashable, ...]

#: Cache key of one sample-window SM simulation.
WindowKey = tuple[Hashable, ...]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of a :class:`TimingCache` at one point in time."""

    hits: int = 0
    misses: int = 0
    window_hits: int = 0
    window_misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "window_hits": self.window_hits,
            "window_misses": self.window_misses,
        }


class TimingCache:
    """Process-shareable store of GEMM timings and sample-window results.

    Two layers, mirroring the executor's cost structure:

    * **timings** — whole :class:`GemmTiming` results per problem;
    * **windows** — the expensive cycle-level sample-window simulations,
      which depend only on (system, backend, scheduler, dataflow, dtype,
      iterations), not on the layer shape.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._timings: dict[TimingKey, GemmTiming] = {}
        self._windows: dict[WindowKey, SmResult] = {}
        self._hits = 0
        self._misses = 0
        self._window_hits = 0
        self._window_misses = 0

    # -- key construction --------------------------------------------------------------
    @staticmethod
    def timing_key(
        system: SystemConfig,
        backend: str,
        scheduler: str,
        dataflow: "Dataflow",
        problem: "GemmProblem",
        sample_window: tuple[int, int],
        collector_efficiency: float,
    ) -> TimingKey:
        """Key of one timed GEMM; the frozen problem carries alpha/beta.

        ``sample_window`` (extrapolation anchors) and
        ``collector_efficiency`` (SM operand-collector model) are executor
        knobs that change the result, so they are part of the key —
        executors differing only in those must not collide.
        """
        return (
            system, backend, scheduler, dataflow, problem, sample_window,
            collector_efficiency,
        )

    @staticmethod
    def window_key(
        system: SystemConfig,
        backend: str,
        scheduler: str,
        dataflow: "Dataflow",
        dtype: DataType,
        iterations: int,
        collector_efficiency: float,
    ) -> WindowKey:
        return (
            system, backend, scheduler, dataflow, dtype, iterations,
            collector_efficiency,
        )

    # -- timings -----------------------------------------------------------------------
    def peek_timing(self, key: TimingKey) -> "GemmTiming | None":
        """Look up a timing without touching the hit/miss counters."""
        with self._lock:
            return self._timings.get(key)

    def get_timing(self, key: TimingKey) -> "GemmTiming | None":
        with self._lock:
            timing = self._timings.get(key)
            if timing is None:
                self._misses += 1
            else:
                self._hits += 1
            return timing

    def put_timing(self, key: TimingKey, timing: "GemmTiming") -> None:
        with self._lock:
            self._timings[key] = timing

    # -- sample windows ----------------------------------------------------------------
    def get_window(self, key: WindowKey) -> "SmResult | None":
        with self._lock:
            result = self._windows.get(key)
            if result is None:
                self._window_misses += 1
            else:
                self._window_hits += 1
            return result

    def put_window(self, key: WindowKey, result: "SmResult") -> None:
        with self._lock:
            self._windows[key] = result

    # -- introspection -----------------------------------------------------------------
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                window_hits=self._window_hits,
                window_misses=self._window_misses,
            )

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._timings.clear()
            self._windows.clear()
            self._hits = self._misses = 0
            self._window_hits = self._window_misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._timings)

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"TimingCache(entries={len(self)}, hits={stats.hits},"
            f" misses={stats.misses})"
        )


#: The process-wide cache shared by every Session that does not bring its
#: own (the default). Lifting it to module scope is what lets independent
#: consumers — CLI runs, experiments, examples — pool identical GEMMs.
_PROCESS_CACHE = TimingCache()


def process_cache() -> TimingCache:
    """The default process-wide :class:`TimingCache`."""
    return _PROCESS_CACHE
