"""Shared GEMM-timing cache: one store serving every executor.

Historically each :class:`~repro.gemm.executor.GemmExecutor` hoarded a
private ``_cache``/``_window_cache`` dict, so identical GEMM shapes were
re-simulated by every platform object (examples, experiments, CLI, and
benchmarks each built their own executors). :class:`TimingCache` lifts both
layers into one shareable, thread-safe object keyed by the full frozen
configuration — ``(system, backend, scheduler, dataflow, problem)`` — so
any number of executors, platforms, and sessions can pool results.

Keys embed the frozen :class:`~repro.config.SystemConfig` and
:class:`~repro.gemm.problem.GemmProblem` values themselves (both hashable),
so two configurations share an entry exactly when every timing-relevant
field matches — including the ``alpha``/``beta`` epilogue scalars, which
change DRAM traffic and therefore must never collide.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Hashable

from repro.config import DataType, SystemConfig
from repro.errors import ConfigError

if TYPE_CHECKING:  # imported only for annotations; avoids import cycles
    from repro.gemm.executor import GemmTiming
    from repro.gemm.problem import GemmProblem
    from repro.gpu.sm import SmResult
    from repro.systolic.dataflow import Dataflow

#: Cache key of one fully-specified GEMM timing.
TimingKey = tuple[Hashable, ...]

#: Cache key of one sample-window SM simulation.
WindowKey = tuple[Hashable, ...]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of a :class:`TimingCache` at one point in time."""

    hits: int = 0
    misses: int = 0
    window_hits: int = 0
    window_misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def total_hits(self) -> int:
        """Hits across both layers (timings and sample windows)."""
        return self.hits + self.window_hits

    def since(self, baseline: "CacheStats") -> "CacheStats":
        """Counters accumulated after ``baseline`` was snapshotted.

        Lets benchmarks measure one phase (e.g. the warm half of a
        cold-vs-warm comparison) against a shared long-lived cache.
        """
        return CacheStats(
            hits=self.hits - baseline.hits,
            misses=self.misses - baseline.misses,
            window_hits=self.window_hits - baseline.window_hits,
            window_misses=self.window_misses - baseline.window_misses,
        )

    def merged(self, other: "CacheStats") -> "CacheStats":
        """Element-wise sum, used when folding worker caches together."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            window_hits=self.window_hits + other.window_hits,
            window_misses=self.window_misses + other.window_misses,
        )

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "window_hits": self.window_hits,
            "window_misses": self.window_misses,
        }


@dataclass(frozen=True)
class CacheEntries:
    """Picklable snapshot of a :class:`TimingCache`'s contents.

    Every value is a frozen dataclass of primitives (``GemmTiming``,
    ``SmResult``) and every key a tuple of hashable config values, so a
    snapshot can cross a process boundary — sweep workers export their
    private caches this way and the parent folds them back in with
    :meth:`TimingCache.merge`.
    """

    timings: dict[TimingKey, "GemmTiming"]
    windows: dict[WindowKey, "SmResult"]
    stats: CacheStats = CacheStats()

    def __len__(self) -> int:
        return len(self.timings) + len(self.windows)

    def minus(self, baseline: "CacheEntries") -> "CacheEntries":
        """The delta beyond ``baseline``: new entries, counters since.

        This is what crosses a boundary after warm-started work — sweep
        workers subtract the warm set they were given, and the cluster
        pool subtracts its pre-submission snapshot — so the receiver
        merges only what this side actually added.
        """
        return CacheEntries(
            timings={
                key: timing
                for key, timing in self.timings.items()
                if key not in baseline.timings
            },
            windows={
                key: window
                for key, window in self.windows.items()
                if key not in baseline.windows
            },
            stats=self.stats.since(baseline.stats),
        )


class TimingCache:
    """Process-shareable store of GEMM timings and sample-window results.

    Two layers, mirroring the executor's cost structure:

    * **timings** — whole :class:`GemmTiming` results per problem;
    * **windows** — the expensive cycle-level sample-window simulations,
      which depend only on (system, backend, scheduler, dataflow, dtype,
      iterations), not on the layer shape.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._timings: dict[TimingKey, GemmTiming] = {}
        self._windows: dict[WindowKey, SmResult] = {}
        self._hits = 0
        self._misses = 0
        self._window_hits = 0
        self._window_misses = 0

    # -- key construction --------------------------------------------------------------
    @staticmethod
    def timing_key(
        system: SystemConfig,
        backend: str,
        scheduler: str,
        dataflow: "Dataflow",
        problem: "GemmProblem",
        sample_window: tuple[int, int],
        collector_efficiency: float,
    ) -> TimingKey:
        """Key of one timed GEMM; the frozen problem carries alpha/beta.

        ``sample_window`` (extrapolation anchors) and
        ``collector_efficiency`` (SM operand-collector model) are executor
        knobs that change the result, so they are part of the key —
        executors differing only in those must not collide.
        """
        return (
            system, backend, scheduler, dataflow, problem, sample_window,
            collector_efficiency,
        )

    @staticmethod
    def window_key(
        system: SystemConfig,
        backend: str,
        scheduler: str,
        dataflow: "Dataflow",
        dtype: DataType,
        iterations: int,
        collector_efficiency: float,
    ) -> WindowKey:
        return (
            system, backend, scheduler, dataflow, dtype, iterations,
            collector_efficiency,
        )

    # -- timings -----------------------------------------------------------------------
    def peek_timing(self, key: TimingKey) -> "GemmTiming | None":
        """Look up a timing without touching the hit/miss counters."""
        with self._lock:
            return self._timings.get(key)

    def get_timing(self, key: TimingKey) -> "GemmTiming | None":
        with self._lock:
            timing = self._timings.get(key)
            if timing is None:
                self._misses += 1
            else:
                self._hits += 1
            return timing

    def put_timing(self, key: TimingKey, timing: "GemmTiming") -> None:
        with self._lock:
            self._timings[key] = timing

    # -- sample windows ----------------------------------------------------------------
    def get_window(self, key: WindowKey) -> "SmResult | None":
        with self._lock:
            result = self._windows.get(key)
            if result is None:
                self._window_misses += 1
            else:
                self._window_hits += 1
            return result

    def put_window(self, key: WindowKey, result: "SmResult") -> None:
        with self._lock:
            self._windows[key] = result

    # -- sharing across processes ------------------------------------------------------
    def export_entries(self) -> CacheEntries:
        """A picklable snapshot of every entry plus the counters."""
        with self._lock:
            return CacheEntries(
                timings=dict(self._timings),
                windows=dict(self._windows),
                stats=CacheStats(
                    hits=self._hits,
                    misses=self._misses,
                    window_hits=self._window_hits,
                    window_misses=self._window_misses,
                ),
            )

    def merge(self, entries: "CacheEntries | TimingCache") -> int:
        """Fold another cache's entries into this one; returns entries added.

        Existing keys win — both sides computed the same deterministic
        simulation, so first-write-wins keeps results bit-identical to a
        sequential run no matter the merge order. The other side's hit/miss
        counters are accumulated so a sharded sweep reports the work its
        workers actually did.
        """
        if isinstance(entries, TimingCache):
            entries = entries.export_entries()
        with self._lock:
            added = 0
            for key, timing in entries.timings.items():
                if key not in self._timings:
                    self._timings[key] = timing
                    added += 1
            for key, window in entries.windows.items():
                if key not in self._windows:
                    self._windows[key] = window
                    added += 1
            self._hits += entries.stats.hits
            self._misses += entries.stats.misses
            self._window_hits += entries.stats.window_hits
            self._window_misses += entries.stats.window_misses
            return added

    # -- persistence (fresh processes start warm) --------------------------------------
    def save(self, path: str | Path) -> int:
        """Pickle every entry to ``path``; returns the entry count.

        The payload is the same :class:`CacheEntries` snapshot sweep
        workers ship across process boundaries, so a saved file is a
        portable warm-start for any later process.
        """
        entries = self.export_entries()
        path = Path(path)
        try:
            with open(path, "wb") as handle:
                pickle.dump(entries, handle)
        except OSError as error:
            raise ConfigError(
                f"cannot save timing cache to {path}: {error}"
            ) from None
        return len(entries)

    def load(self, path: str | Path) -> int:
        """Merge entries pickled by :meth:`save`; returns entries added.

        The file's hit/miss counters are discarded — they describe the
        process that wrote the file, and this process's statistics should
        count only its own lookups against the pre-warmed entries.
        """
        path = Path(path)
        try:
            with open(path, "rb") as handle:
                entries = pickle.load(handle)
        except OSError as error:
            raise ConfigError(
                f"cannot load timing cache from {path}: {error}"
            ) from None
        except (pickle.UnpicklingError, EOFError, AttributeError) as error:
            raise ConfigError(
                f"corrupt timing-cache file {path}: {error}"
            ) from None
        if not isinstance(entries, CacheEntries):
            raise ConfigError(
                f"timing-cache file {path} holds"
                f" {type(entries).__name__}, expected CacheEntries"
            )
        return self.merge(replace(entries, stats=CacheStats()))

    # -- introspection -----------------------------------------------------------------
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                window_hits=self._window_hits,
                window_misses=self._window_misses,
            )

    def reset_stats(self) -> CacheStats:
        """Zero the counters, keeping every entry; returns the old stats.

        This is the warm half of a cold-vs-warm benchmark: reset after the
        cold pass and the next :meth:`stats` call counts only the warm
        lookups, with no fresh process needed.
        """
        with self._lock:
            before = CacheStats(
                hits=self._hits,
                misses=self._misses,
                window_hits=self._window_hits,
                window_misses=self._window_misses,
            )
            self._hits = self._misses = 0
            self._window_hits = self._window_misses = 0
            return before

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._timings.clear()
            self._windows.clear()
            self._hits = self._misses = 0
            self._window_hits = self._window_misses = 0

    # -- pickling (the lock itself cannot cross a process boundary) --------------------
    def __getstate__(self) -> dict:
        with self._lock:
            return {
                "timings": dict(self._timings),
                "windows": dict(self._windows),
                "counters": (
                    self._hits, self._misses,
                    self._window_hits, self._window_misses,
                ),
            }

    def __setstate__(self, state: dict) -> None:
        self._lock = threading.Lock()
        self._timings = state["timings"]
        self._windows = state["windows"]
        (self._hits, self._misses,
         self._window_hits, self._window_misses) = state["counters"]

    def __len__(self) -> int:
        with self._lock:
            return len(self._timings)

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"TimingCache(entries={len(self)}, hits={stats.hits},"
            f" misses={stats.misses})"
        )


#: The process-wide cache shared by every Session that does not bring its
#: own (the default). Lifting it to module scope is what lets independent
#: consumers — CLI runs, experiments, examples — pool identical GEMMs.
_PROCESS_CACHE = TimingCache()


def process_cache() -> TimingCache:
    """The default process-wide :class:`TimingCache`."""
    return _PROCESS_CACHE
