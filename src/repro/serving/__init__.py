"""``repro.serving`` — open-loop serving on the timeline scheduler.

The PR-3 scheduler proves the paper's flexibility claim for closed-loop,
fixed-frame scenarios; this package models the production regime the
ROADMAP north-star targets — stochastic traffic from many users with
tail-latency SLOs:

* :mod:`~repro.serving.traces` — seeded, deterministic open-loop arrival
  generators (fixed / Poisson / MMPP / replay-from-JSON) and the
  :class:`ArrivalTrace` wire format;
* :mod:`~repro.serving.qos` — admission-control policies (deadline-slip
  drops, queue caps, priority load-shedding) plugged into the timeline
  engine as first-class policy objects;
* :mod:`~repro.serving.slo` — a latency-SLO explorer sweeping arrival
  rate x platform through :mod:`repro.sweep`, reporting p50/p95/p99,
  goodput, and the max sustainable rate under an SLO per config.

Closed-loop periodic release is the degenerate case of a ``fixed``
arrival trace, so every pre-serving scenario reproduces bit-for-bit.
"""

from repro.serving.traces import (
    ARRIVAL_KINDS,
    ArrivalSpec,
    ArrivalTrace,
    generate_arrivals,
    iter_arrivals,
    stream_seed,
)
from repro.serving.qos import (
    QOS_KINDS,
    AbortLatePolicy,
    AdmissionPolicy,
    DropLatePolicy,
    QosSpec,
    QueueCapPolicy,
    ShedPolicy,
    make_qos,
)

#: Names resolved lazily from :mod:`repro.serving.slo` — that module pulls
#: in the api/sweep stack, which itself imports the schedule package (and
#: through it this package), so an eager import here would be circular.
_SLO_EXPORTS = (
    "SEARCH_MODES",
    "SloPoint",
    "SloReport",
    "explore_slo",
    "scenario_at_rate",
    "trace_scenario",
    "apply_trace",
)

#: Lazily resolved for the same reason: the streaming driver assembles
#: api-layer ServingReports.
_STREAMING_EXPORTS = ("serve_streaming",)


def __getattr__(name: str):
    if name in _SLO_EXPORTS:
        from repro.serving import slo

        return getattr(slo, name)
    if name in _STREAMING_EXPORTS:
        from repro.serving import streaming

        return getattr(streaming, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ARRIVAL_KINDS",
    "QOS_KINDS",
    "AbortLatePolicy",
    "AdmissionPolicy",
    "ArrivalSpec",
    "ArrivalTrace",
    "DropLatePolicy",
    "QosSpec",
    "QueueCapPolicy",
    "ShedPolicy",
    "generate_arrivals",
    "iter_arrivals",
    "make_qos",
    "stream_seed",
    *_SLO_EXPORTS,
    *_STREAMING_EXPORTS,
]
