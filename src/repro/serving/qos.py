"""QoS admission control: drop or shed frames instead of only counting misses.

A closed-loop scenario can at worst run late; an open-loop one can fall
*behind* — arrivals keep coming whether or not the machine keeps up, and
an unbounded backlog makes every later frame miss. Admission control is
the serving-side answer: bound the damage by dropping work that can no
longer meet its deadline, capping per-stream queues, or shedding the
lowest-priority tenants under overload.

An :class:`AdmissionPolicy` is a first-class timeline policy object: the
:class:`~repro.schedule.timeline.TimelineScheduler` consults it at every
event, alongside (and orthogonal to) the ``fifo``/``priority``/
``exclusive`` dispatch policy. It sees the *queued frames* — frame-head
tasks that have arrived but not started (either waiting behind the
stream's previous frame, or held back by an ``exclusive`` dispatcher) —
and returns the frames to drop; the engine cancels the whole frame chain
and records a :class:`~repro.schedule.timeline.DropRecord` for each task.

Specs (:class:`QosSpec`) are frozen primitives with JSON round-trip, so
QoS rides :class:`~repro.schedule.streams.ScenarioSpec` through the sweep
engine and result store like every other scenario knob.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: The admission-control policy kinds a scenario may declare.
QOS_KINDS = ("drop_late", "queue_cap", "shed", "abort_late")


@dataclass(frozen=True)
class QosSpec:
    """Declarative admission control for one scenario.

    * ``drop_late`` — drop a queued frame the moment it can no longer
      start by ``release + deadline + slack_s`` (streams without a
      deadline are never dropped);
    * ``queue_cap`` — at most ``cap`` frames of one stream may wait at
      once; arrivals beyond that are dropped (newest first);
    * ``shed`` — when more than ``cap`` frames are queued machine-wide,
      shed from the lowest-priority streams first; streams with priority
      >= ``min_priority`` (when set) are never shed;
    * ``abort_late`` — ``drop_late`` for queued frames, plus preemptive
      cancellation of an *in-flight* frame's not-yet-started kernels the
      moment ``release + deadline + slack_s`` passes (the kernel already
      on the machine finishes — cancellation is kernel-granular).
    """

    kind: str
    cap: int | None = None
    slack_s: float = 0.0
    min_priority: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in QOS_KINDS:
            raise ConfigError(
                f"unknown qos kind {self.kind!r}; one of {QOS_KINDS}"
            )
        if self.kind in ("queue_cap", "shed"):
            if self.cap is None or self.cap < 1:
                raise ConfigError(
                    f"{self.kind!r} qos needs cap >= 1, got {self.cap}"
                )
        if self.slack_s < 0:
            raise ConfigError(f"qos slack must be >= 0, got {self.slack_s}")

    def to_dict(self) -> dict:
        payload: dict = {"kind": self.kind}
        if self.cap is not None:
            payload["cap"] = self.cap
        if self.slack_s:
            payload["slack_s"] = self.slack_s
        if self.min_priority is not None:
            payload["min_priority"] = self.min_priority
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "QosSpec":
        if not isinstance(data, dict):
            raise ConfigError(f"qos spec must be an object, got {data!r}")
        if "kind" not in data:
            raise ConfigError(f"qos spec is missing 'kind': {data!r}")
        return cls(
            kind=data["kind"],
            cap=data.get("cap"),
            slack_s=data.get("slack_s", 0.0),
            min_priority=data.get("min_priority"),
        )


class AdmissionPolicy:
    """Base admission policy: admit everything (the closed-loop default)."""

    #: Preemptive policies additionally review *in-flight* frames and may
    #: abort their unstarted remainder at a kernel boundary; the engine
    #: only maintains the in-flight index when this is set.
    preemptive = False

    def __init__(self, spec: QosSpec | None = None) -> None:
        self.spec = spec

    @property
    def name(self) -> str:
        return self.spec.kind if self.spec is not None else "none"

    def review(self, now: float, queued: dict) -> list:
        """Frames to drop now, as ``(head_task, reason)`` pairs.

        ``queued`` maps stream name to that stream's arrived-but-unstarted
        frame-head tasks in arrival order.
        """
        return []

    def next_event(self, now: float, queued: dict) -> float | None:
        """The next time (> now) this policy's decision could change
        between releases/completions, or ``None``. The engine bounds its
        time step by it so deadline expiries are hit exactly."""
        return None

    def review_inflight(self, now: float, inflight: dict) -> list:
        """In-flight frames to abort now, as ``(head_task, reason)`` pairs.

        ``inflight`` maps stream name to that stream's started-but-
        unfinished frame-head tasks. Only consulted when ``preemptive``.
        """
        return []

    def next_inflight_event(self, now: float, inflight: dict) -> float | None:
        """The next time (> now) an in-flight abort could fire, or
        ``None``. Bounds the engine's step (and the vectorized engine's
        solo-chain fast path) so aborts land exactly on their expiry."""
        return None


class DropLatePolicy(AdmissionPolicy):
    """Drop a queued frame once its deadline (plus slack) has slipped.

    A frame that has not *started* by ``release + deadline + slack`` can
    only finish late, so it is shed the moment that expiry passes (the
    engine schedules an event at the expiry, so drop times are exact).
    """

    def _expiry(self, head) -> float | None:
        if head.deadline_s is None:
            return None
        return head.release_s + head.deadline_s + self.spec.slack_s

    def review(self, now: float, queued: dict) -> list:
        drops = []
        for heads in queued.values():
            for head in heads:
                expiry = self._expiry(head)
                if expiry is not None and now >= expiry:
                    drops.append((head, "deadline_slip"))
        return drops

    def next_event(self, now: float, queued: dict) -> float | None:
        horizon = None
        for heads in queued.values():
            for head in heads:
                expiry = self._expiry(head)
                if expiry is not None and expiry > now:
                    horizon = expiry if horizon is None else min(horizon, expiry)
        return horizon


class QueueCapPolicy(AdmissionPolicy):
    """Cap each stream's waiting queue; drop the newest arrivals beyond it."""

    def review(self, now: float, queued: dict) -> list:
        return [
            (head, "queue_full")
            for heads in queued.values()
            for head in heads[self.spec.cap:]
        ]


class ShedPolicy(AdmissionPolicy):
    """Under machine-wide overload, shed the lowest-priority queued frames."""

    def review(self, now: float, queued: dict) -> list:
        backlog = [head for heads in queued.values() for head in heads]
        excess = len(backlog) - self.spec.cap
        if excess <= 0:
            return []
        floor = self.spec.min_priority
        # Lowest priority first; among equals shed the newest arrival.
        candidates = sorted(
            (head for head in backlog
             if floor is None or head.weight < floor),
            key=lambda head: (head.weight, -head.release_s, -head.uid),
        )
        return [(head, "load_shed") for head in candidates[:excess]]


class AbortLatePolicy(DropLatePolicy):
    """``drop_late`` plus kernel-granularity abort of in-flight frames.

    Queued frames are dropped exactly as under ``drop_late``. A frame
    that *started* but whose expiry passes mid-flight has its remaining
    (not-yet-started) kernels cancelled at the expiry instant — the
    kernel on the machine runs to completion, and the engine records the
    cancellations as :class:`~repro.schedule.timeline.PreemptRecord`
    entries with reason ``"deadline_abort"``.
    """

    preemptive = True

    def review_inflight(self, now: float, inflight: dict) -> list:
        aborts = []
        for heads in inflight.values():
            for head in heads:
                expiry = self._expiry(head)
                if expiry is not None and now >= expiry:
                    aborts.append((head, "deadline_abort"))
        return aborts

    def next_inflight_event(self, now: float, inflight: dict) -> float | None:
        horizon = None
        for heads in inflight.values():
            for head in heads:
                expiry = self._expiry(head)
                if expiry is not None and expiry > now:
                    horizon = expiry if horizon is None else min(horizon, expiry)
        return horizon


_POLICIES = {
    "drop_late": DropLatePolicy,
    "queue_cap": QueueCapPolicy,
    "shed": ShedPolicy,
    "abort_late": AbortLatePolicy,
}


def make_qos(spec: "QosSpec | dict | str | None") -> AdmissionPolicy | None:
    """Resolve an admission policy from its spec (or pass ``None`` through).

    Accepts a :class:`QosSpec`, its dict form, or a bare kind string
    (kinds without required parameters only).
    """
    if spec is None:
        return None
    if isinstance(spec, AdmissionPolicy):
        return spec
    if isinstance(spec, str):
        spec = QosSpec(kind=spec)
    elif isinstance(spec, dict):
        spec = QosSpec.from_dict(spec)
    if not isinstance(spec, QosSpec):
        raise ConfigError(f"not a qos spec: {spec!r}")
    return _POLICIES[spec.kind](spec)


__all__ = [
    "QOS_KINDS",
    "AbortLatePolicy",
    "AdmissionPolicy",
    "DropLatePolicy",
    "QosSpec",
    "QueueCapPolicy",
    "ShedPolicy",
    "make_qos",
]
